//! The atom index file (§4.1): a *meta-graph* with one vertex per atom and
//! weighted edges encoding atom connectivity, plus per-atom sizes and file
//! locations. Placement (phase two of the two-phase scheme) runs on this
//! tiny graph instead of the full data graph.

use bytes::{Bytes, BytesMut};
use graphlab_graph::AtomId;
use graphlab_net::codec::Codec;

/// Per-atom metadata in the index.
#[derive(Clone, Debug, PartialEq)]
pub struct AtomIndexEntry {
    /// The atom.
    pub atom: AtomId,
    /// Number of vertices the atom owns.
    pub owned_vertices: u64,
    /// Number of edges the atom owns.
    pub owned_edges: u64,
    /// DFS file name holding the atom journal.
    pub file: String,
    /// Meta-graph adjacency: `(neighbour atom, cross-edge count)`.
    pub neighbors: Vec<(AtomId, u64)>,
}

impl Codec for AtomIndexEntry {
    fn encode(&self, buf: &mut BytesMut) {
        self.atom.encode(buf);
        self.owned_vertices.encode(buf);
        self.owned_edges.encode(buf);
        self.file.encode(buf);
        self.neighbors.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(AtomIndexEntry {
            atom: AtomId::decode(buf)?,
            owned_vertices: u64::decode(buf)?,
            owned_edges: u64::decode(buf)?,
            file: String::decode(buf)?,
            neighbors: Vec::<(AtomId, u64)>::decode(buf)?,
        })
    }
}

/// The atom index: the meta-graph over all `k` atoms.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct AtomIndex {
    /// Entries, one per atom, sorted by atom id.
    pub entries: Vec<AtomIndexEntry>,
    /// Total vertices in the full graph.
    pub total_vertices: u64,
    /// Total edges in the full graph.
    pub total_edges: u64,
}

impl AtomIndex {
    /// Number of atoms.
    pub fn num_atoms(&self) -> usize {
        self.entries.len()
    }

    /// Entry lookup by atom id (entries are dense and sorted).
    pub fn entry(&self, atom: AtomId) -> &AtomIndexEntry {
        debug_assert_eq!(self.entries[atom.index()].atom, atom);
        &self.entries[atom.index()]
    }

    /// Conventional DFS file name of the index itself.
    pub fn index_file_name(prefix: &str) -> String {
        format!("{prefix}/atom_index")
    }

    /// Conventional DFS file name of one atom journal.
    pub fn atom_file_name(prefix: &str, atom: AtomId) -> String {
        format!("{prefix}/atom_{:06}", atom.0)
    }
}

impl Codec for AtomIndex {
    fn encode(&self, buf: &mut BytesMut) {
        self.entries.encode(buf);
        self.total_vertices.encode(buf);
        self.total_edges.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(AtomIndex {
            entries: Vec::<AtomIndexEntry>::decode(buf)?,
            total_vertices: u64::decode(buf)?,
            total_edges: u64::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_net::codec::{decode_from, encode_to_bytes};

    fn sample() -> AtomIndex {
        AtomIndex {
            entries: vec![
                AtomIndexEntry {
                    atom: AtomId(0),
                    owned_vertices: 10,
                    owned_edges: 25,
                    file: "g/atom_000000".into(),
                    neighbors: vec![(AtomId(1), 5)],
                },
                AtomIndexEntry {
                    atom: AtomId(1),
                    owned_vertices: 12,
                    owned_edges: 30,
                    file: "g/atom_000001".into(),
                    neighbors: vec![(AtomId(0), 5)],
                },
            ],
            total_vertices: 22,
            total_edges: 55,
        }
    }

    #[test]
    fn codec_roundtrip() {
        let idx = sample();
        let bytes = encode_to_bytes(&idx);
        assert_eq!(decode_from::<AtomIndex>(bytes), Some(idx));
    }

    #[test]
    fn entry_lookup() {
        let idx = sample();
        assert_eq!(idx.entry(AtomId(1)).owned_vertices, 12);
        assert_eq!(idx.num_atoms(), 2);
    }

    #[test]
    fn file_names() {
        assert_eq!(AtomIndex::index_file_name("web"), "web/atom_index");
        assert_eq!(AtomIndex::atom_file_name("web", AtomId(7)), "web/atom_000007");
    }
}
