//! First phase of the two-phase partitioning (§4.1): over-partition the
//! data graph into `k` atoms, `k ≫ #machines`.
//!
//! Two partitioners are provided, matching the paper's options:
//!
//! - [`VertexPartition::random_hash`] — the "Random Hashing" baseline:
//!   stateless, instant, poor locality (used by the Netflix/NER
//!   experiments, Table 2).
//! - [`VertexPartition::bfs_grow`] — a locality-aware heuristic standing in
//!   for ParMetis: multi-source BFS region growing (always extending the
//!   currently smallest atom) followed by greedy boundary refinement that
//!   moves vertices to the neighbouring atom with the highest cut gain
//!   subject to a balance constraint.
//!
//! Domain-specific partitions (e.g. CoSeg "frame blocks", §5.2) are
//! injected through [`VertexPartition::from_assignment`].

use graphlab_graph::{AtomId, DataGraph, VertexId};

/// Assignment of every vertex to an atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexPartition {
    atom_of: Vec<AtomId>,
    num_atoms: usize,
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl VertexPartition {
    /// Wraps an explicit assignment. Panics if an atom id is out of range.
    pub fn from_assignment(atom_of: Vec<AtomId>, num_atoms: usize) -> Self {
        assert!(
            atom_of.iter().all(|a| a.index() < num_atoms),
            "atom id out of range"
        );
        VertexPartition { atom_of, num_atoms }
    }

    /// Random hash partitioning of `n` vertices into `k` atoms.
    pub fn random_hash(n: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0);
        let atom_of = (0..n)
            .map(|v| AtomId((splitmix64(seed ^ (v as u64)) % k as u64) as u32))
            .collect();
        VertexPartition { atom_of, num_atoms: k }
    }

    /// Locality-aware partitioning: BFS region growing + boundary
    /// refinement. `refine_passes` greedy sweeps are applied afterwards
    /// (2 is usually plenty).
    pub fn bfs_grow<V, E>(graph: &DataGraph<V, E>, k: usize, seed: u64, refine_passes: usize) -> Self {
        assert!(k > 0);
        let n = graph.num_vertices();
        let unassigned = AtomId(u32::MAX);
        let mut atom_of = vec![unassigned; n];
        if n == 0 {
            return VertexPartition { atom_of, num_atoms: k };
        }

        // Seed selection: k distinct pseudo-random vertices.
        let mut frontiers: Vec<Vec<VertexId>> = vec![Vec::new(); k];
        let mut sizes = vec![0usize; k];
        let mut assigned = 0usize;
        for (a, frontier) in frontiers.iter_mut().enumerate() {
            if assigned >= n {
                break;
            }
            // Probe for an unassigned seed.
            let mut v = (splitmix64(seed ^ a as u64) % n as u64) as usize;
            while atom_of[v] != unassigned {
                v = (v + 1) % n;
            }
            atom_of[v] = AtomId(a as u32);
            sizes[a] += 1;
            assigned += 1;
            frontier.extend(graph.adj(VertexId::from(v)).iter().map(|e| e.nbr));
        }

        // Grow the currently smallest atom (under the balance cap) with a
        // non-empty frontier. The cap keeps one region from enclosing its
        // neighbours and eating the rest of the graph; enclosed regions are
        // re-seeded at fresh unassigned vertices instead.
        let cap = ((n as f64 / k as f64) * 1.05).ceil() as usize + 1;
        while assigned < n {
            let mut best: Option<usize> = None;
            for a in 0..k {
                if sizes[a] < cap
                    && !frontiers[a].is_empty()
                    && best.is_none_or(|b| sizes[a] < sizes[b])
                {
                    best = Some(a);
                }
            }
            let Some(a) = best else {
                // No growable region: re-seed the smallest atom at the next
                // unassigned vertex (handles enclosure and disconnected
                // remainders alike).
                let a = (0..k).min_by_key(|&a| sizes[a]).expect("k > 0");
                let v = atom_of
                    .iter()
                    .position(|&x| x == unassigned)
                    .expect("assigned < n");
                atom_of[v] = AtomId(a as u32);
                sizes[a] += 1;
                assigned += 1;
                frontiers[a].extend(graph.adj(VertexId::from(v)).iter().map(|e| e.nbr));
                continue;
            };
            let Some(v) = frontiers[a].pop() else { continue };
            if atom_of[v.index()] != unassigned {
                continue;
            }
            atom_of[v.index()] = AtomId(a as u32);
            sizes[a] += 1;
            assigned += 1;
            frontiers[a].extend(graph.adj(v).iter().map(|e| e.nbr));
        }

        let mut part = VertexPartition { atom_of, num_atoms: k };
        part.refine(graph, refine_passes, 1.10);
        part
    }

    /// Greedy boundary refinement: for each vertex, move it to the
    /// neighbouring atom that removes the most cut edges, provided the
    /// target stays under `balance_slack × (n/k)` vertices and the source
    /// does not empty out. `passes` full sweeps are applied.
    pub fn refine<V, E>(&mut self, graph: &DataGraph<V, E>, passes: usize, balance_slack: f64) {
        let n = graph.num_vertices();
        if n == 0 || self.num_atoms <= 1 {
            return;
        }
        let cap = ((n as f64 / self.num_atoms as f64) * balance_slack).ceil() as usize;
        let mut sizes = self.atom_sizes();
        // Scratch: per-pass counts of adjacent atoms, keyed by atom id.
        let mut counts: Vec<u32> = vec![0; self.num_atoms];
        let mut touched: Vec<usize> = Vec::new();
        for _ in 0..passes {
            let mut moved = 0usize;
            for vi in 0..n {
                let v = VertexId::from(vi);
                let cur = self.atom_of[vi];
                if sizes[cur.index()] <= 1 {
                    continue;
                }
                touched.clear();
                for e in graph.adj(v) {
                    let a = self.atom_of[e.nbr.index()].index();
                    if counts[a] == 0 {
                        touched.push(a);
                    }
                    counts[a] += 1;
                }
                let here = counts[cur.index()];
                let mut best_atom = cur.index();
                let mut best_count = here;
                for &a in &touched {
                    if a != cur.index() && counts[a] > best_count && sizes[a] < cap {
                        best_atom = a;
                        best_count = counts[a];
                    }
                }
                for &a in &touched {
                    counts[a] = 0;
                }
                if best_atom != cur.index() {
                    self.atom_of[vi] = AtomId(best_atom as u32);
                    sizes[cur.index()] -= 1;
                    sizes[best_atom] += 1;
                    moved += 1;
                }
            }
            if moved == 0 {
                break;
            }
        }
    }

    /// Atom of a vertex.
    #[inline]
    pub fn atom_of(&self, v: VertexId) -> AtomId {
        self.atom_of[v.index()]
    }

    /// Number of atoms (`k`).
    pub fn num_atoms(&self) -> usize {
        self.num_atoms
    }

    /// Number of partitioned vertices.
    pub fn len(&self) -> usize {
        self.atom_of.len()
    }

    /// True when no vertices are partitioned.
    pub fn is_empty(&self) -> bool {
        self.atom_of.is_empty()
    }

    /// Vertices per atom.
    pub fn atom_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_atoms];
        for a in &self.atom_of {
            sizes[a.index()] += 1;
        }
        sizes
    }

    /// Number of edges whose endpoints land in different atoms.
    pub fn cut_edges<V, E>(&self, graph: &DataGraph<V, E>) -> usize {
        graph
            .edges()
            .filter(|&e| {
                let (s, d) = graph.edge_endpoints(e);
                self.atom_of(s) != self.atom_of(d)
            })
            .count()
    }

    /// Balance factor: max atom size / mean atom size (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        let sizes = self.atom_sizes();
        let max = sizes.iter().copied().max().unwrap_or(0);
        let mean = self.atom_of.len() as f64 / self.num_atoms as f64;
        if mean == 0.0 {
            return 1.0;
        }
        max as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_graph::GraphBuilder;

    /// 2D grid graph, useful because it has obvious locality.
    fn grid(w: usize, h: usize) -> DataGraph<(), ()> {
        let mut b = GraphBuilder::new();
        let ids: Vec<_> = (0..w * h).map(|_| b.add_vertex(())).collect();
        for y in 0..h {
            for x in 0..w {
                let v = ids[y * w + x];
                if x + 1 < w {
                    b.add_edge(v, ids[y * w + x + 1], ()).unwrap();
                }
                if y + 1 < h {
                    b.add_edge(v, ids[(y + 1) * w + x], ()).unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn random_hash_assigns_all_within_range() {
        let p = VertexPartition::random_hash(1000, 16, 7);
        assert_eq!(p.len(), 1000);
        assert_eq!(p.num_atoms(), 16);
        let sizes = p.atom_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        assert!(sizes.iter().all(|&s| s > 20), "roughly uniform: {sizes:?}");
    }

    #[test]
    fn random_hash_is_deterministic() {
        let a = VertexPartition::random_hash(100, 4, 42);
        let b = VertexPartition::random_hash(100, 4, 42);
        assert_eq!(a, b);
        let c = VertexPartition::random_hash(100, 4, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn bfs_grow_covers_everything_balanced() {
        let g = grid(20, 20);
        let p = VertexPartition::bfs_grow(&g, 8, 1, 2);
        assert_eq!(p.atom_sizes().iter().sum::<usize>(), 400);
        assert!(p.imbalance() < 1.5, "imbalance {}", p.imbalance());
    }

    #[test]
    fn bfs_grow_beats_random_on_grid_cut() {
        let g = grid(30, 30);
        let random = VertexPartition::random_hash(g.num_vertices(), 9, 5);
        let grown = VertexPartition::bfs_grow(&g, 9, 5, 2);
        assert!(
            grown.cut_edges(&g) * 2 < random.cut_edges(&g),
            "bfs {} vs random {}",
            grown.cut_edges(&g),
            random.cut_edges(&g)
        );
    }

    #[test]
    fn refine_never_worsens_cut() {
        let g = grid(15, 15);
        let mut p = VertexPartition::random_hash(g.num_vertices(), 5, 3);
        let before = p.cut_edges(&g);
        p.refine(&g, 3, 1.2);
        let after = p.cut_edges(&g);
        assert!(after <= before, "{after} > {before}");
        assert_eq!(p.atom_sizes().iter().sum::<usize>(), 225);
    }

    #[test]
    fn disconnected_graph_fully_assigned() {
        // 3 isolated vertices + a 4-cycle, 4 atoms.
        let mut b = GraphBuilder::<(), ()>::new();
        for _ in 0..3 {
            b.add_vertex(());
        }
        let c: Vec<_> = (0..4).map(|_| b.add_vertex(())).collect();
        for i in 0..4 {
            b.add_edge(c[i], c[(i + 1) % 4], ()).unwrap();
        }
        let g = b.build();
        let p = VertexPartition::bfs_grow(&g, 4, 9, 1);
        assert_eq!(p.atom_sizes().iter().sum::<usize>(), 7);
    }

    #[test]
    fn from_assignment_validates() {
        let p = VertexPartition::from_assignment(vec![AtomId(0), AtomId(1)], 2);
        assert_eq!(p.atom_of(VertexId(1)), AtomId(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_assignment_rejects_out_of_range() {
        VertexPartition::from_assignment(vec![AtomId(5)], 2);
    }

    #[test]
    fn cut_edges_zero_for_single_atom() {
        let g = grid(5, 5);
        let p = VertexPartition::random_hash(25, 1, 0);
        assert_eq!(p.cut_edges(&g), 0);
        assert_eq!(p.imbalance(), 1.0);
    }
}
