//! In-memory atom representation.
//!
//! An [`Atom`] is one part of the two-phase over-partitioning (§4.1): a set
//! of *owned* vertices, every edge adjacent to them, and redundant *ghost*
//! records for boundary vertices owned by other atoms. Atoms serialise
//! to/from the journal format in [`crate::journal`].

use bytes::Bytes;
use graphlab_graph::{AtomId, EdgeId, VertexId};
use graphlab_net::codec::Codec;

use crate::journal::{JournalError, JournalReader, JournalRecord, JournalWriter};

/// An owned vertex record.
#[derive(Clone, Debug, PartialEq)]
pub struct OwnedVertex<V> {
    /// Global vertex id.
    pub gvid: VertexId,
    /// Atoms holding ghost copies of this vertex.
    pub mirrors: Vec<AtomId>,
    /// Initial data.
    pub data: V,
}

/// A ghost (boundary) vertex record.
#[derive(Clone, Debug, PartialEq)]
pub struct GhostVertex<V> {
    /// Global vertex id.
    pub gvid: VertexId,
    /// Atom owning the vertex.
    pub owner_atom: AtomId,
    /// Redundant copy of the initial data (avoids a remote fetch at load).
    pub data: V,
}

/// An edge record. The *owner* of an edge is the atom owning its target
/// vertex; atoms also carry non-owned ("ghost") copies of edges adjacent
/// to their owned vertices so every local scope is complete.
#[derive(Clone, Debug, PartialEq)]
pub struct AtomEdge<E> {
    /// Global edge id.
    pub geid: EdgeId,
    /// Source endpoint (global id).
    pub src: VertexId,
    /// Target endpoint (global id).
    pub dst: VertexId,
    /// Whether this atom owns the edge.
    pub owned: bool,
    /// Initial data.
    pub data: E,
}

/// One atom: the unit of graph placement.
#[derive(Clone, Debug, PartialEq)]
pub struct Atom<V, E> {
    /// This atom's id.
    pub id: AtomId,
    /// Vertices owned by this atom.
    pub owned_vertices: Vec<OwnedVertex<V>>,
    /// Boundary vertices owned elsewhere.
    pub ghost_vertices: Vec<GhostVertex<V>>,
    /// All edges adjacent to owned vertices (owned and ghost copies).
    pub edges: Vec<AtomEdge<E>>,
}

impl<V: Codec, E: Codec> Atom<V, E> {
    /// Creates an empty atom.
    pub fn new(id: AtomId) -> Self {
        Atom { id, owned_vertices: Vec::new(), ghost_vertices: Vec::new(), edges: Vec::new() }
    }

    /// Serialises the atom as a journal.
    pub fn encode_journal(&self) -> Bytes {
        let mut w = JournalWriter::new(self.id);
        for v in &self.owned_vertices {
            w.add_vertex(v.gvid, &v.mirrors, &v.data);
        }
        for g in &self.ghost_vertices {
            w.add_ghost(g.gvid, g.owner_atom, &g.data);
        }
        for e in &self.edges {
            w.add_edge(e.geid, e.src, e.dst, e.owned, &e.data);
        }
        w.finish()
    }

    /// Plays back a journal into an atom.
    pub fn decode_journal(bytes: Bytes) -> Result<Self, JournalError> {
        let mut r = JournalReader::<V, E>::open(bytes)?;
        let mut atom = Atom::new(r.atom());
        while let Some(rec) = r.next_record()? {
            match rec {
                JournalRecord::Vertex { gvid, mirrors, data } => {
                    atom.owned_vertices.push(OwnedVertex { gvid, mirrors, data });
                }
                JournalRecord::Ghost { gvid, owner_atom, data } => {
                    atom.ghost_vertices.push(GhostVertex { gvid, owner_atom, data });
                }
                JournalRecord::Edge { geid, src, dst, owned, data } => {
                    atom.edges.push(AtomEdge { geid, src, dst, owned, data });
                }
            }
        }
        Ok(atom)
    }

    /// Number of owned vertices.
    pub fn num_owned(&self) -> usize {
        self.owned_vertices.len()
    }

    /// Number of owned edges.
    pub fn num_owned_edges(&self) -> usize {
        self.edges.iter().filter(|e| e.owned).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Atom<f64, u32> {
        Atom {
            id: AtomId(3),
            owned_vertices: vec![
                OwnedVertex { gvid: VertexId(0), mirrors: vec![AtomId(1)], data: 0.5 },
                OwnedVertex { gvid: VertexId(2), mirrors: vec![], data: 1.5 },
            ],
            ghost_vertices: vec![GhostVertex { gvid: VertexId(9), owner_atom: AtomId(1), data: 9.0 }],
            edges: vec![
                AtomEdge { geid: EdgeId(0), src: VertexId(9), dst: VertexId(0), owned: true, data: 7 },
                AtomEdge { geid: EdgeId(1), src: VertexId(0), dst: VertexId(9), owned: false, data: 8 },
            ],
        }
    }

    #[test]
    fn journal_roundtrip() {
        let atom = sample();
        let bytes = atom.encode_journal();
        let back = Atom::<f64, u32>::decode_journal(bytes).unwrap();
        assert_eq!(back, atom);
    }

    #[test]
    fn counts() {
        let atom = sample();
        assert_eq!(atom.num_owned(), 2);
        assert_eq!(atom.num_owned_edges(), 1);
    }

    #[test]
    fn empty_atom_roundtrip() {
        let atom = Atom::<f64, u32>::new(AtomId(0));
        let back = Atom::<f64, u32>::decode_journal(atom.encode_journal()).unwrap();
        assert_eq!(back, atom);
    }
}
