//! Second phase of the two-phase partitioning: a *fast balanced partition
//! of the meta-graph over the number of physical machines* (§4.1).
//!
//! The same `k` atoms can therefore be re-balanced onto any cluster size
//! without repartitioning the data graph. Three strategies
//! ([`PlacementStrategy`]):
//!
//! - **Affinity** (default): LPT (longest-processing-time-first) bin
//!   packing by owned-vertex count with a connectivity affinity bonus —
//!   among machines within the balance envelope, prefer the one already
//!   holding the most meta-graph neighbours of the atom.
//! - **ReplicationAware**: greedy region growing over the meta-graph.
//!   Each machine's share is grown one atom at a time, always absorbing
//!   the unplaced atom with the largest cross-edge weight into the
//!   region so far, up to an even load target. Connected neighborhoods
//!   land on one machine, so a vertex's scope — and therefore its lock
//!   chain — spans fewer machines (ROADMAP item 4a).
//! - **RoundRobin**: atom `a` → machine `a mod m`; the degenerate
//!   scatter baseline the ablations compare against.
//!
//! All strategies are deterministic pure functions of the index — no RNG,
//! no hash-order iteration — per the graphlab-lint determinism contract
//! (placement runs inside adoption plans, which must replay identically
//! on every survivor).

use bytes::{Bytes, BytesMut};
use graphlab_graph::{AtomId, MachineId};
use graphlab_net::codec::Codec;

use crate::index::AtomIndex;

/// How atoms are packed onto machines (see the [module docs](self)).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Atom `a` on machine `a mod m` — ignores the meta-graph entirely.
    RoundRobin,
    /// LPT by owned-vertex count with an affinity tie-break (the
    /// default; what [`Placement::compute`] runs).
    #[default]
    Affinity,
    /// Region growing by cross-edge weight: co-locates hot
    /// neighborhoods so lock chains span fewer machines.
    ReplicationAware,
}

/// Assignment of atoms to machines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    machine_of: Vec<MachineId>,
    num_machines: usize,
}

impl Placement {
    /// Computes a placement of `index`'s atoms onto `num_machines`
    /// machines with the given strategy.
    pub fn with_strategy(
        index: &AtomIndex,
        num_machines: usize,
        strategy: PlacementStrategy,
    ) -> Placement {
        match strategy {
            PlacementStrategy::RoundRobin => Placement::round_robin(index.num_atoms(), num_machines),
            PlacementStrategy::Affinity => Placement::compute(index, num_machines),
            PlacementStrategy::ReplicationAware => Placement::replication_aware(index, num_machines),
        }
    }

    /// Computes a placement of `index`'s atoms onto `num_machines`
    /// machines ([`PlacementStrategy::Affinity`]).
    pub fn compute(index: &AtomIndex, num_machines: usize) -> Placement {
        assert!(num_machines > 0);
        let k = index.num_atoms();
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by_key(|&a| std::cmp::Reverse(index.entries[a].owned_vertices));

        let total: u64 = index.entries.iter().map(|e| e.owned_vertices).sum();
        // Allow 20% headroom over the perfectly balanced load before
        // affinity is overruled.
        let cap = (total as f64 / num_machines as f64 * 1.2).ceil() as u64 + 1;

        let mut machine_of = vec![MachineId(0); k];
        let mut placed = vec![false; k];
        let mut load = vec![0u64; num_machines];

        for &a in &order {
            let entry = &index.entries[a];
            // Affinity: count already-placed neighbour atoms per machine.
            let mut affinity = vec![0u64; num_machines];
            for &(nbr, w) in &entry.neighbors {
                if placed[nbr.index()] {
                    affinity[machine_of[nbr.index()].index()] += w;
                }
            }
            // Candidate: max affinity among machines under cap; fall back
            // to least-loaded.
            let mut best: Option<usize> = None;
            for m in 0..num_machines {
                if load[m] + entry.owned_vertices <= cap {
                    match best {
                        None => best = Some(m),
                        Some(b) => {
                            let better = (affinity[m], std::cmp::Reverse(load[m]))
                                > (affinity[b], std::cmp::Reverse(load[b]));
                            if better {
                                best = Some(m);
                            }
                        }
                    }
                }
            }
            let m = best.unwrap_or_else(|| {
                (0..num_machines).min_by_key(|&m| load[m]).expect("num_machines > 0")
            });
            machine_of[a] = MachineId::from(m);
            placed[a] = true;
            load[m] += entry.owned_vertices;
        }
        Placement { machine_of, num_machines }
    }

    /// Replication-aware placement ([`PlacementStrategy::ReplicationAware`]).
    ///
    /// Machines are filled in order. Each one grows a connected region:
    /// starting from the heaviest unplaced atom, it repeatedly absorbs
    /// the unplaced atom with the largest total cross-edge weight into
    /// the region so far (ties broken by owned-vertex count, then by
    /// atom id — a full deterministic order), stopping once the region
    /// reaches the even-load target `⌈total/m⌉`. The last machine takes
    /// whatever remains, so every atom is placed exactly once.
    ///
    /// Greedy growth strands fragments on late machines (the first
    /// regions consume the densest neighborhoods), so a bounded number
    /// of deterministic refinement passes follow: each atom moves to
    /// the machine holding the largest share of its cross-edge weight
    /// whenever that strictly improves co-location and stays under a
    /// 10%-headroom balance cap.
    fn replication_aware(index: &AtomIndex, num_machines: usize) -> Placement {
        assert!(num_machines > 0);
        let k = index.num_atoms();
        let total: u64 = index.entries.iter().map(|e| e.owned_vertices).sum();
        let target = total.div_ceil(num_machines as u64);

        let mut machine_of = vec![MachineId(0); k];
        let mut placed = vec![false; k];
        let mut remaining = k;
        for m in 0..num_machines {
            if remaining == 0 {
                break;
            }
            let last = m + 1 == num_machines;
            let mut load = 0u64;
            // gain[a] = cross-edge weight from unplaced atom a into this
            // machine's region so far.
            let mut gain = vec![0u64; k];
            while remaining > 0 && (load < target || last) {
                let mut best: Option<usize> = None;
                for a in 0..k {
                    if placed[a] {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => {
                            (gain[a], index.entries[a].owned_vertices)
                                > (gain[b], index.entries[b].owned_vertices)
                        }
                    };
                    if better {
                        best = Some(a);
                    }
                }
                let a = best.expect("remaining > 0");
                // Keep regions within the target: a non-empty region
                // stops before overshooting (the last machine sweeps up).
                if load > 0 && !last && load + index.entries[a].owned_vertices > target {
                    break;
                }
                machine_of[a] = MachineId::from(m);
                placed[a] = true;
                remaining -= 1;
                load += index.entries[a].owned_vertices;
                for &(nbr, w) in &index.entries[a].neighbors {
                    if !placed[nbr.index()] {
                        gain[nbr.index()] += w;
                    }
                }
            }
        }

        // Refinement: best-fit moves, fixed atom order, at most 3 passes
        // (every step strictly increases co-located weight, so this
        // terminates regardless; 3 passes capture nearly all of it).
        let cap = (total as f64 / num_machines as f64 * 1.1).ceil() as u64 + 1;
        let mut load = vec![0u64; num_machines];
        for a in 0..k {
            load[machine_of[a].index()] += index.entries[a].owned_vertices;
        }
        for _ in 0..3 {
            let mut moved = false;
            for a in 0..k {
                let cur = machine_of[a].index();
                let mut weight = vec![0u64; num_machines];
                for &(nbr, w) in &index.entries[a].neighbors {
                    weight[machine_of[nbr.index()].index()] += w;
                }
                let mut best = cur;
                for (m, &w) in weight.iter().enumerate() {
                    if m != cur
                        && w > weight[best]
                        && load[m] + index.entries[a].owned_vertices <= cap
                    {
                        best = m;
                    }
                }
                if best != cur {
                    load[cur] -= index.entries[a].owned_vertices;
                    load[best] += index.entries[a].owned_vertices;
                    machine_of[a] = MachineId::from(best);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        Placement { machine_of, num_machines }
    }

    /// Round-robin placement (used by tests and as a degenerate baseline).
    pub fn round_robin(num_atoms: usize, num_machines: usize) -> Placement {
        assert!(num_machines > 0);
        Placement {
            machine_of: (0..num_atoms).map(|a| MachineId::from(a % num_machines)).collect(),
            num_machines,
        }
    }

    /// Machine that loads `atom`.
    #[inline]
    pub fn machine_of(&self, atom: AtomId) -> MachineId {
        self.machine_of[atom.index()]
    }

    /// Number of machines.
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Atoms assigned to `machine`.
    pub fn atoms_of(&self, machine: MachineId) -> Vec<AtomId> {
        self.machine_of
            .iter()
            .enumerate()
            .filter(|(_, &m)| m == machine)
            .map(|(a, _)| AtomId(a as u32))
            .collect()
    }

    /// Restart-free elasticity (§3): re-balances the atoms of `dead`
    /// machines over the survivors. Survivors keep every atom they
    /// already hold (their loaded state stays valid); only the dead
    /// machines' atoms move, LPT-packed by owned-vertex count onto the
    /// currently least-loaded survivor — the k·n over-partitioning is
    /// what makes the adopted shares even. Panics if no machine survives.
    pub fn adopt(&self, index: &AtomIndex, dead: &[bool]) -> Placement {
        assert_eq!(dead.len(), self.num_machines);
        assert!(dead.iter().any(|&d| !d), "adoption needs at least one survivor");
        let mut machine_of = self.machine_of.clone();
        let mut load = vec![0u64; self.num_machines];
        for (a, &m) in machine_of.iter().enumerate() {
            if !dead[m.index()] {
                load[m.index()] += index.entries[a].owned_vertices;
            }
        }
        // Orphaned atoms, heaviest first (LPT).
        let mut orphans: Vec<usize> =
            (0..machine_of.len()).filter(|&a| dead[machine_of[a].index()]).collect();
        orphans.sort_by_key(|&a| (std::cmp::Reverse(index.entries[a].owned_vertices), a));
        for a in orphans {
            let m = (0..self.num_machines)
                .filter(|&m| !dead[m])
                .min_by_key(|&m| (load[m], m))
                .expect("at least one survivor");
            machine_of[a] = MachineId::from(m);
            load[m] += index.entries[a].owned_vertices;
        }
        Placement { machine_of, num_machines: self.num_machines }
    }

    /// Owned-vertex load per machine given the index.
    pub fn loads(&self, index: &AtomIndex) -> Vec<u64> {
        let mut loads = vec![0u64; self.num_machines];
        for (a, &m) in self.machine_of.iter().enumerate() {
            loads[m.index()] += index.entries[a].owned_vertices;
        }
        loads
    }
}

impl Codec for Placement {
    fn encode(&self, buf: &mut BytesMut) {
        let raw: Vec<u16> = self.machine_of.iter().map(|m| m.0).collect();
        raw.encode(buf);
        (self.num_machines as u32).encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let raw = Vec::<u16>::decode(buf)?;
        let num_machines = u32::decode(buf)? as usize;
        Some(Placement { machine_of: raw.into_iter().map(MachineId).collect(), num_machines })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::AtomIndexEntry;

    fn index(sizes: &[u64], edges: &[(usize, usize, u64)]) -> AtomIndex {
        let mut entries: Vec<AtomIndexEntry> = sizes
            .iter()
            .enumerate()
            .map(|(a, &s)| AtomIndexEntry {
                atom: AtomId(a as u32),
                owned_vertices: s,
                owned_edges: 0,
                file: format!("t/atom_{a:06}"),
                neighbors: vec![],
            })
            .collect();
        for &(a, b, w) in edges {
            entries[a].neighbors.push((AtomId(b as u32), w));
            entries[b].neighbors.push((AtomId(a as u32), w));
        }
        AtomIndex { entries, total_vertices: sizes.iter().sum(), total_edges: 0 }
    }

    #[test]
    fn balances_equal_atoms() {
        let idx = index(&[10; 8], &[]);
        let p = Placement::compute(&idx, 4);
        let loads = p.loads(&idx);
        assert_eq!(loads, vec![20, 20, 20, 20]);
    }

    #[test]
    fn affinity_groups_connected_atoms() {
        // Two cliques of atoms {0,1} and {2,3} heavily connected inside.
        let idx = index(&[10, 10, 10, 10], &[(0, 1, 100), (2, 3, 100), (1, 2, 1)]);
        let p = Placement::compute(&idx, 2);
        assert_eq!(p.machine_of(AtomId(0)), p.machine_of(AtomId(1)));
        assert_eq!(p.machine_of(AtomId(2)), p.machine_of(AtomId(3)));
        assert_ne!(p.machine_of(AtomId(0)), p.machine_of(AtomId(2)));
    }

    #[test]
    fn handles_skewed_sizes() {
        let idx = index(&[100, 1, 1, 1, 1, 1], &[]);
        let p = Placement::compute(&idx, 2);
        let loads = p.loads(&idx);
        // The big atom alone on one machine, the small ones elsewhere.
        assert_eq!(loads.iter().max(), Some(&100));
        assert_eq!(loads.iter().sum::<u64>(), 105);
    }

    #[test]
    fn round_robin_covers_machines() {
        let p = Placement::round_robin(10, 3);
        assert_eq!(p.atoms_of(MachineId(0)).len(), 4);
        assert_eq!(p.atoms_of(MachineId(1)).len(), 3);
        assert_eq!(p.atoms_of(MachineId(2)).len(), 3);
    }

    #[test]
    fn adopt_moves_only_dead_atoms_and_balances() {
        let idx = index(&[10; 8], &[]);
        let p = Placement::compute(&idx, 4);
        let q = p.adopt(&idx, &[false, false, true, false]);
        for a in 0..8 {
            let a = AtomId(a);
            if p.machine_of(a) != MachineId(2) {
                assert_eq!(q.machine_of(a), p.machine_of(a), "survivor atoms stay put");
            } else {
                assert_ne!(q.machine_of(a), MachineId(2), "orphans leave the dead machine");
            }
        }
        assert!(q.atoms_of(MachineId(2)).is_empty());
        let loads = q.loads(&idx);
        assert_eq!(loads[2], 0);
        // 80 vertices over 3 survivors: within one atom of even.
        for m in [0, 1, 3] {
            assert!((20..=30).contains(&loads[m]), "loads {loads:?}");
        }
    }

    #[test]
    fn adopt_cascading_deaths_compose() {
        let idx = index(&[7, 5, 3, 2, 2, 1], &[]);
        let p = Placement::compute(&idx, 3);
        let q = p.adopt(&idx, &[false, true, false]);
        let r = q.adopt(&idx, &[false, true, true]);
        assert!(r.atoms_of(MachineId(1)).is_empty());
        assert!(r.atoms_of(MachineId(2)).is_empty());
        assert_eq!(r.atoms_of(MachineId(0)).len(), 6, "sole survivor holds everything");
    }

    #[test]
    #[should_panic(expected = "survivor")]
    fn adopt_requires_a_survivor() {
        let idx = index(&[1, 1], &[]);
        let p = Placement::compute(&idx, 2);
        let _ = p.adopt(&idx, &[true, true]);
    }

    #[test]
    fn codec_roundtrip() {
        let p = Placement::round_robin(5, 2);
        let bytes = graphlab_net::codec::encode_to_bytes(&p);
        assert_eq!(graphlab_net::codec::decode_from::<Placement>(bytes), Some(p));
    }

    #[test]
    fn more_machines_than_atoms() {
        let idx = index(&[5, 5], &[]);
        let p = Placement::compute(&idx, 8);
        let loads = p.loads(&idx);
        assert_eq!(loads.iter().filter(|&&l| l > 0).count(), 2);
    }

    #[test]
    fn replication_aware_groups_connected_regions() {
        // Two chains of atoms {0-1-2-3} and {4-5-6-7} connected inside,
        // one weak bridge between them: region growing must keep each
        // chain whole.
        let idx = index(
            &[10; 8],
            &[(0, 1, 50), (1, 2, 50), (2, 3, 50), (4, 5, 50), (5, 6, 50), (6, 7, 50), (3, 4, 1)],
        );
        let p = Placement::with_strategy(&idx, 2, PlacementStrategy::ReplicationAware);
        for pair in [(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)] {
            assert_eq!(
                p.machine_of(AtomId(pair.0)),
                p.machine_of(AtomId(pair.1)),
                "chain edge {pair:?} cut"
            );
        }
        assert_ne!(p.machine_of(AtomId(0)), p.machine_of(AtomId(7)));
        assert_eq!(p.loads(&idx), vec![40, 40]);
    }

    #[test]
    fn replication_aware_covers_every_atom_and_balances() {
        let idx = index(&[9, 7, 5, 3, 3, 2, 1, 1], &[(0, 2, 4), (1, 3, 4), (5, 6, 2)]);
        let p = Placement::with_strategy(&idx, 3, PlacementStrategy::ReplicationAware);
        let loads = p.loads(&idx);
        assert_eq!(loads.iter().sum::<u64>(), 31, "every atom placed exactly once");
        assert!(p.atoms_of(MachineId(0)).len() + p.atoms_of(MachineId(1)).len()
            + p.atoms_of(MachineId(2)).len() == 8);
        for m in 0..3 {
            assert!((0..3).contains(&m) && loads[m] > 0, "no empty machine: {loads:?}");
        }
    }

    #[test]
    fn replication_aware_more_machines_than_atoms() {
        let idx = index(&[5, 5], &[(0, 1, 1)]);
        let p = Placement::with_strategy(&idx, 8, PlacementStrategy::ReplicationAware);
        let loads = p.loads(&idx);
        assert_eq!(loads.iter().sum::<u64>(), 10);
        // Target ⌈10/8⌉ = 2: each atom already exceeds it alone, so
        // balance wins over the weak bridge and the atoms spread out.
        assert_eq!(loads.iter().filter(|&&l| l > 0).count(), 2, "one atom per machine");
    }

    #[test]
    fn strategy_dispatch_matches_direct_calls() {
        let idx = index(&[10; 6], &[(0, 1, 5), (2, 3, 5)]);
        assert_eq!(
            Placement::with_strategy(&idx, 3, PlacementStrategy::Affinity),
            Placement::compute(&idx, 3)
        );
        assert_eq!(
            Placement::with_strategy(&idx, 3, PlacementStrategy::RoundRobin),
            Placement::round_robin(6, 3)
        );
    }
}
