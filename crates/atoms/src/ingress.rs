//! Atom construction and distributed loading (§4.1, Fig. 5(a)).
//!
//! **Construction** ([`build_atoms`]) cuts a [`DataGraph`] along a
//! [`VertexPartition`] into [`Atom`]s: each atom receives its owned
//! vertices (with mirror-atom lists), *every* edge adjacent to an owned
//! vertex (owned copies where the atom owns the edge's target, ghost
//! copies otherwise), and redundant ghost-vertex records for boundary
//! neighbours. The connectivity of the atoms is summarised in an
//! [`AtomIndex`].
//!
//! **Loading** ([`load_machine_part`]) is what each machine does at launch:
//! fetch the journals of its placed atoms from the DFS, play them back,
//! deduplicate records that arrive through multiple local atoms, and remap
//! ghost-ownership through the [`Placement`] (a record that is a ghost at
//! atom granularity may be owned at machine granularity when sibling atoms
//! land on the same machine).

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use graphlab_graph::{AtomId, DataGraph, EdgeId, MachineId, VertexId};
use graphlab_net::codec::Codec;

use crate::atom::{Atom, AtomEdge, GhostVertex, OwnedVertex};
use crate::dfs::{DfsError, SimDfs};
use crate::index::{AtomIndex, AtomIndexEntry};
use crate::journal::JournalError;
use crate::partition::VertexPartition;
use crate::placement::Placement;

/// One vertex of a machine's local graph part.
#[derive(Clone, Debug, PartialEq)]
pub struct InitVertex<V> {
    /// Global vertex id.
    pub gvid: VertexId,
    /// Atom owning the vertex — the unit of checkpointing and adoption
    /// (a vertex's checkpoint rows live in its atom's file, and adoption
    /// reassigns whole atoms). Set for ghosts too (their owner atom).
    pub atom: AtomId,
    /// Machine owning the vertex (may be this machine).
    pub owner: MachineId,
    /// For *owned* vertices: other machines holding a ghost of it. Empty
    /// for ghosts.
    pub mirrors: Vec<MachineId>,
    /// Initial data.
    pub data: V,
}

/// One edge of a machine's local graph part.
#[derive(Clone, Debug, PartialEq)]
pub struct InitEdge<E> {
    /// Global edge id.
    pub geid: EdgeId,
    /// Source endpoint.
    pub src: VertexId,
    /// Target endpoint.
    pub dst: VertexId,
    /// Machine owning the edge (the machine owning the target's atom).
    pub owner: MachineId,
    /// Initial data.
    pub data: E,
}

/// Everything a machine needs to instantiate its local portion of the
/// distributed data graph.
#[derive(Clone, Debug)]
pub struct LocalGraphInit<V, E> {
    /// This machine.
    pub machine: MachineId,
    /// Cluster size.
    pub num_machines: usize,
    /// Local vertices: owned first is *not* guaranteed; check `owner`.
    pub vertices: Vec<InitVertex<V>>,
    /// Local edges (owned and ghost copies), deduplicated.
    pub edges: Vec<InitEdge<E>>,
    /// |V| of the full graph.
    pub total_vertices: u64,
    /// |E| of the full graph.
    pub total_edges: u64,
}

/// Cuts `graph` into atoms along `partition` and builds the atom index.
///
/// Edge ownership rule: an edge belongs to the atom owning its **target**
/// vertex; the source's atom (when different) receives a ghost copy so
/// scopes on the source side are locally complete.
pub fn build_atoms<V, E>(
    graph: &DataGraph<V, E>,
    partition: &VertexPartition,
    file_prefix: &str,
) -> (Vec<Atom<V, E>>, AtomIndex)
where
    V: Codec + Clone,
    E: Codec + Clone,
{
    assert_eq!(partition.len(), graph.num_vertices(), "partition covers the graph");
    let k = partition.num_atoms();
    let mut atoms: Vec<Atom<V, E>> = (0..k).map(|a| Atom::new(AtomId(a as u32))).collect();

    // Owned vertices + mirror atom lists.
    let mut mirror_scratch: Vec<AtomId> = Vec::new();
    for v in graph.vertices() {
        let a = partition.atom_of(v);
        mirror_scratch.clear();
        for e in graph.adj(v) {
            let na = partition.atom_of(e.nbr);
            if na != a {
                mirror_scratch.push(na);
            }
        }
        mirror_scratch.sort_unstable();
        mirror_scratch.dedup();
        atoms[a.index()].owned_vertices.push(OwnedVertex {
            gvid: v,
            mirrors: mirror_scratch.clone(),
            data: graph.vertex_data(v).clone(),
        });
    }

    // Edges + ghost vertices. `ghost_seen[a]` dedups ghost records per atom.
    let mut ghost_seen: Vec<HashMap<VertexId, ()>> = vec![HashMap::new(); k];
    let mut cross: HashMap<(AtomId, AtomId), u64> = HashMap::new();
    for e in graph.edges() {
        let (s, d) = graph.edge_endpoints(e);
        let (sa, da) = (partition.atom_of(s), partition.atom_of(d));
        let data = graph.edge_data(e).clone();
        // Owner copy at the target's atom.
        atoms[da.index()].edges.push(AtomEdge { geid: e, src: s, dst: d, owned: true, data: data.clone() });
        if sa != da {
            // Ghost copy at the source's atom.
            atoms[sa.index()].edges.push(AtomEdge { geid: e, src: s, dst: d, owned: false, data });
            // Ghost vertex records for the foreign endpoint on both sides.
            if ghost_seen[da.index()].insert(s, ()).is_none() {
                atoms[da.index()].ghost_vertices.push(GhostVertex {
                    gvid: s,
                    owner_atom: sa,
                    data: graph.vertex_data(s).clone(),
                });
            }
            if ghost_seen[sa.index()].insert(d, ()).is_none() {
                atoms[sa.index()].ghost_vertices.push(GhostVertex {
                    gvid: d,
                    owner_atom: da,
                    data: graph.vertex_data(d).clone(),
                });
            }
            let key = if sa < da { (sa, da) } else { (da, sa) };
            *cross.entry(key).or_insert(0) += 1;
        }
    }

    // Meta-graph index.
    let mut neighbors: Vec<Vec<(AtomId, u64)>> = vec![Vec::new(); k];
    for (&(a, b), &w) in &cross {
        neighbors[a.index()].push((b, w));
        neighbors[b.index()].push((a, w));
    }
    let entries = atoms
        .iter()
        .enumerate()
        .map(|(i, atom)| {
            let mut nbrs = std::mem::take(&mut neighbors[i]);
            nbrs.sort_unstable();
            AtomIndexEntry {
                atom: atom.id,
                owned_vertices: atom.owned_vertices.len() as u64,
                owned_edges: atom.edges.iter().filter(|e| e.owned).count() as u64,
                file: AtomIndex::atom_file_name(file_prefix, atom.id),
                neighbors: nbrs,
            }
        })
        .collect();

    let index = AtomIndex {
        entries,
        total_vertices: graph.num_vertices() as u64,
        total_edges: graph.num_edges() as u64,
    };
    (atoms, index)
}

/// Writes atom journals plus the index to the DFS under `prefix`.
pub fn write_atoms<V, E>(dfs: &SimDfs, prefix: &str, atoms: &[Atom<V, E>], index: &AtomIndex)
where
    V: Codec,
    E: Codec,
{
    for atom in atoms {
        dfs.write(&AtomIndex::atom_file_name(prefix, atom.id), atom.encode_journal());
    }
    dfs.write(
        &AtomIndex::index_file_name(prefix),
        graphlab_net::codec::encode_to_bytes(index),
    );
}

/// Reads the atom index back from the DFS.
pub fn read_index(dfs: &SimDfs, prefix: &str) -> Result<AtomIndex, IngressError> {
    let bytes = dfs.read(&AtomIndex::index_file_name(prefix))?;
    graphlab_net::codec::decode_from(bytes).ok_or(IngressError::BadIndex)
}

/// Errors raised while loading a machine's part.
#[derive(Debug)]
pub enum IngressError {
    /// DFS-level failure.
    Dfs(DfsError),
    /// Journal decode failure.
    Journal(JournalError),
    /// The atom index failed to decode.
    BadIndex,
}

impl From<DfsError> for IngressError {
    fn from(e: DfsError) -> Self {
        IngressError::Dfs(e)
    }
}

impl From<JournalError> for IngressError {
    fn from(e: JournalError) -> Self {
        IngressError::Journal(e)
    }
}

impl std::fmt::Display for IngressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngressError::Dfs(e) => write!(f, "ingress dfs error: {e}"),
            IngressError::Journal(e) => write!(f, "ingress journal error: {e}"),
            IngressError::BadIndex => write!(f, "atom index failed to decode"),
        }
    }
}

impl std::error::Error for IngressError {}

/// Loads and merges the atoms placed on `machine`: journal playback,
/// deduplication, and atom→machine ownership remapping.
pub fn load_machine_part<V, E>(
    dfs: &SimDfs,
    index: &AtomIndex,
    placement: &Placement,
    machine: MachineId,
) -> Result<LocalGraphInit<V, E>, IngressError>
where
    V: Codec,
    E: Codec,
{
    let my_atoms = placement.atoms_of(machine);

    // First pass: decode journals, collect owned vertices and remember each
    // ghost's owner atom. Owned records win over ghost records (sibling
    // atoms on the same machine).
    let mut vertices: HashMap<VertexId, InitVertex<V>> = HashMap::new();
    let mut vertex_owner_atom: HashMap<VertexId, AtomId> = HashMap::new();
    let mut decoded: Vec<Atom<V, E>> = Vec::with_capacity(my_atoms.len());
    for &a in &my_atoms {
        let bytes = dfs.read(&index.entry(a).file)?;
        decoded.push(Atom::decode_journal(bytes)?);
    }

    for atom in &mut decoded {
        for ov in atom.owned_vertices.drain(..) {
            let mut mirrors: Vec<MachineId> = ov
                .mirrors
                .iter()
                .map(|&ma| placement.machine_of(ma))
                .filter(|&m| m != machine)
                .collect();
            mirrors.sort_unstable();
            mirrors.dedup();
            vertex_owner_atom.insert(ov.gvid, atom.id);
            vertices.insert(
                ov.gvid,
                InitVertex { gvid: ov.gvid, atom: atom.id, owner: machine, mirrors, data: ov.data },
            );
        }
    }
    for atom in &mut decoded {
        for gv in atom.ghost_vertices.drain(..) {
            vertex_owner_atom.entry(gv.gvid).or_insert(gv.owner_atom);
            if let Entry::Vacant(slot) = vertices.entry(gv.gvid) {
                let owner = placement.machine_of(gv.owner_atom);
                debug_assert_ne!(
                    owner, machine,
                    "ghost record for locally-owned vertex must have been shadowed"
                );
                slot.insert(InitVertex {
                    gvid: gv.gvid,
                    atom: gv.owner_atom,
                    owner,
                    mirrors: Vec::new(),
                    data: gv.data,
                });
            }
        }
    }

    // Second pass: edges. Owner machine = machine of the owner atom of the
    // target vertex (always resolvable: the target is locally present).
    let mut edges: HashMap<EdgeId, InitEdge<E>> = HashMap::new();
    for atom in &mut decoded {
        for ae in atom.edges.drain(..) {
            let owner_atom = *vertex_owner_atom
                .get(&ae.dst)
                .expect("edge target present in local vertex set");
            let owner = placement.machine_of(owner_atom);
            edges.entry(ae.geid).or_insert(InitEdge {
                geid: ae.geid,
                src: ae.src,
                dst: ae.dst,
                owner,
                data: ae.data,
            });
        }
    }

    let mut vertices: Vec<InitVertex<V>> = vertices.into_values().collect();
    vertices.sort_unstable_by_key(|v| v.gvid);
    let mut edges: Vec<InitEdge<E>> = edges.into_values().collect();
    edges.sort_unstable_by_key(|e| e.geid);

    Ok(LocalGraphInit {
        machine,
        num_machines: placement.num_machines(),
        vertices,
        edges,
        total_vertices: index.total_vertices,
        total_edges: index.total_edges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_graph::GraphBuilder;

    /// A ring of `n` weighted vertices.
    fn ring(n: usize) -> DataGraph<f64, u32> {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|i| b.add_vertex(i as f64)).collect();
        for i in 0..n {
            b.add_edge(vs[i], vs[(i + 1) % n], i as u32).unwrap();
        }
        b.build()
    }

    #[test]
    fn atoms_partition_ownership() {
        let g = ring(20);
        let p = VertexPartition::random_hash(20, 4, 1);
        let (atoms, index) = build_atoms(&g, &p, "t");

        let owned: usize = atoms.iter().map(|a| a.num_owned()).sum();
        assert_eq!(owned, 20);
        let owned_edges: usize = atoms.iter().map(|a| a.num_owned_edges()).sum();
        assert_eq!(owned_edges, 20, "every edge owned exactly once");
        assert_eq!(index.total_vertices, 20);
        assert_eq!(index.total_edges, 20);
    }

    #[test]
    fn index_neighbors_symmetric() {
        let g = ring(30);
        let p = VertexPartition::random_hash(30, 5, 2);
        let (_, index) = build_atoms(&g, &p, "t");
        for e in &index.entries {
            for &(nbr, w) in &e.neighbors {
                let back = index
                    .entry(nbr)
                    .neighbors
                    .iter()
                    .find(|&&(a, _)| a == e.atom)
                    .expect("symmetric meta edge");
                assert_eq!(back.1, w);
            }
        }
    }

    #[test]
    fn mirrors_are_neighbor_atoms() {
        let g = ring(12);
        let p = VertexPartition::random_hash(12, 3, 7);
        let (atoms, _) = build_atoms(&g, &p, "t");
        for atom in &atoms {
            for ov in &atom.owned_vertices {
                let expected: std::collections::BTreeSet<AtomId> = g
                    .adj(ov.gvid)
                    .iter()
                    .map(|e| p.atom_of(e.nbr))
                    .filter(|&a| a != atom.id)
                    .collect();
                let got: std::collections::BTreeSet<AtomId> = ov.mirrors.iter().copied().collect();
                assert_eq!(got, expected);
            }
        }
    }

    #[test]
    fn full_ingress_covers_graph() {
        let g = ring(24);
        let p = VertexPartition::random_hash(24, 6, 3);
        let dfs = SimDfs::new();
        let (atoms, index) = build_atoms(&g, &p, "ring");
        write_atoms(&dfs, "ring", &atoms, &index);
        let index2 = read_index(&dfs, "ring").unwrap();
        assert_eq!(index2, index);

        let placement = Placement::compute(&index, 3);
        let mut owned_seen = [false; 24];
        let mut edge_owner_count = vec![0usize; 24];
        for m in 0..3 {
            let part: LocalGraphInit<f64, u32> =
                load_machine_part(&dfs, &index, &placement, MachineId::from(m)).unwrap();
            assert_eq!(part.total_vertices, 24);
            for v in &part.vertices {
                if v.owner == part.machine {
                    assert!(!owned_seen[v.gvid.index()], "vertex owned once");
                    owned_seen[v.gvid.index()] = true;
                    assert_eq!(*g.vertex_data(v.gvid), v.data);
                    assert!(!v.mirrors.contains(&part.machine));
                } else {
                    assert!(v.mirrors.is_empty());
                }
            }
            for e in &part.edges {
                if e.owner == part.machine {
                    edge_owner_count[e.geid.index()] += 1;
                }
                assert_eq!(*g.edge_data(e.geid), e.data);
                assert_eq!(g.edge_endpoints(e.geid), (e.src, e.dst));
            }
        }
        assert!(owned_seen.iter().all(|&s| s), "every vertex owned somewhere");
        assert!(
            edge_owner_count.iter().all(|&c| c == 1),
            "every edge owned exactly once: {edge_owner_count:?}"
        );
    }

    #[test]
    fn local_scopes_are_complete() {
        // Every owned vertex must see its full global adjacency locally.
        let g = ring(18);
        let p = VertexPartition::bfs_grow(&g, 6, 11, 1);
        let dfs = SimDfs::new();
        let (atoms, index) = build_atoms(&g, &p, "x");
        write_atoms(&dfs, "x", &atoms, &index);
        let placement = Placement::compute(&index, 2);
        for m in 0..2 {
            let part: LocalGraphInit<f64, u32> =
                load_machine_part(&dfs, &index, &placement, MachineId::from(m)).unwrap();
            let local_vertices: std::collections::BTreeSet<_> =
                part.vertices.iter().map(|v| v.gvid).collect();
            let local_edges: std::collections::BTreeSet<_> =
                part.edges.iter().map(|e| e.geid).collect();
            for v in part.vertices.iter().filter(|v| v.owner == part.machine) {
                for adj in g.adj(v.gvid) {
                    assert!(local_edges.contains(&adj.edge), "edge {} present", adj.edge);
                    assert!(local_vertices.contains(&adj.nbr), "nbr {} present", adj.nbr);
                }
            }
        }
    }

    #[test]
    fn mirror_machines_match_ghosts() {
        let g = ring(16);
        let p = VertexPartition::random_hash(16, 8, 5);
        let dfs = SimDfs::new();
        let (atoms, index) = build_atoms(&g, &p, "x");
        write_atoms(&dfs, "x", &atoms, &index);
        let placement = Placement::compute(&index, 4);
        let parts: Vec<LocalGraphInit<f64, u32>> = (0..4)
            .map(|m| load_machine_part(&dfs, &index, &placement, MachineId::from(m)).unwrap())
            .collect();
        // ghosts[m] = vertices machine m holds but does not own
        let ghosts: Vec<std::collections::BTreeSet<VertexId>> = parts
            .iter()
            .map(|p| p.vertices.iter().filter(|v| v.owner != p.machine).map(|v| v.gvid).collect())
            .collect();
        for part in &parts {
            for v in part.vertices.iter().filter(|v| v.owner == part.machine) {
                let expected: std::collections::BTreeSet<MachineId> = (0..4)
                    .map(MachineId::from)
                    .filter(|&m| m != part.machine && ghosts[m.index()].contains(&v.gvid))
                    .collect();
                let got: std::collections::BTreeSet<MachineId> = v.mirrors.iter().copied().collect();
                assert_eq!(got, expected, "mirrors of {}", v.gvid);
            }
        }
    }

    #[test]
    fn single_machine_has_no_ghosts() {
        let g = ring(10);
        let p = VertexPartition::random_hash(10, 4, 2);
        let dfs = SimDfs::new();
        let (atoms, index) = build_atoms(&g, &p, "s");
        write_atoms(&dfs, "s", &atoms, &index);
        let placement = Placement::compute(&index, 1);
        let part: LocalGraphInit<f64, u32> =
            load_machine_part(&dfs, &index, &placement, MachineId(0)).unwrap();
        assert_eq!(part.vertices.len(), 10);
        assert!(part.vertices.iter().all(|v| v.owner == MachineId(0)));
        assert!(part.vertices.iter().all(|v| v.mirrors.is_empty()));
        assert_eq!(part.edges.len(), 10);
        assert!(part.edges.iter().all(|e| e.owner == MachineId(0)));
    }
}
