//! # graphlab-atoms
//!
//! The distributed data-graph representation of Distributed GraphLab
//! (§4.1): two-phase partitioning, atom journal files, the atom index
//! meta-graph, and distributed ingress.
//!
//! The pipeline is:
//!
//! 1. **Over-partition** the data graph into `k` parts ("atoms") with
//!    `k ≫ #machines`, using either random hashing or a locality-aware
//!    heuristic ([`partition`]).
//! 2. **Serialise** each atom as a binary journal of graph-generating
//!    commands (`AddVertex`, `AddEdge`, ghost records) and store it on a
//!    distributed file system ([`journal`], [`atom`], [`dfs`]).
//! 3. **Index**: the connectivity and sizes of the `k` atoms form a
//!    meta-graph stored in the atom index file ([`index`]).
//! 4. **Place**: at launch, a fast balanced partition of the meta-graph
//!    assigns atoms to physical machines ([`placement`]) — the same atom
//!    set load-balances onto any cluster size without repartitioning.
//! 5. **Load**: each machine plays back the journals of its atoms,
//!    instantiating owned data and ghosts ([`ingress`]).

pub mod atom;
pub mod dfs;
pub mod index;
pub mod ingress;
pub mod journal;
pub mod partition;
pub mod placement;

pub use atom::{Atom, AtomEdge, GhostVertex, OwnedVertex};
pub use dfs::{DfsError, DfsStats, SimDfs};
pub use index::{AtomIndex, AtomIndexEntry};
pub use ingress::{build_atoms, load_machine_part, write_atoms, InitEdge, InitVertex, LocalGraphInit};
pub use journal::{JournalError, JournalReader, JournalWriter};
pub use partition::VertexPartition;
pub use placement::{Placement, PlacementStrategy};
