//! Binary journal encoding for atom files.
//!
//! Per §4.1 an atom file is "a simple binary compressed journal of graph
//! generating commands such as `AddVertex(5000, vdata)` and
//! `AddEdge(42 → 314, edata)`". We use a compact tag + LEB128-varint
//! format with a FNV-1a checksum trailer so corruption is detected at
//! playback time; the format favours small on-disk size (ids are varints,
//! data blobs are length-prefixed).
//!
//! Record grammar:
//!
//! ```text
//! journal   := header record* end
//! header    := MAGIC(4) version:u8 atom_id:varint
//! record    := vertex | ghost | edge
//! vertex    := 0x01 gvid:varint mirror_count:varint mirror_atom:varint* data:blob
//! ghost     := 0x02 gvid:varint owner_atom:varint data:blob
//! edge      := 0x03 geid:varint src:varint dst:varint owned:u8 data:blob
//! end       := 0xFF checksum:u64le
//! blob      := len:varint bytes
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use graphlab_graph::{AtomId, EdgeId, VertexId};
use graphlab_net::codec::Codec;

const MAGIC: &[u8; 4] = b"GLAT";
const VERSION: u8 = 1;

const TAG_VERTEX: u8 = 0x01;
const TAG_GHOST: u8 = 0x02;
const TAG_EDGE: u8 = 0x03;
const TAG_END: u8 = 0xFF;

/// Errors raised while reading a journal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum JournalError {
    /// The magic/version header was wrong.
    BadHeader,
    /// A record tag was unknown or the journal was truncated.
    Corrupt(&'static str),
    /// The checksum trailer did not match the content.
    ChecksumMismatch,
    /// A user data blob failed to decode.
    BadData,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::BadHeader => write!(f, "bad journal header"),
            JournalError::Corrupt(what) => write!(f, "corrupt journal: {what}"),
            JournalError::ChecksumMismatch => write!(f, "journal checksum mismatch"),
            JournalError::BadData => write!(f, "journal user-data blob failed to decode"),
        }
    }
}

impl std::error::Error for JournalError {}

#[inline]
fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

#[inline]
fn get_varint(buf: &mut Bytes) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = buf.get_u8();
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Streaming journal writer.
pub struct JournalWriter {
    buf: BytesMut,
}

impl JournalWriter {
    /// Starts a journal for `atom`.
    pub fn new(atom: AtomId) -> Self {
        let mut buf = BytesMut::with_capacity(256);
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        put_varint(&mut buf, atom.0 as u64);
        JournalWriter { buf }
    }

    fn put_blob<T: Codec>(&mut self, data: &T) {
        let mut tmp = BytesMut::new();
        data.encode(&mut tmp);
        put_varint(&mut self.buf, tmp.len() as u64);
        self.buf.put_slice(&tmp);
    }

    /// Appends an `AddVertex` command for an *owned* vertex, with the list
    /// of atoms that hold a ghost of it (its mirrors).
    pub fn add_vertex<V: Codec>(&mut self, gvid: VertexId, mirrors: &[AtomId], data: &V) {
        self.buf.put_u8(TAG_VERTEX);
        put_varint(&mut self.buf, gvid.0 as u64);
        put_varint(&mut self.buf, mirrors.len() as u64);
        for m in mirrors {
            put_varint(&mut self.buf, m.0 as u64);
        }
        self.put_blob(data);
    }

    /// Appends a ghost-vertex record (a boundary vertex owned by
    /// `owner_atom`, stored redundantly with its initial data so playback
    /// needs no remote fetch).
    pub fn add_ghost<V: Codec>(&mut self, gvid: VertexId, owner_atom: AtomId, data: &V) {
        self.buf.put_u8(TAG_GHOST);
        put_varint(&mut self.buf, gvid.0 as u64);
        put_varint(&mut self.buf, owner_atom.0 as u64);
        self.put_blob(data);
    }

    /// Appends an `AddEdge` command. `owned` is false when this atom holds
    /// only a ghost copy of the edge (its owner is the target's atom).
    pub fn add_edge<E: Codec>(
        &mut self,
        geid: EdgeId,
        src: VertexId,
        dst: VertexId,
        owned: bool,
        data: &E,
    ) {
        self.buf.put_u8(TAG_EDGE);
        put_varint(&mut self.buf, geid.0 as u64);
        put_varint(&mut self.buf, src.0 as u64);
        put_varint(&mut self.buf, dst.0 as u64);
        self.buf.put_u8(owned as u8);
        self.put_blob(data);
    }

    /// Seals the journal with its checksum and returns the bytes.
    pub fn finish(mut self) -> Bytes {
        let checksum = fnv1a(&self.buf);
        self.buf.put_u8(TAG_END);
        self.buf.put_u64_le(checksum);
        self.buf.freeze()
    }
}

/// One decoded journal record.
#[derive(Clone, Debug, PartialEq)]
pub enum JournalRecord<V, E> {
    /// Owned vertex with mirror atoms.
    Vertex {
        /// Global vertex id.
        gvid: VertexId,
        /// Atoms holding ghosts of this vertex.
        mirrors: Vec<AtomId>,
        /// Initial vertex data.
        data: V,
    },
    /// Ghost (boundary) vertex owned elsewhere.
    Ghost {
        /// Global vertex id.
        gvid: VertexId,
        /// Atom that owns the vertex.
        owner_atom: AtomId,
        /// Initial vertex data (redundant copy).
        data: V,
    },
    /// Edge adjacent to an owned vertex.
    Edge {
        /// Global edge id.
        geid: EdgeId,
        /// Source endpoint.
        src: VertexId,
        /// Target endpoint.
        dst: VertexId,
        /// Whether this atom owns the edge.
        owned: bool,
        /// Initial edge data.
        data: E,
    },
}

/// Journal playback: validates header + checksum, then iterates records.
pub struct JournalReader<V, E> {
    body: Bytes,
    atom: AtomId,
    _marker: std::marker::PhantomData<(V, E)>,
}

impl<V: Codec, E: Codec> JournalReader<V, E> {
    /// Validates framing and checksum; does not yet decode records.
    pub fn open(bytes: Bytes) -> Result<Self, JournalError> {
        if bytes.len() < MAGIC.len() + 1 + 1 + 9 {
            return Err(JournalError::Corrupt("too short"));
        }
        let (content, trailer) = bytes.split_at(bytes.len() - 9);
        if trailer[0] != TAG_END {
            return Err(JournalError::Corrupt("missing end tag"));
        }
        let stored = u64::from_le_bytes(trailer[1..9].try_into().expect("8 bytes"));
        if fnv1a(content) != stored {
            return Err(JournalError::ChecksumMismatch);
        }
        let mut body = bytes.slice(0..bytes.len() - 9);
        if body.len() < 5 || &body[..4] != MAGIC {
            return Err(JournalError::BadHeader);
        }
        body.advance(4);
        if body.get_u8() != VERSION {
            return Err(JournalError::BadHeader);
        }
        let atom = get_varint(&mut body).ok_or(JournalError::Corrupt("atom id"))? as u32;
        Ok(JournalReader { body, atom: AtomId(atom), _marker: std::marker::PhantomData })
    }

    /// The atom this journal describes.
    pub fn atom(&self) -> AtomId {
        self.atom
    }

    fn get_blob<T: Codec>(&mut self) -> Result<T, JournalError> {
        let len = get_varint(&mut self.body).ok_or(JournalError::Corrupt("blob len"))? as usize;
        if self.body.remaining() < len {
            return Err(JournalError::Corrupt("blob body"));
        }
        let mut blob = self.body.split_to(len);
        let v = T::decode(&mut blob).ok_or(JournalError::BadData)?;
        if blob.has_remaining() {
            return Err(JournalError::BadData);
        }
        Ok(v)
    }

    /// Reads the next record, or `None` at end of journal.
    pub fn next_record(&mut self) -> Result<Option<JournalRecord<V, E>>, JournalError> {
        if !self.body.has_remaining() {
            return Ok(None);
        }
        let tag = self.body.get_u8();
        match tag {
            TAG_VERTEX => {
                let gvid = get_varint(&mut self.body).ok_or(JournalError::Corrupt("gvid"))?;
                let nm = get_varint(&mut self.body).ok_or(JournalError::Corrupt("mirrors"))?;
                let mut mirrors = Vec::with_capacity(nm as usize);
                for _ in 0..nm {
                    let a = get_varint(&mut self.body).ok_or(JournalError::Corrupt("mirror"))?;
                    mirrors.push(AtomId(a as u32));
                }
                let data = self.get_blob()?;
                Ok(Some(JournalRecord::Vertex { gvid: VertexId(gvid as u32), mirrors, data }))
            }
            TAG_GHOST => {
                let gvid = get_varint(&mut self.body).ok_or(JournalError::Corrupt("gvid"))?;
                let owner = get_varint(&mut self.body).ok_or(JournalError::Corrupt("owner"))?;
                let data = self.get_blob()?;
                Ok(Some(JournalRecord::Ghost {
                    gvid: VertexId(gvid as u32),
                    owner_atom: AtomId(owner as u32),
                    data,
                }))
            }
            TAG_EDGE => {
                let geid = get_varint(&mut self.body).ok_or(JournalError::Corrupt("geid"))?;
                let src = get_varint(&mut self.body).ok_or(JournalError::Corrupt("src"))?;
                let dst = get_varint(&mut self.body).ok_or(JournalError::Corrupt("dst"))?;
                if !self.body.has_remaining() {
                    return Err(JournalError::Corrupt("owned flag"));
                }
                let owned = match self.body.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return Err(JournalError::Corrupt("owned flag value")),
                };
                let data = self.get_blob()?;
                Ok(Some(JournalRecord::Edge {
                    geid: EdgeId(geid as u32),
                    src: VertexId(src as u32),
                    dst: VertexId(dst as u32),
                    owned,
                    data,
                }))
            }
            _ => Err(JournalError::Corrupt("unknown tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_journal() {
        let mut w = JournalWriter::new(AtomId(7));
        w.add_vertex(VertexId(5000), &[AtomId(1), AtomId(2)], &1.5f64);
        w.add_ghost(VertexId(42), AtomId(3), &2.5f64);
        w.add_edge(EdgeId(9), VertexId(42), VertexId(5000), true, &0.25f64);
        let bytes = w.finish();

        let mut r = JournalReader::<f64, f64>::open(bytes).unwrap();
        assert_eq!(r.atom(), AtomId(7));
        assert_eq!(
            r.next_record().unwrap(),
            Some(JournalRecord::Vertex {
                gvid: VertexId(5000),
                mirrors: vec![AtomId(1), AtomId(2)],
                data: 1.5
            })
        );
        assert_eq!(
            r.next_record().unwrap(),
            Some(JournalRecord::Ghost { gvid: VertexId(42), owner_atom: AtomId(3), data: 2.5 })
        );
        assert_eq!(
            r.next_record().unwrap(),
            Some(JournalRecord::Edge {
                geid: EdgeId(9),
                src: VertexId(42),
                dst: VertexId(5000),
                owned: true,
                data: 0.25
            })
        );
        assert_eq!(r.next_record().unwrap(), None);
    }

    #[test]
    fn checksum_detects_flip() {
        let mut w = JournalWriter::new(AtomId(0));
        w.add_vertex(VertexId(1), &[], &7u64);
        let bytes = w.finish();
        let mut raw = bytes.to_vec();
        raw[8] ^= 0x40;
        assert_eq!(
            JournalReader::<u64, u64>::open(Bytes::from(raw)).err(),
            Some(JournalError::ChecksumMismatch)
        );
    }

    #[test]
    fn truncation_detected() {
        let mut w = JournalWriter::new(AtomId(0));
        w.add_vertex(VertexId(1), &[], &7u64);
        let bytes = w.finish();
        let truncated = bytes.slice(0..bytes.len() - 1);
        assert!(JournalReader::<u64, u64>::open(truncated).is_err());
    }

    #[test]
    fn bad_magic_detected() {
        let mut w = JournalWriter::new(AtomId(0));
        w.add_vertex(VertexId(1), &[], &7u64);
        let bytes = w.finish();
        let mut raw = bytes.to_vec();
        raw[0] = b'X';
        // checksum recomputed so only the header check fires
        let csum = fnv1a(&raw[..raw.len() - 9]);
        let n = raw.len();
        raw[n - 8..].copy_from_slice(&csum.to_le_bytes());
        assert_eq!(
            JournalReader::<u64, u64>::open(Bytes::from(raw)).err(),
            Some(JournalError::BadHeader)
        );
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            buf.clear();
            put_varint(&mut buf, v);
            let mut b = buf.clone().freeze();
            assert_eq!(get_varint(&mut b), Some(v));
            assert!(!b.has_remaining());
        }
    }

    #[test]
    fn empty_journal_roundtrip() {
        let w = JournalWriter::new(AtomId(11));
        let bytes = w.finish();
        let mut r = JournalReader::<u32, u32>::open(bytes).unwrap();
        assert_eq!(r.atom(), AtomId(11));
        assert_eq!(r.next_record().unwrap(), None);
    }
}
