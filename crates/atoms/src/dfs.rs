//! Simulated distributed file system.
//!
//! Stands in for HDFS / Amazon S3 (§4.1, §4.4): a thread-safe blob store
//! holding atom journals and snapshot checkpoints. Write accounting
//! includes a configurable replication factor so the Hadoop comparison can
//! charge HDFS-style replicated writes (the paper sets Hadoop's
//! replication factor to 1 in its experiments — our MapReduce baseline
//! does the same by default).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use parking_lot::RwLock;

/// DFS error type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DfsError {
    /// Read of a file that does not exist.
    NotFound(String),
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::NotFound(name) => write!(f, "dfs file not found: {name}"),
        }
    }
}

impl std::error::Error for DfsError {}

/// Cumulative I/O statistics. Creates and overwrites are tracked
/// separately: the Fig. 4 snapshot-overhead accounting charges each
/// checkpoint's footprint once, so re-writing an existing file must not
/// inflate `bytes_written`/`files_written` a second time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DfsStats {
    /// Logical bytes written creating new files (before replication).
    pub bytes_written: u64,
    /// Logical bytes written over already-existing files.
    pub bytes_overwritten: u64,
    /// Physical creation bytes (logical × replication factor).
    pub bytes_written_replicated: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Number of files created.
    pub files_written: u64,
    /// Number of overwrites of existing files.
    pub files_overwritten: u64,
}

/// In-memory simulated DFS.
pub struct SimDfs {
    files: RwLock<BTreeMap<String, Bytes>>,
    replication: u32,
    bytes_written: AtomicU64,
    bytes_overwritten: AtomicU64,
    bytes_read: AtomicU64,
    files_written: AtomicU64,
    files_overwritten: AtomicU64,
}

impl SimDfs {
    /// DFS with replication factor 1.
    pub fn new() -> Self {
        Self::with_replication(1)
    }

    /// DFS with an explicit replication factor (HDFS defaults to 3).
    pub fn with_replication(replication: u32) -> Self {
        assert!(replication >= 1);
        SimDfs {
            files: RwLock::new(BTreeMap::new()),
            replication,
            bytes_written: AtomicU64::new(0),
            bytes_overwritten: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            files_written: AtomicU64::new(0),
            files_overwritten: AtomicU64::new(0),
        }
    }

    /// Writes (or overwrites) a file. Creates and overwrites are charged
    /// to separate counters — the insert itself tells the two apart — so
    /// repeated writes of the same name never inflate the creation stats.
    pub fn write(&self, name: &str, data: Bytes) {
        let len = data.len() as u64;
        let previous = self.files.write().insert(name.to_string(), data);
        if previous.is_some() {
            self.bytes_overwritten.fetch_add(len, Ordering::Relaxed);
            self.files_overwritten.fetch_add(1, Ordering::Relaxed);
        } else {
            self.bytes_written.fetch_add(len, Ordering::Relaxed);
            self.files_written.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reads a file.
    pub fn read(&self, name: &str) -> Result<Bytes, DfsError> {
        let files = self.files.read();
        let data = files.get(name).cloned().ok_or_else(|| DfsError::NotFound(name.to_string()))?;
        self.bytes_read.fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(data)
    }

    /// Whether a file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }

    /// Deletes a file; returns whether it existed.
    pub fn delete(&self, name: &str) -> bool {
        self.files.write().remove(name).is_some()
    }

    /// Lists file names with the given prefix, sorted.
    pub fn list_prefix(&self, prefix: &str) -> Vec<String> {
        self.files
            .read()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// I/O statistics snapshot.
    pub fn stats(&self) -> DfsStats {
        let w = self.bytes_written.load(Ordering::Relaxed);
        DfsStats {
            bytes_written: w,
            bytes_overwritten: self.bytes_overwritten.load(Ordering::Relaxed),
            bytes_written_replicated: w * self.replication as u64,
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            files_written: self.files_written.load(Ordering::Relaxed),
            files_overwritten: self.files_overwritten.load(Ordering::Relaxed),
        }
    }

    /// Total logical size of all stored files.
    pub fn total_size(&self) -> u64 {
        self.files.read().values().map(|b| b.len() as u64).sum()
    }
}

impl Default for SimDfs {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let dfs = SimDfs::new();
        dfs.write("a/b", Bytes::from_static(b"hello"));
        assert_eq!(dfs.read("a/b").unwrap(), Bytes::from_static(b"hello"));
        assert!(dfs.exists("a/b"));
        assert!(!dfs.exists("a/c"));
    }

    #[test]
    fn missing_file_errors() {
        let dfs = SimDfs::new();
        assert_eq!(dfs.read("nope").unwrap_err(), DfsError::NotFound("nope".into()));
    }

    #[test]
    fn list_prefix_sorted() {
        let dfs = SimDfs::new();
        dfs.write("g/atom_000002", Bytes::new());
        dfs.write("g/atom_000000", Bytes::new());
        dfs.write("g/atom_000001", Bytes::new());
        dfs.write("other/file", Bytes::new());
        assert_eq!(
            dfs.list_prefix("g/"),
            vec!["g/atom_000000", "g/atom_000001", "g/atom_000002"]
        );
    }

    #[test]
    fn stats_track_replication() {
        let dfs = SimDfs::with_replication(3);
        dfs.write("x", Bytes::from(vec![0u8; 100]));
        let s = dfs.stats();
        assert_eq!(s.bytes_written, 100);
        assert_eq!(s.bytes_written_replicated, 300);
        assert_eq!(s.files_written, 1);
        dfs.read("x").unwrap();
        assert_eq!(dfs.stats().bytes_read, 100);
    }

    #[test]
    fn delete_works() {
        let dfs = SimDfs::new();
        dfs.write("x", Bytes::from_static(b"1"));
        assert!(dfs.delete("x"));
        assert!(!dfs.delete("x"));
        assert!(!dfs.exists("x"));
    }

    #[test]
    fn overwrite_keeps_latest() {
        let dfs = SimDfs::new();
        dfs.write("x", Bytes::from_static(b"old"));
        dfs.write("x", Bytes::from_static(b"new"));
        assert_eq!(dfs.read("x").unwrap(), Bytes::from_static(b"new"));
        assert_eq!(dfs.stats().files_written, 1, "one file created");
        assert_eq!(dfs.stats().files_overwritten, 1);
    }

    #[test]
    fn overwrites_do_not_inflate_creation_stats() {
        let dfs = SimDfs::with_replication(3);
        dfs.write("ckpt/a", Bytes::from(vec![0u8; 100]));
        dfs.write("ckpt/a", Bytes::from(vec![1u8; 40]));
        dfs.write("ckpt/b", Bytes::from(vec![2u8; 7]));
        let s = dfs.stats();
        assert_eq!(s.files_written, 2);
        assert_eq!(s.files_overwritten, 1);
        assert_eq!(s.bytes_written, 107, "creation bytes charged once per file");
        assert_eq!(s.bytes_overwritten, 40);
        assert_eq!(s.bytes_written_replicated, 321);
        // Deleting and re-writing is a fresh creation again.
        dfs.delete("ckpt/a");
        dfs.write("ckpt/a", Bytes::from(vec![3u8; 5]));
        assert_eq!(dfs.stats().files_written, 3);
        assert_eq!(dfs.stats().files_overwritten, 1);
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let dfs = Arc::new(SimDfs::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let dfs = Arc::clone(&dfs);
                std::thread::spawn(move || {
                    for j in 0..50 {
                        dfs.write(&format!("t{i}/f{j}"), Bytes::from(vec![i as u8; 10]));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(dfs.stats().files_written, 400);
        assert_eq!(dfs.list_prefix("t3/").len(), 50);
    }
}
