//! Web-spam MRF for the LBP convergence study (Fig. 1(c)).
//!
//! A power-law web graph interpreted as a binary (ham/spam) pairwise MRF:
//! a noisy content classifier provides node priors; link structure
//! provides the smoothness prior (spam links to spam). Planted ground
//! truth makes convergence/accuracy measurable.

use graphlab_apps::lbp::{BpEdge, BpVertex};
use graphlab_graph::{DataGraph, GraphBuilder, VertexId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Generates a web-spam MRF. Returns the graph and planted labels
/// (1 = spam).
pub fn webspam_mrf(
    n: usize,
    edges_per_vertex: usize,
    spam_fraction: f64,
    noise: f64,
    seed: u64,
) -> (DataGraph<BpVertex, BpEdge>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let spam_count = (n as f64 * spam_fraction) as usize;
    let truth: Vec<usize> = (0..n).map(|i| usize::from(i < spam_count)).collect();

    let mut b = GraphBuilder::with_capacity(n, n * edges_per_vertex);
    for &label in &truth {
        // Noisy classifier evidence.
        let flip = rng.random::<f64>() < noise;
        let observed = if flip { 1 - label } else { label };
        let mut prior = vec![0.35, 0.35];
        prior[observed] = 0.65;
        b.add_vertex(BpVertex::with_prior(prior));
    }
    // Homophilous links: mostly within the same class.
    for (v, &tv) in truth.iter().enumerate().take(n) {
        for _ in 0..edges_per_vertex {
            let same_class = rng.random::<f64>() < 0.9;
            let t = if same_class == (tv == 1) {
                rng.random_range(0..spam_count.max(1))
            } else {
                spam_count + rng.random_range(0..(n - spam_count).max(1))
            };
            if t != v && t < n {
                b.add_edge(VertexId(v as u32), VertexId(t as u32), BpEdge::uniform(2))
                    .expect("valid edge");
            }
        }
    }
    (b.build(), truth)
}

/// Classification accuracy of MAP labels against the planted truth.
pub fn spam_accuracy(graph: &DataGraph<BpVertex, BpEdge>, truth: &[usize]) -> f64 {
    let correct = graph
        .vertices()
        .filter(|&v| graph.vertex_data(v).map_label() == truth[v.index()])
        .count();
    correct as f64 / graph.num_vertices() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_apps::lbp::LoopyBp;
    use graphlab_core::GraphLab;

    #[test]
    fn generates_mixed_labels() {
        let (g, truth) = webspam_mrf(200, 4, 0.3, 0.1, 1);
        assert_eq!(g.num_vertices(), 200);
        let spam = truth.iter().filter(|&&t| t == 1).count();
        assert_eq!(spam, 60);
    }

    #[test]
    fn bp_improves_over_raw_priors() {
        let (mut g, truth) = webspam_mrf(150, 5, 0.3, 0.25, 2);
        // Accuracy of raw priors (MAP of prior = observed evidence).
        let raw = spam_accuracy(&g, &truth);
        let bp = LoopyBp { labels: 2, smoothing: 2.0, epsilon: 1e-5, dynamic: true, damping: 0.3 };
        GraphLab::on(&mut g).max_updates(100_000).run(bp);
        let smoothed = spam_accuracy(&g, &truth);
        assert!(
            smoothed > raw,
            "BP smoothing should beat raw evidence: {raw} -> {smoothed}"
        );
        assert!(smoothed > 0.85, "accuracy {smoothed}");
    }
}
