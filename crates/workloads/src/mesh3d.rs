//! 3D mesh MRFs: the synthetic locking-engine benchmark (§4.2.2, Fig. 3)
//! and the CoSeg video volume (§5.2, Fig. 8(a)/(b)).
//!
//! The §4.2.2 mesh is a `nx × ny × nz` grid with **26-connectivity**
//! (axis neighbours plus all diagonals) interpreted as a binary MRF.
//! The CoSeg volume is the same topology (video frames stacked in time)
//! with super-pixel features drawn from a planted segmentation, plus the
//! two partitions of Fig. 8(b): *optimal* (contiguous frame blocks) and
//! *worst-case* (frames striped across machines).

use graphlab_apps::coseg::CosegVertex;
use graphlab_apps::lbp::{BpEdge, BpVertex};
use graphlab_atoms::VertexPartition;
use graphlab_graph::{AtomId, DataGraph, GraphBuilder, VertexId};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn vid(x: usize, y: usize, z: usize, nx: usize, ny: usize) -> usize {
    (z * ny + y) * nx + x
}

/// All 26-connected forward neighbour offsets (13 of the 26, so each
/// undirected pair is generated exactly once).
const FORWARD_OFFSETS: [(i64, i64, i64); 13] = [
    (1, 0, 0),
    (0, 1, 0),
    (0, 0, 1),
    (1, 1, 0),
    (1, -1, 0),
    (1, 0, 1),
    (1, 0, -1),
    (0, 1, 1),
    (0, 1, -1),
    (1, 1, 1),
    (1, 1, -1),
    (1, -1, 1),
    (1, -1, -1),
];

fn planted_label(x: usize, _y: usize, z: usize, nx: usize, nz: usize, labels: usize) -> usize {
    // Two (or k) spatial blobs: split along x, shifted per z-slice so the
    // boundary is non-trivial in time.
    let shift = (z * nx) / (4 * nz.max(1));
    ((x + shift) * labels / (nx + nx / 4)).min(labels - 1)
}

/// Builds the §4.2.2 binary-MRF mesh: noisy observations of a planted
/// labelling. Returns the graph and the planted ground truth.
pub fn mesh3d_mrf(
    nx: usize,
    ny: usize,
    nz: usize,
    labels: usize,
    noise: f64,
    seed: u64,
) -> (DataGraph<BpVertex, BpEdge>, Vec<usize>) {
    let n = nx * ny * nz;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * 13);
    let mut truth = Vec::with_capacity(n);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let label = planted_label(x, y, z, nx, nz, labels);
                truth.push(label);
                let mut prior = vec![noise; labels];
                // Noisy evidence: sometimes points at the wrong label.
                let observed = if rng.random::<f64>() < noise {
                    rng.random_range(0..labels)
                } else {
                    label
                };
                prior[observed] = 1.0;
                b.add_vertex(BpVertex::with_prior(prior));
            }
        }
    }
    add_mesh_edges(&mut b, nx, ny, nz, || BpEdge::uniform(labels));
    (b.build(), truth)
}

/// Builds the CoSeg video volume: `frames` frames of `w × h` super-pixels,
/// 26-connected across space and time, features drawn from a planted
/// segmentation. Returns the graph and ground truth labels.
pub fn coseg_video(
    frames: usize,
    w: usize,
    h: usize,
    labels: usize,
    seed: u64,
) -> (DataGraph<CosegVertex, BpEdge>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = frames * w * h;
    let mut b = GraphBuilder::with_capacity(n, n * 13);
    let mut truth = Vec::with_capacity(n);
    for z in 0..frames {
        for y in 0..h {
            for x in 0..w {
                let label = planted_label(x, y, z, w, frames, labels);
                truth.push(label);
                // Feature: label-dependent mean + observation noise.
                let mean = (label as f64 + 0.5) / labels as f64;
                let feature = (mean + 0.08 * (rng.random::<f64>() - 0.5)).clamp(0.0, 1.0);
                b.add_vertex(CosegVertex::new(feature, labels));
            }
        }
    }
    add_mesh_edges(&mut b, w, h, frames, || BpEdge::uniform(labels));
    (b.build(), truth)
}

fn add_mesh_edges<V, E>(
    b: &mut GraphBuilder<V, E>,
    nx: usize,
    ny: usize,
    nz: usize,
    mut edge_data: impl FnMut() -> E,
) {
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let src = vid(x, y, z, nx, ny);
                for &(dx, dy, dz) in &FORWARD_OFFSETS {
                    let (tx, ty, tz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                    if tx < 0 || ty < 0 || tz < 0 {
                        continue;
                    }
                    let (tx, ty, tz) = (tx as usize, ty as usize, tz as usize);
                    if tx >= nx || ty >= ny || tz >= nz {
                        continue;
                    }
                    let dst = vid(tx, ty, tz, nx, ny);
                    b.add_edge(VertexId(src as u32), VertexId(dst as u32), edge_data())
                        .expect("valid mesh edge");
                }
            }
        }
    }
}

/// Fig. 8(b) *optimal* partition: contiguous frame blocks per atom
/// (`atoms` atoms over `frames` frames of `w × h` super-pixels).
pub fn frame_partition(frames: usize, w: usize, h: usize, atoms: usize) -> VertexPartition {
    let per = frames.div_ceil(atoms);
    let assignment = (0..frames * w * h)
        .map(|v| {
            let frame = v / (w * h);
            AtomId((frame / per).min(atoms - 1) as u32)
        })
        .collect();
    VertexPartition::from_assignment(assignment, atoms)
}

/// Fig. 8(b) *worst-case* partition: frames striped across atoms, forcing
/// every temporal edge across a boundary.
pub fn striped_partition(frames: usize, w: usize, h: usize, atoms: usize) -> VertexPartition {
    let assignment = (0..frames * w * h)
        .map(|v| {
            let frame = v / (w * h);
            AtomId((frame % atoms) as u32)
        })
        .collect();
    VertexPartition::from_assignment(assignment, atoms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_size_and_connectivity() {
        let (g, truth) = mesh3d_mrf(4, 4, 4, 2, 0.2, 1);
        assert_eq!(g.num_vertices(), 64);
        assert_eq!(truth.len(), 64);
        // Interior vertex has 26 neighbours.
        let interior = VertexId(vid(1, 1, 1, 4, 4) as u32);
        assert_eq!(g.degree(interior), 26);
        // Corner has 7.
        let corner = VertexId(0);
        assert_eq!(g.degree(corner), 7);
    }

    #[test]
    fn edge_count_matches_formula() {
        // Each undirected 26-neighbour pair generated exactly once.
        let (g, _) = mesh3d_mrf(3, 3, 3, 2, 0.1, 2);
        let mut expected = 0;
        for z in 0..3usize {
            for y in 0..3usize {
                for x in 0..3usize {
                    for &(dx, dy, dz) in &FORWARD_OFFSETS {
                        let (tx, ty, tz) = (x as i64 + dx, y as i64 + dy, z as i64 + dz);
                        if (0..3).contains(&tx) && (0..3).contains(&ty) && (0..3).contains(&tz) {
                            expected += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn coseg_features_separate_labels() {
        let (g, truth) = coseg_video(4, 6, 4, 2, 3);
        let mut means = [0.0f64; 2];
        let mut counts = [0usize; 2];
        for v in g.vertices() {
            means[truth[v.index()]] += g.vertex_data(v).feature;
            counts[truth[v.index()]] += 1;
        }
        assert!(counts[0] > 0 && counts[1] > 0, "both labels planted");
        let m0 = means[0] / counts[0] as f64;
        let m1 = means[1] / counts[1] as f64;
        assert!((m1 - m0).abs() > 0.3, "means {m0} vs {m1}");
    }

    #[test]
    fn frame_partition_is_contiguous() {
        let p = frame_partition(8, 3, 3, 4);
        // Frames 0-1 -> atom 0, 2-3 -> atom 1, ...
        assert_eq!(p.atom_of(VertexId(0)), AtomId(0));
        assert_eq!(p.atom_of(VertexId((2 * 9) as u32)), AtomId(1));
        assert_eq!(p.atom_of(VertexId((7 * 9) as u32)), AtomId(3));
    }

    #[test]
    fn striped_partition_alternates() {
        let p = striped_partition(8, 3, 3, 4);
        assert_eq!(p.atom_of(VertexId(0)), AtomId(0));
        assert_eq!(p.atom_of(VertexId(9)), AtomId(1));
        assert_eq!(p.atom_of(VertexId(5 * 9)), AtomId(1));
    }

    #[test]
    fn striped_cut_is_worse_than_frame_cut() {
        let (g, _) = coseg_video(8, 4, 4, 2, 4);
        let opt = frame_partition(8, 4, 4, 4);
        let bad = striped_partition(8, 4, 4, 4);
        assert!(
            bad.cut_edges(&g) > 2 * opt.cut_edges(&g),
            "striped {} vs frame {}",
            bad.cut_edges(&g),
            opt.cut_edges(&g)
        );
    }
}
