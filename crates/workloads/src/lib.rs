//! # graphlab-workloads
//!
//! Synthetic workload generators reproducing the *shape* of the paper's
//! evaluation datasets (Table 2). The real datasets (Netflix ratings, the
//! NELL web crawl, 1,740 frames of video, a 25M-vertex web graph) are not
//! available, so each generator plants a ground-truth model with the same
//! graph topology, degree distribution and data sizes — see DESIGN.md §1
//! for the substitution rationale.
//!
//! All generators are deterministic given a seed.

pub mod mesh3d;
pub mod nell;
pub mod ratings;
pub mod spam;
pub mod webgraph;
pub mod zipf;

pub use mesh3d::{coseg_video, frame_partition, mesh3d_mrf, striped_partition};
pub use nell::nell_graph;
pub use ratings::ratings_graph;
pub use spam::webspam_mrf;
pub use webgraph::{web_graph, web_graph_hosts};
pub use zipf::Zipf;
