//! Synthetic Netflix-style rating graph (§5.1, Table 2 row 1).
//!
//! Bipartite users × movies with Zipf-distributed movie popularity and a
//! planted low-rank model: `r_um = s_u · t_m + noise` where `s, t` are
//! latent `d_true`-vectors. ALS can therefore measurably recover structure
//! and the convergence curves (Fig. 1(d), Fig. 9(a)) are meaningful.

use graphlab_apps::als::AlsVertex;
use graphlab_graph::{DataGraph, GraphBuilder, VertexId};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::zipf::Zipf;

/// Generated ratings problem.
pub struct RatingsProblem {
    /// Bipartite graph: vertices `0..users` are users, the rest movies.
    pub graph: DataGraph<AlsVertex, f64>,
    /// Number of user vertices (movie ids start here).
    pub users: usize,
    /// Held-out `(user, movie, rating)` triples for test error.
    pub held_out: Vec<(VertexId, VertexId, f64)>,
}

/// Generates a ratings problem. `d` is the latent dimension the *model*
/// will use (vertex factor length); the planted generator is rank-2.
pub fn ratings_graph(
    users: usize,
    movies: usize,
    ratings_per_user: usize,
    d: usize,
    seed: u64,
) -> RatingsProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    // Planted rank-2 latent structure.
    let su: Vec<[f64; 2]> =
        (0..users).map(|_| [0.5 + rng.random::<f64>(), 0.5 + rng.random::<f64>()]).collect();
    let tm: Vec<[f64; 2]> =
        (0..movies).map(|_| [0.5 + rng.random::<f64>(), 0.5 + rng.random::<f64>()]).collect();

    let mut b = GraphBuilder::with_capacity(users + movies, users * ratings_per_user);
    for u in 0..users {
        b.add_vertex(AlsVertex::seeded(u as u64 ^ seed, d));
    }
    for m in 0..movies {
        b.add_vertex(AlsVertex::seeded((users + m) as u64 ^ seed, d));
    }

    let zipf = Zipf::new(movies, 0.8);
    let mut held_out = Vec::new();
    for (u, su_u) in su.iter().enumerate().take(users) {
        let mut seen: Vec<usize> = Vec::with_capacity(ratings_per_user);
        for k in 0..ratings_per_user + 1 {
            let mut m = zipf.sample(&mut rng);
            let mut tries = 0;
            while seen.contains(&m) && tries < 10 {
                m = zipf.sample(&mut rng);
                tries += 1;
            }
            if seen.contains(&m) {
                continue;
            }
            seen.push(m);
            let rating = su_u[0] * tm[m][0] + su_u[1] * tm[m][1]
                + 0.05 * (rng.random::<f64>() - 0.5);
            let (uv, mv) = (VertexId(u as u32), VertexId((users + m) as u32));
            if k == ratings_per_user {
                // Last draw becomes held-out test data.
                held_out.push((uv, mv, rating));
            } else {
                b.add_edge(uv, mv, rating).expect("valid rating edge");
            }
        }
    }
    RatingsProblem { graph: b.build(), users, held_out }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bipartite_structure() {
        let p = ratings_graph(50, 30, 6, 4, 1);
        assert_eq!(p.graph.num_vertices(), 80);
        for e in p.graph.edges() {
            let (u, m) = p.graph.edge_endpoints(e);
            assert!(u.index() < 50, "source is a user");
            assert!(m.index() >= 50, "target is a movie");
        }
    }

    #[test]
    fn popular_movies_get_more_ratings() {
        let p = ratings_graph(200, 100, 10, 4, 2);
        let deg0 = p.graph.degree(VertexId(200)); // most popular movie
        let deg_tail = p.graph.degree(VertexId(299));
        assert!(deg0 > deg_tail, "zipf head {deg0} vs tail {deg_tail}");
    }

    #[test]
    fn held_out_nonempty_and_disjoint() {
        let p = ratings_graph(40, 25, 5, 3, 3);
        assert!(!p.held_out.is_empty());
        for &(u, m, _) in &p.held_out {
            assert!(u.index() < 40 && m.index() >= 40);
        }
    }

    #[test]
    fn ratings_follow_planted_model_range() {
        let p = ratings_graph(30, 20, 5, 3, 4);
        for e in p.graph.edges() {
            let r = *p.graph.edge_data(e);
            // rank-2 planted model with s,t ∈ [0.5, 1.5]: r ∈ [0.5, 4.5] ± noise
            assert!((0.4..=4.6).contains(&r), "rating {r} out of planted range");
        }
    }

    #[test]
    fn factors_have_requested_dimension() {
        let p = ratings_graph(10, 10, 3, 7, 5);
        for v in p.graph.vertices() {
            assert_eq!(p.graph.vertex_data(v).factors.len(), 7);
        }
    }
}
