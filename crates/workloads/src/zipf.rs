//! Zipf-distributed sampling for power-law degree generation.

use rand::Rng;

/// A Zipf(α) sampler over `{0, …, n−1}` using an inverse-CDF table.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler; `alpha` is the skew exponent (≈1 for web-like
    /// distributions; 0 = uniform).
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(total);
        }
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn skews_towards_low_indices() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[50]);
        assert!(counts[0] > 1000, "head is heavy: {}", counts[0]);
    }

    #[test]
    fn uniform_when_alpha_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((800..=1200).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn stays_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }
}
