//! NELL-like CoEM graph for named entity recognition (§5.3, Table 2 row 3).
//!
//! Bipartite noun-phrase × context graph with planted entity types:
//! noun-phrases of type `t` co-occur predominantly with contexts of type
//! `t` (with configurable cross-type noise). Context popularity is
//! Zipf-distributed, reproducing the dense power-law structure that makes
//! NER the communication-bound worst case of the evaluation. A small
//! fraction of noun-phrases per type is seeded (pre-labelled).

use graphlab_apps::coem::CoemVertex;
use graphlab_graph::{DataGraph, GraphBuilder, VertexId};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::zipf::Zipf;

/// Generated NER problem.
pub struct NellProblem {
    /// Bipartite graph: vertices `0..noun_phrases` are NPs, the rest
    /// contexts.
    pub graph: DataGraph<CoemVertex, f64>,
    /// Number of noun-phrase vertices.
    pub noun_phrases: usize,
    /// Ground-truth type per vertex.
    pub truth: Vec<usize>,
}

/// Generates a NELL-like problem with `types` entity types.
pub fn nell_graph(
    noun_phrases: usize,
    contexts: usize,
    types: usize,
    edges_per_np: usize,
    seed_fraction: f64,
    seed: u64,
) -> NellProblem {
    assert!(types >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(noun_phrases + contexts, noun_phrases * edges_per_np);
    let mut truth = Vec::with_capacity(noun_phrases + contexts);

    for i in 0..noun_phrases {
        let t = i * types / noun_phrases;
        truth.push(t);
        if rng.random::<f64>() < seed_fraction {
            b.add_vertex(CoemVertex::seed(types, t));
        } else {
            b.add_vertex(CoemVertex::unlabeled(types));
        }
    }
    let ctx_per_type = contexts / types;
    for c in 0..contexts {
        truth.push((c / ctx_per_type.max(1)).min(types - 1));
        b.add_vertex(CoemVertex::unlabeled(types));
    }

    // Each NP connects to Zipf-popular contexts, mostly of its own type.
    let zipf = Zipf::new(ctx_per_type.max(1), 0.9);
    for (np, &t) in truth.iter().enumerate().take(noun_phrases) {
        let mut linked: Vec<usize> = Vec::with_capacity(edges_per_np);
        for _ in 0..edges_per_np {
            // 85% same-type context, 15% random (noise).
            let c = if rng.random::<f64>() < 0.85 {
                t * ctx_per_type + zipf.sample(&mut rng)
            } else {
                rng.random_range(0..contexts)
            };
            if linked.contains(&c) {
                continue;
            }
            linked.push(c);
            let count = 1.0 + rng.random_range(0..5) as f64;
            b.add_edge(VertexId(np as u32), VertexId((noun_phrases + c) as u32), count)
                .expect("valid edge");
        }
    }
    NellProblem { graph: b.build(), noun_phrases, truth }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bipartite_and_sized() {
        let p = nell_graph(100, 40, 4, 6, 0.1, 1);
        assert_eq!(p.graph.num_vertices(), 140);
        assert_eq!(p.truth.len(), 140);
        for e in p.graph.edges() {
            let (np, c) = p.graph.edge_endpoints(e);
            assert!(np.index() < 100);
            assert!(c.index() >= 100);
        }
    }

    #[test]
    fn some_seeds_exist_per_type() {
        let p = nell_graph(200, 40, 4, 6, 0.15, 2);
        let mut seeded = vec![0usize; 4];
        for v in 0..200u32 {
            let data = p.graph.vertex_data(VertexId(v));
            if data.seed {
                seeded[p.truth[v as usize]] += 1;
            }
        }
        assert!(seeded.iter().all(|&s| s > 0), "{seeded:?}");
    }

    #[test]
    fn popular_contexts_have_higher_degree() {
        let p = nell_graph(500, 100, 4, 8, 0.1, 3);
        // First context of type 0 is the Zipf head for that type.
        let head = p.graph.degree(VertexId(500));
        let tail = p.graph.degree(VertexId(500 + 24));
        assert!(head > tail, "head {head} tail {tail}");
    }

    #[test]
    fn types_partition_noun_phrases_evenly() {
        let p = nell_graph(100, 40, 4, 5, 0.1, 4);
        let mut per_type = vec![0usize; 4];
        for t in &p.truth[..100] {
            per_type[*t] += 1;
        }
        assert_eq!(per_type, vec![25, 25, 25, 25]);
    }
}
