//! Power-law web graph generator (the PageRank workload of Fig. 1(a)/(b)).
//!
//! Preferential attachment: each new page links to `edges_per_vertex`
//! existing pages chosen proportionally to their current in-degree (with
//! uniform mixing), producing the power-law in-degree distribution that
//! drives the skewed dynamic-update-count histogram of Fig. 1(b). Edge
//! weights are out-degree-normalised (`w_{u,v} = 1/outdeg(u)`), vertex
//! data is the uniform initial rank.

use graphlab_graph::{DataGraph, GraphBuilder, VertexId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Generates a directed power-law web graph for PageRank.
pub fn web_graph(n: usize, edges_per_vertex: usize, seed: u64) -> DataGraph<f64, f64> {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    // Target lists with preferential attachment: keep a repeated-endpoint
    // pool so sampling ∝ degree is O(1).
    let mut pool: Vec<u32> = vec![0, 1];
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * edges_per_vertex);
    let mut outdeg = vec![0u32; n];
    for v in 1..n as u32 {
        let mut targets: Vec<u32> = Vec::with_capacity(edges_per_vertex);
        for _ in 0..edges_per_vertex.min(v as usize) {
            // 50/50 preferential vs uniform mixing keeps a heavy tail while
            // avoiding isolated-late-vertex pathologies.
            let t = if rng.random::<bool>() {
                pool[rng.random_range(0..pool.len())]
            } else {
                rng.random_range(0..v)
            };
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((v, t));
            outdeg[v as usize] += 1;
            pool.push(t);
            pool.push(v);
        }
    }

    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for _ in 0..n {
        b.add_vertex(1.0 / n as f64);
    }
    for (s, t) in edges {
        let w = 1.0 / outdeg[s as usize] as f64;
        b.add_edge(VertexId(s), VertexId(t), w).expect("valid edge");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_graph::GraphStats;

    #[test]
    fn generates_requested_size() {
        let g = web_graph(500, 4, 7);
        assert_eq!(g.num_vertices(), 500);
        assert!(g.num_edges() > 500, "edges: {}", g.num_edges());
        assert!(g.num_edges() <= 500 * 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = web_graph(100, 3, 1);
        let b = web_graph(100, 3, 1);
        assert_eq!(a.num_edges(), b.num_edges());
        let c = web_graph(100, 3, 2);
        // Structures almost surely differ.
        let same = a.num_edges() == c.num_edges()
            && a.edges().all(|e| a.edge_endpoints(e) == c.edge_endpoints(e));
        assert!(!same);
    }

    #[test]
    fn in_degrees_are_heavy_tailed() {
        let g = web_graph(2000, 5, 3);
        let stats = GraphStats::of(&g);
        // Power-law: max degree far above mean.
        assert!(
            stats.max_degree as f64 > 5.0 * stats.mean_degree,
            "max {} mean {}",
            stats.max_degree,
            stats.mean_degree
        );
    }

    #[test]
    fn out_weights_normalised() {
        let g = web_graph(300, 4, 5);
        for v in g.vertices() {
            let out: Vec<_> = g.out_edges(v).collect();
            if !out.is_empty() {
                let total: f64 = out.iter().map(|e| *g.edge_data(e.edge)).sum();
                assert!((total - 1.0).abs() < 1e-9, "vertex {v} out-weight {total}");
            }
        }
    }

    #[test]
    fn initial_ranks_uniform() {
        let g = web_graph(100, 3, 9);
        for v in g.vertices() {
            assert_eq!(*g.vertex_data(v), 1.0 / 100.0);
        }
    }
}
