//! Power-law web graph generator (the PageRank workload of Fig. 1(a)/(b)).
//!
//! Preferential attachment: each new page links to `edges_per_vertex`
//! existing pages chosen proportionally to their current in-degree (with
//! uniform mixing), producing the power-law in-degree distribution that
//! drives the skewed dynamic-update-count histogram of Fig. 1(b). Edge
//! weights are out-degree-normalised (`w_{u,v} = 1/outdeg(u)`), vertex
//! data is the uniform initial rank.

use graphlab_graph::{DataGraph, GraphBuilder, VertexId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Generates a directed power-law web graph for PageRank.
pub fn web_graph(n: usize, edges_per_vertex: usize, seed: u64) -> DataGraph<f64, f64> {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    // Target lists with preferential attachment: keep a repeated-endpoint
    // pool so sampling ∝ degree is O(1).
    let mut pool: Vec<u32> = vec![0, 1];
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * edges_per_vertex);
    let mut outdeg = vec![0u32; n];
    for v in 1..n as u32 {
        let mut targets: Vec<u32> = Vec::with_capacity(edges_per_vertex);
        for _ in 0..edges_per_vertex.min(v as usize) {
            // 50/50 preferential vs uniform mixing keeps a heavy tail while
            // avoiding isolated-late-vertex pathologies.
            let t = if rng.random::<bool>() {
                pool[rng.random_range(0..pool.len())]
            } else {
                rng.random_range(0..v)
            };
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((v, t));
            outdeg[v as usize] += 1;
            pool.push(t);
            pool.push(v);
        }
    }

    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for _ in 0..n {
        b.add_vertex(1.0 / n as f64);
    }
    for (s, t) in edges {
        let w = 1.0 / outdeg[s as usize] as f64;
        b.add_edge(VertexId(s), VertexId(t), w).expect("valid edge");
    }
    b.build()
}

/// Generates a host-structured power-law web graph for PageRank.
///
/// Real crawls are dominated by intra-host links (navigation bars, site
/// trees): Broder et al. and the WebGraph compression line both report
/// the large majority of links staying on the same host, with most of
/// the remainder going to topically nearby sites. [`web_graph`]'s pure
/// preferential attachment erases that locality, which makes it useless
/// for studying placement: every atom talks to every other atom with
/// near-uniform weight, so no assignment of atoms to machines can
/// shorten lock chains. This generator keeps the heavy-tailed in-degree
/// distribution but plants the host structure placement exploits:
/// pages are grouped into consecutive hosts of `pages_per_host`, and
/// each link is intra-host (85%), to a host at most 4 positions back
/// (12%), or global preferential attachment (3%).
pub fn web_graph_hosts(
    n: usize,
    edges_per_vertex: usize,
    pages_per_host: usize,
    seed: u64,
) -> DataGraph<f64, f64> {
    assert!(n >= 2);
    assert!(pages_per_host >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let host_of = |v: u32| v as usize / pages_per_host;
    // Global pool as in `web_graph`; per-host pools for intra-host
    // preferential attachment (site hubs: home pages, indices).
    let mut pool: Vec<u32> = vec![0, 1];
    let mut host_pool: Vec<Vec<u32>> = vec![Vec::new(); n.div_ceil(pages_per_host)];
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * edges_per_vertex);
    let mut outdeg = vec![0u32; n];
    for v in 1..n as u32 {
        let h = host_of(v);
        let host_first = (h * pages_per_host) as u32;
        let mut targets: Vec<u32> = Vec::with_capacity(edges_per_vertex);
        for _ in 0..edges_per_vertex.min(v as usize) {
            let r = rng.random_range(0..100u32);
            let t = if r < 85 && v > host_first {
                // Intra-host: preferential within the host when it has a
                // pool, else uniform over the host's existing pages.
                let hp = &host_pool[h];
                if !hp.is_empty() && rng.random::<bool>() {
                    hp[rng.random_range(0..hp.len())]
                } else {
                    rng.random_range(host_first..v)
                }
            } else if r < 97 {
                // Topical neighborhood: a fully-built host up to 4 back.
                let h2 = h.saturating_sub(rng.random_range(1..=4usize));
                if h2 == h {
                    // First pages of host 0 have no neighborhood yet.
                    pool[rng.random_range(0..pool.len())]
                } else {
                    // h2 < h, so every page of h2 already exists.
                    (h2 * pages_per_host) as u32 + rng.random_range(0..pages_per_host as u32)
                }
            } else {
                pool[rng.random_range(0..pool.len())]
            };
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            edges.push((v, t));
            outdeg[v as usize] += 1;
            pool.push(t);
            pool.push(v);
            host_pool[host_of(t)].push(t);
        }
    }

    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for _ in 0..n {
        b.add_vertex(1.0 / n as f64);
    }
    for (s, t) in edges {
        let w = 1.0 / outdeg[s as usize] as f64;
        b.add_edge(VertexId(s), VertexId(t), w).expect("valid edge");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_graph::GraphStats;

    #[test]
    fn generates_requested_size() {
        let g = web_graph(500, 4, 7);
        assert_eq!(g.num_vertices(), 500);
        assert!(g.num_edges() > 500, "edges: {}", g.num_edges());
        assert!(g.num_edges() <= 500 * 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = web_graph(100, 3, 1);
        let b = web_graph(100, 3, 1);
        assert_eq!(a.num_edges(), b.num_edges());
        let c = web_graph(100, 3, 2);
        // Structures almost surely differ.
        let same = a.num_edges() == c.num_edges()
            && a.edges().all(|e| a.edge_endpoints(e) == c.edge_endpoints(e));
        assert!(!same);
    }

    #[test]
    fn in_degrees_are_heavy_tailed() {
        let g = web_graph(2000, 5, 3);
        let stats = GraphStats::of(&g);
        // Power-law: max degree far above mean.
        assert!(
            stats.max_degree as f64 > 5.0 * stats.mean_degree,
            "max {} mean {}",
            stats.max_degree,
            stats.mean_degree
        );
    }

    #[test]
    fn out_weights_normalised() {
        let g = web_graph(300, 4, 5);
        for v in g.vertices() {
            let out: Vec<_> = g.out_edges(v).collect();
            if !out.is_empty() {
                let total: f64 = out.iter().map(|e| *g.edge_data(e.edge)).sum();
                assert!((total - 1.0).abs() < 1e-9, "vertex {v} out-weight {total}");
            }
        }
    }

    #[test]
    fn initial_ranks_uniform() {
        let g = web_graph(100, 3, 9);
        for v in g.vertices() {
            assert_eq!(*g.vertex_data(v), 1.0 / 100.0);
        }
    }

    #[test]
    fn hosts_deterministic_and_sized() {
        let a = web_graph_hosts(800, 4, 16, 11);
        let b = web_graph_hosts(800, 4, 16, 11);
        assert_eq!(a.num_vertices(), 800);
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.edges().all(|e| a.edge_endpoints(e) == b.edge_endpoints(e)));
    }

    #[test]
    fn hosts_links_are_mostly_local() {
        let g = web_graph_hosts(2000, 4, 20, 3);
        let host = |v: VertexId| v.index() / 20;
        let mut same = 0usize;
        let mut near = 0usize;
        let mut total = 0usize;
        for e in g.edges() {
            let (s, t) = g.edge_endpoints(e);
            total += 1;
            if host(s) == host(t) {
                same += 1;
            } else if host(s).abs_diff(host(t)) <= 4 {
                near += 1;
            }
        }
        // Target mix is 85/12/3; preferential fallbacks blur it a little.
        assert!(same as f64 > 0.7 * total as f64, "intra-host {same}/{total}");
        assert!((same + near) as f64 > 0.9 * total as f64, "near {near}/{total}");
    }

    #[test]
    fn hosts_keep_skewed_degrees() {
        // Site hubs (home pages) still dominate, though the tail is
        // bounded by host size rather than global preferential growth.
        let g = web_graph_hosts(2000, 5, 20, 3);
        let stats = GraphStats::of(&g);
        assert!(
            stats.max_degree as f64 > 3.0 * stats.mean_degree,
            "max {} mean {}",
            stats.max_degree,
            stats.mean_degree
        );
    }
}
