//! End-to-end smoke tests for the multi-process TCP harness: the spawn
//! subcommand must drive both engines across 4 OS processes to the same
//! fixpoint as the in-process SimNet twin, and a worker must die cleanly
//! (graceful FIN, nonzero exit) on SIGTERM.

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

fn node_bin() -> &'static str {
    env!("CARGO_BIN_EXE_graphlab-node")
}

/// Each test here spawns a mesh of worker OS processes. Two meshes at
/// once on a small CI machine starve each other's lease heartbeats (and
/// can race over just-released ephemeral ports), so the tests take this
/// lock to run one mesh at a time.
static ONE_MESH_AT_A_TIME: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn mesh_lock() -> std::sync::MutexGuard<'static, ()> {
    ONE_MESH_AT_A_TIME.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("glab-smoke-{}-{tag}", std::process::id()))
}

/// 4 worker processes per engine over localhost TCP, checked against the
/// single-process SimNet fixpoint (L1 < 1e-9 enforced by `--check`).
#[test]
fn four_process_pagerank_matches_simnet_for_both_engines() {
    let _mesh = mesh_lock();
    let bench = temp_path("bench.json");
    let out = Command::new(node_bin())
        .args([
            "spawn",
            "--machines",
            "4",
            "--engine",
            "both",
            "--check",
            "--vertices",
            "240",
            "--edges-per",
            "3",
            "--bench",
        ])
        .arg(&bench)
        .output()
        .expect("run graphlab-node spawn");
    assert!(
        out.status.success(),
        "spawn failed ({:?})\nstdout:\n{}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let json = std::fs::read_to_string(&bench).expect("bench file written");
    for key in ["\"chromatic\"", "\"locking\"", "\"l1_vs_sim\"", "\"net_wait_s\""] {
        assert!(json.contains(key), "bench json missing {key}:\n{json}");
    }
    let _ = std::fs::remove_file(&bench);
}

/// ISSUE 8 acceptance: kill one worker of a 4-process TCP mesh mid-run
/// (abrupt process exit — no FIN handshake, no fault oracle). The master
/// must detect the silence by lease expiry, the survivors must adopt the
/// dead worker's atoms, and the merged survivor results must still cover
/// every vertex of the graph.
#[test]
fn killed_worker_is_adopted_over_tcp() {
    let _mesh = mesh_lock();
    let vertices = 12_000usize;
    let victim = 2u16;
    // Reserve 4 ports the workers re-bind (bind_retry covers the race).
    let ports: Vec<u16> = (0..4)
        .map(|_| {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind :0");
            l.local_addr().expect("local addr").port()
        })
        .collect();
    let peers = ports.iter().map(|p| format!("127.0.0.1:{p}")).collect::<Vec<_>>().join(",");

    let mut children = Vec::new();
    for m in 0..4u16 {
        let out_file = temp_path(&format!("adopt-{m}.out"));
        let _ = std::fs::remove_file(&out_file);
        let mut cmd = Command::new(node_bin());
        cmd.args(["worker", "--machine", &m.to_string(), "--peers", &peers])
            .args(["--run-id", "81", "--engine", "chromatic", "--adopt"])
            .args(["--lease-ms", "5000", "--vertices", &vertices.to_string()])
            .args(["--edges-per", "4", "--out"])
            .arg(&out_file);
        if m == victim {
            cmd.args(["--die-after-ms", "200"]);
        }
        let child = cmd.spawn().expect("spawn worker");
        children.push((m, out_file, child));
    }

    let mut reports = Vec::new();
    for (m, out_file, mut child) in children {
        let status = child.wait().expect("wait worker");
        if m == victim {
            assert_eq!(status.code(), Some(9), "the victim must die its chaos death");
            assert!(!out_file.exists(), "the victim wrote a result despite dying");
            continue;
        }
        assert!(status.success(), "survivor {m} failed: {status}");
        reports.push(graphlab_node::read_report(&out_file).expect("survivor report"));
        let _ = std::fs::remove_file(&out_file);
    }

    // Every survivor went through (at least) one adoption round...
    for r in &reports {
        assert!(r.adoptions >= 1, "survivor {} never adopted (lease missed the death?)", r.machine);
    }
    // ...and the adopted placement covers the whole graph: every vertex
    // is owned by exactly one *survivor*.
    let mut owners = vec![0u32; vertices];
    for r in &reports {
        for &(v, rank) in &r.ranks {
            owners[v as usize] += 1;
            assert!(rank.is_finite());
        }
    }
    assert!(
        owners.iter().all(|&c| c == 1),
        "adopted ownership must partition the graph: {:?}",
        owners.iter().enumerate().filter(|(_, &c)| c != 1).take(5).collect::<Vec<_>>()
    );
}

/// A worker stuck dialing unreachable peers must react to SIGTERM: close
/// its transport gracefully and exit `128 + 15`.
#[test]
fn worker_exits_143_on_sigterm() {
    let _mesh = mesh_lock();
    // Reserve three ports, then release them: the worker re-binds the
    // first as its own listener and dials the other two forever (nobody
    // ever listens there), so it sits in mesh setup until signalled.
    let ports: Vec<u16> = (0..3)
        .map(|_| {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind :0");
            l.local_addr().expect("local addr").port()
        })
        .collect();
    let peers =
        ports.iter().map(|p| format!("127.0.0.1:{p}")).collect::<Vec<_>>().join(",");
    let out_file = temp_path("sigterm.out");
    let mut child = Command::new(node_bin())
        .args(["worker", "--machine", "0", "--peers", &peers, "--run-id", "7", "--engine"])
        .args(["chromatic", "--vertices", "32", "--out"])
        .arg(&out_file)
        .spawn()
        .expect("spawn worker");

    std::thread::sleep(Duration::from_millis(400));
    assert!(child.try_wait().expect("try_wait").is_none(), "worker exited before SIGTERM");
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("run kill");
    assert!(kill.success(), "kill -TERM failed");

    // The signal watcher polls every 50ms; allow generous slack.
    let deadline = Instant::now() + Duration::from_secs(10);
    let status = loop {
        if let Some(s) = child.try_wait().expect("try_wait") {
            break s;
        }
        assert!(Instant::now() < deadline, "worker ignored SIGTERM");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(status.code(), Some(128 + 15), "expected killed-by-SIGTERM exit status");
    // Died mid-setup: no result file may claim completion.
    assert!(!out_file.exists(), "worker wrote a result despite being killed");
}
