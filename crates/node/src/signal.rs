//! SIGTERM/Ctrl-C handling for worker processes, dependency-free.
//!
//! The async-signal-safe handler only records the signal number; a
//! watcher thread notices, closes every live TCP transport gracefully
//! ([`graphlab_net::shutdown_active`]: sends stop, write halves get FIN
//! after queued bytes so peers drain what was already sent), logs one
//! line, and exits `128 + signum` — the conventional killed-by-signal
//! exit status, and in any case nonzero so the spawn parent counts the
//! worker as failed.

use std::sync::atomic::{AtomicI32, Ordering};
use std::time::Duration;

/// SIGINT (Ctrl-C).
pub const SIGINT: i32 = 2;
/// SIGTERM (polite kill).
pub const SIGTERM: i32 = 15;

static RECEIVED: AtomicI32 = AtomicI32::new(0);

extern "C" fn record(sig: i32) {
    RECEIVED.store(sig, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// Installs the SIGINT/SIGTERM handlers and spawns the watcher thread.
/// `context` prefixes the abort log line (e.g. `"graphlab-node[m=2]"`).
pub fn install_watcher(context: String) {
    // SAFETY: libc `signal(2)` with valid signal numbers and a handler that
    // is async-signal-safe — `record` only stores to an atomic (no
    // allocation, locking, or formatting in signal context). Called once at
    // process start, before any thread could be mid-syscall on these
    // signals.
    unsafe {
        signal(SIGINT, record);
        signal(SIGTERM, record);
    }
    std::thread::Builder::new()
        .name("signal-watcher".to_string())
        .spawn(move || loop {
            let sig = RECEIVED.load(Ordering::SeqCst);
            if sig != 0 {
                graphlab_net::shutdown_active();
                eprintln!("{context}: aborting on signal {sig} — connections closed gracefully");
                std::process::exit(128 + sig);
            }
            std::thread::sleep(Duration::from_millis(50));
        })
        .expect("spawn signal watcher");
}
