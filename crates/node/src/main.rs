//! `graphlab-node` — one GraphLab machine per OS process over real TCP
//! (worker), plus the spawn-N-processes harness (spawn). See the crate
//! docs ([`graphlab_node`]) and the repository README's "Running on real
//! sockets" section.
//!
//! ```text
//! graphlab-node spawn  --machines 4 --engine both [--vertices N] [--edges-per K]
//!                      [--seed S] [--epsilon E] [--check] [--bench FILE]
//! graphlab-node worker --machine M --peers HOST:PORT,... --run-id R
//!                      --engine chromatic|locking --out FILE [workload flags]
//!                      [--adopt] [--lease-ms T] [--die-after-ms T]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use graphlab_node::{
    parse_engine, run_worker, signal, spawn_cluster, EngineSel, SpawnOpts, WorkerOpts, Workload,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("worker") => cmd_worker(&args[1..]),
        Some("spawn") => cmd_spawn(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprintln!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("graphlab-node: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  graphlab-node spawn  --machines N --engine chromatic|locking|both
                       [--vertices N] [--edges-per K] [--seed S] [--epsilon E]
                       [--check] [--bench FILE]
  graphlab-node worker --machine M --peers HOST:PORT,... --run-id R
                       --engine chromatic|locking --out FILE
                       [--vertices N] [--edges-per K] [--seed S] [--epsilon E]
                       [--adopt] [--lease-ms T] [--die-after-ms T]";

/// Pulls `--flag value` pairs out of `args`; unknown flags error.
struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String], known: &[&str]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            if !known.contains(&flag) {
                return Err(format!("unknown flag {flag:?}\n{USAGE}"));
            }
            if flag == "--check" || flag == "--adopt" {
                pairs.push((flag, "true"));
                i += 1;
                continue;
            }
            let value =
                args.get(i + 1).ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))?;
            pairs.push((flag, value.as_str()));
            i += 2;
        }
        Ok(Flags { pairs })
    }

    fn get(&self, flag: &str) -> Option<&'a str> {
        self.pairs.iter().rev().find(|(f, _)| *f == flag).map(|(_, v)| *v)
    }

    fn require(&self, flag: &str) -> Result<&'a str, String> {
        self.get(flag).ok_or_else(|| format!("missing required flag {flag}\n{USAGE}"))
    }

    fn num<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(flag) {
            Some(v) => v.parse().map_err(|e| format!("{flag} {v:?}: {e}")),
            None => Ok(default),
        }
    }
}

fn workload_from(flags: &Flags<'_>) -> Result<Workload, String> {
    let d = Workload::default();
    Ok(Workload {
        vertices: flags.num("--vertices", d.vertices)?,
        edges_per: flags.num("--edges-per", d.edges_per)?,
        seed: flags.num("--seed", d.seed)?,
        alpha: d.alpha,
        epsilon: flags.num("--epsilon", d.epsilon)?,
    })
}

fn cmd_worker(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(
        args,
        &[
            "--machine", "--peers", "--run-id", "--engine", "--out", "--vertices", "--edges-per",
            "--seed", "--epsilon", "--adopt", "--lease-ms", "--die-after-ms",
        ],
    )?;
    let machine: u16 = flags.require("--machine")?.parse().map_err(|e| format!("--machine: {e}"))?;
    let peers: Vec<String> =
        flags.require("--peers")?.split(',').map(str::to_string).collect();
    let opt_ms = |flag: &str| -> Result<Option<std::time::Duration>, String> {
        Ok(match flags.get(flag) {
            Some(v) => Some(std::time::Duration::from_millis(
                v.parse().map_err(|e| format!("{flag} {v:?}: {e}"))?,
            )),
            None => None,
        })
    };
    let opts = WorkerOpts {
        machine,
        peers,
        run_id: flags.require("--run-id")?.parse().map_err(|e| format!("--run-id: {e}"))?,
        engine: parse_engine(flags.require("--engine")?)?,
        workload: workload_from(&flags)?,
        out: PathBuf::from(flags.require("--out")?),
        adopt: flags.get("--adopt").is_some(),
        lease: opt_ms("--lease-ms")?,
        die_after: opt_ms("--die-after-ms")?,
    };
    // From here the worker may block in mesh setup or the engine loop for
    // a while — SIGTERM/Ctrl-C must still tear it down cleanly.
    signal::install_watcher(format!("graphlab-node[m={machine}]"));
    let summary = run_worker(&opts)?;
    eprintln!("{summary}");
    Ok(())
}

fn cmd_spawn(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(
        args,
        &[
            "--machines", "--engine", "--vertices", "--edges-per", "--seed", "--epsilon",
            "--check", "--bench",
        ],
    )?;
    let d = SpawnOpts::default();
    let opts = SpawnOpts {
        machines: flags.num("--machines", d.machines)?,
        engines: match flags.get("--engine") {
            Some(s) => EngineSel::parse(s)?,
            None => d.engines,
        },
        workload: workload_from(&flags)?,
        check_l1: if flags.get("--check").is_some() { Some(1e-9) } else { None },
        bench_out: Some(PathBuf::from(flags.get("--bench").unwrap_or("BENCH_tcp_smoke.json"))),
    };
    spawn_cluster(&opts)?;
    Ok(())
}
