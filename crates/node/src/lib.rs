//! Multi-process GraphLab: the `graphlab-node` worker and its spawn
//! harness (§4.4: one symmetric GraphLab process per machine).
//!
//! Two roles, one binary:
//!
//! - **worker**: one machine of a TCP cluster. Rebuilds the (deterministic)
//!   workload graph from the shared seed, runs the selected distributed
//!   engine over [`Transport::Tcp`], and writes the vertices it owns to a
//!   result file. Ingress is deterministic per process — every worker
//!   derives the identical atom partition and placement from the same
//!   seed, so no graph data ever crosses a process boundary; only results
//!   do (the real system's equivalent is every node loading its atoms from
//!   the shared DFS).
//! - **spawn**: the parent harness. Reserves localhost ports, spawns N
//!   workers, collects and merges their result files, runs the
//!   single-process SimNet twin on the identical workload, and compares
//!   fixpoints — the transport seam's end-to-end guarantee is that the L1
//!   distance is at the PageRank tolerance floor, orders of magnitude
//!   below the 1e-9 acceptance bound.
//!
//! Workers install SIGTERM/Ctrl-C handlers ([`signal`]) that close all
//! TCP connections gracefully (FIN after queued bytes — peers drain what
//! was sent; batched messages are already flushed at every blocking
//! receive, so a quiescent worker has nothing buffered) and exit
//! `128 + signum`.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant, SystemTime};

use graphlab_apps::pagerank::{init_ranks, l1_error, PageRank};
use graphlab_core::{
    EngineKind, EngineOutput, GraphLab, PhaseTimes, RecoveryMode, TcpConfig, Transport,
};
use graphlab_graph::{DataGraph, MachineId, VertexId};
use graphlab_workloads::webgraph::web_graph;

pub mod signal;

/// The deterministic PageRank workload every process of a run rebuilds
/// from the same parameters.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Web-graph vertices.
    pub vertices: usize,
    /// Preferential-attachment out-edges per vertex.
    pub edges_per: usize,
    /// Seed for graph generation, partitioning and tie-breaking.
    pub seed: u64,
    /// PageRank random-jump probability α.
    pub alpha: f64,
    /// Dynamic-scheduling tolerance ε. Two independent schedules of
    /// dynamic PageRank agree within `2·n·ε/(1−α)` in L1, so the default
    /// `1e-14` puts cross-transport divergence near 1e-10 for the default
    /// graph — under the smoke test's 1e-9 bound with margin.
    pub epsilon: f64,
}

impl Default for Workload {
    fn default() -> Self {
        Workload { vertices: 400, edges_per: 4, seed: 0x5EED, alpha: 0.15, epsilon: 1e-14 }
    }
}

impl Workload {
    /// Builds the workload graph with uniform initial ranks.
    pub fn build_graph(&self) -> DataGraph<f64, f64> {
        let mut g = web_graph(self.vertices, self.edges_per, self.seed);
        init_ranks(&mut g);
        g
    }

    fn update_fn(&self) -> PageRank {
        PageRank { alpha: self.alpha, epsilon: self.epsilon, dynamic: true }
    }
}

/// One worker invocation: which machine of which mesh, running what.
#[derive(Clone, Debug)]
pub struct WorkerOpts {
    /// This process's machine id.
    pub machine: u16,
    /// Every machine's listen address, indexed by machine id.
    pub peers: Vec<String>,
    /// Cluster-unique run id (handshake-validated).
    pub run_id: u64,
    /// Distributed engine to run.
    pub engine: EngineKind,
    /// The shared workload.
    pub workload: Workload,
    /// Where to write this machine's result file.
    pub out: PathBuf,
    /// Restart-free recovery: survivors adopt a dead machine's atoms
    /// instead of failing the run (ISSUE 8). Every worker of a mesh must
    /// agree on this.
    pub adopt: bool,
    /// Lease period override for the failure detector (TCP defaults to
    /// 2 s when unset).
    pub lease: Option<Duration>,
    /// Chaos hook for the kill smoke test: this process exits abruptly
    /// (no FIN handshake with the engine, exactly like a machine loss)
    /// after the given delay, measured from the moment the TCP mesh is
    /// established (so the kill always lands mid-run, not mid-dial).
    pub die_after: Option<Duration>,
}

/// What one worker reports back through its result file.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// The worker's machine id.
    pub machine: u16,
    /// Final ranks of the vertices this machine owns.
    pub ranks: Vec<(u32, f64)>,
    /// The worker's wall-clock phase split.
    pub phase: PhaseTimes,
    /// Engine wall clock as the worker measured it.
    pub runtime: Duration,
    /// Update-function executions on this machine.
    pub updates: u64,
    /// Wire bytes this machine sent.
    pub bytes_sent: u64,
    /// Messages this machine sent.
    pub msgs_sent: u64,
    /// Completed adoption rounds (restart-free recovery) on this machine.
    pub adoptions: u64,
}

/// Runs one machine's worth of the workload over TCP and writes the
/// result file. Returns the one-line summary it also logged.
pub fn run_worker(opts: &WorkerOpts) -> Result<String, String> {
    let n = opts.peers.len();
    let mut graph = opts.workload.build_graph();
    let tcp = TcpConfig::new(MachineId(opts.machine), opts.peers.clone(), opts.run_id);
    if let Some(delay) = opts.die_after {
        let tag = opts.machine;
        std::thread::spawn(move || {
            // Dying before the mesh is up would strand the peers in
            // setup rather than exercising recovery — wait for it first
            // (slow debug builds can take longer than the delay just to
            // build the graph and dial).
            while !graphlab_net::mesh_established() {
                std::thread::sleep(Duration::from_millis(10));
            }
            std::thread::sleep(delay);
            eprintln!("graphlab-node[m={tag}]: chaos exit after {delay:?}");
            // Abrupt exit: the OS tears the sockets down mid-stream, the
            // peers' survivors must detect the silence by lease expiry.
            std::process::exit(9);
        });
    }
    let mut builder = GraphLab::on(&mut graph)
        .engine(opts.engine)
        .machines(n)
        .transport(Transport::Tcp(tcp))
        .seed(opts.workload.seed);
    if opts.adopt {
        builder = builder.recovery(RecoveryMode::Adopt);
    }
    if let Some(period) = opts.lease {
        builder = builder.lease(period);
    }
    let out: EngineOutput = builder
        .try_run(opts.workload.update_fn())
        .map_err(|e| format!("machine {}: {e}", opts.machine))?;

    let owned = out.owned.as_deref().unwrap_or_default();
    let me = opts.machine as usize;
    let phase = out.metrics.phases.get(me).copied().unwrap_or_default();
    let traffic = out.metrics.bytes_sent_per_machine.get(me).copied().unwrap_or(0);
    let report = WorkerReport {
        machine: opts.machine,
        ranks: owned.iter().map(|&v| (v.0, *graph.vertex_data(v))).collect(),
        phase,
        runtime: out.metrics.runtime,
        updates: out.metrics.updates,
        bytes_sent: traffic,
        msgs_sent: out.metrics.total_messages,
        adoptions: out.metrics.adoptions,
    };
    write_report(&opts.out, &report)
        .map_err(|e| format!("machine {}: writing {}: {e}", opts.machine, opts.out.display()))?;
    Ok(summary_line(&report, opts.engine))
}

/// The worker's one-line per-phase summary (also what `spawn` tabulates).
pub fn summary_line(r: &WorkerReport, engine: EngineKind) -> String {
    format!(
        "graphlab-node[m={} {:?}]: setup={:.3}s compute={:.3}s net_wait={:.3}s \
         updates={} sent={}B/{}msgs owned={}",
        r.machine,
        engine,
        r.phase.setup.as_secs_f64(),
        r.phase.compute.as_secs_f64(),
        r.phase.net_wait.as_secs_f64(),
        r.updates,
        r.bytes_sent,
        r.msgs_sent,
        r.ranks.len(),
    ) + &if r.adoptions > 0 { format!(" adoptions={}", r.adoptions) } else { String::new() }
}

// Result files are plain text, one record per line, with f64s as exact
// bit patterns (hex) so the merge is byte-faithful:
//   machine <m>
//   phase <setup_hexbits> <compute_hexbits> <net_wait_hexbits> <runtime_hexbits>
//   stats <updates> <bytes_sent> <msgs_sent> <adoptions>
//   v <vertex_id> <rank_hexbits>   (one per owned vertex)
//   ok                             (completeness marker)

fn write_report(path: &Path, r: &WorkerReport) -> std::io::Result<()> {
    let mut buf = String::new();
    buf.push_str(&format!("machine {}\n", r.machine));
    buf.push_str(&format!(
        "phase {:016x} {:016x} {:016x} {:016x}\n",
        r.phase.setup.as_secs_f64().to_bits(),
        r.phase.compute.as_secs_f64().to_bits(),
        r.phase.net_wait.as_secs_f64().to_bits(),
        r.runtime.as_secs_f64().to_bits(),
    ));
    buf.push_str(&format!(
        "stats {} {} {} {}\n",
        r.updates, r.bytes_sent, r.msgs_sent, r.adoptions
    ));
    for &(v, rank) in &r.ranks {
        buf.push_str(&format!("v {} {:016x}\n", v, rank.to_bits()));
    }
    buf.push_str("ok\n");
    let mut f = std::fs::File::create(path)?;
    f.write_all(buf.as_bytes())
}

/// Parses a worker result file; errors on truncated files (no `ok`
/// marker — the worker died mid-write or never finished).
pub fn read_report(path: &Path) -> Result<WorkerReport, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("reading {}: {e}", path.display()))?;
    let bits = |s: &str| -> Result<f64, String> {
        u64::from_str_radix(s, 16).map(f64::from_bits).map_err(|e| format!("bad hexbits: {e}"))
    };
    let mut r = WorkerReport {
        machine: u16::MAX,
        ranks: Vec::new(),
        phase: PhaseTimes::default(),
        runtime: Duration::ZERO,
        updates: 0,
        bytes_sent: 0,
        msgs_sent: 0,
        adoptions: 0,
    };
    let mut complete = false;
    for line in text.lines() {
        let mut it = line.split_whitespace();
        match it.next() {
            Some("machine") => {
                r.machine = it.next().and_then(|s| s.parse().ok()).ok_or("bad machine line")?;
            }
            Some("phase") => {
                let mut next = || it.next().ok_or("short phase line".to_string());
                r.phase.setup = Duration::from_secs_f64(bits(next()?)?.max(0.0));
                r.phase.compute = Duration::from_secs_f64(bits(next()?)?.max(0.0));
                r.phase.net_wait = Duration::from_secs_f64(bits(next()?)?.max(0.0));
                r.runtime = Duration::from_secs_f64(bits(next()?)?.max(0.0));
            }
            Some("stats") => {
                let mut next = || it.next().ok_or("short stats line".to_string());
                r.updates = next()?.parse().map_err(|e| format!("bad updates: {e}"))?;
                r.bytes_sent = next()?.parse().map_err(|e| format!("bad bytes: {e}"))?;
                r.msgs_sent = next()?.parse().map_err(|e| format!("bad msgs: {e}"))?;
                r.adoptions = next()?.parse().map_err(|e| format!("bad adoptions: {e}"))?;
            }
            Some("v") => {
                let id: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| "bad vertex line".to_string())?;
                let rank = bits(it.next().ok_or("missing rank")?)?;
                r.ranks.push((id, rank));
            }
            Some("ok") => complete = true,
            _ => {}
        }
    }
    if !complete {
        return Err(format!("{}: truncated result file (worker died?)", path.display()));
    }
    if r.machine == u16::MAX {
        return Err(format!("{}: missing machine record", path.display()));
    }
    Ok(r)
}

/// Which engines a spawn run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineSel {
    Chromatic,
    Locking,
    /// Chromatic then locking, each with its own mesh.
    Both,
}

impl EngineSel {
    /// Parses `chromatic` / `locking` / `both`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "chromatic" => Ok(EngineSel::Chromatic),
            "locking" => Ok(EngineSel::Locking),
            "both" => Ok(EngineSel::Both),
            other => Err(format!("unknown engine {other:?} (chromatic|locking|both)")),
        }
    }

    fn kinds(self) -> Vec<EngineKind> {
        match self {
            EngineSel::Chromatic => vec![EngineKind::Chromatic],
            EngineSel::Locking => vec![EngineKind::Locking],
            EngineSel::Both => vec![EngineKind::Chromatic, EngineKind::Locking],
        }
    }
}

/// Spawn-harness options.
#[derive(Clone, Debug)]
pub struct SpawnOpts {
    /// Worker processes (= machines).
    pub machines: usize,
    /// Engine(s) to run.
    pub engines: EngineSel,
    /// The shared workload.
    pub workload: Workload,
    /// Fail (`Err`) if any engine's TCP-vs-Sim L1 is ≥ this (`None`
    /// disables the gate).
    pub check_l1: Option<f64>,
    /// Where to persist the JSON benchmark record (`None` skips it).
    pub bench_out: Option<PathBuf>,
}

impl Default for SpawnOpts {
    fn default() -> Self {
        SpawnOpts {
            machines: 4,
            engines: EngineSel::Both,
            workload: Workload::default(),
            check_l1: None,
            bench_out: Some(PathBuf::from("BENCH_tcp_smoke.json")),
        }
    }
}

/// One engine's cross-transport comparison.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Which engine.
    pub engine: EngineKind,
    /// L1 distance between the merged TCP fixpoint and the SimNet twin's.
    pub l1_vs_sim: f64,
    /// Parent-measured wall clock of the whole TCP run (spawn → join).
    pub tcp_wall: Duration,
    /// SimNet twin wall clock (engine runtime).
    pub sim_wall: Duration,
    /// Per-worker phase reports, by machine id.
    pub workers: Vec<WorkerReport>,
    /// Total updates across TCP workers.
    pub tcp_updates: u64,
    /// Updates of the SimNet twin.
    pub sim_updates: u64,
}

/// Reserves `n` distinct localhost ports by binding ephemeral listeners
/// and releasing them for the workers to re-bind (workers retry their
/// bind briefly, covering the handoff race).
pub fn alloc_ports(n: usize) -> std::io::Result<Vec<String>> {
    let listeners: Vec<std::net::TcpListener> = (0..n)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()?;
    listeners
        .iter()
        .map(|l| Ok(format!("127.0.0.1:{}", l.local_addr()?.port())))
        .collect()
}

/// Spawns an `opts.machines`-process PageRank cluster per selected
/// engine, merges the workers' fixpoints, and compares each against the
/// single-process SimNet twin. Prints a timing table per engine and
/// persists the JSON benchmark record.
pub fn spawn_cluster(opts: &SpawnOpts) -> Result<Vec<EngineReport>, String> {
    assert!(opts.machines >= 1);
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let base_run = run_id_seed();
    let scratch = std::env::temp_dir().join(format!("graphlab-tcp-{base_run:016x}"));
    std::fs::create_dir_all(&scratch).map_err(|e| format!("mkdir {}: {e}", scratch.display()))?;

    let mut reports = Vec::new();
    for (ei, engine) in opts.engines.kinds().into_iter().enumerate() {
        let run_id = base_run.wrapping_add(ei as u64 + 1);
        let peers = alloc_ports(opts.machines).map_err(|e| format!("port alloc: {e}"))?;
        let peer_list = peers.join(",");
        let engine_name = engine_name(engine);

        let t0 = Instant::now();
        let mut children = Vec::with_capacity(opts.machines);
        for m in 0..opts.machines {
            let out = scratch.join(format!("{engine_name}-{m}.result"));
            let child = Command::new(&exe)
                .args([
                    "worker",
                    "--machine",
                    &m.to_string(),
                    "--peers",
                    &peer_list,
                    "--run-id",
                    &run_id.to_string(),
                    "--engine",
                    engine_name,
                    "--vertices",
                    &opts.workload.vertices.to_string(),
                    "--edges-per",
                    &opts.workload.edges_per.to_string(),
                    "--seed",
                    &opts.workload.seed.to_string(),
                    "--epsilon",
                    &format!("{:e}", opts.workload.epsilon),
                    "--out",
                    &out.to_string_lossy(),
                ])
                .spawn()
                .map_err(|e| format!("spawning worker {m}: {e}"))?;
            children.push((m, out, child));
        }

        let mut workers: Vec<WorkerReport> = Vec::with_capacity(opts.machines);
        let mut failures = Vec::new();
        for (m, out, mut child) in children {
            let status = child.wait().map_err(|e| format!("waiting on worker {m}: {e}"))?;
            if !status.success() {
                failures.push(format!("worker {m} exited with {status}"));
                continue;
            }
            match read_report(&out) {
                Ok(r) => workers.push(r),
                Err(e) => failures.push(e),
            }
        }
        let tcp_wall = t0.elapsed();
        if !failures.is_empty() {
            return Err(format!("{engine_name}: {}", failures.join("; ")));
        }
        workers.sort_by_key(|r| r.machine);

        // Merge: every vertex is owned by exactly one machine.
        let n = opts.workload.vertices;
        let mut tcp_ranks = vec![f64::NAN; n];
        for w in &workers {
            for &(v, rank) in &w.ranks {
                tcp_ranks[v as usize] = rank;
            }
        }
        if let Some(missing) = tcp_ranks.iter().position(|r| r.is_nan()) {
            return Err(format!("{engine_name}: vertex {missing} owned by no worker"));
        }

        // The deterministic twin: identical workload, in-process SimNet.
        let mut sim_graph = opts.workload.build_graph();
        let sim_out = GraphLab::on(&mut sim_graph)
            .engine(engine)
            .machines(opts.machines)
            .seed(opts.workload.seed)
            .run(opts.workload.update_fn());
        let sim_ranks: Vec<f64> =
            (0..n).map(|i| *sim_graph.vertex_data(VertexId(i as u32))).collect();

        let report = EngineReport {
            engine,
            l1_vs_sim: l1_error(&tcp_ranks, &sim_ranks),
            tcp_wall,
            sim_wall: sim_out.metrics.runtime,
            tcp_updates: workers.iter().map(|w| w.updates).sum(),
            sim_updates: sim_out.metrics.updates,
            workers,
        };
        print_engine_report(&report);
        reports.push(report);
    }
    let _ = std::fs::remove_dir_all(&scratch);

    if let Some(path) = &opts.bench_out {
        std::fs::write(path, bench_json(opts, &reports))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    if let Some(bound) = opts.check_l1 {
        for r in &reports {
            if !r.l1_vs_sim.is_finite() || r.l1_vs_sim >= bound {
                return Err(format!(
                    "{}: TCP fixpoint diverges from SimNet: L1 = {:.3e} ≥ {bound:e}",
                    engine_name(r.engine),
                    r.l1_vs_sim
                ));
            }
        }
    }
    Ok(reports)
}

fn print_engine_report(r: &EngineReport) {
    println!(
        "engine={} tcp_wall={:.3}s sim_wall={:.3}s l1_vs_sim={:.3e} updates tcp/sim={}/{}",
        engine_name(r.engine),
        r.tcp_wall.as_secs_f64(),
        r.sim_wall.as_secs_f64(),
        r.l1_vs_sim,
        r.tcp_updates,
        r.sim_updates,
    );
    println!("  machine     setup   compute  net_wait     total");
    for w in &r.workers {
        println!(
            "  {:>7}  {:>7.3}s  {:>7.3}s  {:>7.3}s  {:>7.3}s",
            w.machine,
            w.phase.setup.as_secs_f64(),
            w.phase.compute.as_secs_f64(),
            w.phase.net_wait.as_secs_f64(),
            w.phase.total().as_secs_f64(),
        );
    }
}

/// Engine name as spelled on the CLI.
pub fn engine_name(e: EngineKind) -> &'static str {
    match e {
        EngineKind::Chromatic => "chromatic",
        EngineKind::Locking => "locking",
        EngineKind::Sequential => "sequential",
    }
}

/// Parses a CLI engine name into a distributed [`EngineKind`].
pub fn parse_engine(s: &str) -> Result<EngineKind, String> {
    match s {
        "chromatic" => Ok(EngineKind::Chromatic),
        "locking" => Ok(EngineKind::Locking),
        other => Err(format!("unknown engine {other:?} (chromatic|locking)")),
    }
}

fn run_id_seed() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    nanos ^ ((std::process::id() as u64) << 32)
}

fn bench_json(opts: &SpawnOpts, reports: &[EngineReport]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"workload\": {{\"vertices\": {}, \"edges_per\": {}, \"seed\": {}, \
         \"alpha\": {}, \"epsilon\": {:e}, \"machines\": {}}},\n",
        opts.workload.vertices,
        opts.workload.edges_per,
        opts.workload.seed,
        opts.workload.alpha,
        opts.workload.epsilon,
        opts.machines,
    ));
    s.push_str("  \"engines\": {\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\": {{\n      \"l1_vs_sim\": {:e},\n      \"tcp_wall_s\": {:.6},\n      \
             \"sim_wall_s\": {:.6},\n      \"tcp_updates\": {},\n      \"sim_updates\": {},\n      \
             \"phases\": [\n",
            engine_name(r.engine),
            r.l1_vs_sim,
            r.tcp_wall.as_secs_f64(),
            r.sim_wall.as_secs_f64(),
            r.tcp_updates,
            r.sim_updates,
        ));
        for (j, w) in r.workers.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"machine\": {}, \"setup_s\": {:.6}, \"compute_s\": {:.6}, \
                 \"net_wait_s\": {:.6}, \"bytes_sent\": {}, \"msgs_sent\": {}, \"updates\": {}}}{}\n",
                w.machine,
                w.phase.setup.as_secs_f64(),
                w.phase.compute.as_secs_f64(),
                w.phase.net_wait.as_secs_f64(),
                w.bytes_sent,
                w.msgs_sent,
                w.updates,
                if j + 1 < r.workers.len() { "," } else { "" },
            ));
        }
        s.push_str(&format!("      ]\n    }}{}\n", if i + 1 < reports.len() { "," } else { "" }));
    }
    s.push_str("  }\n}\n");
    s
}
