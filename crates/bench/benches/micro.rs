//! Criterion micro-benchmarks for the performance-critical substrates:
//! codec, atom journals, colouring, schedulers, the lock table, dense
//! solves, partitioners and the MapReduce shuffle.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use graphlab_apps::linalg::{cholesky_solve, SymMatrix};
use graphlab_atoms::{build_atoms, VertexPartition};
use graphlab_core::{Scheduler, SchedulerKind};
use graphlab_graph::{greedy_coloring, DataGraph, GraphBuilder, VertexId};
use graphlab_net::codec::{decode_from, encode_to_bytes};
use graphlab_workloads::web_graph;

fn grid(w: usize, h: usize) -> DataGraph<f64, f64> {
    let mut b = GraphBuilder::new();
    let ids: Vec<_> = (0..w * h).map(|i| b.add_vertex(i as f64)).collect();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(ids[y * w + x], ids[y * w + x + 1], 1.0).unwrap();
            }
            if y + 1 < h {
                b.add_edge(ids[y * w + x], ids[(y + 1) * w + x], 1.0).unwrap();
            }
        }
    }
    b.build()
}

fn bench_codec(c: &mut Criterion) {
    let v: Vec<f64> = (0..128).map(|i| i as f64 * 0.5).collect();
    c.bench_function("codec/encode_vec_f64_128", |b| {
        b.iter(|| encode_to_bytes(black_box(&v)))
    });
    let bytes = encode_to_bytes(&v);
    c.bench_function("codec/decode_vec_f64_128", |b| {
        b.iter(|| decode_from::<Vec<f64>>(black_box(bytes.clone())).unwrap())
    });
}

fn bench_journal(c: &mut Criterion) {
    let g = grid(40, 40);
    let part = VertexPartition::random_hash(g.num_vertices(), 16, 1);
    c.bench_function("atoms/build_atoms_1600v", |b| {
        b.iter(|| build_atoms(black_box(&g), black_box(&part), "bench"))
    });
    let (atoms, _) = build_atoms(&g, &part, "bench");
    let journal = atoms[0].encode_journal();
    c.bench_function("atoms/journal_decode", |b| {
        b.iter(|| graphlab_atoms::Atom::<f64, f64>::decode_journal(black_box(journal.clone())).unwrap())
    });
}

fn bench_coloring(c: &mut Criterion) {
    let g = web_graph(5_000, 4, 3);
    c.bench_function("coloring/greedy_5k_powerlaw", |b| {
        b.iter(|| greedy_coloring(black_box(&g)))
    });
}

fn bench_scheduler(c: &mut Criterion) {
    c.bench_function("scheduler/fifo_add_pop_10k", |b| {
        b.iter_batched(
            || Scheduler::new(SchedulerKind::Fifo, 10_000),
            |mut s| {
                for i in 0..10_000u32 {
                    s.add(i, 1.0);
                }
                while s.pop().is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("scheduler/priority_add_pop_10k", |b| {
        b.iter_batched(
            || Scheduler::new(SchedulerKind::Priority, 10_000),
            |mut s| {
                for i in 0..10_000u32 {
                    s.add(i, (i % 97) as f64 + 0.5);
                }
                while s.pop().is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    // ISSUE 4 satellite: the old pop walked all 64 buckets top-down on
    // every call, so cold work parked in low buckets (tiny residuals)
    // paid a ~60-empty-bucket scan per pop. The occupancy-mask
    // lazy-delete queue finds the hottest bucket in O(1); this bench is
    // the scan's worst case.
    c.bench_function("scheduler/priority_sparse_cold_10k", |b| {
        b.iter_batched(
            || Scheduler::new(SchedulerKind::Priority, 10_000),
            |mut s| {
                for i in 0..10_000u32 {
                    s.add(i, 1e-9); // bucket ~2 of 64: maximal top-down scan
                }
                while s.pop().is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
    // Interleaved add/pop with promotions: the engine hot path shape
    // (residual scheduling re-adds vertices at hotter priorities).
    c.bench_function("scheduler/priority_interleaved_promote_10k", |b| {
        b.iter_batched(
            || Scheduler::new(SchedulerKind::Priority, 1_024),
            |mut s| {
                let mut x = 0x5EEDu64;
                for _ in 0..10_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let v = (x >> 8) as u32 % 1_024;
                    s.add(v, ((x >> 16) % 1_000) as f64 * 1e-6);
                    if x.is_multiple_of(3) {
                        s.pop();
                    }
                }
                while s.pop().is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cholesky(c: &mut Criterion) {
    for d in [8usize, 32] {
        let mut a = SymMatrix::scaled_identity(d, 1.0);
        for i in 0..d {
            let x: Vec<f64> = (0..d).map(|j| ((i * j) % 7) as f64 * 0.1).collect();
            a.add_outer(&x);
        }
        let b_vec: Vec<f64> = (0..d).map(|i| i as f64).collect();
        c.bench_function(&format!("linalg/cholesky_solve_d{d}"), |bch| {
            bch.iter_batched(
                || (a.clone(), b_vec.clone()),
                |(a, mut b)| cholesky_solve(a, &mut b).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }
}

fn bench_partition(c: &mut Criterion) {
    let g = grid(60, 60);
    c.bench_function("partition/random_hash_3600v", |b| {
        b.iter(|| VertexPartition::random_hash(g.num_vertices(), 32, 7))
    });
    c.bench_function("partition/bfs_grow_3600v", |b| {
        b.iter(|| VertexPartition::bfs_grow(black_box(&g), 32, 7, 2))
    });
}

fn bench_pagerank_engines(c: &mut Criterion) {
    use graphlab_apps::pagerank::{init_ranks, PageRank};
    use graphlab_core::GraphLab;
    let base = web_graph(2_000, 4, 9);
    c.bench_function("engine/sequential_pagerank_2k", |b| {
        b.iter_batched(
            || {
                let mut g = base.clone();
                init_ranks(&mut g);
                g
            },
            |mut g| {
                GraphLab::on(&mut g).run(PageRank { alpha: 0.15, epsilon: 1e-6, dynamic: true })
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_locktable(c: &mut Criterion) {
    // The lock table is crate-private; benchmark through a locking-engine
    // single-machine run which is dominated by chain machinery.
    use graphlab_core::{EngineKind, GraphLab};
    let base = grid(30, 30);
    c.bench_function("engine/locking_maxdiff_900v_1m", |b| {
        b.iter_batched(
            || base.clone(),
            |mut g| {
                GraphLab::on(&mut g)
                    .engine(EngineKind::Locking)
                    .machines(1)
                    .max_updates(2_000)
                    .run(|ctx: &mut graphlab_core::UpdateContext<'_, f64, f64>| {
                        let mut best = *ctx.vertex_data();
                        for i in 0..ctx.num_neighbors() {
                            best = best.max(*ctx.nbr_data(i));
                        }
                        *ctx.vertex_data_mut() = best;
                    })
            },
            BatchSize::LargeInput,
        )
    });
    let _ = VertexId(0);
}

criterion_group! {
    name = micro;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_codec, bench_journal, bench_coloring, bench_scheduler, bench_cholesky, bench_partition, bench_pagerank_engines, bench_locktable
}
criterion_main!(micro);
