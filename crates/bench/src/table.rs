//! Minimal fixed-width table printer for harness output.

/// A simple left-aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Renders to stdout and records the table in the run report
    /// (persisted by `repro` as `BENCH_repro.json`).
    pub fn print(&self) {
        crate::report::record_table(&self.headers, &self.rows);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (c, w) in cells.iter().zip(&widths) {
                out.push_str(&format!("{c:<w$}  "));
            }
            println!("  {}", out.trim_end());
        };
        line(&self.headers);
        println!(
            "  {}",
            widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_without_panicking() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333333".into(), "4".into()]);
        t.print();
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
