//! # graphlab-bench
//!
//! The reproduction harness: `cargo run -p graphlab-bench --release --bin
//! repro -- <experiment>` regenerates every table and figure of the paper
//! at laptop scale (see DESIGN.md §5 for the experiment index and
//! EXPERIMENTS.md for recorded runs). Criterion micro-benchmarks live in
//! `benches/`.

pub mod report;
pub mod table;

pub use table::Table;
