//! Reproduction harness: one sub-command per table/figure of
//! *Distributed GraphLab* (VLDB 2012), at laptop scale.
//!
//! ```sh
//! cargo run -p graphlab-bench --release --bin repro -- <experiment>
//! cargo run -p graphlab-bench --release --bin repro -- all
//! ```
//!
//! Every experiment prints the paper's expected shape next to measured
//! values; EXPERIMENTS.md records a full run. Absolute numbers differ from
//! the paper (simulated cluster vs 64 EC2 nodes); shapes are the claim.

use std::sync::Arc;
use std::time::Duration;

use graphlab_apps::als::{test_rmse, train_rmse, Als};
use graphlab_apps::coem::{accuracy, Coem};
use graphlab_apps::coseg::CosegUpdate;
use graphlab_apps::gmm::{GmmSync, GMM_GLOBAL};
use graphlab_apps::lbp::{total_residual, LoopyBp};
use graphlab_apps::pagerank::{exact_pagerank, init_ranks, l1_error, PageRank};
use graphlab_baselines::mapreduce::{
    als_mapreduce, coem_mapreduce, factors_rmse, MapReduceConfig,
};
use graphlab_baselines::mpi::{als_mpi, coem_mpi};
use graphlab_baselines::pregel::{PregelConfig, PregelEngine, PregelPageRank};
use graphlab_baselines::{ec2_cost_usd, CC1_4XLARGE_HOURLY_USD};
use graphlab_atoms::VertexPartition;
use graphlab_bench::Table;
use graphlab_core::{
    optimal_checkpoint_interval_secs, EngineConfig, EngineKind, FaultPlan, FaultTrigger, GraphLab,
    PartitionStrategy, PlacementStrategy, RecoveryMode, SchedulerKind, SnapshotConfig,
    SnapshotMode, StragglerConfig, SyncCadence,
};
use graphlab_graph::Coloring;
use graphlab_net::codec::encode_to_bytes;
use graphlab_net::LatencyModel;
use graphlab_workloads::{
    coseg_video, frame_partition, mesh3d_mrf, nell_graph, ratings_graph, striped_partition,
    web_graph, web_graph_hosts, webspam_mrf,
};

fn banner(id: &str, what: &str, paper: &str) {
    println!("\n=== {id}: {what} ===");
    println!("  paper: {paper}");
    graphlab_bench::report::begin_experiment(id, what, paper);
}

// ---------------------------------------------------------------- fig 1a

fn fig1a() {
    banner(
        "fig1a",
        "async (GraphLab) vs sync (Pregel) PageRank convergence",
        "async reaches a given L1 error with substantially less work",
    );
    let base = web_graph(30_000, 4, 42);
    let oracle = exact_pagerank(&base, 0.15, 150);

    let mut t = Table::new(&["L1 error reached", "GraphLab async updates", "Pregel sync updates", "ratio"]);
    // Pregel: record (updates, error) per superstep.
    let mut pregel_curve: Vec<(u64, f64)> = Vec::new();
    {
        let mut g = base.clone();
        let engine = PregelEngine::new(PregelConfig { workers: 4, max_supersteps: 60 });
        let mut cumulative = Vec::new();
        engine.run(&mut g, &PregelPageRank { alpha: 0.15, epsilon: 0.0 }, |_, values| {
            cumulative.push(l1_error(values, &oracle));
        });
        let n = base.num_vertices() as u64;
        for (i, err) in cumulative.into_iter().enumerate() {
            pregel_curve.push(((i as u64 + 1) * n, err));
        }
    }
    for target in [1e-1, 1e-2, 1e-3, 1e-4, 1e-5] {
        // GraphLab dynamic: run with epsilon tuned to the target.
        let mut g = base.clone();
        init_ranks(&mut g);
        let m = GraphLab::on(&mut g).run(PageRank {
            alpha: 0.15,
            epsilon: target / base.num_vertices() as f64,
            dynamic: true,
        });
        let got: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
        let gl_err = l1_error(&got, &oracle);
        let gl_updates = m.metrics.updates;
        let pregel_updates = pregel_curve
            .iter()
            .find(|(_, e)| *e <= gl_err)
            .map(|(u, _)| *u)
            .unwrap_or(u64::MAX);
        t.row(vec![
            format!("{gl_err:.1e}"),
            format!("{gl_updates}"),
            if pregel_updates == u64::MAX { ">60 sweeps".into() } else { format!("{pregel_updates}") },
            if pregel_updates == u64::MAX {
                "-".into()
            } else {
                format!("{:.1}x", pregel_updates as f64 / gl_updates as f64)
            },
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------- fig 1b

fn fig1b() {
    banner(
        "fig1b",
        "distribution of update counts for dynamic PageRank",
        "majority of vertices converge in a single update; ~3% need >10",
    );
    let mut g = web_graph(50_000, 4, 7);
    init_ranks(&mut g);
    // ε is relative to typical rank magnitude (1/n), like the paper's
    // convergence threshold.
    let eps = 0.03 / g.num_vertices() as f64;
    let m = GraphLab::on(&mut g)
        .trace(true)
        .run(PageRank { alpha: 0.15, epsilon: eps, dynamic: true })
        .metrics;
    let n = g.num_vertices() as f64;
    let mut buckets = [0usize; 5]; // 1, 2, 3-5, 6-10, >10
    for &c in &m.update_counts {
        let b = match c {
            0 | 1 => 0,
            2 => 1,
            3..=5 => 2,
            6..=10 => 3,
            _ => 4,
        };
        buckets[b] += 1;
    }
    let mut t = Table::new(&["updates at convergence", "vertices", "% of graph"]);
    for (label, count) in ["1", "2", "3-5", "6-10", ">10"].iter().zip(buckets) {
        t.row(vec![label.to_string(), format!("{count}"), format!("{:.1}%", 100.0 * count as f64 / n)]);
    }
    t.print();
    println!("  total updates: {} ({:.2}x per vertex)", m.updates, m.updates as f64 / n);
}

// ---------------------------------------------------------------- fig 1c

fn fig1c() {
    banner(
        "fig1c",
        "loopy BP on web-spam: sync vs async vs dynamic-async",
        "dynamic async (residual priority) needs the fewest updates; sync the most",
    );
    let (base, _truth) = webspam_mrf(4_000, 4, 0.3, 0.2, 3);
    let params = LoopyBp { labels: 2, smoothing: 2.0, epsilon: 1e-6, dynamic: true, damping: 0.3 };
    let n = base.num_vertices() as f64;

    // Sync (Pregel-style): full Jacobi sweeps.
    let sync_curve = {
        let mut g = base.clone();
        let sweep = LoopyBp { dynamic: false, ..params.clone() };
        let mut curve = Vec::new();
        for s in 1..=40u64 {
            GraphLab::on(&mut g).scheduler(SchedulerKind::Sweep).run(sweep.clone());
            curve.push((s as f64, total_residual(&g, &params)));
        }
        curve
    };
    let run_async = |kind: SchedulerKind, eps: f64| {
        let mut g = base.clone();
        let p = LoopyBp { epsilon: eps, ..params.clone() };
        let m = GraphLab::on(&mut g)
            .scheduler(kind)
            .max_updates(80 * base.num_vertices() as u64)
            .run(p);
        (m.metrics.updates as f64 / n, total_residual(&g, &params))
    };

    let mut t = Table::new(&["schedule", "sweeps (updates/|V|)", "residual"]);
    for (i, (s, r)) in sync_curve.iter().enumerate() {
        if [4usize, 9, 19, 39].contains(&i) {
            t.row(vec!["sync (Pregel)".into(), format!("{s:.0}"), format!("{r:.2e}")]);
        }
    }
    for eps in [1e-3, 1e-5] {
        let (sweeps, res) = run_async(SchedulerKind::Fifo, eps);
        t.row(vec![format!("async fifo (eps {eps:.0e})"), format!("{sweeps:.1}"), format!("{res:.2e}")]);
    }
    for eps in [1e-3, 1e-5] {
        let (sweeps, res) = run_async(SchedulerKind::Priority, eps);
        t.row(vec![format!("dynamic async (eps {eps:.0e})"), format!("{sweeps:.1}"), format!("{res:.2e}")]);
    }
    t.print();
}

// ---------------------------------------------------------------- fig 1d

fn fig1d() {
    banner(
        "fig1d",
        "dynamic ALS: serializable vs non-serializable (racing)",
        "racing execution exhibits unstable/worse convergence",
    );
    let problem = ratings_graph(800, 200, 12, 16, 5);
    let n = problem.graph.num_vertices() as u64;
    let mut t = Table::new(&["updates cap", "serializable train RMSE", "racing train RMSE"]);
    for mult in [1u64, 2, 4, 8] {
        let mut rmse = [0.0f64; 2];
        for (i, racing) in [false, true].into_iter().enumerate() {
            let mut g = problem.graph.clone();
            GraphLab::on(&mut g)
                .engine(EngineKind::Locking)
                .machines(4)
                .scheduler(SchedulerKind::Priority)
                .max_updates(mult * n)
                .configure(|c| c.racing = racing)
                .run(Als { d: 16, lambda: 0.06, epsilon: 1e-6, dynamic: true });
            rmse[i] = train_rmse(&g);
        }
        t.row(vec![format!("{mult}x|V|"), format!("{:.4}", rmse[0]), format!("{:.4}", rmse[1])]);
    }
    t.print();
    println!("  (paper: the non-serializable curve is erratic and above the serializable one)");
}

// ---------------------------------------------------------------- table 1

fn table1() {
    banner(
        "table1",
        "framework capability matrix",
        "GraphLab is the only framework with all six properties",
    );
    let mut t = Table::new(&[
        "framework", "model", "sparse deps", "async", "iterative", "prioritized", "consistency", "distributed",
    ]);
    let rows: [[&str; 8]; 7] = [
        ["MPI", "messaging", "yes", "yes", "yes", "n/a", "no", "yes"],
        ["MapReduce", "par. data-flow", "no", "no", "ext.", "no", "yes", "yes"],
        ["Dryad", "par. data-flow", "yes", "no", "ext.", "no", "yes", "yes"],
        ["Pregel/BPGL", "graph BSP", "yes", "no", "yes", "no", "yes", "yes"],
        ["Piccolo", "distr. map", "no", "no", "yes", "no", "partial", "yes"],
        ["Pearce et al.", "graph visitor", "yes", "yes", "yes", "yes", "no", "no"],
        ["GraphLab", "GraphLab", "yes", "yes", "yes", "yes", "yes", "yes"],
    ];
    for r in rows {
        t.row(r.iter().map(|s| s.to_string()).collect());
    }
    t.print();
    println!("  (this repo implements the GraphLab, MapReduce, Pregel and MPI rows)");
}

// ---------------------------------------------------------------- fig 3

fn mesh_lbp_run(machines: usize, pipeline: usize, latency: LatencyModel) -> (Duration, u64) {
    let (mut g, _) = mesh3d_mrf(16, 16, 8, 2, 0.2, 11);
    let n = g.num_vertices() as u64;
    let out = GraphLab::on(&mut g)
        .engine(EngineKind::Locking)
        .machines(machines)
        .latency(latency)
        .max_updates(10 * n) // "10 iterations of loopy BP"
        .partition(PartitionStrategy::BfsGrow)
        .configure(|c| c.max_pipeline = pipeline)
        .run(LoopyBp { labels: 2, smoothing: 2.0, epsilon: 1e-9, dynamic: true, damping: 0.0 });
    (out.metrics.runtime, out.metrics.updates)
}

fn fig3a() {
    banner(
        "fig3a",
        "locking engine runtime vs #machines (26-connected mesh LBP, pipeline 10k)",
        "strong, nearly linear scalability (paper: 4 to 16 machines)",
    );
    let lat = LatencyModel::fixed(Duration::from_micros(100));
    let mut t = Table::new(&["machines", "runtime", "speedup vs 2"]);
    let mut base = None;
    for m in [2usize, 4, 8] {
        let (rt, _) = mesh_lbp_run(m, 10_000, lat);
        let b = *base.get_or_insert(rt.as_secs_f64());
        t.row(vec![format!("{m}"), format!("{rt:.2?}"), format!("{:.2}x", b / rt.as_secs_f64())]);
    }
    t.print();
}

fn fig3b() {
    banner(
        "fig3b",
        "locking engine runtime vs pipeline length",
        "100 to 1000 gives ~3x; diminishing returns beyond",
    );
    let lat = LatencyModel::fixed(Duration::from_micros(300));
    let mut t = Table::new(&["pipeline length", "runtime"]);
    for p in [1usize, 10, 100, 1000, 10_000] {
        let (rt, _) = mesh_lbp_run(6, p, lat);
        t.row(vec![format!("{p}"), format!("{rt:.2?}")]);
    }
    t.print();
}

// ---------------------------------------------------------------- fig 4

fn snapshot_run(
    mode: SnapshotMode,
    straggler: Option<StragglerConfig>,
) -> (Duration, Vec<(f64, u64)>, u64) {
    let (mut g, _) = mesh3d_mrf(12, 12, 6, 2, 0.2, 13);
    let n = g.num_vertices() as u64;
    let out = GraphLab::on(&mut g)
        .engine(EngineKind::Locking)
        .machines(4)
        .trace(true)
        .max_updates(10 * n)
        .snapshot(SnapshotConfig { mode, every_updates: 3 * n, max_snapshots: 1 })
        .partition(PartitionStrategy::BfsGrow)
        .configure(|c| c.straggler = straggler)
        .run(LoopyBp { labels: 2, smoothing: 2.0, epsilon: 1e-9, dynamic: true, damping: 0.0 });
    (out.metrics.runtime, out.metrics.updates_timeline, out.metrics.snapshots)
}

fn fig4(delay: Option<Duration>) {
    let id = if delay.is_some() { "fig4b" } else { "fig4a" };
    banner(
        id,
        "updates-vs-time with one snapshot mid-run",
        if delay.is_some() {
            "with a straggler, async snapshot pays a small penalty; sync pays the full delay"
        } else {
            "sync snapshot flatlines; async only slows down"
        },
    );
    let (g0, _) = mesh3d_mrf(12, 12, 6, 2, 0.2, 13);
    let n = g0.num_vertices() as u64;
    let straggler = delay.map(|d| StragglerConfig { machine: 1, after_updates: 3 * n, duration: d });

    let mut t = Table::new(&["mode", "runtime", "snapshots", "timeline (t -> updates)"]);
    for (name, mode) in [
        ("baseline", SnapshotMode::None),
        ("async snapshot", SnapshotMode::Asynchronous),
        ("sync snapshot", SnapshotMode::Synchronous),
    ] {
        let (rt, timeline, snaps) = snapshot_run(mode, straggler);
        let pts: Vec<String> = timeline
            .iter()
            .step_by((timeline.len() / 5).max(1))
            .map(|(s, u)| format!("{s:.2}s:{u}"))
            .collect();
        t.row(vec![name.into(), format!("{rt:.2?}"), format!("{snaps}"), pts.join(" ")]);
    }
    t.print();
}

// ---------------------------------------------------------------- table 2

fn table2() {
    banner(
        "table2",
        "experiment input sizes (bench scale)",
        "paper: Netflix 0.5M verts/99M edges, CoSeg 10.5M/31M, NER 2M/200M",
    );
    let netflix = ratings_graph(1_500, 400, 15, 8, 1);
    let (coseg, _) = coseg_video(16, 12, 8, 2, 2);
    let ner = nell_graph(3_000, 600, 4, 10, 0.05, 3);

    let mut t = Table::new(&[
        "exp", "#verts", "#edges", "vdata B", "edata B", "complexity", "shape", "partition", "engine",
    ]);
    t.row(vec![
        "Netflix (d=8)".into(),
        format!("{}", netflix.graph.num_vertices()),
        format!("{}", netflix.graph.num_edges()),
        format!("{}", encode_to_bytes(netflix.graph.vertex_data(graphlab_graph::VertexId(0))).len()),
        format!("{}", encode_to_bytes(netflix.graph.edge_data(graphlab_graph::EdgeId(0))).len()),
        "O(d^3 + deg)".into(),
        "bipartite".into(),
        "random".into(),
        "chromatic".into(),
    ]);
    t.row(vec![
        "CoSeg".into(),
        format!("{}", coseg.num_vertices()),
        format!("{}", coseg.num_edges()),
        format!("{}", encode_to_bytes(coseg.vertex_data(graphlab_graph::VertexId(0))).len()),
        format!("{}", encode_to_bytes(coseg.edge_data(graphlab_graph::EdgeId(0))).len()),
        "O(deg)".into(),
        "3D grid".into(),
        "frames".into(),
        "locking".into(),
    ]);
    t.row(vec![
        "NER".into(),
        format!("{}", ner.graph.num_vertices()),
        format!("{}", ner.graph.num_edges()),
        format!("{}", encode_to_bytes(ner.graph.vertex_data(graphlab_graph::VertexId(0))).len()),
        format!("{}", encode_to_bytes(ner.graph.edge_data(graphlab_graph::EdgeId(0))).len()),
        "O(deg)".into(),
        "bipartite".into(),
        "random".into(),
        "chromatic".into(),
    ]);
    t.print();
}

// ---------------------------------------------------------------- fig 6a/6b

struct AppRun {
    runtime: Duration,
    mbps: f64,
    #[allow(dead_code)]
    updates: u64,
}

fn netflix_run(machines: usize, d: usize, sweeps: u64) -> AppRun {
    let problem = ratings_graph(1_500, 400, 15, d, 1);
    let mut g = problem.graph.clone();
    let users = problem.users;
    let coloring = Coloring::bipartite(g.num_vertices(), |v| v.index() >= users);
    let cap = sweeps * g.num_vertices() as u64;
    let out = GraphLab::on(&mut g)
        .engine(EngineKind::Chromatic)
        .machines(machines)
        .coloring(coloring)
        .max_updates(cap)
        .run(Als { d, lambda: 0.06, epsilon: 1e-9, dynamic: true });
    AppRun {
        runtime: out.metrics.runtime,
        mbps: out.metrics.mbps_per_machine(),
        updates: out.metrics.updates,
    }
}

fn coseg_run(machines: usize, frames: usize, sweeps: u64) -> AppRun {
    let (mut g, _) = coseg_video(frames, 12, 8, 2, 2);
    let n = g.num_vertices() as u64;
    let atoms = EngineConfig::new(machines).num_atoms;
    let strategy = PartitionStrategy::Custom(Arc::new(frame_partition(frames, 12, 8, atoms)));
    let out = GraphLab::on(&mut g)
        .engine(EngineKind::Locking)
        .machines(machines)
        .scheduler(SchedulerKind::Priority)
        .max_updates(sweeps * n)
        .partition(strategy)
        .sync(GMM_GLOBAL, GmmSync::new(2), SyncCadence::Updates((n / 2).max(1)))
        .run(CosegUpdate { labels: 2, smoothing: 2.0, epsilon: 1e-9 });
    AppRun {
        runtime: out.metrics.runtime,
        mbps: out.metrics.mbps_per_machine(),
        updates: out.metrics.updates,
    }
}

fn ner_run(machines: usize, sweeps: u64) -> AppRun {
    let problem = nell_graph(3_000, 600, 4, 10, 0.05, 3);
    let mut g = problem.graph.clone();
    let nps = problem.noun_phrases;
    let coloring = Coloring::bipartite(g.num_vertices(), |v| v.index() >= nps);
    let cap = sweeps * g.num_vertices() as u64;
    let out = GraphLab::on(&mut g)
        .engine(EngineKind::Chromatic)
        .machines(machines)
        .coloring(coloring)
        .max_updates(cap)
        .run(Coem { types: 4, epsilon: 1e-9, dynamic: true });
    AppRun {
        runtime: out.metrics.runtime,
        mbps: out.metrics.mbps_per_machine(),
        updates: out.metrics.updates,
    }
}

fn fig6ab() {
    banner(
        "fig6ab",
        "scalability + per-machine bandwidth of the three applications",
        "CoSeg scales best (sparse, compute-heavy); NER worst (dense, data-heavy)",
    );
    let machines = [2usize, 4, 8];
    let mut t = Table::new(&["app", "machines", "runtime", "speedup vs 2", "MB/s per machine"]);
    for (app, f) in [
        ("Netflix", Box::new(|m: usize| netflix_run(m, 8, 6)) as Box<dyn Fn(usize) -> AppRun>),
        ("CoSeg", Box::new(|m: usize| coseg_run(m, 16, 8))),
        ("NER", Box::new(|m: usize| ner_run(m, 6))),
    ] {
        let mut base = None;
        for &m in &machines {
            let r = f(m);
            let b = *base.get_or_insert(r.runtime.as_secs_f64());
            t.row(vec![
                app.into(),
                format!("{m}"),
                format!("{:.2?}", r.runtime),
                format!("{:.2}x", b / r.runtime.as_secs_f64()),
                format!("{:.1}", r.mbps),
            ]);
        }
    }
    t.print();
}

// ---------------------------------------------------------------- fig 6c

fn fig6c() {
    banner(
        "fig6c",
        "Netflix scaling vs latent dimension d (computation/communication ratio)",
        "higher d (more compute per update) scales better",
    );
    let mut t = Table::new(&["d", "runtime m=2", "runtime m=6", "speedup"]);
    for d in [4usize, 8, 16, 32] {
        let r2 = netflix_run(2, d, 4);
        let r6 = netflix_run(6, d, 4);
        t.row(vec![
            format!("{d}"),
            format!("{:.2?}", r2.runtime),
            format!("{:.2?}", r6.runtime),
            format!("{:.2}x", r2.runtime.as_secs_f64() / r6.runtime.as_secs_f64()),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------- fig 6d / 8c / 9b

fn fig6d() {
    banner(
        "fig6d",
        "Netflix runtime: GraphLab vs Hadoop vs MPI (d=8, 10 iterations)",
        "GraphLab 40-60x faster than Hadoop; comparable to MPI",
    );
    let problem = ratings_graph(1_500, 400, 15, 8, 1);
    let iters = 10usize;

    // GraphLab: chromatic engine, 2 sweeps per iteration-equivalent.
    let mut g = problem.graph.clone();
    let users = problem.users;
    let coloring = Coloring::bipartite(g.num_vertices(), |v| v.index() >= users);
    let cap = 2 * iters as u64 * g.num_vertices() as u64;
    let out = GraphLab::on(&mut g)
        .engine(EngineKind::Chromatic)
        .machines(4)
        .coloring(coloring)
        .max_updates(cap)
        .run(Als { d: 8, lambda: 0.06, epsilon: 1e-9, dynamic: true });
    let gls = out.metrics.runtime.as_secs_f64();
    let gl_rmse = train_rmse(&g);

    let (mr_factors, mr) = als_mapreduce(&problem.graph, 8, 0.06, iters, MapReduceConfig::default());
    let (mpi_factors, mpi) = als_mpi(&problem.graph, problem.users, 8, 0.06, iters, 4);

    let mut t = Table::new(&["system", "runtime (s)", "vs GraphLab", "final train RMSE"]);
    t.row(vec!["GraphLab (chromatic)".into(), format!("{gls:.2}"), "1.0x".into(), format!("{gl_rmse:.4}")]);
    t.row(vec![
        "Hadoop (MapReduce)".into(),
        format!("{:.2}", mr.total_secs()),
        format!("{:.0}x slower", mr.total_secs() / gls),
        format!("{:.4}", factors_rmse(&problem.graph, &mr_factors)),
    ]);
    t.row(vec![
        "MPI".into(),
        format!("{:.2}", mpi.runtime.as_secs_f64()),
        format!("{:.1}x of GraphLab", mpi.runtime.as_secs_f64() / gls),
        format!("{:.4}", factors_rmse(&problem.graph, &mpi_factors)),
    ]);
    t.print();
    println!(
        "  Hadoop breakdown: {} jobs, {} records shuffled ({} MB), {:.1}s scheduling+IO",
        mr.jobs,
        mr.records_shuffled,
        mr.bytes_shuffled / 1_000_000,
        mr.simulated_secs
    );
}

fn fig8c() {
    banner(
        "fig8c",
        "NER runtime: GraphLab vs Hadoop vs MPI",
        "GraphLab 20-80x faster than Hadoop; MPI beats GraphLab (communication-bound worst case)",
    );
    let problem = nell_graph(3_000, 600, 4, 10, 0.05, 3);
    let iters = 10usize;
    let gl = ner_run(4, iters as u64);
    let (_, mr) = coem_mapreduce(&problem.graph, 4, iters, MapReduceConfig::default());
    let (_, mpi) = coem_mpi(&problem.graph, 4, iters, 4);

    let gls = gl.runtime.as_secs_f64();
    let mut t = Table::new(&["system", "runtime (s)", "vs GraphLab"]);
    t.row(vec!["GraphLab (chromatic)".into(), format!("{gls:.2}"), "1.0x".into()]);
    t.row(vec![
        "Hadoop (MapReduce)".into(),
        format!("{:.2}", mr.total_secs()),
        format!("{:.0}x slower", mr.total_secs() / gls),
    ]);
    t.row(vec![
        "MPI".into(),
        format!("{:.2}", mpi.runtime.as_secs_f64()),
        format!("{:.2}x of GraphLab", mpi.runtime.as_secs_f64() / gls),
    ]);
    t.print();
    println!("  GraphLab bandwidth: {:.1} MB/s per machine (NER saturates earliest, Fig 6b)", gl.mbps);
}

fn fig9b() {
    banner(
        "fig9b",
        "price vs runtime (EC2 fine-grained billing, log-log)",
        "GraphLab about two orders of magnitude more cost-effective than Hadoop",
    );
    let problem = ratings_graph(1_500, 400, 15, 8, 1);
    let mut t = Table::new(&["system", "machines", "runtime (s)", "cost ($)"]);
    for m in [2usize, 4, 8] {
        let r = netflix_run(m, 8, 10);
        t.row(vec![
            "GraphLab".into(),
            format!("{m}"),
            format!("{:.2}", r.runtime.as_secs_f64()),
            format!("{:.4}", ec2_cost_usd(m, r.runtime, CC1_4XLARGE_HOURLY_USD)),
        ]);
    }
    for m in [2usize, 4, 8] {
        let (_, mr) = als_mapreduce(
            &problem.graph,
            8,
            0.06,
            5,
            MapReduceConfig { workers: m, ..Default::default() },
        );
        let rt = Duration::from_secs_f64(mr.total_secs());
        t.row(vec![
            "Hadoop".into(),
            format!("{m}"),
            format!("{:.2}", mr.total_secs()),
            format!("{:.4}", ec2_cost_usd(m, rt, CC1_4XLARGE_HOURLY_USD)),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------- fig 7b

fn fig7b() {
    banner(
        "fig7b",
        "NER: top noun-phrases per type",
        "coherent type clusters (paper shows food/religion word lists)",
    );
    let problem = nell_graph(2_000, 400, 4, 10, 0.05, 11);
    let mut g = problem.graph.clone();
    let nps = problem.noun_phrases;
    let coloring = Coloring::bipartite(g.num_vertices(), |v| v.index() >= nps);
    GraphLab::on(&mut g)
        .engine(EngineKind::Chromatic)
        .machines(4)
        .coloring(coloring)
        .run(Coem { types: 4, epsilon: 1e-6, dynamic: true });
    println!("  type accuracy: {:.1}%", 100.0 * accuracy(&g, &problem.truth));
    let names = ["Food", "Religion", "City", "Person"];
    let mut t = Table::new(&["type", "top noun-phrases (confidence)"]);
    for (ty, type_name) in names.iter().enumerate() {
        let mut scored: Vec<(f64, u32)> = (0..nps as u32)
            .filter(|&v| {
                let d = g.vertex_data(graphlab_graph::VertexId(v));
                !d.seed && d.argmax() == ty
            })
            .map(|v| (g.vertex_data(graphlab_graph::VertexId(v)).dist[ty], v))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        t.row(vec![
            (*type_name).into(),
            scored.iter().take(4).map(|(p, v)| format!("np{v}({p:.2})")).collect::<Vec<_>>().join(" "),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------- fig 8a

fn fig8a() {
    banner(
        "fig8a",
        "CoSeg weak scaling: problem size grows with machines",
        "runtime roughly constant (paper: +11% from 16 to 64 machines)",
    );
    let mut t = Table::new(&["machines", "frames", "#verts", "runtime"]);
    let mut base: Option<f64> = None;
    for (m, frames) in [(2usize, 8usize), (4, 16), (8, 32)] {
        let r = coseg_run(m, frames, 8);
        let b = *base.get_or_insert(r.runtime.as_secs_f64());
        t.row(vec![
            format!("{m}"),
            format!("{frames}"),
            format!("{}", frames * 12 * 8),
            format!("{:.2?} ({:+.0}%)", r.runtime, 100.0 * (r.runtime.as_secs_f64() / b - 1.0)),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------- fig 8b

fn fig8b() {
    banner(
        "fig8b",
        "pipeline length vs partition quality (32-frame CoSeg equivalent)",
        "longer pipelines compensate for a worst-case (striped) partition",
    );
    let frames = 32;
    let (base_graph, _) = coseg_video(frames, 10, 6, 2, 7);
    let n = base_graph.num_vertices() as u64;
    let lat = LatencyModel::fixed(Duration::from_micros(200));
    let mut t = Table::new(&["partition", "pipeline", "runtime"]);
    for (name, part) in [
        ("optimal (frame blocks)", frame_partition(frames, 10, 6, 16)),
        ("worst-case (striped)", striped_partition(frames, 10, 6, 16)),
    ] {
        for pipeline in [1usize, 16, 100, 1000] {
            let mut g = base_graph.clone();
            let strategy = PartitionStrategy::Custom(Arc::new(part.clone()));
            let out = GraphLab::on(&mut g)
                .engine(EngineKind::Locking)
                .machines(4)
                .scheduler(SchedulerKind::Priority)
                .latency(lat)
                .max_updates(5 * n)
                .partition(strategy)
                .configure(|c| {
                    c.num_atoms = 16;
                    c.max_pipeline = pipeline;
                })
                .run(CosegUpdate { labels: 2, smoothing: 2.0, epsilon: 1e-9 });
            t.row(vec![name.into(), format!("{pipeline}"), format!("{:.2?}", out.metrics.runtime)]);
        }
    }
    t.print();
}

// ---------------------------------------------------------------- fig 8d

fn fig8d() {
    banner(
        "fig8d",
        "snapshot overhead: one full snapshot per |V| updates",
        "overhead is a modest percentage (paper: <50% for all apps)",
    );
    let mut t = Table::new(&["app", "baseline", "with async snapshot", "overhead"]);

    let mut run_pair = |name: &str, f: &dyn Fn(SnapshotMode) -> Duration| {
        let base = f(SnapshotMode::None);
        let snap = f(SnapshotMode::Asynchronous);
        t.row(vec![
            name.into(),
            format!("{base:.2?}"),
            format!("{snap:.2?}"),
            format!("{:+.0}%", 100.0 * (snap.as_secs_f64() / base.as_secs_f64() - 1.0)),
        ]);
    };

    run_pair("Netflix (ALS)", &|mode| {
        let problem = ratings_graph(1_000, 300, 12, 8, 1);
        let mut g = problem.graph.clone();
        let n = g.num_vertices() as u64;
        GraphLab::on(&mut g)
            .engine(EngineKind::Locking)
            .machines(4)
            .max_updates(6 * n)
            .snapshot(SnapshotConfig { mode, every_updates: n, max_snapshots: 3 })
            .run(Als { d: 8, lambda: 0.06, epsilon: 1e-9, dynamic: true })
            .metrics
            .runtime
    });
    run_pair("CoSeg (LBP)", &|mode| {
        let (mut g, _) = coseg_video(12, 10, 6, 2, 2);
        let n = g.num_vertices() as u64;
        GraphLab::on(&mut g)
            .engine(EngineKind::Locking)
            .machines(4)
            .scheduler(SchedulerKind::Priority)
            .max_updates(6 * n)
            .snapshot(SnapshotConfig { mode, every_updates: n, max_snapshots: 3 })
            .partition(PartitionStrategy::BfsGrow)
            .run(CosegUpdate { labels: 2, smoothing: 2.0, epsilon: 1e-9 })
            .metrics
            .runtime
    });
    run_pair("NER (CoEM)", &|mode| {
        let problem = nell_graph(2_000, 400, 4, 8, 0.05, 3);
        let mut g = problem.graph.clone();
        let n = g.num_vertices() as u64;
        GraphLab::on(&mut g)
            .engine(EngineKind::Locking)
            .machines(4)
            .max_updates(6 * n)
            .snapshot(SnapshotConfig { mode, every_updates: n, max_snapshots: 3 })
            .run(Coem { types: 4, epsilon: 1e-9, dynamic: true })
            .metrics
            .runtime
    });
    t.print();
}

// ---------------------------------------------------------------- fig 9a

fn fig9a() {
    banner(
        "fig9a",
        "Netflix test error vs updates: dynamic (GraphLab) vs BSP (Pregel-style)",
        "dynamic reaches the same test error with about half the updates",
    );
    let problem = ratings_graph(1_500, 400, 15, 8, 9);
    let n = problem.graph.num_vertices() as u64;

    // Both arms use adaptive rescheduling machinery; the BSP arm's
    // epsilon of -1 means "always reschedule everyone" = full sweeps.
    let run_arm = |cap: u64, eps: f64| -> (u64, f64) {
        let mut g = problem.graph.clone();
        let users = problem.users;
        let coloring = Coloring::bipartite(g.num_vertices(), |v| v.index() >= users);
        let out = GraphLab::on(&mut g)
            .engine(EngineKind::Chromatic)
            .machines(4)
            .coloring(coloring)
            .max_updates(cap)
            .run(Als { d: 8, lambda: 0.06, epsilon: eps, dynamic: true });
        (out.metrics.updates, test_rmse(&g, &problem.held_out))
    };

    let mut t = Table::new(&["work cap", "dynamic test RMSE (eps=0.05)", "BSP test RMSE (full sweeps)"]);
    for mult in [1u64, 2, 4, 8, 16] {
        let (_, dyn_rmse) = run_arm(mult * n, 0.05);
        let (_, bsp_rmse) = run_arm(mult * n, -1.0);
        t.row(vec![format!("{mult}x|V|"), format!("{dyn_rmse:.4}"), format!("{bsp_rmse:.4}")]);
    }
    t.print();
    println!("  (BSP re-runs every vertex each sweep; dynamic skips converged factors)");
}

// ---------------------------------------------------------------- eq 3

fn eq3() {
    banner(
        "eq3",
        "Young's optimal checkpoint interval",
        "64 machines, 1-year per-machine MTBF, 2-min checkpoint -> ~3h interval",
    );
    let year = 365.25 * 24.0 * 3600.0;
    let mut t = Table::new(&["machines", "MTBF/machine", "checkpoint", "optimal interval"]);
    for (m, mtbf, ck) in [
        (64u32, year, 120.0),
        (64, year / 4.0, 120.0),
        (256, year, 120.0),
        (64, year, 600.0),
    ] {
        let ti = optimal_checkpoint_interval_secs(ck, mtbf, m);
        t.row(vec![
            format!("{m}"),
            format!("{:.2} y", mtbf / year),
            format!("{ck:.0} s"),
            format!("{:.2} h", ti / 3600.0),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------- ablations

fn abl_versioning() {
    banner(
        "abl-versioning",
        "ablation: ghost-cache version filter (DESIGN.md D4)",
        "version filtering avoids resending unchanged data",
    );
    let base = web_graph(10_000, 4, 21);
    let mut t = Table::new(&["version filter", "bytes sent", "runtime"]);
    for (name, off) in [("on (default)", false), ("off (always resend)", true)] {
        let mut g = base.clone();
        init_ranks(&mut g);
        let cap = 3 * g.num_vertices() as u64;
        let out = GraphLab::on(&mut g)
            .engine(EngineKind::Locking)
            .machines(4)
            .max_updates(cap)
            .configure(|c| c.no_version_filter = off)
            .run(PageRank { alpha: 0.15, epsilon: 1e-9, dynamic: true });
        t.row(vec![
            name.into(),
            format!("{:.1} MB", out.metrics.bytes_sent_per_machine.iter().sum::<u64>() as f64 / 1e6),
            format!("{:.2?}", out.metrics.runtime),
        ]);
    }
    t.print();
}

fn abl_batching() {
    banner(
        "abl-batching",
        "ablation: control-message batching on the locking engine (8 machines, PageRank)",
        "coalescing lock/grant/schedule traffic cuts cluster messages >=25% with identical ranks",
    );
    let base = web_graph(8_000, 4, 33);
    let oracle = exact_pagerank(&base, 0.15, 150);
    let mut t = Table::new(&["batching", "total msgs", "total MB", "runtime", "L1 vs oracle"]);
    let mut msgs = [0u64; 2];
    for (i, (name, policy)) in [
        ("off", graphlab_core::BatchPolicy::disabled()),
        ("on (16 KiB / 64 msgs)", graphlab_core::BatchPolicy::default()),
    ]
    .into_iter()
    .enumerate()
    {
        let mut g = base.clone();
        init_ranks(&mut g);
        let out = GraphLab::on(&mut g)
            .engine(EngineKind::Locking)
            .machines(8)
            .configure(|c| c.batch = policy)
            .run(PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true });
        msgs[i] = out.metrics.total_messages;
        let ranks: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
        t.row(vec![
            name.into(),
            format!("{}", out.metrics.total_messages),
            format!("{:.1}", out.metrics.bytes_sent_per_machine.iter().sum::<u64>() as f64 / 1e6),
            format!("{:.2?}", out.metrics.runtime),
            format!("{:.1e}", l1_error(&ranks, &oracle)),
        ]);
    }
    t.print();
    println!(
        "  message reduction: {:.1}% ({} -> {})",
        100.0 * (1.0 - msgs[1] as f64 / msgs[0] as f64),
        msgs[0],
        msgs[1]
    );
}

/// Confluent update (component-wise max diffusion): its fixpoint is the
/// exact same f64 on every vertex of a component regardless of execution
/// order, so the ablation can assert **bit-identical** results across wire
/// formats (PageRank's dynamic fixpoint is only ε-unique).
struct MaxDiffusion;
impl graphlab_core::UpdateFunction<f64, f64> for MaxDiffusion {
    fn update(&self, ctx: &mut graphlab_core::UpdateContext<'_, f64, f64>) {
        let mut best = *ctx.vertex_data();
        for i in 0..ctx.num_neighbors() {
            best = best.max(*ctx.nbr_data(i));
        }
        if best > *ctx.vertex_data() {
            *ctx.vertex_data_mut() = best;
            for i in 0..ctx.num_neighbors() {
                ctx.schedule_nbr(i, 1.0);
            }
        }
    }
}

fn abl_bytes() {
    banner(
        "abl-bytes",
        "ablation: version-aware delta scope sync + compressed wire format (8 machines, PageRank, locking)",
        "delta sync + LZ envelope compression cut cluster bytes >=40% with unchanged convergence",
    );
    let base = web_graph(8_000, 4, 33);
    let oracle = exact_pagerank(&base, 0.15, 150);

    let arms: [(&str, bool, graphlab_core::BatchPolicy); 3] = [
        ("baseline (full resend, raw)", true, graphlab_core::BatchPolicy::uncompressed()),
        ("delta sync, raw", false, graphlab_core::BatchPolicy::uncompressed()),
        ("delta sync + compression", false, graphlab_core::BatchPolicy::default()),
    ];
    let mut bytes = [0u64; 3];
    let mut rank_sets: Vec<Vec<f64>> = Vec::new();
    let mut kind_rows: Vec<Vec<(u16, graphlab_net::KindTraffic)>> = Vec::new();
    let mut t =
        Table::new(&["wire format", "total MB", "vs baseline", "total msgs", "runtime", "L1 vs oracle"]);
    for (i, (name, no_filter, policy)) in arms.iter().enumerate() {
        let mut g = base.clone();
        init_ranks(&mut g);
        let out = GraphLab::on(&mut g)
            .engine(EngineKind::Locking)
            .machines(8)
            .configure(|c| {
                c.no_version_filter = *no_filter;
                c.batch = *policy;
            })
            .run(PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true });
        bytes[i] = out.metrics.bytes_sent_per_machine.iter().sum();
        kind_rows.push(out.metrics.bytes_by_kind.clone());
        let ranks: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
        let l1 = l1_error(&ranks, &oracle);
        assert!(l1 < 1e-6, "{name}: L1 vs oracle {l1}");
        t.row(vec![
            (*name).into(),
            format!("{:.2}", bytes[i] as f64 / 1e6),
            format!("{:.1}%", 100.0 * bytes[i] as f64 / bytes[0] as f64),
            format!("{}", out.metrics.total_messages),
            format!("{:.2?}", out.metrics.runtime),
            format!("{l1:.1e}"),
        ]);
        rank_sets.push(ranks);
    }
    t.print();

    // Per-kind attribution of the savings (the two *raw* arms, so batch
    // sub-messages stay attributable; the compressed arm's innards are
    // opaque K_ZIP envelopes by design).
    let lookup = |rows: &[(u16, graphlab_net::KindTraffic)], k: u16| {
        rows.iter().find(|&&(kk, _)| kk == k).map(|&(_, t)| t.bytes).unwrap_or(0)
    };
    let mut kinds: Vec<u16> = kind_rows[0].iter().chain(&kind_rows[1]).map(|&(k, _)| k).collect();
    kinds.sort_unstable();
    kinds.dedup();
    let mut kt = Table::new(&["kind", "baseline KB", "delta-sync KB", "reduction"]);
    for k in kinds {
        let (a, b) = (lookup(&kind_rows[0], k), lookup(&kind_rows[1], k));
        kt.row(vec![
            graphlab_core::messages::kind_name(k).into(),
            format!("{:.1}", a as f64 / 1e3),
            format!("{:.1}", b as f64 / 1e3),
            if a == 0 { "-".into() } else { format!("{:.1}%", 100.0 * (1.0 - b as f64 / a as f64)) },
        ]);
    }
    kt.print();

    // Convergence is unchanged: PageRank's dynamic fixpoint is only
    // ε-unique (execution order differs across arms), so assert a tight
    // pairwise bound there...
    for i in 1..rank_sets.len() {
        let pair = l1_error(&rank_sets[i], &rank_sets[0]);
        assert!(pair < 1e-6, "arm {i} diverged from baseline: pairwise L1 {pair}");
    }
    // ...and *bit-identical* results on a confluent update function whose
    // fixpoint is exact: component-wise max diffusion.
    let mut seeded = web_graph(4_000, 4, 77);
    let vs: Vec<_> = seeded.vertices().collect();
    for v in vs {
        *seeded.vertex_data_mut(v) = (v.index() as u64).wrapping_mul(2_654_435_761) as f64;
    }
    let mut fixpoints: Vec<Vec<f64>> = Vec::new();
    for (_, no_filter, policy) in &arms {
        let mut g = seeded.clone();
        GraphLab::on(&mut g)
            .engine(EngineKind::Locking)
            .machines(8)
            .configure(|c| {
                c.no_version_filter = *no_filter;
                c.batch = *policy;
            })
            .run(MaxDiffusion);
        fixpoints.push(g.vertices().map(|v| *g.vertex_data(v)).collect());
    }
    for (i, fp) in fixpoints.iter().enumerate().skip(1) {
        assert!(
            fp.iter().zip(&fixpoints[0]).all(|(a, b)| a.to_bits() == b.to_bits()),
            "arm {i}: confluent fixpoint not bit-identical to baseline"
        );
    }
    println!("  confluent max-diffusion fixpoint: bit-identical across all three wire formats");

    let reduction = 1.0 - bytes[2] as f64 / bytes[0] as f64;
    println!(
        "  byte reduction (delta sync + compression vs full-resend baseline): {:.1}% ({:.2} MB -> {:.2} MB)",
        100.0 * reduction,
        bytes[0] as f64 / 1e6,
        bytes[2] as f64 / 1e6,
    );
    assert!(
        reduction >= 0.40,
        "byte reduction {:.1}% below the 40% acceptance threshold",
        100.0 * reduction
    );
}

fn abl_control() {
    banner(
        "abl-control",
        "ablation: replication-aware placement vs round-robin scatter (8 machines, PageRank, locking)",
        "co-locating hot neighborhoods cuts mean lock-chain span and lock/release control bytes (ROADMAP item 4a)",
    );
    // Host-structured crawl: placement is a *structural* lever, so it needs
    // replication structure to exploit. Pure preferential attachment
    // (`web_graph`) has none — its atom meta-graph is near-uniform and we
    // measured every placement within noise of round-robin on it — whereas
    // real crawls are ~85% intra-host links, which is what this generator
    // models (see `web_graph_hosts`).
    let base = web_graph_hosts(8_000, 4, 32, 33);
    let oracle = exact_pagerank(&base, 0.15, 150);

    let arms: [(&str, PlacementStrategy); 2] = [
        ("round-robin scatter", PlacementStrategy::RoundRobin),
        ("replication-aware", PlacementStrategy::ReplicationAware),
    ];
    let mut spans: Vec<Vec<u64>> = Vec::new();
    let mut means = [0f64; 2];
    let mut control = [0u64; 2];
    let mut kind_rows: Vec<Vec<(u16, graphlab_net::KindTraffic)>> = Vec::new();
    let mut rank_sets: Vec<Vec<f64>> = Vec::new();
    let mut t = Table::new(&[
        "placement",
        "mean chain span",
        "1-machine chains",
        "lock+release KB",
        "total MB",
        "runtime",
        "L1 vs oracle",
    ]);
    for (i, (name, strategy)) in arms.iter().enumerate() {
        let mut g = base.clone();
        init_ranks(&mut g);
        let out = GraphLab::on(&mut g)
            .engine(EngineKind::Locking)
            .machines(8)
            .partition(PartitionStrategy::BfsGrow)
            .placement(*strategy)
            // Finer atoms (16/machine) give placement real freedom: the
            // round-robin scatter baseline degrades while region growing
            // keeps neighborhoods together. ε is tight enough that both
            // arms land within 1e-9 of the unique fixpoint.
            .configure(|c| c.num_atoms = 128)
            .run(PageRank { alpha: 0.15, epsilon: 1e-14, dynamic: true });
        let lookup = |k: u16| {
            out.metrics.bytes_by_kind.iter().find(|&&(kk, _)| kk == k).map(|&(_, t)| t.bytes)
        };
        control[i] = lookup(graphlab_core::messages::K_LOCK_REQ).unwrap_or(0)
            + lookup(graphlab_core::messages::K_RELEASE).unwrap_or(0);
        means[i] = out.metrics.mean_chain_span();
        let chains: u64 = out.metrics.chain_spans.iter().sum();
        let local = out.metrics.chain_spans.first().copied().unwrap_or(0)
            + out.metrics.chain_spans.get(1).copied().unwrap_or(0);
        let ranks: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
        let l1 = l1_error(&ranks, &oracle);
        assert!(l1 < 1e-6, "{name}: L1 vs oracle {l1}");
        t.row(vec![
            (*name).into(),
            format!("{:.3}", means[i]),
            format!("{:.1}%", 100.0 * local as f64 / chains as f64),
            format!("{:.1}", control[i] as f64 / 1e3),
            format!(
                "{:.2}",
                out.metrics.bytes_sent_per_machine.iter().sum::<u64>() as f64 / 1e6
            ),
            format!("{:.2?}", out.metrics.runtime),
            format!("{l1:.1e}"),
        ]);
        spans.push(out.metrics.chain_spans.clone());
        kind_rows.push(out.metrics.bytes_by_kind.clone());
        rank_sets.push(ranks);
    }
    t.print();

    // The span histogram itself: how many machines each distributed lock
    // chain touched under either placement.
    let widest = spans.iter().map(Vec::len).max().unwrap_or(0);
    let mut ht = Table::new(&["chain span (machines)", "round-robin", "replication-aware"]);
    for s in 1..widest {
        ht.row(vec![
            format!("{s}"),
            format!("{}", spans[0].get(s).copied().unwrap_or(0)),
            format!("{}", spans[1].get(s).copied().unwrap_or(0)),
        ]);
    }
    ht.print();

    // Control traffic attribution (the chain protocol kinds).
    let lookup = |rows: &[(u16, graphlab_net::KindTraffic)], k: u16| {
        rows.iter().find(|&&(kk, _)| kk == k).map(|&(_, t)| t.bytes).unwrap_or(0)
    };
    let mut kt = Table::new(&["kind", "round-robin KB", "replication-aware KB", "reduction"]);
    for k in [
        graphlab_core::messages::K_LOCK_REQ,
        graphlab_core::messages::K_SCOPE_DATA,
        graphlab_core::messages::K_RELEASE,
        graphlab_core::messages::K_UPD_NOTE,
    ] {
        let (a, b) = (lookup(&kind_rows[0], k), lookup(&kind_rows[1], k));
        kt.row(vec![
            graphlab_core::messages::kind_name(k).into(),
            format!("{:.1}", a as f64 / 1e3),
            format!("{:.1}", b as f64 / 1e3),
            if a == 0 { "-".into() } else { format!("{:.1}%", 100.0 * (1.0 - b as f64 / a as f64)) },
        ]);
    }
    kt.print();

    // Placement must not change the answer. PageRank's dynamic fixpoint
    // is ε-unique, so bound the pairwise gap tightly...
    let pair = l1_error(&rank_sets[1], &rank_sets[0]);
    assert!(pair < 1e-9, "placement changed the fixpoint: pairwise L1 {pair}");
    // ...and assert *bit-identical* results on the confluent max-diffusion
    // update, whose fixpoint is exact regardless of execution order.
    let mut seeded = web_graph_hosts(4_000, 4, 32, 77);
    let vs: Vec<_> = seeded.vertices().collect();
    for v in vs {
        *seeded.vertex_data_mut(v) = (v.index() as u64).wrapping_mul(2_654_435_761) as f64;
    }
    let mut fixpoints: Vec<Vec<f64>> = Vec::new();
    for (_, strategy) in &arms {
        let mut g = seeded.clone();
        GraphLab::on(&mut g)
            .engine(EngineKind::Locking)
            .machines(8)
            .partition(PartitionStrategy::BfsGrow)
            .placement(*strategy)
            .run(MaxDiffusion);
        fixpoints.push(g.vertices().map(|v| *g.vertex_data(v)).collect());
    }
    assert!(
        fixpoints[1].iter().zip(&fixpoints[0]).all(|(a, b)| a.to_bits() == b.to_bits()),
        "confluent fixpoint not bit-identical across placements"
    );
    println!("  confluent max-diffusion fixpoint: bit-identical across both placements");

    let span_cut = 1.0 - means[1] / means[0];
    let bytes_cut = 1.0 - control[1] as f64 / control[0] as f64;
    println!(
        "  mean chain span: {:.3} -> {:.3} ({:.1}% lower); lock/release control bytes: {:.1} KB -> {:.1} KB ({:.1}% lower)",
        means[0],
        means[1],
        100.0 * span_cut,
        control[0] as f64 / 1e3,
        control[1] as f64 / 1e3,
        100.0 * bytes_cut,
    );
    // Acceptance gates (CI runs this ablation): measured 13.6% span and
    // 12.3% byte reduction; thresholds leave ~4 points of headroom for
    // dynamic-scheduling path dependence (the replication-aware arm runs
    // more — cheaper — chains, which dilutes the absolute byte cut).
    assert!(
        span_cut >= 0.10,
        "mean chain-span reduction {:.1}% below the 10% acceptance threshold",
        100.0 * span_cut
    );
    assert!(
        bytes_cut >= 0.08,
        "lock/release byte reduction {:.1}% below the 8% acceptance threshold",
        100.0 * bytes_cut
    );
}

/// How a killed machine comes back in the `abl-recovery` ablation.
#[derive(Clone, Copy, PartialEq)]
enum KillArm {
    /// The machine restarts and the cluster rolls back to the checkpoint.
    Rollback,
    /// The machine stays dead; survivors adopt its atoms (no rollback).
    Adopt,
}

fn abl_recovery() {
    banner(
        "abl-recovery",
        "ablation: snapshot overhead + failure recovery (Fig. 4 shape; locking engine, 4 machines)",
        "a killed machine is restored from the last complete checkpoint and the run completes \
         with the same ranks, paying only the rolled-back recomputation; without a restart, \
         survivors adopt the dead machine's atoms instead of rolling back",
    );
    // Note on the sync-vs-async overhead: the paper's Fig. 4 favours the
    // asynchronous snapshot because stop-the-world pauses are expensive on
    // a real cluster (slow replicated DFS writes, stragglers). In this
    // zero-latency simulation the sync pause is nearly free while Alg. 5
    // pays real lock-chain traffic per vertex, so the ordering flips —
    // the honest shape here is the *recovery* column, not the pause cost.
    let base = web_graph(3_000, 4, 33);
    let oracle = exact_pagerank(&base, 0.15, 150);
    let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };

    let run = |mode: SnapshotMode, kill: Option<(u64, KillArm)>| {
        let mut g = base.clone();
        init_ranks(&mut g);
        let mut b = GraphLab::on(&mut g).engine(EngineKind::Locking).machines(4).snapshot(
            SnapshotConfig { mode, every_updates: 2_000, max_snapshots: 64 },
        );
        match kill {
            Some((at, KillArm::Rollback)) => {
                b = b.faults(FaultPlan::seeded(7).kill_and_restart(
                    2,
                    FaultTrigger::Deliveries(at),
                    FaultTrigger::Elapsed(Duration::from_millis(20)),
                ));
            }
            Some((at, KillArm::Adopt)) => {
                b = b
                    .recovery(RecoveryMode::Adopt)
                    .faults(FaultPlan::seeded(7).kill(2, FaultTrigger::Deliveries(at)));
            }
            None => {}
        }
        let out = b.run(pr.clone());
        let ranks: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
        (out, l1_error(&ranks, &oracle))
    };

    // Fault-free arms first: baseline + both snapshot modes. Their traffic
    // volumes anchor the kill points (~40% into the run).
    let (none_out, none_l1) = run(SnapshotMode::None, None);
    let (sync_out, sync_l1) = run(SnapshotMode::Synchronous, None);
    let (async_out, async_l1) = run(SnapshotMode::Asynchronous, None);
    let sync_kill_at = (sync_out.metrics.total_messages * 2) / 5;
    let async_kill_at = (async_out.metrics.total_messages * 2) / 5;
    let (sync_kill, sync_kill_l1) = run(SnapshotMode::Synchronous, Some((sync_kill_at, KillArm::Rollback)));
    let (async_kill, async_kill_l1) =
        run(SnapshotMode::Asynchronous, Some((async_kill_at, KillArm::Rollback)));
    // Restart-free arms: the victim never comes back, survivors adopt its
    // atoms from the journals + per-atom checkpoints instead of rolling
    // the whole cluster back.
    let (sync_adopt, sync_adopt_l1) = run(SnapshotMode::Synchronous, Some((sync_kill_at, KillArm::Adopt)));
    let (none_adopt, none_adopt_l1) = run(SnapshotMode::None, Some((sync_kill_at, KillArm::Adopt)));

    let base_rt = none_out.metrics.runtime.as_secs_f64();
    let mut t = Table::new(&[
        "arm",
        "updates",
        "snapshots",
        "recoveries",
        "adoptions",
        "runtime",
        "vs no-snapshot",
        "L1 vs oracle",
    ]);
    for (name, out, l1) in [
        ("no snapshots", &none_out, none_l1),
        ("sync snapshots", &sync_out, sync_l1),
        ("async snapshots", &async_out, async_l1),
        ("sync + kill m2 mid-run", &sync_kill, sync_kill_l1),
        ("async + kill m2 mid-run", &async_kill, async_kill_l1),
        ("sync + kill m2, adopted", &sync_adopt, sync_adopt_l1),
        ("no snap + kill m2, adopted", &none_adopt, none_adopt_l1),
    ] {
        t.row(vec![
            name.into(),
            format!("{}", out.metrics.updates),
            format!("{}", out.metrics.snapshots),
            format!("{}", out.metrics.recoveries),
            format!("{}", out.metrics.adoptions),
            format!("{:.2?}", out.metrics.runtime),
            format!("{:+.0}%", 100.0 * (out.metrics.runtime.as_secs_f64() / base_rt - 1.0)),
            format!("{l1:.1e}"),
        ]);
    }
    t.print();
    println!(
        "  recovery wall-clock (kill + rollback + reconvergence): sync {:+.2?}, async {:+.2?} \
         over the fault-free arm",
        sync_kill.metrics.runtime.saturating_sub(sync_out.metrics.runtime),
        async_kill.metrics.runtime.saturating_sub(async_out.metrics.runtime),
    );
    println!(
        "  adoption wall-clock (kill + adopt + reconvergence, no rollback): {:+.2?} \
         over the fault-free sync arm",
        sync_adopt.metrics.runtime.saturating_sub(sync_out.metrics.runtime),
    );
    println!("  (updates in the rolled-back arms include the re-executed rolled-back work)");

    // CI smoke assertions: both killed arms actually recovered and still
    // converge to the oracle's ranks; the adoption arms recover without a
    // single rollback, with or without checkpoints to overlay.
    for (name, out, l1) in
        [("sync", &sync_kill, sync_kill_l1), ("async", &async_kill, async_kill_l1)]
    {
        assert!(out.metrics.recoveries >= 1, "{name} killed arm never rolled back");
        assert!(l1 < 1e-6, "{name} killed arm diverged: L1 {l1}");
    }
    for (name, out, l1) in
        [("sync", &sync_adopt, sync_adopt_l1), ("no-snap", &none_adopt, none_adopt_l1)]
    {
        assert!(out.metrics.adoptions >= 1, "{name} adoption arm never adopted");
        assert_eq!(out.metrics.recoveries, 0, "{name} adoption arm rolled back");
        assert!(l1 < 1e-6, "{name} adoption arm diverged: L1 {l1}");
    }
}

fn abl_priority() {
    banner(
        "abl-priority",
        "ablation: residual priority vs FIFO scheduling (DESIGN.md D9)",
        "priority scheduling converges LBP with fewer updates",
    );
    let (base, _) = webspam_mrf(3_000, 4, 0.3, 0.2, 5);
    let mut t = Table::new(&["scheduler", "updates to eps=1e-5", "final residual"]);
    for (name, kind) in [("FIFO", SchedulerKind::Fifo), ("priority", SchedulerKind::Priority)] {
        let mut g = base.clone();
        let p = LoopyBp { labels: 2, smoothing: 2.0, epsilon: 1e-5, dynamic: true, damping: 0.3 };
        let m = GraphLab::on(&mut g)
            .scheduler(kind)
            .max_updates(100 * base.num_vertices() as u64)
            .run(p.clone());
        t.row(vec![
            name.into(),
            format!("{}", m.metrics.updates),
            format!("{:.2e}", total_residual(&g, &p)),
        ]);
    }
    t.print();
}

fn abl_partition() {
    banner(
        "abl-partition",
        "ablation: random hash vs BFS-grow partitioning (DESIGN.md S6)",
        "locality-aware partitioning cuts fewer edges and sends fewer bytes",
    );
    let (base, _) = mesh3d_mrf(12, 12, 6, 2, 0.2, 17);
    let mut t = Table::new(&["partitioner", "cut edges", "bytes sent", "runtime"]);
    for (name, strategy) in
        [("random hash", PartitionStrategy::RandomHash), ("BFS-grow", PartitionStrategy::BfsGrow)]
    {
        let part = match &strategy {
            PartitionStrategy::RandomHash => {
                VertexPartition::random_hash(base.num_vertices(), 32, 99)
            }
            PartitionStrategy::BfsGrow => VertexPartition::bfs_grow(&base, 32, 99, 2),
            PartitionStrategy::Custom(p) => (**p).clone(),
        };
        let cut = part.cut_edges(&base);
        let mut g = base.clone();
        let cap = 5 * g.num_vertices() as u64;
        let out = GraphLab::on(&mut g)
            .engine(EngineKind::Locking)
            .machines(4)
            .seed(99)
            .max_updates(cap)
            .partition(strategy.clone())
            .configure(|c| c.num_atoms = 32)
            .run(LoopyBp { labels: 2, smoothing: 2.0, epsilon: 1e-9, dynamic: true, damping: 0.0 });
        t.row(vec![
            name.into(),
            format!("{cut}"),
            format!("{:.1} MB", out.metrics.bytes_sent_per_machine.iter().sum::<u64>() as f64 / 1e6),
            format!("{:.2?}", out.metrics.runtime),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------- phases

fn phases() {
    banner(
        "phases",
        "wall-clock phase split per machine: setup / compute / net-wait",
        "network wait dominates as latency rises (§7 discussion)",
    );
    let mut base = web_graph(20_000, 4, 7);
    init_ranks(&mut base);
    for (label, model) in
        [("zero latency", LatencyModel::ZERO), ("EC2-like latency", LatencyModel::ec2_like())]
    {
        let mut g = base.clone();
        let out = GraphLab::on(&mut g)
            .engine(EngineKind::Chromatic)
            .machines(4)
            .latency(model)
            .seed(7)
            .run(PageRank { alpha: 0.15, epsilon: 1e-10, dynamic: true });
        println!("  {label}:");
        let mut t = Table::new(&["machine", "setup", "compute", "net wait", "total"]);
        for (m, p) in out.metrics.phases.iter().enumerate() {
            t.row(vec![
                format!("{m}"),
                format!("{:.2?}", p.setup),
                format!("{:.2?}", p.compute),
                format!("{:.2?}", p.net_wait),
                format!("{:.2?}", p.total()),
            ]);
        }
        t.print();
    }
    println!("  (real-socket numbers: `cargo run -p graphlab-node --release -- spawn \\");
    println!("   --machines 4 --engine both --check` writes BENCH_tcp_smoke.json)");
}

// ---------------------------------------------------------------- driver

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exp = args.first().map(|s| s.as_str()).unwrap_or("help");
    let all: Vec<(&str, fn())> = vec![
        ("fig1a", fig1a),
        ("fig1b", fig1b),
        ("fig1c", fig1c),
        ("fig1d", fig1d),
        ("table1", table1),
        ("fig3a", fig3a),
        ("fig3b", fig3b),
        ("fig4a", || fig4(None)),
        ("fig4b", || fig4(Some(Duration::from_millis(1500)))),
        ("table2", table2),
        ("fig6ab", fig6ab),
        ("fig6c", fig6c),
        ("fig6d", fig6d),
        ("fig7b", fig7b),
        ("fig8a", fig8a),
        ("fig8b", fig8b),
        ("fig8c", fig8c),
        ("fig8d", fig8d),
        ("fig9a", fig9a),
        ("fig9b", fig9b),
        ("eq3", eq3),
        ("abl-versioning", abl_versioning),
        ("abl-batching", abl_batching),
        ("abl-bytes", abl_bytes),
        ("abl-control", abl_control),
        ("abl-recovery", abl_recovery),
        ("abl-priority", abl_priority),
        ("abl-partition", abl_partition),
        ("phases", phases),
    ];
    match exp {
        "all" => {
            for (_, f) in &all {
                f();
            }
        }
        "help" | "--help" | "-h" => {
            println!("usage: repro <experiment>|all");
            println!("experiments:");
            for (name, _) in &all {
                println!("  {name}");
            }
        }
        other => match all.iter().find(|(n, _)| *n == other) {
            Some((_, f)) => f(),
            None => {
                eprintln!("unknown experiment {other}; try `repro help`");
                std::process::exit(2);
            }
        },
    }
    // Persist every table printed this run (no-op for `help`).
    match graphlab_bench::report::write_json("BENCH_repro.json") {
        Ok(true) => println!("\ntables written to BENCH_repro.json"),
        Ok(false) => {}
        Err(e) => eprintln!("failed to write BENCH_repro.json: {e}"),
    }
}
