//! Machine-readable run report: every table the harness prints is also
//! recorded here, and `repro` persists the lot as `BENCH_repro.json`
//! (same spirit as the node harness's `BENCH_tcp_smoke.json`), so runs
//! can be diffed and plotted without scraping stdout.
//!
//! Hand-rolled JSON — the workspace builds with no external dependencies.

use std::sync::Mutex;

#[derive(Clone)]
struct RecordedTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

#[derive(Clone)]
struct Experiment {
    id: String,
    what: String,
    paper: String,
    tables: Vec<RecordedTable>,
}

static REPORT: Mutex<Vec<Experiment>> = Mutex::new(Vec::new());

/// Opens a new experiment section; subsequent [`crate::Table::print`]
/// calls are recorded under it. The harness's `banner()` calls this.
pub fn begin_experiment(id: &str, what: &str, paper: &str) {
    REPORT.lock().unwrap().push(Experiment {
        id: id.to_string(),
        what: what.to_string(),
        paper: paper.to_string(),
        tables: Vec::new(),
    });
}

/// Records a printed table under the current experiment. Tables printed
/// before any [`begin_experiment`] (e.g. from unit tests) are dropped.
pub fn record_table(headers: &[String], rows: &[Vec<String>]) {
    if let Some(exp) = REPORT.lock().unwrap().last_mut() {
        exp.tables.push(RecordedTable { headers: headers.to_vec(), rows: rows.to_vec() });
    }
}

/// Discards everything recorded so far (test isolation).
pub fn reset() {
    REPORT.lock().unwrap().clear();
}

/// Renders the recorded experiments as JSON, or `None` when nothing was
/// recorded (so `repro help` writes no file).
pub fn to_json() -> Option<String> {
    let report = REPORT.lock().unwrap();
    if report.is_empty() {
        return None;
    }
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"graphlab-repro-tables-v1\",\n  \"experiments\": [");
    for (i, exp) in report.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"id\": {},\n", json_str(&exp.id)));
        out.push_str(&format!("      \"what\": {},\n", json_str(&exp.what)));
        out.push_str(&format!("      \"paper\": {},\n", json_str(&exp.paper)));
        out.push_str("      \"tables\": [");
        for (j, t) in exp.tables.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n        {\n          \"headers\": ");
            out.push_str(&json_str_array(&t.headers));
            out.push_str(",\n          \"rows\": [");
            for (k, row) in t.rows.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str("\n            ");
                out.push_str(&json_str_array(row));
            }
            if !t.rows.is_empty() {
                out.push_str("\n          ");
            }
            out.push_str("]\n        }");
        }
        if !exp.tables.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    Some(out)
}

/// Writes the report to `path` when anything was recorded; returns whether
/// a file was written.
pub fn write_json(path: &str) -> std::io::Result<bool> {
    match to_json() {
        Some(json) => {
            std::fs::write(path, json)?;
            Ok(true)
        }
        None => Ok(false),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", cells.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so the suite shares it; this lock
    // serialises the tests that touch it.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn empty_report_writes_nothing() {
        let _g = TEST_GUARD.lock().unwrap();
        reset();
        assert!(to_json().is_none());
    }

    #[test]
    fn records_tables_under_experiments() {
        let _g = TEST_GUARD.lock().unwrap();
        reset();
        begin_experiment("fig1a", "async vs sync", "shape claim");
        crate::Table::new(&["col"]).row(vec!["v1".into()]).print();
        begin_experiment("table2", "second", "другое");
        let json = to_json().expect("non-empty");
        reset();
        assert!(json.contains("\"schema\": \"graphlab-repro-tables-v1\""));
        assert!(json.contains("\"id\": \"fig1a\""));
        assert!(json.contains("\"headers\": [\"col\"]"));
        assert!(json.contains("[\"v1\"]"));
        assert!(json.contains("\"id\": \"table2\""));
        // Tables attach to the experiment open at print time.
        let fig1a_pos = json.find("fig1a").unwrap();
        let v1_pos = json.find("\"v1\"").unwrap();
        let table2_pos = json.find("table2").unwrap();
        assert!(fig1a_pos < v1_pos && v1_pos < table2_pos);
    }

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        let _g = TEST_GUARD.lock().unwrap();
        assert_eq!(json_str("a\"b\\c\nd\te"), "\"a\\\"b\\\\c\\nd\\te\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_str("≈1.5×"), "\"≈1.5×\""); // UTF-8 passes through
    }
}
