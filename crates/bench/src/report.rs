//! Machine-readable run report: every table the harness prints is also
//! recorded here, and `repro` persists the lot as `BENCH_repro.json`
//! (same spirit as the node harness's `BENCH_tcp_smoke.json`), so runs
//! can be diffed and plotted without scraping stdout.
//!
//! Hand-rolled JSON — the workspace builds with no external dependencies.

use std::sync::Mutex;

#[derive(Clone)]
struct RecordedTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

#[derive(Clone)]
struct Experiment {
    id: String,
    what: String,
    paper: String,
    tables: Vec<RecordedTable>,
}

static REPORT: Mutex<Vec<Experiment>> = Mutex::new(Vec::new());

/// Opens a new experiment section; subsequent [`crate::Table::print`]
/// calls are recorded under it. The harness's `banner()` calls this.
pub fn begin_experiment(id: &str, what: &str, paper: &str) {
    REPORT.lock().unwrap().push(Experiment {
        id: id.to_string(),
        what: what.to_string(),
        paper: paper.to_string(),
        tables: Vec::new(),
    });
}

/// Records a printed table under the current experiment. Tables printed
/// before any [`begin_experiment`] (e.g. from unit tests) are dropped.
pub fn record_table(headers: &[String], rows: &[Vec<String>]) {
    if let Some(exp) = REPORT.lock().unwrap().last_mut() {
        exp.tables.push(RecordedTable { headers: headers.to_vec(), rows: rows.to_vec() });
    }
}

/// Discards everything recorded so far (test isolation).
pub fn reset() {
    REPORT.lock().unwrap().clear();
}

/// Renders the recorded experiments as JSON, or `None` when nothing was
/// recorded (so `repro help` writes no file).
pub fn to_json() -> Option<String> {
    let report = REPORT.lock().unwrap();
    if report.is_empty() {
        return None;
    }
    Some(render(&report))
}

fn render(report: &[Experiment]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"graphlab-repro-tables-v1\",\n  \"experiments\": [");
    for (i, exp) in report.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"id\": {},\n", json_str(&exp.id)));
        out.push_str(&format!("      \"what\": {},\n", json_str(&exp.what)));
        out.push_str(&format!("      \"paper\": {},\n", json_str(&exp.paper)));
        out.push_str("      \"tables\": [");
        for (j, t) in exp.tables.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n        {\n          \"headers\": ");
            out.push_str(&json_str_array(&t.headers));
            out.push_str(",\n          \"rows\": [");
            for (k, row) in t.rows.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                out.push_str("\n            ");
                out.push_str(&json_str_array(row));
            }
            if !t.rows.is_empty() {
                out.push_str("\n          ");
            }
            out.push_str("]\n        }");
        }
        if !exp.tables.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the report to `path` when anything was recorded; returns whether
/// a file was written.
///
/// An existing report at `path` is **merged by experiment id**, not
/// overwritten: `repro -- <one-experiment>` refreshes that experiment's
/// tables and leaves every other experiment's recorded numbers in place
/// (previously a partial run silently dropped them). Experiments keep the
/// file's order; new ids append in run order. A file that does not parse
/// as our own schema is replaced wholesale.
pub fn write_json(path: &str) -> std::io::Result<bool> {
    let fresh = REPORT.lock().unwrap().clone();
    if fresh.is_empty() {
        return Ok(false);
    }
    let mut merged: Vec<Experiment> = std::fs::read_to_string(path)
        .ok()
        .and_then(|old| parse_experiments(&old))
        .unwrap_or_default();
    for exp in fresh {
        match merged.iter_mut().find(|e| e.id == exp.id) {
            Some(slot) => *slot = exp,
            None => merged.push(exp),
        }
    }
    std::fs::write(path, render(&merged))?;
    Ok(true)
}

// ---------------------------------------------------------------------
// Reader for the report's own schema (merge support)
// ---------------------------------------------------------------------

/// Minimal JSON value — only the shapes [`render`] emits (strings, arrays,
/// objects). Anything else fails the parse and the merge degrades to a
/// plain overwrite.
enum Json {
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn parse_experiments(text: &str) -> Option<Vec<Experiment>> {
    let root = JsonParser { s: text.as_bytes(), i: 0 }.document()?;
    if root.get("schema")?.as_str()? != "graphlab-repro-tables-v1" {
        return None;
    }
    let mut out = Vec::new();
    for exp in root.get("experiments")?.as_arr()? {
        let strings = |arr: &[Json]| -> Option<Vec<String>> {
            arr.iter().map(|c| c.as_str().map(str::to_string)).collect()
        };
        let mut tables = Vec::new();
        for t in exp.get("tables")?.as_arr()? {
            let headers = strings(t.get("headers")?.as_arr()?)?;
            let rows = t
                .get("rows")?
                .as_arr()?
                .iter()
                .map(|r| strings(r.as_arr()?))
                .collect::<Option<Vec<_>>>()?;
            tables.push(RecordedTable { headers, rows });
        }
        out.push(Experiment {
            id: exp.get("id")?.as_str()?.to_string(),
            what: exp.get("what")?.as_str()?.to_string(),
            paper: exp.get("paper")?.as_str()?.to_string(),
            tables,
        });
    }
    Some(out)
}

struct JsonParser<'a> {
    s: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn document(mut self) -> Option<Json> {
        let v = self.value()?;
        self.ws();
        if self.i == self.s.len() {
            Some(v)
        } else {
            None
        }
    }

    fn ws(&mut self) {
        while self.s.get(self.i).is_some_and(u8::is_ascii_whitespace) {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.ws();
        if self.s.get(self.i) == Some(&b) {
            self.i += 1;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        self.ws();
        match self.s.get(self.i)? {
            b'"' => self.string().map(Json::Str),
            b'[' => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.s.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return Some(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    match self.s.get(self.i)? {
                        b',' => self.i += 1,
                        b']' => {
                            self.i += 1;
                            return Some(Json::Arr(items));
                        }
                        _ => return None,
                    }
                }
            }
            b'{' => {
                self.i += 1;
                let mut fields = Vec::new();
                self.ws();
                if self.s.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return Some(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    fields.push((key, self.value()?));
                    self.ws();
                    match self.s.get(self.i)? {
                        b',' => self.i += 1,
                        b'}' => {
                            self.i += 1;
                            return Some(Json::Obj(fields));
                        }
                        _ => return None,
                    }
                }
            }
            _ => None,
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.s.get(self.i)? {
                b'"' => {
                    self.i += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.s.get(self.i)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self.s.get(self.i + 1..self.i + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.i += 4;
                        }
                        _ => return None,
                    }
                    self.i += 1;
                }
                _ => {
                    // Copy one UTF-8 scalar (multi-byte sequences intact).
                    let rest = std::str::from_utf8(&self.s[self.i..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_str_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", cells.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so the suite shares it; this lock
    // serialises the tests that touch it.
    static TEST_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn empty_report_writes_nothing() {
        let _g = TEST_GUARD.lock().unwrap();
        reset();
        assert!(to_json().is_none());
    }

    #[test]
    fn records_tables_under_experiments() {
        let _g = TEST_GUARD.lock().unwrap();
        reset();
        begin_experiment("fig1a", "async vs sync", "shape claim");
        crate::Table::new(&["col"]).row(vec!["v1".into()]).print();
        begin_experiment("table2", "second", "другое");
        let json = to_json().expect("non-empty");
        reset();
        assert!(json.contains("\"schema\": \"graphlab-repro-tables-v1\""));
        assert!(json.contains("\"id\": \"fig1a\""));
        assert!(json.contains("\"headers\": [\"col\"]"));
        assert!(json.contains("[\"v1\"]"));
        assert!(json.contains("\"id\": \"table2\""));
        // Tables attach to the experiment open at print time.
        let fig1a_pos = json.find("fig1a").unwrap();
        let v1_pos = json.find("\"v1\"").unwrap();
        let table2_pos = json.find("table2").unwrap();
        assert!(fig1a_pos < v1_pos && v1_pos < table2_pos);
    }

    #[test]
    fn parse_roundtrips_own_output() {
        let _g = TEST_GUARD.lock().unwrap();
        reset();
        begin_experiment("fig1a", "async vs \"sync\"", "claim\nwith newline");
        crate::Table::new(&["col", "≈"]).row(vec!["v1".into(), "1.5×".into()]).print();
        let json = to_json().expect("non-empty");
        reset();
        let back = parse_experiments(&json).expect("own output parses");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].id, "fig1a");
        assert_eq!(back[0].what, "async vs \"sync\"");
        assert_eq!(back[0].paper, "claim\nwith newline");
        assert_eq!(back[0].tables.len(), 1);
        assert_eq!(back[0].tables[0].headers, vec!["col", "≈"]);
        assert_eq!(back[0].tables[0].rows, vec![vec!["v1".to_string(), "1.5×".to_string()]]);
        assert_eq!(render(&back), json, "parse → render is the identity");
    }

    #[test]
    fn write_json_merges_by_experiment_id() {
        let _g = TEST_GUARD.lock().unwrap();
        let dir = std::env::temp_dir().join("graphlab_report_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_repro.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        // First run records two experiments.
        reset();
        begin_experiment("fig1a", "first", "p1");
        crate::Table::new(&["a"]).row(vec!["old".into()]).print();
        begin_experiment("abl-bytes", "second", "p2");
        crate::Table::new(&["b"]).row(vec!["kept".into()]).print();
        assert!(write_json(path).unwrap());

        // Second (partial) run re-records only one id plus a new one: the
        // shared id is refreshed, the untouched one survives, the new one
        // appends.
        reset();
        begin_experiment("fig1a", "first again", "p1");
        crate::Table::new(&["a"]).row(vec!["new".into()]).print();
        begin_experiment("abl-control", "third", "p3");
        assert!(write_json(path).unwrap());
        reset();

        let merged = parse_experiments(&std::fs::read_to_string(path).unwrap()).unwrap();
        let ids: Vec<&str> = merged.iter().map(|e| e.id.as_str()).collect();
        assert_eq!(ids, vec!["fig1a", "abl-bytes", "abl-control"]);
        assert_eq!(merged[0].what, "first again");
        assert_eq!(merged[0].tables[0].rows, vec![vec!["new".to_string()]]);
        assert_eq!(merged[1].tables[0].rows, vec![vec!["kept".to_string()]]);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn write_json_replaces_unparseable_files() {
        let _g = TEST_GUARD.lock().unwrap();
        let dir = std::env::temp_dir().join("graphlab_report_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_corrupt.json");
        let path = path.to_str().unwrap();
        std::fs::write(path, "{ not json ]").unwrap();

        reset();
        begin_experiment("fig1a", "fresh", "p");
        assert!(write_json(path).unwrap());
        reset();

        let back = parse_experiments(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].id, "fig1a");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        let _g = TEST_GUARD.lock().unwrap();
        assert_eq!(json_str("a\"b\\c\nd\te"), "\"a\\\"b\\\\c\\nd\\te\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_str("≈1.5×"), "\"≈1.5×\""); // UTF-8 passes through
    }
}
