//! Classic graph-analytics update functions: single-source shortest paths
//! and connected components.
//!
//! Not part of the paper's evaluation, but the canonical demonstrations of
//! dynamic scheduling (both converge asymmetrically: most vertices settle
//! after one or two updates while the frontier keeps moving), and the
//! algorithms downstream users of a graph-parallel framework reach for
//! first. Both are *confluent* (unique fixpoint), so they double as
//! serializability test oracles for the engines.

use graphlab_core::{UpdateContext, UpdateFunction};
use graphlab_graph::{DataGraph, EdgeDir, VertexId};

/// SSSP vertex state: current tentative distance (`f64::INFINITY` =
/// unreached).
pub type Distance = f64;

/// Single-source shortest paths over non-negative edge weights.
///
/// Scope semantics: a vertex pulls `min(nbr distance + edge weight)` over
/// in-edges (and out-edges when `undirected`), writes its improved
/// distance, and schedules out-neighbours whose paths may improve —
/// scheduling priority is the size of the improvement.
#[derive(Clone, Debug)]
pub struct Sssp {
    /// Treat every edge as bidirectional.
    pub undirected: bool,
}

impl UpdateFunction<Distance, f64> for Sssp {
    fn update(&self, ctx: &mut UpdateContext<'_, Distance, f64>) {
        let mut best = *ctx.vertex_data();
        for i in 0..ctx.num_neighbors() {
            let usable = self.undirected || ctx.nbr_dir(i) == EdgeDir::In;
            if usable {
                let cand = ctx.nbr_data(i) + ctx.edge_data(i);
                if cand < best {
                    best = cand;
                }
            }
        }
        if best < *ctx.vertex_data() {
            *ctx.vertex_data_mut() = best;
        }
        // Schedule any neighbour whose tentative distance this vertex can
        // still improve (covers the source, whose own distance never
        // changes but whose neighbours must be reached).
        for i in 0..ctx.num_neighbors() {
            let fwd = self.undirected || ctx.nbr_dir(i) == EdgeDir::Out;
            if fwd {
                let gap = *ctx.nbr_data(i) - (best + ctx.edge_data(i));
                if gap > 0.0 {
                    ctx.schedule_nbr(i, gap);
                }
            }
        }
    }
}

/// Initialises distances: 0 at `source`, +∞ elsewhere.
pub fn init_sssp(graph: &mut DataGraph<Distance, f64>, source: VertexId) {
    for i in 0..graph.num_vertices() {
        *graph.vertex_data_mut(VertexId::from(i)) = f64::INFINITY;
    }
    *graph.vertex_data_mut(source) = 0.0;
}

/// Dijkstra reference implementation (test oracle).
pub fn dijkstra(graph: &DataGraph<Distance, f64>, source: VertexId, undirected: bool) -> Vec<f64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = graph.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    dist[source.index()] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((ordered_float(0.0), source)));
    while let Some(Reverse((d, v))) = heap.pop() {
        let d = f64::from_bits(d);
        if d > dist[v.index()] {
            continue;
        }
        for e in graph.adj(v) {
            let usable = undirected || e.dir == EdgeDir::Out;
            if usable {
                let nd = d + graph.edge_data(e.edge);
                if nd < dist[e.nbr.index()] {
                    dist[e.nbr.index()] = nd;
                    heap.push(Reverse((ordered_float(nd), e.nbr)));
                }
            }
        }
    }
    dist
}

#[inline]
fn ordered_float(f: f64) -> u64 {
    debug_assert!(f >= 0.0);
    f.to_bits()
}

/// Connected components by label propagation: every vertex adopts the
/// minimum component id in its neighbourhood (ignoring edge direction).
pub struct ConnectedComponents;

impl UpdateFunction<f64, f64> for ConnectedComponents {
    fn update(&self, ctx: &mut UpdateContext<'_, f64, f64>) {
        let mut best = *ctx.vertex_data();
        for i in 0..ctx.num_neighbors() {
            best = best.min(*ctx.nbr_data(i));
        }
        if best < *ctx.vertex_data() {
            *ctx.vertex_data_mut() = best;
            for i in 0..ctx.num_neighbors() {
                ctx.schedule_nbr(i, 1.0);
            }
        }
    }
}

/// Initialises component ids to the vertex id.
pub fn init_components(graph: &mut DataGraph<f64, f64>) {
    for i in 0..graph.num_vertices() {
        *graph.vertex_data_mut(VertexId::from(i)) = i as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_core::{GraphLab, InitialSchedule, SchedulerKind};
    use graphlab_graph::GraphBuilder;

    fn weighted_graph() -> DataGraph<f64, f64> {
        // 0 →1→ 1 →2→ 2 ; 0 →10→ 2 ; 2 →1→ 3
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..4).map(|_| b.add_vertex(0.0)).collect();
        b.add_edge(v[0], v[1], 1.0).unwrap();
        b.add_edge(v[1], v[2], 2.0).unwrap();
        b.add_edge(v[0], v[2], 10.0).unwrap();
        b.add_edge(v[2], v[3], 1.0).unwrap();
        b.build()
    }

    #[test]
    fn sssp_matches_dijkstra_directed() {
        let mut g = weighted_graph();
        init_sssp(&mut g, VertexId(0));
        let oracle = dijkstra(&g, VertexId(0), false);
        GraphLab::on(&mut g)
            .scheduler(SchedulerKind::Priority)
            .initial(InitialSchedule::Vertices(vec![(VertexId(0), 1.0)]))
            .run(Sssp { undirected: false });
        for v in g.vertices() {
            assert_eq!(*g.vertex_data(v), oracle[v.index()], "vertex {v}");
        }
        assert_eq!(*g.vertex_data(VertexId(3)), 4.0);
    }

    #[test]
    fn sssp_matches_dijkstra_on_random_graphs() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        for trial in 0..10 {
            let n = 30usize;
            let mut b = GraphBuilder::new();
            let vs: Vec<_> = (0..n).map(|_| b.add_vertex(0.0)).collect();
            for _ in 0..80 {
                let s = rng.random_range(0..n);
                let d = rng.random_range(0..n);
                if s != d {
                    b.add_edge(vs[s], vs[d], rng.random_range(1..20) as f64).unwrap();
                }
            }
            let mut g = b.build();
            init_sssp(&mut g, VertexId(0));
            let oracle = dijkstra(&g, VertexId(0), true);
            GraphLab::on(&mut g)
                .initial(InitialSchedule::Vertices(vec![(VertexId(0), 1.0)]))
                .run(Sssp { undirected: true });
            for v in g.vertices() {
                assert_eq!(*g.vertex_data(v), oracle[v.index()], "trial {trial} vertex {v}");
            }
        }
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(0.0);
        let _lone = b.add_vertex(0.0);
        let c = b.add_vertex(0.0);
        b.add_edge(a, c, 2.0).unwrap();
        let mut g = b.build();
        init_sssp(&mut g, VertexId(0));
        GraphLab::on(&mut g).run(Sssp { undirected: false });
        assert_eq!(*g.vertex_data(VertexId(1)), f64::INFINITY);
        assert_eq!(*g.vertex_data(VertexId(2)), 2.0);
    }

    #[test]
    fn connected_components_two_islands() {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..6).map(|_| b.add_vertex(0.0)).collect();
        // island {0,1,2}, island {3,4,5}
        b.add_edge(vs[0], vs[1], 0.0).unwrap();
        b.add_edge(vs[1], vs[2], 0.0).unwrap();
        b.add_edge(vs[3], vs[4], 0.0).unwrap();
        b.add_edge(vs[4], vs[5], 0.0).unwrap();
        let mut g = b.build();
        init_components(&mut g);
        GraphLab::on(&mut g).run(ConnectedComponents);
        for i in 0..3u32 {
            assert_eq!(*g.vertex_data(VertexId(i)), 0.0);
        }
        for i in 3..6u32 {
            assert_eq!(*g.vertex_data(VertexId(i)), 3.0);
        }
    }
}
