//! Video co-segmentation (§5.2).
//!
//! Frames are coarsened to a grid of super-pixels carrying colour/texture
//! statistics (here a scalar feature); super-pixels are connected in space
//! and time into a large 3D grid. Segmentation labels are inferred with
//! loopy BP whose node potentials come from a Gaussian mixture model —
//! jointly estimated through the sync operation ([`crate::gmm::GmmSync`]),
//! forming an EM loop.
//!
//! The update function (a) refreshes the vertex prior from the current
//! GMM globals, (b) runs the residual-BP message update, and (c)
//! reschedules neighbours by residual — exactly the state-of-the-art
//! adaptive schedule the paper deploys on the locking engine with the
//! approximate priority scheduler.

use bytes::{Bytes, BytesMut};
use graphlab_core::{UpdateContext, UpdateFunction};
use graphlab_graph::EdgeDir;
use graphlab_net::codec::Codec;

use crate::gmm::{GmmSync, GMM_GLOBAL};
use crate::lbp::BpEdge;

/// A super-pixel vertex.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct CosegVertex {
    /// Observed colour/texture statistic of the super-pixel.
    pub feature: f64,
    /// Node potential (GMM likelihoods, refreshed from globals).
    pub prior: Vec<f64>,
    /// Current belief over segmentation labels.
    pub belief: Vec<f64>,
}

impl CosegVertex {
    /// New super-pixel over `k` labels.
    ///
    /// The initial belief is softly binned by the feature value (component
    /// `k` is centred at `(k + 0.5)/K`): without this symmetry breaking the
    /// EM loop starts with identical mixture components and can never
    /// separate them.
    pub fn new(feature: f64, k: usize) -> Self {
        let mut belief: Vec<f64> = (0..k)
            .map(|i| {
                let center = (i as f64 + 0.5) / k as f64;
                let d = feature - center;
                (-d * d / 0.05).exp().max(1e-6)
            })
            .collect();
        let s: f64 = belief.iter().sum();
        for b in belief.iter_mut() {
            *b /= s;
        }
        CosegVertex { feature, prior: vec![1.0; k], belief }
    }

    /// MAP segmentation label.
    pub fn map_label(&self) -> usize {
        self.belief
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl Codec for CosegVertex {
    fn encode(&self, buf: &mut BytesMut) {
        self.feature.encode(buf);
        self.prior.encode(buf);
        self.belief.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(CosegVertex {
            feature: f64::decode(buf)?,
            prior: Vec::<f64>::decode(buf)?,
            belief: Vec::<f64>::decode(buf)?,
        })
    }
}

/// The CoSeg update function: GMM-prior refresh + residual BP step.
#[derive(Clone, Debug)]
pub struct CosegUpdate {
    /// Number of segmentation labels.
    pub labels: usize,
    /// Potts smoothing strength (spatial/temporal coherence).
    pub smoothing: f64,
    /// Residual threshold for rescheduling.
    pub epsilon: f64,
}

impl Default for CosegUpdate {
    fn default() -> Self {
        CosegUpdate { labels: 2, smoothing: 2.0, epsilon: 1e-4 }
    }
}

fn normalize(v: &mut [f64]) {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for x in v.iter_mut() {
            *x /= s;
        }
    } else {
        let u = 1.0 / v.len() as f64;
        for x in v.iter_mut() {
            *x = u;
        }
    }
}

impl UpdateFunction<CosegVertex, BpEdge> for CosegUpdate {
    fn update(&self, ctx: &mut UpdateContext<'_, CosegVertex, BpEdge>) {
        let k = self.labels;

        // (a) refresh the node prior from the GMM globals, if published.
        if let Some(global) = ctx.global(GMM_GLOBAL) {
            let comps = GmmSync::unpack(global.as_slice());
            let feature = ctx.vertex_data().feature;
            let mut prior: Vec<f64> = comps
                .iter()
                .map(|&(w, mean, var)| (w * GmmSync::density(feature, mean, var)).max(1e-12))
                .collect();
            normalize(&mut prior);
            ctx.vertex_data_mut().prior = prior;
        }

        // (b) belief = prior × incoming messages.
        let deg = ctx.num_neighbors();
        let mut belief = ctx.vertex_data().prior.clone();
        for i in 0..deg {
            let e = ctx.edge_data(i);
            let incoming = if ctx.nbr_dir(i) == EdgeDir::In { &e.msg_fwd } else { &e.msg_rev };
            for (b, m) in belief.iter_mut().zip(incoming) {
                *b *= m;
            }
        }
        normalize(&mut belief);
        ctx.vertex_data_mut().belief = belief.clone();

        // (c) outgoing messages with residual scheduling.
        for i in 0..deg {
            let (incoming, old_out): (Vec<f64>, Vec<f64>) = {
                let e = ctx.edge_data(i);
                if ctx.nbr_dir(i) == EdgeDir::In {
                    (e.msg_fwd.clone(), e.msg_rev.clone())
                } else {
                    (e.msg_rev.clone(), e.msg_fwd.clone())
                }
            };
            let mut cavity: Vec<f64> = belief
                .iter()
                .zip(&incoming)
                .map(|(&b, &m)| if m > 1e-300 { b / m } else { 0.0 })
                .collect();
            normalize(&mut cavity);
            // Potts convolution.
            let total: f64 = cavity.iter().sum();
            let mut out: Vec<f64> =
                cavity.iter().map(|&px| total - px + self.smoothing * px).collect();
            normalize(&mut out);
            let residual: f64 = out.iter().zip(&old_out).map(|(a, b)| (a - b).abs()).sum();
            {
                let inbound = ctx.nbr_dir(i) == EdgeDir::In;
                let e = ctx.edge_data_mut(i);
                if inbound {
                    e.msg_rev = out;
                } else {
                    e.msg_fwd = out;
                }
            }
            if residual > self.epsilon {
                ctx.schedule_nbr(i, residual);
            }
        }
        let _ = k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmm::{GmmSync, GMM_GLOBAL};
    use graphlab_core::{GraphLab, SyncCadence};
    use graphlab_graph::{DataGraph, GraphBuilder};

    /// A 1-D "video": features near 0.2 (label 0) then near 0.8 (label 1).
    fn strip(n: usize) -> DataGraph<CosegVertex, BpEdge> {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n)
            .map(|i| {
                let f = if i < n / 2 { 0.2 + 0.01 * (i % 3) as f64 } else { 0.8 - 0.01 * (i % 3) as f64 };
                b.add_vertex(CosegVertex::new(f, 2))
            })
            .collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], BpEdge::uniform(2)).unwrap();
        }
        b.build()
    }

    #[test]
    fn codec_roundtrip() {
        let v = CosegVertex::new(0.42, 3);
        let enc = graphlab_net::codec::encode_to_bytes(&v);
        assert_eq!(graphlab_net::codec::decode_from::<CosegVertex>(enc), Some(v));
    }

    #[test]
    fn em_plus_bp_segments_the_strip() {
        let mut g = strip(16);
        let update = CosegUpdate { labels: 2, smoothing: 2.0, epsilon: 1e-6 };
        GraphLab::on(&mut g)
            .sync(GMM_GLOBAL, GmmSync::new(2), SyncCadence::Updates(8))
            .max_updates(20_000)
            .run(update);
        // All left vertices share a label, all right vertices the other.
        let left = g.vertex_data(graphlab_graph::VertexId(0)).map_label();
        let right = g.vertex_data(graphlab_graph::VertexId(15)).map_label();
        assert_ne!(left, right, "two segments must emerge");
        for i in 0..8u32 {
            assert_eq!(g.vertex_data(graphlab_graph::VertexId(i)).map_label(), left, "v{i}");
        }
        for i in 8..16u32 {
            assert_eq!(g.vertex_data(graphlab_graph::VertexId(i)).map_label(), right, "v{i}");
        }
    }

    #[test]
    fn prior_refresh_uses_globals() {
        let mut g = strip(4);
        let update = CosegUpdate::default();
        GraphLab::on(&mut g)
            .sync(GMM_GLOBAL, GmmSync::new(2), SyncCadence::Updates(2))
            .max_updates(100)
            .run(update);
        // Priors should no longer be the uninformative all-ones.
        let p = &g.vertex_data(graphlab_graph::VertexId(0)).prior;
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "normalised prior");
        assert!((p[0] - p[1]).abs() > 1e-6, "informative prior");
    }
}
