//! Alternating least squares collaborative filtering (§5.1, Netflix).
//!
//! The sparse rating matrix `R` defines a bipartite graph: users on one
//! side, movies on the other, edges carrying ratings. Vertex data is the
//! `d`-dimensional latent factor row of `U` (users) or column of `V`
//! (movies); the update recomputes the factor by solving the regularised
//! least-squares problem over the neighbours' factors:
//!
//! ```text
//! x_v ← argmin_x Σ_{u∈N(v)} (r_uv − xᵀ x_u)² + λ‖x‖²
//!     = (λI + Σ x_u x_uᵀ)⁻¹ (Σ r_uv x_u)
//! ```
//!
//! `O(d³ + deg)` per update (Table 2). The bipartite graph is
//! two-colourable and edge consistency suffices for serializability, so
//! the chromatic engine applies; the *dynamic* variant schedules
//! neighbours by residual (Fig. 9(a)). Running under vertex consistency
//! instead allows races — the instability demonstrated in Fig. 1(d).

use bytes::{Bytes, BytesMut};
use graphlab_core::{UpdateContext, UpdateFunction};
use graphlab_graph::DataGraph;
use graphlab_net::codec::Codec;

use crate::linalg::{cholesky_solve, dist2, dot, SymMatrix};

/// Latent factor vector attached to every user/movie vertex.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct AlsVertex {
    /// The `d`-dimensional latent factors.
    pub factors: Vec<f64>,
}

impl AlsVertex {
    /// Deterministic pseudo-random initial factors in `[0, 1/√d]`.
    pub fn seeded(id: u64, d: usize) -> Self {
        let mut state = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let factors = (0..d)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 11) as f64 / (1u64 << 53) as f64) / (d as f64).sqrt()
            })
            .collect();
        AlsVertex { factors }
    }
}

impl Codec for AlsVertex {
    fn encode(&self, buf: &mut BytesMut) {
        self.factors.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(AlsVertex { factors: Vec::<f64>::decode(buf)? })
    }
}

/// The ALS update function.
#[derive(Clone, Debug)]
pub struct Als {
    /// Latent dimensionality `d`.
    pub d: usize,
    /// Ridge regularisation λ.
    pub lambda: f64,
    /// Residual threshold for dynamic scheduling.
    pub epsilon: f64,
    /// Adaptive scheduling (Fig. 9(a) "Dynamic (GraphLab)" vs BSP).
    pub dynamic: bool,
}

impl Default for Als {
    fn default() -> Self {
        Als { d: 5, lambda: 0.05, epsilon: 1e-3, dynamic: true }
    }
}

impl UpdateFunction<AlsVertex, f64> for Als {
    fn update(&self, ctx: &mut UpdateContext<'_, AlsVertex, f64>) {
        let deg = ctx.num_neighbors();
        if deg == 0 {
            return;
        }
        let mut a = SymMatrix::scaled_identity(self.d, self.lambda * deg as f64);
        let mut b = vec![0.0; self.d];
        for i in 0..deg {
            let xu = &ctx.nbr_data(i).factors;
            debug_assert_eq!(xu.len(), self.d);
            a.add_outer(xu);
            let r = *ctx.edge_data(i);
            for (bj, xj) in b.iter_mut().zip(xu) {
                *bj += r * xj;
            }
        }
        if cholesky_solve(a, &mut b).is_err() {
            return; // degenerate neighbourhood; keep the old factors
        }
        let residual = dist2(&b, &ctx.vertex_data().factors).sqrt();
        ctx.vertex_data_mut().factors = b;
        if self.dynamic && residual > self.epsilon {
            for i in 0..deg {
                ctx.schedule_nbr(i, residual);
            }
        }
    }
}

/// Root-mean-square prediction error over all rating edges — the training
/// error curves of Fig. 1(d) / Fig. 9(a).
pub fn train_rmse(graph: &DataGraph<AlsVertex, f64>) -> f64 {
    let mut se = 0.0;
    let mut n = 0usize;
    for e in graph.edges() {
        let (u, v) = graph.edge_endpoints(e);
        let pred = dot(&graph.vertex_data(u).factors, &graph.vertex_data(v).factors);
        let err = graph.edge_data(e) - pred;
        se += err * err;
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (se / n as f64).sqrt()
}

/// RMSE on held-out `(user, movie, rating)` triples (the test error of
/// Fig. 9(a)).
pub fn test_rmse(
    graph: &DataGraph<AlsVertex, f64>,
    held_out: &[(graphlab_graph::VertexId, graphlab_graph::VertexId, f64)],
) -> f64 {
    if held_out.is_empty() {
        return 0.0;
    }
    let se: f64 = held_out
        .iter()
        .map(|&(u, v, r)| {
            let pred = dot(&graph.vertex_data(u).factors, &graph.vertex_data(v).factors);
            (r - pred) * (r - pred)
        })
        .sum();
    (se / held_out.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_core::GraphLab;
    use graphlab_graph::GraphBuilder;

    /// Tiny planted rank-1 rating matrix: r_uv = s_u * t_v.
    fn planted(users: usize, movies: usize, d: usize) -> DataGraph<AlsVertex, f64> {
        let mut b = GraphBuilder::new();
        let uids: Vec<_> =
            (0..users).map(|i| b.add_vertex(AlsVertex::seeded(i as u64, d))).collect();
        let mids: Vec<_> = (0..movies)
            .map(|j| b.add_vertex(AlsVertex::seeded(1000 + j as u64, d)))
            .collect();
        for (i, &u) in uids.iter().enumerate() {
            for (j, &m) in mids.iter().enumerate() {
                let s = 1.0 + (i as f64) * 0.3;
                let t = 0.5 + (j as f64) * 0.2;
                b.add_edge(u, m, s * t).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn codec_roundtrip() {
        let v = AlsVertex { factors: vec![1.5, -2.5, 0.0] };
        let enc = graphlab_net::codec::encode_to_bytes(&v);
        assert_eq!(graphlab_net::codec::decode_from::<AlsVertex>(enc), Some(v));
    }

    #[test]
    fn seeded_factors_are_deterministic_and_bounded() {
        let a = AlsVertex::seeded(7, 10);
        let b = AlsVertex::seeded(7, 10);
        assert_eq!(a, b);
        assert!(a.factors.iter().all(|&f| (0.0..=1.0).contains(&f)));
        assert_ne!(AlsVertex::seeded(8, 10), a);
    }

    #[test]
    fn als_drives_training_error_down() {
        let mut g = planted(6, 5, 2);
        let before = train_rmse(&g);
        let als = Als { d: 2, lambda: 0.01, epsilon: 1e-6, dynamic: true };
        let out = GraphLab::on(&mut g).max_updates(5000).run(als);
        let after = train_rmse(&g);
        assert!(out.metrics.updates >= 11);
        assert!(after < before * 0.05, "rmse {before} -> {after}");
        assert!(after < 0.05, "planted rank-1 should be recovered, rmse {after}");
    }

    #[test]
    fn isolated_vertex_is_a_noop() {
        let mut b = GraphBuilder::new();
        b.add_vertex(AlsVertex::seeded(0, 3));
        let mut g: DataGraph<AlsVertex, f64> = b.build();
        let als = Als { d: 3, ..Default::default() };
        let before = g.vertex_data(graphlab_graph::VertexId(0)).clone();
        GraphLab::on(&mut g).run(als);
        assert_eq!(*g.vertex_data(graphlab_graph::VertexId(0)), before);
    }

    #[test]
    fn test_rmse_on_held_out() {
        let mut g = planted(6, 5, 2);
        let als = Als { d: 2, lambda: 0.01, epsilon: 1e-6, dynamic: true };
        GraphLab::on(&mut g).max_updates(5000).run(als);
        // Held-out entries follow the same rank-1 model.
        let held: Vec<_> = (0..3)
            .map(|i| {
                let s = 1.0 + (i as f64) * 0.3;
                let t = 0.5;
                (graphlab_graph::VertexId(i as u32), graphlab_graph::VertexId(6), s * t)
            })
            .collect();
        let rmse = test_rmse(&g, &held);
        assert!(rmse < 0.1, "held-out rmse {rmse}");
    }
}
