//! # graphlab-apps
//!
//! The three state-of-the-art MLDM applications the paper evaluates (§5),
//! plus the PageRank running example (§3), implemented against the
//! engine-agnostic `graphlab-core` update-function API:
//!
//! - [`pagerank`] — the running example (Alg. 1), static and dynamic.
//! - [`als`] — alternating least squares collaborative filtering
//!   (Netflix, §5.1), with the small dense solver in [`linalg`].
//! - [`lbp`] — loopy belief propagation on pairwise MRFs with residual
//!   (priority) scheduling (§4.2.2 mesh experiment, CoSeg smoothing).
//! - [`gmm`] + [`coseg`] — the video co-segmentation pipeline (§5.2):
//!   LBP + Gaussian mixture likelihoods, EM via the sync operation.
//! - [`coem`] — CoEM label propagation for named entity recognition
//!   (§5.3).
//!
//! Plus two extensions beyond the paper's evaluation:
//!
//! - [`gibbs`] — the chromatic parallel Gibbs sampler the paper cites as
//!   *requiring* serializability (§2, \[12\]).
//! - [`graph_algorithms`] — SSSP and connected components, the canonical
//!   dynamic-scheduling demonstrations.

pub mod als;
pub mod coem;
pub mod coseg;
pub mod gibbs;
pub mod gmm;
pub mod graph_algorithms;
pub mod lbp;
pub mod linalg;
pub mod pagerank;

pub use als::{Als, AlsVertex};
pub use gibbs::{GibbsSampler, GibbsVertex};
pub use graph_algorithms::{ConnectedComponents, Sssp};
pub use coem::{Coem, CoemVertex};
pub use coseg::{CosegUpdate, CosegVertex};
pub use gmm::GmmSync;
pub use lbp::{BpEdge, BpVertex, LoopyBp};
pub use pagerank::{exact_pagerank, l1_error, PageRank};
