//! Minimal dense linear algebra for ALS: symmetric matrices, rank-one
//! updates and an in-place Cholesky solver. The ALS update solves a d×d
//! regularised least-squares system per vertex (`O(d³ + deg)` per update,
//! Table 2), so this is the entire numeric substrate the paper's Netflix
//! experiment needs.

/// Dense symmetric matrix stored row-major (full storage for simplicity).
#[derive(Clone, Debug, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Zero matrix of size `n × n`.
    pub fn zeros(n: usize) -> Self {
        SymMatrix { n, data: vec![0.0; n * n] }
    }

    /// `λ·I`.
    pub fn scaled_identity(n: usize, lambda: f64) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.data[i * n + i] = lambda;
        }
        m
    }

    /// Size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Element write (callers must maintain symmetry themselves).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// `self += x xᵀ` (rank-one update).
    #[allow(clippy::needless_range_loop)]
    pub fn add_outer(&mut self, x: &[f64]) {
        debug_assert_eq!(x.len(), self.n);
        for i in 0..self.n {
            let xi = x[i];
            for j in 0..self.n {
                self.data[i * self.n + j] += xi * x[j];
            }
        }
    }

    /// `self · x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self.get(i, j) * x[j]).sum())
            .collect()
    }
}

/// Error from the dense solver.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NotPositiveDefinite;

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite")
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky
/// (`A = L Lᵀ`), overwriting `b` with `x`. `a` is consumed as scratch.
#[allow(clippy::needless_range_loop)]
pub fn cholesky_solve(mut a: SymMatrix, b: &mut [f64]) -> Result<(), NotPositiveDefinite> {
    let n = a.n;
    debug_assert_eq!(b.len(), n);
    // Factor: lower triangle of `a` becomes L.
    for j in 0..n {
        let mut d = a.get(j, j);
        for k in 0..j {
            let l = a.get(j, k);
            d -= l * l;
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(NotPositiveDefinite);
        }
        let d = d.sqrt();
        a.set(j, j, d);
        for i in j + 1..n {
            let mut v = a.get(i, j);
            for k in 0..j {
                v -= a.get(i, k) * a.get(j, k);
            }
            a.set(i, j, v / d);
        }
    }
    // Forward solve L y = b.
    for i in 0..n {
        let mut v = b[i];
        for k in 0..i {
            v -= a.get(i, k) * b[k];
        }
        b[i] = v / a.get(i, i);
    }
    // Backward solve Lᵀ x = y.
    for i in (0..n).rev() {
        let mut v = b[i];
        for k in i + 1..n {
            v -= a.get(k, i) * b[k];
        }
        b[i] = v / a.get(i, i);
    }
    Ok(())
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance.
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = SymMatrix::scaled_identity(3, 1.0);
        let mut b = vec![1.0, 2.0, 3.0];
        cholesky_solve(a, &mut b).unwrap();
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_known_system() {
        // A = [[4,2],[2,3]], b = [2, 1] -> x = [0.5, 0]
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 4.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 3.0);
        let mut b = vec![2.0, 1.0];
        cholesky_solve(a, &mut b).unwrap();
        assert!((b[0] - 0.5).abs() < 1e-12);
        assert!(b[1].abs() < 1e-12);
    }

    #[test]
    fn roundtrip_random_spd() {
        // Build SPD as λI + Σ xxᵀ, solve, verify residual.
        let mut state = 12345u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for _ in 0..20 {
            let n = 5;
            let mut a = SymMatrix::scaled_identity(n, 0.5);
            for _ in 0..8 {
                let x: Vec<f64> = (0..n).map(|_| rnd()).collect();
                a.add_outer(&x);
            }
            let xtrue: Vec<f64> = (0..n).map(|_| rnd()).collect();
            let mut b = a.mul_vec(&xtrue);
            cholesky_solve(a.clone(), &mut b).unwrap();
            assert!(dist2(&b, &xtrue) < 1e-16, "residual {}", dist2(&b, &xtrue));
        }
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = SymMatrix::zeros(2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 1.0); // eigenvalues 3, -1
        let mut b = vec![1.0, 1.0];
        assert_eq!(cholesky_solve(a, &mut b), Err(NotPositiveDefinite));
    }

    #[test]
    fn outer_product_accumulates() {
        let mut a = SymMatrix::zeros(2);
        a.add_outer(&[1.0, 2.0]);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(1, 1), 4.0);
        a.add_outer(&[1.0, 0.0]);
        assert_eq!(a.get(0, 0), 2.0);
    }

    #[test]
    fn dot_and_dist() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
