//! CoEM label propagation for named entity recognition (§5.3).
//!
//! The data graph is bipartite: noun-phrase vertices on one side, context
//! vertices on the other, an edge wherever a noun-phrase occurred in a
//! context, weighted by the co-occurrence count. Starting from a small
//! seed set of pre-labelled noun-phrases, CoEM alternates between
//! estimating the type distribution of each noun-phrase from its contexts
//! and each context from its noun-phrases — which in GraphLab is a single
//! update function: new distribution = count-weighted average of
//! neighbour distributions.
//!
//! Vertex data is deliberately large (the paper's NER vertices are 816
//! bytes: a dense distribution over types) — this is what makes NER the
//! communication-bound worst case of the evaluation (Fig. 6(b)).

use bytes::{Bytes, BytesMut};
use graphlab_core::{UpdateContext, UpdateFunction};
use graphlab_graph::DataGraph;
use graphlab_net::codec::Codec;

/// A noun-phrase or context vertex.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct CoemVertex {
    /// Estimated distribution over entity types.
    pub dist: Vec<f64>,
    /// Seed vertices keep their label fixed.
    pub seed: bool,
}

impl CoemVertex {
    /// Unlabelled vertex: uniform over `k` types.
    pub fn unlabeled(k: usize) -> Self {
        CoemVertex { dist: vec![1.0 / k as f64; k], seed: false }
    }

    /// Seed vertex pinned to `label`.
    pub fn seed(k: usize, label: usize) -> Self {
        let mut dist = vec![0.0; k];
        dist[label] = 1.0;
        CoemVertex { dist, seed: true }
    }

    /// Most likely type.
    pub fn argmax(&self) -> usize {
        self.dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl Codec for CoemVertex {
    fn encode(&self, buf: &mut BytesMut) {
        self.dist.encode(buf);
        self.seed.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(CoemVertex { dist: Vec::<f64>::decode(buf)?, seed: bool::decode(buf)? })
    }
}

/// The CoEM update function.
#[derive(Clone, Debug)]
pub struct Coem {
    /// Number of entity types.
    pub types: usize,
    /// L1-change threshold for rescheduling neighbours.
    pub epsilon: f64,
    /// Dynamic scheduling on/off.
    pub dynamic: bool,
}

impl Default for Coem {
    fn default() -> Self {
        Coem { types: 4, epsilon: 1e-4, dynamic: true }
    }
}

impl UpdateFunction<CoemVertex, f64> for Coem {
    fn update(&self, ctx: &mut UpdateContext<'_, CoemVertex, f64>) {
        if ctx.vertex_data().seed {
            return;
        }
        let deg = ctx.num_neighbors();
        if deg == 0 {
            return;
        }
        let mut dist = vec![0.0; self.types];
        let mut total_w = 0.0;
        for i in 0..deg {
            let w = *ctx.edge_data(i);
            total_w += w;
            for (d, n) in dist.iter_mut().zip(&ctx.nbr_data(i).dist) {
                *d += w * n;
            }
        }
        if total_w <= 0.0 {
            return;
        }
        for d in dist.iter_mut() {
            *d /= total_w;
        }
        let change: f64 =
            dist.iter().zip(&ctx.vertex_data().dist).map(|(a, b)| (a - b).abs()).sum();
        ctx.vertex_data_mut().dist = dist;
        if self.dynamic && change > self.epsilon {
            for i in 0..deg {
                ctx.schedule_nbr(i, change);
            }
        }
    }
}

/// Classification accuracy against ground-truth labels (`usize::MAX`
/// entries are skipped).
pub fn accuracy(graph: &DataGraph<CoemVertex, f64>, truth: &[usize]) -> f64 {
    let mut correct = 0usize;
    let mut counted = 0usize;
    for v in graph.vertices() {
        let t = truth[v.index()];
        if t == usize::MAX {
            continue;
        }
        counted += 1;
        if graph.vertex_data(v).argmax() == t {
            correct += 1;
        }
    }
    if counted == 0 {
        return 1.0;
    }
    correct as f64 / counted as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_core::GraphLab;
    use graphlab_graph::GraphBuilder;

    /// Two planted clusters: NPs 0..3 of type 0 (seeded at 0), NPs 4..7 of
    /// type 1 (seeded at 4); contexts connect within clusters.
    fn planted() -> (DataGraph<CoemVertex, f64>, Vec<usize>) {
        let mut b = GraphBuilder::new();
        let k = 2;
        let mut truth = Vec::new();
        // noun phrases
        let nps: Vec<_> = (0..8)
            .map(|i| {
                let t = if i < 4 { 0 } else { 1 };
                truth.push(t);
                if i == 0 || i == 4 {
                    b.add_vertex(CoemVertex::seed(k, t))
                } else {
                    b.add_vertex(CoemVertex::unlabeled(k))
                }
            })
            .collect();
        // contexts: 4 per cluster
        let mut ctxs = Vec::new();
        for c in 0..8 {
            let t = if c < 4 { 0 } else { 1 };
            truth.push(t);
            ctxs.push(b.add_vertex(CoemVertex::unlabeled(k)));
        }
        for (c, &ctx) in ctxs.iter().enumerate().take(8) {
            let cluster = if c < 4 { 0..4 } else { 4..8 };
            for np in cluster {
                b.add_edge(nps[np], ctx, 1.0 + (np % 3) as f64).unwrap();
            }
        }
        (b.build(), truth)
    }

    #[test]
    fn codec_roundtrip() {
        let v = CoemVertex::seed(4, 2);
        let enc = graphlab_net::codec::encode_to_bytes(&v);
        assert_eq!(graphlab_net::codec::decode_from::<CoemVertex>(enc), Some(v));
    }

    #[test]
    fn seeds_propagate_to_clusters() {
        let (mut g, truth) = planted();
        let coem = Coem { types: 2, epsilon: 1e-8, dynamic: true };
        GraphLab::on(&mut g).max_updates(50_000).run(coem);
        assert_eq!(accuracy(&g, &truth), 1.0);
    }

    #[test]
    fn seed_vertices_never_change() {
        let (mut g, _) = planted();
        let coem = Coem { types: 2, epsilon: 1e-8, dynamic: true };
        GraphLab::on(&mut g).max_updates(50_000).run(coem);
        assert_eq!(g.vertex_data(graphlab_graph::VertexId(0)).dist, vec![1.0, 0.0]);
        assert_eq!(g.vertex_data(graphlab_graph::VertexId(4)).dist, vec![0.0, 1.0]);
    }

    #[test]
    fn distributions_stay_normalized() {
        let (mut g, _) = planted();
        let coem = Coem { types: 2, epsilon: 1e-8, dynamic: true };
        GraphLab::on(&mut g).max_updates(50_000).run(coem);
        for v in g.vertices() {
            let s: f64 = g.vertex_data(v).dist.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "vertex {v} sums to {s}");
        }
    }

    #[test]
    fn accuracy_skips_unknown_truth() {
        let (g, mut truth) = planted();
        truth[1] = usize::MAX;
        let a = accuracy(&g, &truth);
        assert!((0.0..=1.0).contains(&a));
    }
}
