//! Loopy belief propagation on pairwise Markov random fields.
//!
//! Used three ways in the paper: the synthetic 3D-mesh experiment driving
//! the locking-engine evaluation (§4.2.2, Fig. 3), the web-spam convergence
//! study (Fig. 1(c)), and the smoothing half of video co-segmentation
//! (§5.2). Vertex data holds the node prior and current belief; edge data
//! holds the two directed messages, so an update owns everything it writes
//! under the edge consistency model.
//!
//! The update recomputes all outgoing messages of a vertex from its prior
//! and incoming messages (sum-product with a Potts/smoothness pairwise
//! potential) and schedules a neighbour with the *residual* (L1 change of
//! the message sent to it) — residual BP [Elidan et al.], the paper's
//! state-of-the-art adaptive schedule for CoSeg.

use bytes::{Bytes, BytesMut};
use graphlab_core::{UpdateContext, UpdateFunction};
use graphlab_graph::{DataGraph, EdgeDir};
use graphlab_net::codec::Codec;

/// Vertex state: prior (unnormalised likelihood) and posterior belief over
/// `K` labels.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct BpVertex {
    /// Node potential φ_v (unnormalised).
    pub prior: Vec<f64>,
    /// Current belief estimate (normalised).
    pub belief: Vec<f64>,
}

impl BpVertex {
    /// Uniform-prior vertex over `k` labels.
    pub fn uniform(k: usize) -> Self {
        BpVertex { prior: vec![1.0; k], belief: vec![1.0 / k as f64; k] }
    }

    /// Vertex with the given prior (normalised into the belief too).
    pub fn with_prior(prior: Vec<f64>) -> Self {
        let sum: f64 = prior.iter().sum();
        let belief = prior.iter().map(|p| p / sum).collect();
        BpVertex { prior, belief }
    }

    /// The maximum a-posteriori label.
    pub fn map_label(&self) -> usize {
        self.belief
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite belief"))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

impl Codec for BpVertex {
    fn encode(&self, buf: &mut BytesMut) {
        self.prior.encode(buf);
        self.belief.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(BpVertex { prior: Vec::<f64>::decode(buf)?, belief: Vec::<f64>::decode(buf)? })
    }
}

/// Edge state: the two directed messages (normalised distributions).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct BpEdge {
    /// Message source → target.
    pub msg_fwd: Vec<f64>,
    /// Message target → source.
    pub msg_rev: Vec<f64>,
}

impl BpEdge {
    /// Uniform messages over `k` labels.
    pub fn uniform(k: usize) -> Self {
        BpEdge { msg_fwd: vec![1.0 / k as f64; k], msg_rev: vec![1.0 / k as f64; k] }
    }
}

impl Codec for BpEdge {
    fn encode(&self, buf: &mut BytesMut) {
        self.msg_fwd.encode(buf);
        self.msg_rev.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(BpEdge { msg_fwd: Vec::<f64>::decode(buf)?, msg_rev: Vec::<f64>::decode(buf)? })
    }
}

/// The loopy BP update function with residual scheduling.
#[derive(Clone, Debug)]
pub struct LoopyBp {
    /// Number of labels `K`.
    pub labels: usize,
    /// Potts smoothing strength: ψ(x, y) = `smoothing` if x == y else 1.
    /// Values > 1 favour agreement.
    pub smoothing: f64,
    /// Residual threshold below which neighbours are not rescheduled.
    pub epsilon: f64,
    /// Dynamic (residual) scheduling on/off — off reproduces the
    /// synchronous sweep baselines of Fig. 1(c).
    pub dynamic: bool,
    /// Message damping in `[0, 1)`; 0 = undamped.
    pub damping: f64,
}

impl Default for LoopyBp {
    fn default() -> Self {
        LoopyBp { labels: 2, smoothing: 2.0, epsilon: 1e-5, dynamic: true, damping: 0.0 }
    }
}

impl LoopyBp {
    fn convolve(&self, inbound: &[f64]) -> Vec<f64> {
        // out(y) = Σ_x ψ(x, y) inbound(x), Potts ψ.
        let total: f64 = inbound.iter().sum();
        inbound
            .iter()
            .map(|&px| total - px + self.smoothing * px)
            .collect()
    }
}

fn normalize(v: &mut [f64]) {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for x in v.iter_mut() {
            *x /= s;
        }
    } else {
        let u = 1.0 / v.len() as f64;
        for x in v.iter_mut() {
            *x = u;
        }
    }
}

impl UpdateFunction<BpVertex, BpEdge> for LoopyBp {
    fn update(&self, ctx: &mut UpdateContext<'_, BpVertex, BpEdge>) {
        let k = self.labels;
        let deg = ctx.num_neighbors();

        // Belief: prior × product of incoming messages.
        let mut belief = ctx.vertex_data().prior.clone();
        debug_assert_eq!(belief.len(), k);
        for i in 0..deg {
            let e = ctx.edge_data(i);
            let incoming = if ctx.nbr_dir(i) == EdgeDir::In { &e.msg_fwd } else { &e.msg_rev };
            for (b, m) in belief.iter_mut().zip(incoming) {
                *b *= m;
            }
        }
        normalize(&mut belief);
        ctx.vertex_data_mut().belief = belief.clone();

        // Outgoing messages: cavity = belief / incoming, convolved with ψ.
        for i in 0..deg {
            let (incoming, old_out): (Vec<f64>, Vec<f64>) = {
                let e = ctx.edge_data(i);
                if ctx.nbr_dir(i) == EdgeDir::In {
                    (e.msg_fwd.clone(), e.msg_rev.clone())
                } else {
                    (e.msg_rev.clone(), e.msg_fwd.clone())
                }
            };
            let mut cavity: Vec<f64> = belief
                .iter()
                .zip(&incoming)
                .map(|(&b, &m)| if m > 1e-300 { b / m } else { 0.0 })
                .collect();
            normalize(&mut cavity);
            let mut out = self.convolve(&cavity);
            normalize(&mut out);
            if self.damping > 0.0 {
                for (o, old) in out.iter_mut().zip(&old_out) {
                    *o = (1.0 - self.damping) * *o + self.damping * old;
                }
                normalize(&mut out);
            }
            let residual: f64 = out.iter().zip(&old_out).map(|(a, b)| (a - b).abs()).sum();
            {
                let inbound = ctx.nbr_dir(i) == EdgeDir::In;
                let e = ctx.edge_data_mut(i);
                if inbound {
                    e.msg_rev = out;
                } else {
                    e.msg_fwd = out;
                }
            }
            if self.dynamic && residual > self.epsilon {
                ctx.schedule_nbr(i, residual);
            }
        }
    }
}

/// Total L1 message residual from a fresh sweep — the "Residual" y-axis of
/// Fig. 1(c). Computes, for every directed message, how much one more BP
/// step would change it, and sums.
pub fn total_residual(graph: &DataGraph<BpVertex, BpEdge>, params: &LoopyBp) -> f64 {
    let mut total = 0.0;
    for v in graph.vertices() {
        // Recompute belief.
        let mut belief = graph.vertex_data(v).prior.clone();
        for e in graph.adj(v) {
            let ed = graph.edge_data(e.edge);
            let incoming = if e.dir == EdgeDir::In { &ed.msg_fwd } else { &ed.msg_rev };
            for (b, m) in belief.iter_mut().zip(incoming) {
                *b *= m;
            }
        }
        normalize(&mut belief);
        for e in graph.adj(v) {
            let ed = graph.edge_data(e.edge);
            let (incoming, old_out) =
                if e.dir == EdgeDir::In { (&ed.msg_fwd, &ed.msg_rev) } else { (&ed.msg_rev, &ed.msg_fwd) };
            let mut cavity: Vec<f64> = belief
                .iter()
                .zip(incoming)
                .map(|(&b, &m)| if m > 1e-300 { b / m } else { 0.0 })
                .collect();
            normalize(&mut cavity);
            let mut out = params.convolve(&cavity);
            normalize(&mut out);
            total += out.iter().zip(old_out).map(|(a, b)| (a - b).abs()).sum::<f64>();
        }
    }
    total
}

/// Exact marginals of a chain MRF by brute-force enumeration (test oracle;
/// BP is exact on trees).
pub fn chain_exact_marginals(priors: &[Vec<f64>], smoothing: f64) -> Vec<Vec<f64>> {
    let n = priors.len();
    let k = priors[0].len();
    let mut marginals = vec![vec![0.0; k]; n];
    let mut assignment = vec![0usize; n];
    loop {
        let mut w = 1.0;
        for (i, &a) in assignment.iter().enumerate() {
            w *= priors[i][a];
            if i + 1 < n {
                w *= if assignment[i] == assignment[i + 1] { smoothing } else { 1.0 };
            }
        }
        for (i, &a) in assignment.iter().enumerate() {
            marginals[i][a] += w;
        }
        // Next assignment (odometer).
        let mut pos = 0;
        loop {
            if pos == n {
                for m in marginals.iter_mut() {
                    normalize(m);
                }
                return marginals;
            }
            assignment[pos] += 1;
            if assignment[pos] < k {
                break;
            }
            assignment[pos] = 0;
            pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_core::{GraphLab, SchedulerKind};
    use graphlab_graph::GraphBuilder;

    fn chain(priors: &[Vec<f64>]) -> DataGraph<BpVertex, BpEdge> {
        let k = priors[0].len();
        let mut b = GraphBuilder::new();
        let vs: Vec<_> =
            priors.iter().map(|p| b.add_vertex(BpVertex::with_prior(p.clone()))).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], BpEdge::uniform(k)).unwrap();
        }
        b.build()
    }

    #[test]
    fn codec_roundtrips() {
        let v = BpVertex::with_prior(vec![0.3, 0.7]);
        let enc = graphlab_net::codec::encode_to_bytes(&v);
        assert_eq!(graphlab_net::codec::decode_from::<BpVertex>(enc), Some(v));
        let e = BpEdge::uniform(3);
        let enc = graphlab_net::codec::encode_to_bytes(&e);
        assert_eq!(graphlab_net::codec::decode_from::<BpEdge>(enc), Some(e));
    }

    #[test]
    fn bp_exact_on_chain() {
        let priors = vec![
            vec![0.9, 0.1],
            vec![0.5, 0.5],
            vec![0.2, 0.8],
            vec![0.5, 0.5],
            vec![0.6, 0.4],
        ];
        let exact = chain_exact_marginals(&priors, 2.0);
        let mut g = chain(&priors);
        let bp = LoopyBp { labels: 2, smoothing: 2.0, epsilon: 1e-10, dynamic: true, damping: 0.0 };
        GraphLab::on(&mut g).max_updates(10_000).run(bp);
        for (i, v) in g.vertices().enumerate() {
            let belief = &g.vertex_data(v).belief;
            for (a, b) in belief.iter().zip(&exact[i]) {
                assert!((a - b).abs() < 1e-6, "vertex {i}: {belief:?} vs {:?}", exact[i]);
            }
        }
    }

    #[test]
    fn residual_decreases_to_zero() {
        let priors: Vec<Vec<f64>> =
            (0..8).map(|i| vec![1.0 + (i % 3) as f64, 1.0 + ((i + 1) % 2) as f64]).collect();
        let mut g = chain(&priors);
        let bp = LoopyBp { labels: 2, smoothing: 1.5, epsilon: 1e-9, dynamic: true, damping: 0.0 };
        let before = total_residual(&g, &bp);
        GraphLab::on(&mut g).max_updates(10_000).run(bp.clone());
        let after = total_residual(&g, &bp);
        assert!(before > 1e-3);
        assert!(after < 1e-7, "residual after convergence: {after}");
    }

    #[test]
    fn map_label_picks_argmax() {
        let v = BpVertex { prior: vec![1.0, 1.0], belief: vec![0.3, 0.7] };
        assert_eq!(v.map_label(), 1);
    }

    #[test]
    fn priority_scheduling_converges() {
        let priors: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0 + i as f64 * 0.1, 1.0]).collect();
        let mut g = chain(&priors);
        let bp = LoopyBp::default();
        GraphLab::on(&mut g)
            .scheduler(SchedulerKind::Priority)
            .max_updates(10_000)
            .run(bp.clone());
        assert!(total_residual(&g, &bp) < 1e-4);
    }

    #[test]
    fn smoothing_pulls_towards_agreement() {
        // Strong prior on one end, uniform elsewhere; smoothing propagates it.
        let mut priors = vec![vec![10.0, 1.0]];
        priors.extend((0..4).map(|_| vec![1.0, 1.0]));
        let mut g = chain(&priors);
        let bp = LoopyBp { labels: 2, smoothing: 3.0, epsilon: 1e-10, dynamic: true, damping: 0.0 };
        GraphLab::on(&mut g).max_updates(10_000).run(bp);
        for v in g.vertices() {
            assert_eq!(g.vertex_data(v).map_label(), 0, "label at {v}");
        }
    }
}
