//! Parallel Gibbs sampling on a pairwise MRF.
//!
//! The paper's §2 calls out Gibbs sampling as an algorithm that **requires
//! serializability for statistical correctness** — two adjacent variables
//! must never resample simultaneously. Under the GraphLab abstraction that
//! is exactly the edge consistency model, and the chromatic engine executes
//! it as the classic *chromatic Gibbs sampler* (Gonzalez et al., AISTATS
//! 2011 \[12\]): all variables of one colour resample in parallel, colours
//! sweep sequentially.
//!
//! Each update draws a new label for its vertex from the conditional
//! distribution given the current neighbour labels (Potts model), using a
//! per-vertex counter-based RNG so execution stays deterministic per
//! (vertex, sample-index) regardless of engine interleaving.

use bytes::{Bytes, BytesMut};
use graphlab_core::{UpdateContext, UpdateFunction};
use graphlab_graph::DataGraph;
use graphlab_net::codec::Codec;

/// A Gibbs variable: current label, unary potentials, sample statistics.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct GibbsVertex {
    /// Current sampled label.
    pub label: u32,
    /// Unnormalised unary potential per label.
    pub unary: Vec<f64>,
    /// Number of resamples performed (also the RNG counter).
    pub samples: u64,
    /// Per-label visit counts (marginal estimate accumulator).
    pub counts: Vec<u64>,
}

impl GibbsVertex {
    /// Variable over `k` labels with the given unary potential, started at
    /// the unary argmax.
    pub fn new(unary: Vec<f64>) -> Self {
        let label = unary
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        let k = unary.len();
        GibbsVertex { label, unary, samples: 0, counts: vec![0; k] }
    }

    /// Empirical marginal distribution from the visit counts.
    pub fn marginal(&self) -> Vec<f64> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            let k = self.counts.len().max(1);
            return vec![1.0 / k as f64; k];
        }
        self.counts.iter().map(|&c| c as f64 / total as f64).collect()
    }
}

impl Codec for GibbsVertex {
    fn encode(&self, buf: &mut BytesMut) {
        self.label.encode(buf);
        self.unary.encode(buf);
        self.samples.encode(buf);
        self.counts.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(GibbsVertex {
            label: u32::decode(buf)?,
            unary: Vec::<f64>::decode(buf)?,
            samples: u64::decode(buf)?,
            counts: Vec::<u64>::decode(buf)?,
        })
    }
}

/// The Gibbs resampling update function.
#[derive(Clone, Debug)]
pub struct GibbsSampler {
    /// Number of labels.
    pub labels: usize,
    /// Potts coupling strength (log-potential for agreeing neighbours).
    pub coupling: f64,
    /// Sweeps to run: each vertex reschedules itself until it has drawn
    /// this many samples.
    pub sweeps: u64,
    /// RNG stream seed (deterministic per (seed, vertex, sample index)).
    pub seed: u64,
}

impl Default for GibbsSampler {
    fn default() -> Self {
        GibbsSampler { labels: 2, coupling: 0.5, sweeps: 100, seed: 0xC0FFEE }
    }
}

#[inline]
fn counter_rng(seed: u64, vertex: u64, sample: u64) -> f64 {
    // SplitMix64 over a combined counter: uniform in [0, 1).
    let mut x = seed ^ vertex.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ sample.wrapping_mul(0xD1B5_4A32_D192_ED03);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

impl UpdateFunction<GibbsVertex, ()> for GibbsSampler {
    fn update(&self, ctx: &mut UpdateContext<'_, GibbsVertex, ()>) {
        let k = self.labels;
        // Conditional log-potential: unary + coupling × (#agreeing nbrs).
        let mut agree = vec![0u32; k];
        for i in 0..ctx.num_neighbors() {
            let l = ctx.nbr_data(i).label as usize;
            if l < k {
                agree[l] += 1;
            }
        }
        let unary = ctx.vertex_data().unary.clone();
        let mut weights: Vec<f64> = (0..k)
            .map(|l| (unary[l].ln().max(-50.0) + self.coupling * agree[l] as f64).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        for w in weights.iter_mut() {
            *w /= total;
        }
        let (vertex, sample) = (ctx.vertex().0 as u64, ctx.vertex_data().samples);
        let u = counter_rng(self.seed, vertex, sample);
        let mut cum = 0.0;
        let mut drawn = k - 1;
        for (l, w) in weights.iter().enumerate() {
            cum += w;
            if u < cum {
                drawn = l;
                break;
            }
        }
        let data = ctx.vertex_data_mut();
        data.label = drawn as u32;
        data.samples += 1;
        data.counts[drawn] += 1;
        if data.samples < self.sweeps {
            ctx.schedule_self(1.0);
        }
    }
}

/// Mean absolute difference between two marginal tables (chain mixing
/// diagnostics in tests).
pub fn marginal_distance(g: &DataGraph<GibbsVertex, ()>, other: &DataGraph<GibbsVertex, ()>) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for v in g.vertices() {
        for (a, b) in g.vertex_data(v).marginal().iter().zip(other.vertex_data(v).marginal()) {
            total += (a - b).abs();
            n += 1;
        }
    }
    total / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_core::GraphLab;
    use graphlab_graph::GraphBuilder;

    fn chain(n: usize, biased_ends: bool) -> DataGraph<GibbsVertex, ()> {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n)
            .map(|i| {
                let unary = if biased_ends && (i == 0 || i == n - 1) {
                    vec![5.0, 1.0]
                } else {
                    vec![1.0, 1.0]
                };
                b.add_vertex(GibbsVertex::new(unary))
            })
            .collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], ()).unwrap();
        }
        b.build()
    }

    #[test]
    fn codec_roundtrip() {
        let v = GibbsVertex::new(vec![1.0, 3.0]);
        let enc = graphlab_net::codec::encode_to_bytes(&v);
        assert_eq!(graphlab_net::codec::decode_from::<GibbsVertex>(enc), Some(v));
    }

    #[test]
    fn runs_exactly_sweeps_samples_per_vertex() {
        let mut g = chain(10, false);
        let sampler = GibbsSampler { sweeps: 50, ..Default::default() };
        let out = GraphLab::on(&mut g).run(sampler);
        assert_eq!(out.metrics.updates, 10 * 50);
        for v in g.vertices() {
            assert_eq!(g.vertex_data(v).samples, 50);
            assert_eq!(g.vertex_data(v).counts.iter().sum::<u64>(), 50);
        }
    }

    #[test]
    fn biased_unaries_pull_marginals() {
        let mut g = chain(8, true);
        let sampler = GibbsSampler { sweeps: 400, coupling: 0.8, ..Default::default() };
        GraphLab::on(&mut g).run(sampler);
        // End vertices are strongly biased to label 0; coupling drags the
        // middle along.
        let m0 = g.vertex_data(graphlab_graph::VertexId(0)).marginal();
        assert!(m0[0] > 0.7, "end marginal {m0:?}");
        let mid = g.vertex_data(graphlab_graph::VertexId(4)).marginal();
        assert!(mid[0] > 0.5, "middle marginal {mid:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut g = chain(6, true);
            let sampler = GibbsSampler { sweeps: 100, ..Default::default() };
            GraphLab::on(&mut g).run(sampler);
            g.vertices().map(|v| g.vertex_data(v).counts.clone()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn counter_rng_is_uniformish() {
        let mut below = 0;
        for s in 0..1000u64 {
            if counter_rng(1, 2, s) < 0.5 {
                below += 1;
            }
        }
        assert!((400..600).contains(&below), "{below}");
    }
}
