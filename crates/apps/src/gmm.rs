//! Gaussian mixture model estimation through the sync operation (§5.2).
//!
//! In the CoSeg pipeline "the parameters for the GMM are maintained using
//! the sync operation": the sync maps every super-pixel vertex to
//! belief-weighted sufficient statistics `(Σγ, Σγx, Σγx²)` per label, the
//! master finalises them into `(weight, mean, variance)` triples published
//! under the [`GMM_GLOBAL`] handle, and the update functions read them
//! back to recompute node priors — an EM loop running concurrently with
//! LBP.

use graphlab_core::{Aggregate, GlobalHandle, SyncScope};

use crate::coseg::CosegVertex;

/// Handle of the published GMM global: `labels × [weight, mean, var]`.
/// (`graphlab-apps` handles live in the `100..` range reserved for
/// library aggregates — see [`GlobalHandle`]; ids below 100 are free for
/// application code.)
pub const GMM_GLOBAL: GlobalHandle<Vec<f64>> = GlobalHandle::new(101);

/// Sufficient-statistics sync op for a 1-D Gaussian per label.
pub struct GmmSync {
    /// Number of mixture components (= segmentation labels).
    pub labels: usize,
    /// Variance floor to keep components from collapsing.
    pub min_variance: f64,
}

impl GmmSync {
    /// Standard configuration for `labels` components.
    pub fn new(labels: usize) -> Self {
        GmmSync { labels, min_variance: 1e-3 }
    }

    /// Unpacks a published global into `(weight, mean, var)` triples.
    pub fn unpack(global: &[f64]) -> Vec<(f64, f64, f64)> {
        global.chunks_exact(3).map(|c| (c[0], c[1], c[2])).collect()
    }

    /// Gaussian density.
    pub fn density(x: f64, mean: f64, var: f64) -> f64 {
        let d = x - mean;
        (-d * d / (2.0 * var)).exp() / (2.0 * std::f64::consts::PI * var).sqrt()
    }

    fn map_vertex(&self, data: &CosegVertex) -> Vec<f64> {
        let mut acc = vec![0.0; self.labels * 3];
        for (k, &gamma) in data.belief.iter().enumerate() {
            acc[3 * k] = gamma;
            acc[3 * k + 1] = gamma * data.feature;
            acc[3 * k + 2] = gamma * data.feature * data.feature;
        }
        acc
    }
}

impl<E: 'static> Aggregate<CosegVertex, E> for GmmSync {
    type Acc = Vec<f64>;
    type Out = Vec<f64>;

    fn init(&self) -> Vec<f64> {
        // Per label: [Σγ, Σγx, Σγx²]
        vec![0.0; self.labels * 3]
    }

    fn map(&self, scope: &SyncScope<'_, CosegVertex, E>) -> Vec<f64> {
        self.map_vertex(scope.vertex_data())
    }

    fn combine(&self, acc: &mut Vec<f64>, part: Vec<f64>) {
        for (a, p) in acc.iter_mut().zip(part) {
            *a += p;
        }
    }

    fn finalize(&self, acc: Vec<f64>, total_vertices: u64) -> Vec<f64> {
        let mut out = vec![0.0; self.labels * 3];
        let n = total_vertices.max(1) as f64;
        for k in 0..self.labels {
            let (sg, sx, sxx) = (acc[3 * k], acc[3 * k + 1], acc[3 * k + 2]);
            if sg > 1e-9 {
                let mean = sx / sg;
                let var = (sxx / sg - mean * mean).max(self.min_variance);
                out[3 * k] = sg / n;
                out[3 * k + 1] = mean;
                out[3 * k + 2] = var;
            } else {
                // Empty component: re-seed spread across the unit interval.
                out[3 * k] = 1.0 / self.labels as f64;
                out[3 * k + 1] = (k as f64 + 0.5) / self.labels as f64;
                out[3 * k + 2] = 1.0;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vertex(feature: f64, belief: Vec<f64>) -> CosegVertex {
        CosegVertex { feature, prior: vec![1.0; belief.len()], belief }
    }

    #[test]
    fn map_collects_weighted_stats() {
        let op = GmmSync::new(2);
        let acc = op.map_vertex(&vertex(2.0, vec![0.25, 0.75]));
        assert_eq!(acc, vec![0.25, 0.5, 1.0, 0.75, 1.5, 3.0]);
    }

    #[test]
    fn finalize_recovers_cluster_means() {
        let op = GmmSync::new(2);
        let mut acc = Aggregate::<CosegVertex, ()>::init(&op);
        // Hard-assigned points: label 0 at {1.0, 2.0}, label 1 at {10.0}.
        for (x, k) in [(1.0, 0usize), (2.0, 0), (10.0, 1)] {
            let mut belief = vec![0.0, 0.0];
            belief[k] = 1.0;
            let part = op.map_vertex(&vertex(x, belief));
            Aggregate::<CosegVertex, ()>::combine(&op, &mut acc, part);
        }
        let out = Aggregate::<CosegVertex, ()>::finalize(&op, acc, 3);
        let comps = GmmSync::unpack(&out);
        assert!((comps[0].1 - 1.5).abs() < 1e-9, "mean0 {}", comps[0].1);
        assert!((comps[1].1 - 10.0).abs() < 1e-9, "mean1 {}", comps[1].1);
        assert!((comps[0].0 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_component_reseeded() {
        let op = GmmSync::new(3);
        let acc = Aggregate::<CosegVertex, ()>::init(&op);
        let out = Aggregate::<CosegVertex, ()>::finalize(&op, acc, 10);
        let comps = GmmSync::unpack(&out);
        assert_eq!(comps.len(), 3);
        assert!(comps.iter().all(|c| c.2 >= 1e-3));
        // Re-seeded means are distinct.
        assert!(comps[0].1 < comps[1].1 && comps[1].1 < comps[2].1);
    }

    #[test]
    fn density_is_a_density() {
        let d0 = GmmSync::density(0.0, 0.0, 1.0);
        let d1 = GmmSync::density(1.0, 0.0, 1.0);
        assert!(d0 > d1);
        assert!((d0 - 0.398942).abs() < 1e-5);
    }
}
