//! PageRank — the paper's running example (Example 1, Alg. 1).
//!
//! The data graph is the web graph: vertex data is the rank estimate
//! `R(v)`, edge data the link weight `w_{u,v}`. The update recomputes
//!
//! ```text
//! R(v) = α/n + (1 − α) Σ_{u links to v} w_{u,v} · R(u)
//! ```
//!
//! and, when *dynamic*, schedules out-neighbours only if the rank moved by
//! more than `ε` — the adaptive pull model Pregel cannot express (§3.2).

use graphlab_core::{Aggregate, GlobalHandle, SyncScope, UpdateContext, UpdateFunction};
use graphlab_graph::{DataGraph, EdgeDir};

/// The PageRank update function.
#[derive(Clone, Debug)]
pub struct PageRank {
    /// Random-jump probability α (the paper's Eq. 1 uses `α/n` as the
    /// teleport mass).
    pub alpha: f64,
    /// Convergence threshold ε: neighbours are rescheduled only when the
    /// rank changes by more than this.
    pub epsilon: f64,
    /// Dynamic (adaptive) scheduling; `false` reschedules unconditionally
    /// never — callers drive rounds themselves (BSP-style baselines).
    pub dynamic: bool,
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank { alpha: 0.15, epsilon: 1e-6, dynamic: true }
    }
}

impl UpdateFunction<f64, f64> for PageRank {
    fn update(&self, ctx: &mut UpdateContext<'_, f64, f64>) {
        let n = ctx.num_vertices() as f64;
        let mut rank = self.alpha / n;
        for i in 0..ctx.num_neighbors() {
            if ctx.nbr_dir(i) == EdgeDir::In {
                rank += (1.0 - self.alpha) * ctx.edge_data(i) * *ctx.nbr_data(i);
            }
        }
        let old = *ctx.vertex_data();
        *ctx.vertex_data_mut() = rank;
        let delta = (rank - old).abs();
        if self.dynamic && delta > self.epsilon {
            // Out-neighbours depend on R(v): schedule them with the size of
            // the change as priority (residual scheduling).
            for i in 0..ctx.num_neighbors() {
                if ctx.nbr_dir(i) == EdgeDir::Out {
                    ctx.schedule_nbr(i, delta);
                }
            }
        }
    }
}

/// Handle of the global maintained by [`RankResidual`]: the summed
/// PageRank-equation residual over all vertices. (`graphlab-apps`
/// handles live in the `100..` range reserved for library aggregates —
/// see [`GlobalHandle`]; ids below 100 are free for application code.)
pub const PAGERANK_RESIDUAL: GlobalHandle<f64> = GlobalHandle::new(100);

/// Sync operation measuring distance to the PageRank fixpoint (§3.5's
/// aggregate-driven convergence check): each scope contributes
/// `|R(v) − (α/n + (1−α) Σ_in w·R(u))|`, summed cluster-wide. Register it
/// with [`graphlab_core::GraphLab::sync`] under [`PAGERANK_RESIDUAL`] and
/// pair with `stop_when(|g| g.get(PAGERANK_RESIDUAL) < tol)` to terminate
/// on convergence instead of a fixed update cap.
#[derive(Clone, Debug)]
pub struct RankResidual {
    /// Random-jump probability α (must match the update function's).
    pub alpha: f64,
}

impl Aggregate<f64, f64> for RankResidual {
    type Acc = f64;
    type Out = f64;

    fn init(&self) -> f64 {
        0.0
    }
    fn map(&self, scope: &SyncScope<'_, f64, f64>) -> f64 {
        let n = scope.num_vertices() as f64;
        let mut rank = self.alpha / n;
        for i in 0..scope.num_neighbors() {
            if scope.nbr_dir(i) == EdgeDir::In {
                rank += (1.0 - self.alpha) * scope.edge_data(i) * scope.nbr_data(i);
            }
        }
        (rank - scope.vertex_data()).abs()
    }
    fn combine(&self, acc: &mut f64, part: f64) {
        *acc += part;
    }
    fn finalize(&self, acc: f64, _total_vertices: u64) -> f64 {
        acc
    }
}

/// Reference power iteration on the full graph (test oracle and the
/// synchronous/BSP baseline curve of Fig. 1(a)).
///
/// Returns the rank vector after `iters` synchronous sweeps.
pub fn exact_pagerank(graph: &DataGraph<f64, f64>, alpha: f64, iters: usize) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut ranks = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    for _ in 0..iters {
        for r in next.iter_mut() {
            *r = alpha / n as f64;
        }
        for e in graph.edges() {
            let (u, v) = graph.edge_endpoints(e);
            next[v.index()] += (1.0 - alpha) * graph.edge_data(e) * ranks[u.index()];
        }
        std::mem::swap(&mut ranks, &mut next);
    }
    ranks
}

/// L1 distance between two rank vectors (the convergence metric of
/// Fig. 1(a)).
pub fn l1_error(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Initialises rank data to the uniform distribution.
pub fn init_ranks(graph: &mut DataGraph<f64, f64>) {
    let n = graph.num_vertices();
    for i in 0..n {
        *graph.vertex_data_mut(graphlab_graph::VertexId::from(i)) = 1.0 / n as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_core::{GraphLab, SyncCadence};
    use graphlab_graph::{GraphBuilder, VertexId};

    /// Small web graph with out-weight normalisation.
    fn web() -> DataGraph<f64, f64> {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..5).map(|_| b.add_vertex(0.2)).collect();
        let links = [(0, 1), (0, 2), (1, 2), (2, 0), (3, 2), (4, 0), (4, 3), (2, 4)];
        let mut outdeg = [0usize; 5];
        for &(s, _) in &links {
            outdeg[s] += 1;
        }
        for &(s, d) in &links {
            b.add_edge(v[s], v[d], 1.0 / outdeg[s] as f64).unwrap();
        }
        b.build()
    }

    #[test]
    fn dynamic_pagerank_matches_power_iteration() {
        let mut g = web();
        let oracle = exact_pagerank(&g, 0.15, 200);
        init_ranks(&mut g);
        let pr = PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true };
        let out = GraphLab::on(&mut g).run(pr);
        assert!(out.metrics.updates > 5);
        let got: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
        assert!(l1_error(&got, &oracle) < 1e-8, "err {}", l1_error(&got, &oracle));
    }

    #[test]
    fn loose_epsilon_converges_in_fewer_updates() {
        let mut g1 = web();
        init_ranks(&mut g1);
        let tight =
            GraphLab::on(&mut g1).run(PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true });
        let mut g2 = web();
        init_ranks(&mut g2);
        let loose =
            GraphLab::on(&mut g2).run(PageRank { alpha: 0.15, epsilon: 1e-3, dynamic: true });
        assert!(loose.metrics.updates < tight.metrics.updates);
    }

    #[test]
    fn ranks_sum_to_one() {
        let mut g = web();
        init_ranks(&mut g);
        GraphLab::on(&mut g).run(PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: true });
        let total: f64 = g.vertices().map(|v| *g.vertex_data(v)).sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn static_variant_runs_once_per_vertex() {
        let mut g = web();
        init_ranks(&mut g);
        let out =
            GraphLab::on(&mut g).run(PageRank { alpha: 0.15, epsilon: 1e-12, dynamic: false });
        assert_eq!(out.metrics.updates, 5);
    }

    #[test]
    fn dangling_teleport_only_graph() {
        // Two vertices, one link; ranks should remain finite and positive.
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(0.5);
        let c = b.add_vertex(0.5);
        b.add_edge(a, c, 1.0).unwrap();
        let mut g = b.build();
        GraphLab::on(&mut g).run(PageRank::default());
        assert!(*g.vertex_data(VertexId(0)) > 0.0);
        assert!(*g.vertex_data(VertexId(1)) > *g.vertex_data(VertexId(0)));
    }

    #[test]
    fn residual_aggregate_vanishes_at_fixpoint() {
        let mut g = web();
        init_ranks(&mut g);
        // Converge tightly, syncing the residual as we go; at termination
        // the published residual must be ~0.
        let out = GraphLab::on(&mut g)
            .sync(PAGERANK_RESIDUAL, RankResidual { alpha: 0.15 }, SyncCadence::Updates(5))
            .run(PageRank { alpha: 0.15, epsilon: 1e-14, dynamic: true });
        let residual = *out.globals.get(PAGERANK_RESIDUAL).expect("published");
        assert!(residual < 1e-10, "residual {residual}");
    }

    #[test]
    fn stop_when_residual_halts_before_cap() {
        let mut g = web();
        init_ranks(&mut g);
        // BSP-style: always reschedule (epsilon below any delta), capped at
        // 200 sweeps; the residual stop fires long before the cap.
        let out = GraphLab::on(&mut g)
            .max_updates(200 * 5)
            .sync(PAGERANK_RESIDUAL, RankResidual { alpha: 0.15 }, SyncCadence::Updates(5))
            .stop_when(|g| g.get(PAGERANK_RESIDUAL).is_some_and(|r| *r < 1e-9))
            .run(PageRank { alpha: 0.15, epsilon: -1.0, dynamic: true });
        assert!(out.metrics.updates < 200 * 5, "halted at {}", out.metrics.updates);
        assert!(*out.globals.get(PAGERANK_RESIDUAL).unwrap() < 1e-9);
    }
}
