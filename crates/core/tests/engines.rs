//! Integration tests: the distributed engines against the sequential
//! reference (serializability oracle) and against each other.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use graphlab_core::*;
use graphlab_core::driver::PartitionStrategy;
use graphlab_graph::{greedy_coloring, Coloring, ConsistencyModel, DataGraph, GraphBuilder, VertexId};
use graphlab_net::LatencyModel;

/// Max-diffusion: every vertex converges to the global maximum of its
/// connected component — a deterministic fixpoint under any serializable
/// schedule.
struct MaxDiffusion;
impl UpdateFunction<f64, f64> for MaxDiffusion {
    fn update(&self, ctx: &mut UpdateContext<'_, f64, f64>) {
        let mut best = *ctx.vertex_data();
        for i in 0..ctx.num_neighbors() {
            best = best.max(*ctx.nbr_data(i));
        }
        if best > *ctx.vertex_data() {
            *ctx.vertex_data_mut() = best;
            for i in 0..ctx.num_neighbors() {
                ctx.schedule_nbr(i, 1.0);
            }
        }
    }
}

/// Edge-writer: each update stamps all adjacent edges with the max of the
/// endpoint values seen so far (exercises edge writes, ghost-edge
/// write-backs and version propagation). Deterministic fixpoint: every
/// edge = max over the component.
struct EdgeStamp;
impl UpdateFunction<f64, f64> for EdgeStamp {
    fn update(&self, ctx: &mut UpdateContext<'_, f64, f64>) {
        let mut best = *ctx.vertex_data();
        for i in 0..ctx.num_neighbors() {
            best = best.max(*ctx.nbr_data(i));
        }
        let mut changed = best > *ctx.vertex_data();
        *ctx.vertex_data_mut() = best;
        for i in 0..ctx.num_neighbors() {
            if *ctx.edge_data(i) < best {
                *ctx.edge_data_mut(i) = best;
                changed = true;
            }
        }
        if changed {
            for i in 0..ctx.num_neighbors() {
                ctx.schedule_nbr(i, 1.0);
            }
        }
    }
}

fn ring(n: usize) -> DataGraph<f64, f64> {
    let mut b = GraphBuilder::new();
    let vs: Vec<_> = (0..n).map(|i| b.add_vertex(((i * 7919) % n) as f64)).collect();
    for i in 0..n {
        b.add_edge(vs[i], vs[(i + 1) % n], 0.0).unwrap();
    }
    b.build()
}

fn grid(w: usize, h: usize) -> DataGraph<f64, f64> {
    let mut b = GraphBuilder::new();
    let ids: Vec<_> = (0..w * h).map(|i| b.add_vertex(((i * 31) % 97) as f64)).collect();
    for y in 0..h {
        for x in 0..w {
            let v = ids[y * w + x];
            if x + 1 < w {
                b.add_edge(v, ids[y * w + x + 1], 0.0).unwrap();
            }
            if y + 1 < h {
                b.add_edge(v, ids[(y + 1) * w + x], 0.0).unwrap();
            }
        }
    }
    b.build()
}

fn no_syncs() -> Arc<Vec<Box<dyn SyncOp<f64, f64>>>> {
    Arc::new(Vec::new())
}

fn expect_all_vertices(g: &DataGraph<f64, f64>, value: f64) {
    for v in g.vertices() {
        assert_eq!(*g.vertex_data(v), value, "vertex {v}");
    }
}

#[test]
fn chromatic_matches_sequential_on_ring() {
    let mut seq = ring(40);
    run_sequential(&mut seq, &MaxDiffusion, InitialSchedule::AllVertices, SequentialConfig::default());

    let mut dist = ring(40);
    let coloring = greedy_coloring(&dist);
    let cfg = EngineConfig::new(3);
    let out = run_chromatic(
        &mut dist,
        coloring,
        Arc::new(MaxDiffusion),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    assert!(out.metrics.updates >= 40);
    for v in dist.vertices() {
        assert_eq!(dist.vertex_data(v), seq.vertex_data(v));
    }
}

#[test]
fn locking_matches_sequential_on_ring() {
    let mut seq = ring(40);
    run_sequential(&mut seq, &MaxDiffusion, InitialSchedule::AllVertices, SequentialConfig::default());

    let mut dist = ring(40);
    let cfg = EngineConfig::new(3);
    let out = run_locking(
        &mut dist,
        Arc::new(MaxDiffusion),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    assert!(out.metrics.updates >= 40);
    for v in dist.vertices() {
        assert_eq!(dist.vertex_data(v), seq.vertex_data(v));
    }
}

#[test]
fn locking_with_latency_and_small_pipeline() {
    let mut dist = grid(8, 8);
    let mut cfg = EngineConfig::new(4);
    cfg.latency = LatencyModel::fixed(Duration::from_micros(200));
    cfg.max_pipeline = 4;
    run_locking(
        &mut dist,
        Arc::new(MaxDiffusion),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::BfsGrow,
    );
    let expected = (0..64).map(|i| ((i * 31) % 97) as f64).fold(f64::MIN, f64::max);
    expect_all_vertices(&dist, expected);
}

#[test]
fn locking_priority_scheduler() {
    let mut dist = ring(30);
    let mut cfg = EngineConfig::new(2);
    cfg.scheduler = SchedulerKind::Priority;
    run_locking(
        &mut dist,
        Arc::new(MaxDiffusion),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    let max = (0..30).map(|i| ((i * 7919) % 30) as f64).fold(f64::MIN, f64::max);
    expect_all_vertices(&dist, max);
}

#[test]
fn edge_writes_propagate_across_machines() {
    let mut seq = ring(24);
    run_sequential(&mut seq, &EdgeStamp, InitialSchedule::AllVertices, SequentialConfig::default());

    for m in [1usize, 2, 4] {
        let mut dist = ring(24);
        let cfg = EngineConfig::new(m);
        run_locking(
            &mut dist,
            Arc::new(EdgeStamp),
            InitialSchedule::AllVertices,
            no_syncs(),
            &cfg,
            &PartitionStrategy::RandomHash,
        );
        for e in dist.edges() {
            assert_eq!(dist.edge_data(e), seq.edge_data(e), "edge {e} with {m} machines");
        }
    }
}

#[test]
fn chromatic_edge_writes() {
    let mut seq = ring(24);
    run_sequential(&mut seq, &EdgeStamp, InitialSchedule::AllVertices, SequentialConfig::default());

    let mut dist = ring(24);
    let coloring = greedy_coloring(&dist);
    let cfg = EngineConfig::new(3);
    run_chromatic(
        &mut dist,
        coloring,
        Arc::new(EdgeStamp),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    for e in dist.edges() {
        assert_eq!(dist.edge_data(e), seq.edge_data(e), "edge {e}");
    }
}

/// Full consistency: vertices push their value to neighbours (writes
/// neighbour data). Fixpoint: everyone holds the component max.
struct PushMax;
impl UpdateFunction<f64, f64> for PushMax {
    fn update(&self, ctx: &mut UpdateContext<'_, f64, f64>) {
        let mine = *ctx.vertex_data();
        for i in 0..ctx.num_neighbors() {
            if *ctx.nbr_data(i) < mine {
                *ctx.nbr_data_mut(i) = mine;
                ctx.schedule_nbr(i, 1.0);
            }
        }
    }
}

#[test]
fn locking_full_consistency_neighbor_writes() {
    let mut dist = ring(20);
    let mut cfg = EngineConfig::new(3);
    cfg.consistency = ConsistencyModel::Full;
    run_locking(
        &mut dist,
        Arc::new(PushMax),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    let max = (0..20).map(|i| ((i * 7919) % 20) as f64).fold(f64::MIN, f64::max);
    expect_all_vertices(&dist, max);
}

#[test]
fn chromatic_full_consistency_needs_second_order_coloring() {
    let mut dist = ring(20);
    let coloring = graphlab_graph::second_order_coloring(&dist);
    let mut cfg = EngineConfig::new(2);
    cfg.consistency = ConsistencyModel::Full;
    run_chromatic(
        &mut dist,
        coloring,
        Arc::new(PushMax),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    let max = (0..20).map(|i| ((i * 7919) % 20) as f64).fold(f64::MIN, f64::max);
    expect_all_vertices(&dist, max);
}

/// Vertex consistency: self-counter, no neighbour access at all.
struct SelfCount;
impl UpdateFunction<f64, f64> for SelfCount {
    fn update(&self, ctx: &mut UpdateContext<'_, f64, f64>) {
        if *ctx.vertex_data() < 5.0 {
            *ctx.vertex_data_mut() += 1.0;
            ctx.schedule_self(1.0);
        }
    }
}

#[test]
fn vertex_consistency_self_counters() {
    let mut dist = ring(16);
    for i in 0..dist.num_vertices() {
        *dist.vertex_data_mut(VertexId::from(i)) = 0.0;
    }
    let mut cfg = EngineConfig::new(2);
    cfg.consistency = ConsistencyModel::Vertex;
    let out = run_locking(
        &mut dist,
        Arc::new(SelfCount),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    expect_all_vertices(&dist, 5.0);
    assert_eq!(out.metrics.updates, 16 * 6); // 5 increments + 1 no-op each
}

#[test]
fn sync_op_publishes_globals_chromatic() {
    let mut dist = ring(10);
    let coloring = greedy_coloring(&dist);
    let cfg = EngineConfig::new(2);
    let syncs: Arc<Vec<Box<dyn SyncOp<f64, f64>>>> = Arc::new(vec![Box::new(FnSync::new(
        "sum",
        1,
        |_, d: &f64| vec![*d],
        |acc, _| acc,
    ))]);
    let out = run_chromatic(
        &mut dist,
        coloring,
        Arc::new(MaxDiffusion),
        InitialSchedule::AllVertices,
        syncs,
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    let sum = out.globals.iter().find(|(n, _)| n == "sum").expect("sum global");
    let max = (0..10).map(|i| ((i * 7919) % 10) as f64).fold(f64::MIN, f64::max);
    assert_eq!(sum.1, vec![max * 10.0]);
}

#[test]
fn sync_op_background_locking() {
    let mut dist = ring(10);
    let mut cfg = EngineConfig::new(2);
    cfg.sync_interval_updates = 5;
    let syncs: Arc<Vec<Box<dyn SyncOp<f64, f64>>>> = Arc::new(vec![Box::new(FnSync::new(
        "count",
        1,
        |_, _d: &f64| vec![1.0],
        |acc, _| acc,
    ))]);
    let out = run_locking(
        &mut dist,
        Arc::new(MaxDiffusion),
        InitialSchedule::AllVertices,
        syncs,
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    let count = out.globals.iter().find(|(n, _)| n == "count").expect("count global");
    assert_eq!(count.1, vec![10.0]);
}

#[test]
fn max_updates_caps_distributed_run() {
    let mut dist = ring(50);
    let mut cfg = EngineConfig::new(2);
    cfg.max_updates = 20;
    let out = run_locking(
        &mut dist,
        Arc::new(MaxDiffusion),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    // The cap is approximate (pipelined scopes in flight complete), but the
    // engine must stop well short of convergence-scale work.
    assert!(out.metrics.updates >= 20);
    assert!(out.metrics.updates < 50 + 2 * cfg.max_pipeline as u64);
}

#[test]
fn initial_subset_scheduling() {
    let mut dist = ring(30);
    // Only the vertex holding the max is scheduled: it pulls nothing, so a
    // single wave of updates runs. Use PushMax-style seeds instead: pick a
    // few vertices; fixpoint still the global max everywhere reachable.
    let cfg = EngineConfig::new(2);
    let out = run_locking(
        &mut dist,
        Arc::new(MaxDiffusion),
        InitialSchedule::Vertices(vec![(VertexId(0), 1.0), (VertexId(15), 1.0)]),
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    // Max diffusion from any seed set that includes schedule cascades still
    // converges everywhere: v0/v15 pull neighbours' values, change, and
    // re-schedule the wave.
    let max = (0..30).map(|i| ((i * 7919) % 30) as f64).fold(f64::MIN, f64::max);
    expect_all_vertices(&dist, max);
    assert!(out.metrics.updates >= 30);
}

#[test]
fn trace_collects_update_counts() {
    let mut dist = ring(12);
    let mut cfg = EngineConfig::new(2);
    cfg.trace = true;
    let out = run_locking(
        &mut dist,
        Arc::new(MaxDiffusion),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    assert_eq!(out.metrics.update_counts.len(), 12);
    assert_eq!(out.metrics.update_counts.iter().sum::<u64>(), out.metrics.updates);
    assert!(!out.metrics.updates_timeline.is_empty());
}

#[test]
fn network_traffic_is_measured() {
    let mut dist = grid(6, 6);
    let cfg = EngineConfig::new(4);
    let out = run_locking(
        &mut dist,
        Arc::new(MaxDiffusion),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    assert_eq!(out.metrics.bytes_sent_per_machine.len(), 4);
    assert!(out.metrics.bytes_sent_per_machine.iter().sum::<u64>() > 0);
    assert!(out.metrics.total_messages > 0);
}

#[test]
fn single_machine_locking_works() {
    let mut dist = ring(20);
    let cfg = EngineConfig::new(1);
    run_locking(
        &mut dist,
        Arc::new(MaxDiffusion),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    let max = (0..20).map(|i| ((i * 7919) % 20) as f64).fold(f64::MIN, f64::max);
    expect_all_vertices(&dist, max);
}

#[test]
fn sync_snapshot_writes_restorable_checkpoint() {
    let mut dist = grid(6, 6);
    let mut cfg = EngineConfig::new(2);
    cfg.snapshot = SnapshotConfig {
        mode: SnapshotMode::Synchronous,
        every_updates: 30,
        max_snapshots: 1,
    };
    let out = run_locking(
        &mut dist,
        Arc::new(MaxDiffusion),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    assert!(out.metrics.snapshots >= 1, "snapshot was taken");
    assert!(snapshot_exists(&out.dfs, "ckpt", 0));

    // Restore into a fresh copy of the original graph and re-run: the same
    // fixpoint must be reached.
    let mut restored = grid(6, 6);
    restore_snapshot(&out.dfs, "ckpt", 0, &mut restored).unwrap();
    run_sequential(&mut restored, &MaxDiffusion, InitialSchedule::AllVertices, SequentialConfig::default());
    for v in restored.vertices() {
        assert_eq!(restored.vertex_data(v), dist.vertex_data(v));
    }
}

#[test]
fn async_snapshot_is_consistent_cut() {
    let mut dist = grid(6, 6);
    let mut cfg = EngineConfig::new(3);
    cfg.snapshot = SnapshotConfig {
        mode: SnapshotMode::Asynchronous,
        every_updates: 30,
        max_snapshots: 1,
    };
    let out = run_locking(
        &mut dist,
        Arc::new(MaxDiffusion),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::BfsGrow,
    );
    assert!(out.metrics.snapshots >= 1);
    assert!(snapshot_exists(&out.dfs, "ckpt", 0));

    let mut restored = grid(6, 6);
    let (nv, _ne) = restore_snapshot(&out.dfs, "ckpt", 0, &mut restored).unwrap();
    assert_eq!(nv, 36, "every vertex captured");
    run_sequential(&mut restored, &MaxDiffusion, InitialSchedule::AllVertices, SequentialConfig::default());
    for v in restored.vertices() {
        assert_eq!(restored.vertex_data(v), dist.vertex_data(v));
    }
}

#[test]
fn straggler_injection_slows_but_completes() {
    let mut dist = ring(20);
    let mut cfg = EngineConfig::new(2);
    cfg.straggler = Some(StragglerConfig {
        machine: 1,
        after_updates: 5,
        duration: Duration::from_millis(50),
    });
    let out = run_locking(
        &mut dist,
        Arc::new(MaxDiffusion),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    assert!(out.metrics.runtime >= Duration::from_millis(50));
    let max = (0..20).map(|i| ((i * 7919) % 20) as f64).fold(f64::MIN, f64::max);
    expect_all_vertices(&dist, max);
}

/// The update-counting app: verifies every scheduled vertex executes
/// exactly once when nothing re-schedules (eventual execution guarantee).
struct CountOnce(Arc<AtomicU64>);
impl UpdateFunction<f64, f64> for CountOnce {
    fn update(&self, _ctx: &mut UpdateContext<'_, f64, f64>) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn every_initial_vertex_executes_exactly_once() {
    for m in [1usize, 2, 3] {
        let counter = Arc::new(AtomicU64::new(0));
        let mut dist = ring(25);
        let cfg = EngineConfig::new(m);
        let out = run_locking(
            &mut dist,
            Arc::new(CountOnce(Arc::clone(&counter))),
            InitialSchedule::AllVertices,
            no_syncs(),
            &cfg,
            &PartitionStrategy::RandomHash,
        );
        assert_eq!(counter.load(Ordering::Relaxed), 25, "{m} machines");
        assert_eq!(out.metrics.updates, 25);
    }
}

#[test]
fn chromatic_executes_each_scheduled_vertex_once() {
    let counter = Arc::new(AtomicU64::new(0));
    let mut dist = ring(25);
    let coloring = greedy_coloring(&dist);
    let cfg = EngineConfig::new(3);
    run_chromatic(
        &mut dist,
        coloring,
        Arc::new(CountOnce(Arc::clone(&counter))),
        InitialSchedule::AllVertices,
        no_syncs(),
        &cfg,
        &PartitionStrategy::RandomHash,
    );
    assert_eq!(counter.load(Ordering::Relaxed), 25);
}

#[test]
fn uniform_coloring_rejected_for_edge_consistency() {
    let mut dist = ring(6);
    let cfg = EngineConfig::new(1);
    let bad = Coloring::uniform(6);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_chromatic(
            &mut dist,
            bad,
            Arc::new(MaxDiffusion),
            InitialSchedule::AllVertices,
            no_syncs(),
            &cfg,
            &PartitionStrategy::RandomHash,
        )
    }));
    assert!(result.is_err(), "improper colouring must be rejected");
}
