//! Integration tests: the distributed engines against the sequential
//! reference (serializability oracle) and against each other, all driven
//! through the [`GraphLab`] program builder.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use graphlab_core::*;
use graphlab_graph::{Coloring, ConsistencyModel, DataGraph, GraphBuilder, VertexId};
use graphlab_net::LatencyModel;

/// Max-diffusion: every vertex converges to the global maximum of its
/// connected component — a deterministic fixpoint under any serializable
/// schedule.
struct MaxDiffusion;
impl UpdateFunction<f64, f64> for MaxDiffusion {
    fn update(&self, ctx: &mut UpdateContext<'_, f64, f64>) {
        let mut best = *ctx.vertex_data();
        for i in 0..ctx.num_neighbors() {
            best = best.max(*ctx.nbr_data(i));
        }
        if best > *ctx.vertex_data() {
            *ctx.vertex_data_mut() = best;
            for i in 0..ctx.num_neighbors() {
                ctx.schedule_nbr(i, 1.0);
            }
        }
    }
}

/// Edge-writer: each update stamps all adjacent edges with the max of the
/// endpoint values seen so far (exercises edge writes, ghost-edge
/// write-backs and version propagation). Deterministic fixpoint: every
/// edge = max over the component.
struct EdgeStamp;
impl UpdateFunction<f64, f64> for EdgeStamp {
    fn update(&self, ctx: &mut UpdateContext<'_, f64, f64>) {
        let mut best = *ctx.vertex_data();
        for i in 0..ctx.num_neighbors() {
            best = best.max(*ctx.nbr_data(i));
        }
        let mut changed = best > *ctx.vertex_data();
        *ctx.vertex_data_mut() = best;
        for i in 0..ctx.num_neighbors() {
            if *ctx.edge_data(i) < best {
                *ctx.edge_data_mut(i) = best;
                changed = true;
            }
        }
        if changed {
            for i in 0..ctx.num_neighbors() {
                ctx.schedule_nbr(i, 1.0);
            }
        }
    }
}

fn ring(n: usize) -> DataGraph<f64, f64> {
    let mut b = GraphBuilder::new();
    let vs: Vec<_> = (0..n).map(|i| b.add_vertex(((i * 7919) % n) as f64)).collect();
    for i in 0..n {
        b.add_edge(vs[i], vs[(i + 1) % n], 0.0).unwrap();
    }
    b.build()
}

fn grid(w: usize, h: usize) -> DataGraph<f64, f64> {
    let mut b = GraphBuilder::new();
    let ids: Vec<_> = (0..w * h).map(|i| b.add_vertex(((i * 31) % 97) as f64)).collect();
    for y in 0..h {
        for x in 0..w {
            let v = ids[y * w + x];
            if x + 1 < w {
                b.add_edge(v, ids[y * w + x + 1], 0.0).unwrap();
            }
            if y + 1 < h {
                b.add_edge(v, ids[(y + 1) * w + x], 0.0).unwrap();
            }
        }
    }
    b.build()
}

fn expect_all_vertices(g: &DataGraph<f64, f64>, value: f64) {
    for v in g.vertices() {
        assert_eq!(*g.vertex_data(v), value, "vertex {v}");
    }
}

#[test]
fn chromatic_matches_sequential_on_ring() {
    let mut seq = ring(40);
    GraphLab::on(&mut seq).run(MaxDiffusion);

    let mut dist = ring(40);
    let out = GraphLab::on(&mut dist)
        .engine(EngineKind::Chromatic)
        .machines(3)
        .run(MaxDiffusion);
    assert!(out.metrics.updates >= 40);
    for v in dist.vertices() {
        assert_eq!(dist.vertex_data(v), seq.vertex_data(v));
    }
}

#[test]
fn locking_matches_sequential_on_ring() {
    let mut seq = ring(40);
    GraphLab::on(&mut seq).run(MaxDiffusion);

    let mut dist = ring(40);
    let out =
        GraphLab::on(&mut dist).engine(EngineKind::Locking).machines(3).run(MaxDiffusion);
    assert!(out.metrics.updates >= 40);
    for v in dist.vertices() {
        assert_eq!(dist.vertex_data(v), seq.vertex_data(v));
    }
}

#[test]
fn locking_with_latency_and_small_pipeline() {
    let mut dist = grid(8, 8);
    GraphLab::on(&mut dist)
        .engine(EngineKind::Locking)
        .machines(4)
        .latency(LatencyModel::fixed(Duration::from_micros(200)))
        .partition(PartitionStrategy::BfsGrow)
        .configure(|c| c.max_pipeline = 4)
        .run(MaxDiffusion);
    let expected = (0..64).map(|i| ((i * 31) % 97) as f64).fold(f64::MIN, f64::max);
    expect_all_vertices(&dist, expected);
}

#[test]
fn locking_priority_scheduler() {
    let mut dist = ring(30);
    GraphLab::on(&mut dist)
        .engine(EngineKind::Locking)
        .machines(2)
        .scheduler(SchedulerKind::Priority)
        .run(MaxDiffusion);
    let max = (0..30).map(|i| ((i * 7919) % 30) as f64).fold(f64::MIN, f64::max);
    expect_all_vertices(&dist, max);
}

#[test]
fn edge_writes_propagate_across_machines() {
    let mut seq = ring(24);
    GraphLab::on(&mut seq).run(EdgeStamp);

    for m in [1usize, 2, 4] {
        let mut dist = ring(24);
        GraphLab::on(&mut dist).engine(EngineKind::Locking).machines(m).run(EdgeStamp);
        for e in dist.edges() {
            assert_eq!(dist.edge_data(e), seq.edge_data(e), "edge {e} with {m} machines");
        }
    }
}

#[test]
fn chromatic_edge_writes() {
    let mut seq = ring(24);
    GraphLab::on(&mut seq).run(EdgeStamp);

    let mut dist = ring(24);
    GraphLab::on(&mut dist).engine(EngineKind::Chromatic).machines(3).run(EdgeStamp);
    for e in dist.edges() {
        assert_eq!(dist.edge_data(e), seq.edge_data(e), "edge {e}");
    }
}

/// Full consistency: vertices push their value to neighbours (writes
/// neighbour data). Fixpoint: everyone holds the component max.
struct PushMax;
impl UpdateFunction<f64, f64> for PushMax {
    fn update(&self, ctx: &mut UpdateContext<'_, f64, f64>) {
        let mine = *ctx.vertex_data();
        for i in 0..ctx.num_neighbors() {
            if *ctx.nbr_data(i) < mine {
                *ctx.nbr_data_mut(i) = mine;
                ctx.schedule_nbr(i, 1.0);
            }
        }
    }
}

#[test]
fn locking_full_consistency_neighbor_writes() {
    let mut dist = ring(20);
    GraphLab::on(&mut dist)
        .engine(EngineKind::Locking)
        .machines(3)
        .consistency(ConsistencyModel::Full)
        .run(PushMax);
    let max = (0..20).map(|i| ((i * 7919) % 20) as f64).fold(f64::MIN, f64::max);
    expect_all_vertices(&dist, max);
}

#[test]
fn chromatic_full_consistency_autocomputes_second_order_coloring() {
    // No explicit colouring: full consistency selects the second-order
    // generator inside the builder.
    let mut dist = ring(20);
    GraphLab::on(&mut dist)
        .engine(EngineKind::Chromatic)
        .machines(2)
        .consistency(ConsistencyModel::Full)
        .run(PushMax);
    let max = (0..20).map(|i| ((i * 7919) % 20) as f64).fold(f64::MIN, f64::max);
    expect_all_vertices(&dist, max);
}

/// Vertex consistency: self-counter, no neighbour access at all.
struct SelfCount;
impl UpdateFunction<f64, f64> for SelfCount {
    fn update(&self, ctx: &mut UpdateContext<'_, f64, f64>) {
        if *ctx.vertex_data() < 5.0 {
            *ctx.vertex_data_mut() += 1.0;
            ctx.schedule_self(1.0);
        }
    }
}

#[test]
fn vertex_consistency_self_counters() {
    let mut dist = ring(16);
    for i in 0..dist.num_vertices() {
        *dist.vertex_data_mut(VertexId::from(i)) = 0.0;
    }
    let out = GraphLab::on(&mut dist)
        .engine(EngineKind::Locking)
        .machines(2)
        .consistency(ConsistencyModel::Vertex)
        .run(SelfCount);
    expect_all_vertices(&dist, 5.0);
    assert_eq!(out.metrics.updates, 16 * 6); // 5 increments + 1 no-op each
}

const SUM: GlobalHandle<Vec<f64>> = GlobalHandle::new(0);
const COUNT: GlobalHandle<Vec<f64>> = GlobalHandle::new(1);

#[test]
fn sync_op_publishes_globals_chromatic() {
    let mut dist = ring(10);
    let out = GraphLab::on(&mut dist)
        .engine(EngineKind::Chromatic)
        .machines(2)
        .sync(SUM, FnSync::new(1, |_, d: &f64| vec![*d], |acc, _| acc), SyncCadence::Final)
        .run(MaxDiffusion);
    let max = (0..10).map(|i| ((i * 7919) % 10) as f64).fold(f64::MIN, f64::max);
    assert_eq!(out.globals.get(SUM), Some(&vec![max * 10.0]));
}

#[test]
fn sync_op_background_locking() {
    let mut dist = ring(10);
    let out = GraphLab::on(&mut dist)
        .engine(EngineKind::Locking)
        .machines(2)
        .sync(COUNT, FnSync::new(1, |_, _: &f64| vec![1.0], |acc, _| acc), SyncCadence::Updates(5))
        .run(MaxDiffusion);
    assert_eq!(out.globals.get(COUNT), Some(&vec![10.0]));
}

#[test]
fn typed_aggregate_roundtrips_distributed() {
    // A non-Vec<f64> accumulator: (count, sum) as a (u64, f64) tuple,
    // finalized to the mean — exercises the codec-bytes sync path with a
    // custom Acc/Out shape on a real cluster.
    struct Mean;
    impl Aggregate<f64, f64> for Mean {
        type Acc = (u64, f64);
        type Out = f64;
        fn init(&self) -> (u64, f64) {
            (0, 0.0)
        }
        fn map(&self, s: &SyncScope<'_, f64, f64>) -> (u64, f64) {
            (1, *s.vertex_data())
        }
        fn combine(&self, acc: &mut (u64, f64), part: (u64, f64)) {
            acc.0 += part.0;
            acc.1 += part.1;
        }
        fn finalize(&self, acc: (u64, f64), _: u64) -> f64 {
            if acc.0 == 0 { 0.0 } else { acc.1 / acc.0 as f64 }
        }
    }
    const MEAN: GlobalHandle<f64> = GlobalHandle::new(9);
    let mut dist = ring(10);
    let out = GraphLab::on(&mut dist)
        .engine(EngineKind::Locking)
        .machines(3)
        .sync(MEAN, Mean, SyncCadence::Updates(4))
        .run(MaxDiffusion);
    let max = (0..10).map(|i| ((i * 7919) % 10) as f64).fold(f64::MIN, f64::max);
    assert_eq!(out.globals.get(MEAN), Some(&max), "final sync sees the fixpoint");
}

#[test]
fn max_updates_caps_distributed_run() {
    let mut dist = ring(50);
    let max_pipeline = EngineConfig::new(2).max_pipeline;
    let out = GraphLab::on(&mut dist)
        .engine(EngineKind::Locking)
        .machines(2)
        .max_updates(20)
        .run(MaxDiffusion);
    // The cap is approximate (pipelined scopes in flight complete), but the
    // engine must stop well short of convergence-scale work.
    assert!(out.metrics.updates >= 20);
    assert!(out.metrics.updates < 50 + 2 * max_pipeline as u64);
}

#[test]
fn initial_subset_scheduling() {
    let mut dist = ring(30);
    let out = GraphLab::on(&mut dist)
        .engine(EngineKind::Locking)
        .machines(2)
        .initial(InitialSchedule::Vertices(vec![(VertexId(0), 1.0), (VertexId(15), 1.0)]))
        .run(MaxDiffusion);
    // Max diffusion from any seed set that includes schedule cascades still
    // converges everywhere: v0/v15 pull neighbours' values, change, and
    // re-schedule the wave.
    let max = (0..30).map(|i| ((i * 7919) % 30) as f64).fold(f64::MIN, f64::max);
    expect_all_vertices(&dist, max);
    assert!(out.metrics.updates >= 30);
}

#[test]
fn trace_collects_update_counts() {
    let mut dist = ring(12);
    let out = GraphLab::on(&mut dist)
        .engine(EngineKind::Locking)
        .machines(2)
        .trace(true)
        .run(MaxDiffusion);
    assert_eq!(out.metrics.update_counts.len(), 12);
    assert_eq!(out.metrics.update_counts.iter().sum::<u64>(), out.metrics.updates);
    assert!(!out.metrics.updates_timeline.is_empty());
}

#[test]
fn network_traffic_is_measured() {
    let mut dist = grid(6, 6);
    let out =
        GraphLab::on(&mut dist).engine(EngineKind::Locking).machines(4).run(MaxDiffusion);
    assert_eq!(out.metrics.bytes_sent_per_machine.len(), 4);
    assert!(out.metrics.bytes_sent_per_machine.iter().sum::<u64>() > 0);
    assert!(out.metrics.total_messages > 0);
}

#[test]
fn single_machine_locking_works() {
    let mut dist = ring(20);
    GraphLab::on(&mut dist).engine(EngineKind::Locking).machines(1).run(MaxDiffusion);
    let max = (0..20).map(|i| ((i * 7919) % 20) as f64).fold(f64::MIN, f64::max);
    expect_all_vertices(&dist, max);
}

#[test]
fn sync_snapshot_writes_restorable_checkpoint() {
    let mut dist = grid(6, 6);
    let out = GraphLab::on(&mut dist)
        .engine(EngineKind::Locking)
        .machines(2)
        .snapshot(SnapshotConfig {
            mode: SnapshotMode::Synchronous,
            every_updates: 30,
            max_snapshots: 1,
        })
        .run(MaxDiffusion);
    assert!(out.metrics.snapshots >= 1, "snapshot was taken");
    assert!(snapshot_exists(&out.dfs, "ckpt", 0));

    // Restore into a fresh copy of the original graph and re-run: the same
    // fixpoint must be reached.
    let mut restored = grid(6, 6);
    restore_snapshot(&out.dfs, "ckpt", 0, &mut restored).unwrap();
    GraphLab::on(&mut restored).run(MaxDiffusion);
    for v in restored.vertices() {
        assert_eq!(restored.vertex_data(v), dist.vertex_data(v));
    }
}

#[test]
fn async_snapshot_is_consistent_cut() {
    let mut dist = grid(6, 6);
    let out = GraphLab::on(&mut dist)
        .engine(EngineKind::Locking)
        .machines(3)
        .partition(PartitionStrategy::BfsGrow)
        .snapshot(SnapshotConfig {
            mode: SnapshotMode::Asynchronous,
            every_updates: 30,
            max_snapshots: 1,
        })
        .run(MaxDiffusion);
    assert!(out.metrics.snapshots >= 1);
    assert!(snapshot_exists(&out.dfs, "ckpt", 0));

    let mut restored = grid(6, 6);
    let (nv, _ne) = restore_snapshot(&out.dfs, "ckpt", 0, &mut restored).unwrap();
    assert_eq!(nv, 36, "every vertex captured");
    GraphLab::on(&mut restored).run(MaxDiffusion);
    for v in restored.vertices() {
        assert_eq!(restored.vertex_data(v), dist.vertex_data(v));
    }
}

#[test]
fn straggler_injection_slows_but_completes() {
    let mut dist = ring(20);
    let out = GraphLab::on(&mut dist)
        .engine(EngineKind::Locking)
        .machines(2)
        .configure(|c| {
            c.straggler = Some(StragglerConfig {
                machine: 1,
                after_updates: 5,
                duration: Duration::from_millis(50),
            })
        })
        .run(MaxDiffusion);
    assert!(out.metrics.runtime >= Duration::from_millis(50));
    let max = (0..20).map(|i| ((i * 7919) % 20) as f64).fold(f64::MIN, f64::max);
    expect_all_vertices(&dist, max);
}

/// The update-counting app: verifies every scheduled vertex executes
/// exactly once when nothing re-schedules (eventual execution guarantee).
struct CountOnce(Arc<AtomicU64>);
impl UpdateFunction<f64, f64> for CountOnce {
    fn update(&self, _ctx: &mut UpdateContext<'_, f64, f64>) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

#[test]
fn every_initial_vertex_executes_exactly_once() {
    for m in [1usize, 2, 3] {
        let counter = Arc::new(AtomicU64::new(0));
        let mut dist = ring(25);
        let out = GraphLab::on(&mut dist)
            .engine(EngineKind::Locking)
            .machines(m)
            .run(CountOnce(Arc::clone(&counter)));
        assert_eq!(counter.load(Ordering::Relaxed), 25, "{m} machines");
        assert_eq!(out.metrics.updates, 25);
    }
}

#[test]
fn chromatic_executes_each_scheduled_vertex_once() {
    let counter = Arc::new(AtomicU64::new(0));
    let mut dist = ring(25);
    GraphLab::on(&mut dist)
        .engine(EngineKind::Chromatic)
        .machines(3)
        .run(CountOnce(Arc::clone(&counter)));
    assert_eq!(counter.load(Ordering::Relaxed), 25);
}

#[test]
fn uniform_coloring_rejected_for_edge_consistency() {
    let mut dist = ring(6);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        GraphLab::on(&mut dist)
            .engine(EngineKind::Chromatic)
            .coloring(Coloring::uniform(6))
            .run(MaxDiffusion)
    }));
    assert!(result.is_err(), "improper colouring must be rejected");
}

#[test]
fn stop_when_halts_locking_engine_mid_run() {
    // Counter app re-schedules itself forever; only the stop predicate
    // (updates counted through a sync) can end the run.
    struct Forever;
    impl UpdateFunction<f64, f64> for Forever {
        fn update(&self, ctx: &mut UpdateContext<'_, f64, f64>) {
            *ctx.vertex_data_mut() += 1.0;
            ctx.schedule_self(1.0);
        }
    }
    const TOTAL: GlobalHandle<Vec<f64>> = GlobalHandle::new(5);
    let mut dist = ring(8);
    for i in 0..8 {
        *dist.vertex_data_mut(VertexId(i)) = 0.0;
    }
    let out = GraphLab::on(&mut dist)
        .engine(EngineKind::Locking)
        .machines(2)
        .sync(TOTAL, FnSync::new(1, |_, d: &f64| vec![*d], |a, _| a), SyncCadence::Updates(10))
        .stop_when(|g| g.get(TOTAL).is_some_and(|t| t[0] >= 40.0))
        .run(Forever);
    assert!(out.metrics.updates >= 40, "ran until the stop fired");
    assert!(out.globals.get(TOTAL).is_some_and(|t| t[0] >= 40.0));
}
