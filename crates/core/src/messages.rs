//! Wire protocol of the distributed engines.
//!
//! Every payload that crosses a machine boundary is defined here with an
//! explicit binary encoding (DESIGN.md D1). Message kinds are partitioned
//! by engine:
//!
//! - `1..=19` — chromatic engine (§4.2.1): ghost data flushes, write-backs,
//!   schedule forwards, the two-round step flush, and the per-cycle
//!   sync/halt round.
//! - `20..=39` — locking engine (§4.2.2): pipelined lock chains, scope data
//!   synchronisation, releases with piggybacked write-backs, termination
//!   tokens and halt control, background sync, and both snapshot protocols.
//! - `u16::MAX` and `u16::MAX - 1` — **reserved by the transport** for
//!   batch envelopes ([`graphlab_net::batch::K_BATCH`]) and compressed
//!   envelopes ([`graphlab_net::batch::K_ZIP`]); the engines never see
//!   either because the [`graphlab_net::batch::Batcher`] decompresses and
//!   unpacks on receive. New tags must stay clear of both.
//!
//! User data (`V`/`E`) always travels as pre-encoded [`Bytes`] blobs so the
//! protocol structs stay monomorphic.
//!
//! Several protocol invariants assume the fabric's **per-channel FIFO**
//! delivery guarantee (see `graphlab-net`): a [`ScheduleMsg`] emitted
//! during commit must reach the owner before the [`ReleaseMsg`] that
//! unlocks the scope, and the Alg. 5 snapshot markers ride data messages
//! in channel order.

use bytes::{Bytes, BytesMut};
use graphlab_graph::{ConsistencyModel, EdgeId, LockType, MachineId, VertexId};
use graphlab_net::codec::{get_uvarint, put_uvarint, Codec};
use graphlab_net::termination::Token;

// ---- message kinds ----
//
// Registry map — the ground truth `graphlab-lint`'s kind-registry check
// enforces (global uniqueness, per-crate ranges, gap reuse, dead kinds).
// Two reservations partition the u16 kind space:
//
//   - `core` counts **up from 1** (engine protocol; headroom to 63),
//   - `net` counts **down from u16::MAX** (transport-reserved control
//     kinds the engines never see: batch/compressed envelopes and the
//     fabric's down/up notifications, 65532..=65535).
//
// Gap values are *retired or deliberately skipped* and must never be
// reassigned — a decoder for a recycled kind would silently misparse
// snapshots/traces recorded before the reuse:
//
//   - 36: skipped when the background-sync request landed at 37, keeping
//     the snapshot block `29..=35` visually closed; never shipped.
//   - 39: unassigned headroom left between the locking block (`20..=38` —
//     38 became the counter-threshold note `K_UPD_NOTE`) and the recovery
//     block (`40..=47`) so either side can grow without renumbering.
//
// lint: kind-map core = 1..=63 gaps 36, 39
// lint: kind-map net = 65531..=65535
//
// Per-kind handler provenance — ground truth for `graphlab-lint`'s
// msg-flow check. Each `kind` line declares the file(s) that legitimately
// *receive* that kind; the check then proves every declared file still
// contains a live handler site (match arm, guard, or kind comparison) and
// that the kind has at least one non-test send site. Deleting a handler
// arm — or adding a kind without declaring who handles it — turns CI red.
// The net crate's transport kinds are declared here too so the whole wire
// protocol reads from one table.
//
// lint: kind K_CHROM_VDATA handlers: chromatic.rs
// lint: kind K_CHROM_EDATA handlers: chromatic.rs
// lint: kind K_CHROM_WB_V handlers: chromatic.rs
// lint: kind K_CHROM_WB_E handlers: chromatic.rs
// lint: kind K_CHROM_SCHED handlers: chromatic.rs
// lint: kind K_CHROM_FLUSH_A handlers: chromatic.rs
// lint: kind K_CHROM_FLUSH_B handlers: chromatic.rs
// lint: kind K_CHROM_SYNC_PART handlers: chromatic.rs
// lint: kind K_CHROM_SYNC_GLOB handlers: chromatic.rs
// lint: kind K_CHROM_SNAP_DONE handlers: chromatic.rs
// lint: kind K_CHROM_SNAP_RESUME handlers: chromatic.rs
// lint: kind K_LOCK_REQ handlers: locking.rs
// lint: kind K_SCOPE_DATA handlers: locking.rs
// lint: kind K_RELEASE handlers: locking.rs
// lint: kind K_LOCK_SCHED handlers: locking.rs
// lint: kind K_TOKEN handlers: locking.rs
// lint: kind K_HALT handlers: locking.rs
// lint: kind K_HALT_ACK handlers: locking.rs
// lint: kind K_LSYNC_PART handlers: locking.rs
// lint: kind K_LSYNC_GLOB handlers: locking.rs
// lint: kind K_LSYNC_REQ handlers: locking.rs
// lint: kind K_UPD_NOTE handlers: locking.rs
// lint: kind K_SNAP_SYNC_START handlers: locking.rs
// lint: kind K_SNAP_SYNC_READY handlers: locking.rs
// lint: kind K_SNAP_SYNC_FLUSH handlers: locking.rs
// lint: kind K_SNAP_DONE handlers: locking.rs
// lint: kind K_SNAP_RESUME handlers: locking.rs
// lint: kind K_SNAP_ASYNC_START handlers: locking.rs
// lint: kind K_SNAP_ASYNC_MDONE handlers: locking.rs
// lint: kind K_RECOVER_READY handlers: chromatic.rs, locking.rs
// lint: kind K_ROLLBACK handlers: chromatic.rs, locking.rs
// lint: kind K_RECOVERED handlers: chromatic.rs, locking.rs
// lint: kind K_RESUME handlers: chromatic.rs, locking.rs
// lint: kind K_RECOVER_ABORT handlers: chromatic.rs, locking.rs
// lint: kind K_FLUSH_MARK handlers: chromatic.rs, locking.rs
// lint: kind K_ADOPT_PLAN handlers: chromatic.rs, locking.rs
// lint: kind K_ADOPT_DATA handlers: chromatic.rs, locking.rs
// lint: kind K_BATCH handlers: batch.rs
// lint: kind K_ZIP handlers: batch.rs
// lint: kind K_DOWN handlers: chromatic.rs, locking.rs, batch.rs
// lint: kind K_UP handlers: chromatic.rs, locking.rs
// lint: kind K_LEASE handlers: batch.rs

/// Chromatic: vertex ghost update (owner → mirror).
pub const K_CHROM_VDATA: u16 = 1;
/// Chromatic: edge ghost update (owner → mirror).
pub const K_CHROM_EDATA: u16 = 2;
/// Chromatic: vertex write-back (mirror → owner; full consistency).
pub const K_CHROM_WB_V: u16 = 3;
/// Chromatic: edge write-back (mirror → owner).
pub const K_CHROM_WB_E: u16 = 4;
/// Chromatic: remote schedule request.
pub const K_CHROM_SCHED: u16 = 5;
/// Chromatic: first-round step flush (promises direct message counts).
pub const K_CHROM_FLUSH_A: u16 = 6;
/// Chromatic: second-round step flush (promises forwarded write-backs).
pub const K_CHROM_FLUSH_B: u16 = 7;
/// Chromatic: per-cycle sync partial (machine → master).
pub const K_CHROM_SYNC_PART: u16 = 8;
/// Chromatic: per-cycle globals + halt decision (master → all).
pub const K_CHROM_SYNC_GLOB: u16 = 9;
/// Chromatic: snapshot written acknowledgement (machine → master).
pub const K_CHROM_SNAP_DONE: u16 = 10;
/// Chromatic: resume after snapshot (master → all).
pub const K_CHROM_SNAP_RESUME: u16 = 11;

/// Locking: lock chain request hop.
pub const K_LOCK_REQ: u16 = 20;
/// Locking: scope data sync (hop → requester).
pub const K_SCOPE_DATA: u16 = 21;
/// Locking: lock release + write-backs (requester → hop).
pub const K_RELEASE: u16 = 22;
/// Locking: remote schedule request.
pub const K_LOCK_SCHED: u16 = 23;
/// Locking: termination-detection token.
pub const K_TOKEN: u16 = 24;
/// Locking: halt broadcast (master → all).
pub const K_HALT: u16 = 25;
/// Locking: halt acknowledgement (machine → master).
pub const K_HALT_ACK: u16 = 26;
/// Locking: background sync partial (machine → master).
pub const K_LSYNC_PART: u16 = 27;
/// Locking: background sync globals (master → all).
pub const K_LSYNC_GLOB: u16 = 28;
/// Locking: synchronous snapshot — suspend request (master → all).
pub const K_SNAP_SYNC_START: u16 = 29;
/// Locking: synchronous snapshot — machine drained, with cumulative
/// per-destination send counts (machine → master).
pub const K_SNAP_SYNC_READY: u16 = 30;
/// Locking: synchronous snapshot — aggregated flush targets (master → all).
pub const K_SNAP_SYNC_FLUSH: u16 = 31;
/// Locking: snapshot file written (machine → master).
pub const K_SNAP_DONE: u16 = 32;
/// Locking: resume computation (master → all).
pub const K_SNAP_RESUME: u16 = 33;
/// Locking: asynchronous snapshot start (master → all).
pub const K_SNAP_ASYNC_START: u16 = 34;
/// Locking: asynchronous snapshot — machine finished all owned vertices.
pub const K_SNAP_ASYNC_MDONE: u16 = 35;
/// Locking: background sync request (master → all); payload is the epoch.
pub const K_LSYNC_REQ: u16 = 37;
/// Locking: counter-threshold update note (machine → master). Sent when a
/// machine's cumulative local update count crosses a granule of the
/// finest configured trigger interval (background sync / snapshot
/// cadence), and once more with the exact count when it goes idle. This
/// replaces the master's timed counter poll: all sync/snapshot/halt
/// triggers are driven by these notes, so an idle cluster exchanges no
/// control traffic at all. Never sent when no trigger is configured. Not
/// counted work (it must not disturb Safra's termination invariant).
pub const K_UPD_NOTE: u16 = 38;

/// Recovery (both engines, `40..=45`): machine has stopped sending engine
/// traffic for the current fault era (machine → master).
pub const K_RECOVER_READY: u16 = 40;
/// Recovery: roll back to checkpoint `snap` after the marker flush
/// (master → all).
pub const K_ROLLBACK: u16 = 41;
/// Recovery: rollback applied, ready to resume (machine → master).
pub const K_RECOVERED: u16 = 42;
/// Recovery: all machines rolled back — resume computation (master → all).
pub const K_RESUME: u16 = 43;
/// Recovery: unrecoverable — fail the run with the attached reason
/// (master → all).
pub const K_RECOVER_ABORT: u16 = 44;
/// Recovery: channel flush marker (all → all, sent on receiving the
/// rollback order). Per-channel FIFO makes it a barrier: once a machine
/// holds the current era's marker from every peer, no pre-rollback
/// message can ever surface on any channel.
pub const K_FLUSH_MARK: u16 = 45;
/// Recovery/adoption: the master's adoption plan (master → survivors).
/// Carries the re-balanced atom placement survivors rebuild from; dead
/// machines' atoms have been reassigned, survivors' own atoms stay put.
pub const K_ADOPT_PLAN: u16 = 46;
/// Recovery/adoption: ghost-rebuild data round (survivor → survivor,
/// exactly one per ordered pair even when empty). Carries the sender's
/// authoritative rows for vertices/edges the receiver mirrors; doubling
/// as a FIFO barrier that flushes pre-adoption traffic off each channel.
pub const K_ADOPT_DATA: u16 = 47;

/// Returns whether a message kind carries engine *work* and therefore
/// participates in termination detection counters (Safra).
pub fn is_counted_work(kind: u16) -> bool {
    matches!(kind, K_LOCK_REQ | K_SCOPE_DATA | K_RELEASE | K_LOCK_SCHED)
}

/// Returns whether a kind belongs to the recovery/fabric control plane —
/// the only traffic a machine emits between its drain point and the
/// cluster-wide resume, which is what makes the [`K_FLUSH_MARK`] barrier
/// exact: everything a peer sent before its marker is engine traffic from
/// before its drain.
pub fn is_recovery_control(kind: u16) -> bool {
    matches!(
        kind,
        K_RECOVER_READY
            | K_ROLLBACK
            | K_RECOVERED
            | K_RESUME
            | K_RECOVER_ABORT
            | K_FLUSH_MARK
            | K_ADOPT_PLAN
            | K_ADOPT_DATA
    ) || kind == graphlab_net::K_DOWN
        || kind == graphlab_net::K_UP
        || kind == graphlab_net::K_LEASE
}

/// Human-readable name of a message kind, for traffic tables
/// (`repro -- abl-bytes` and the per-kind [`graphlab_net::NetStats`] rows).
pub fn kind_name(kind: u16) -> &'static str {
    match kind {
        K_CHROM_VDATA => "chrom/vdata",
        K_CHROM_EDATA => "chrom/edata",
        K_CHROM_WB_V => "chrom/wb-v",
        K_CHROM_WB_E => "chrom/wb-e",
        K_CHROM_SCHED => "chrom/sched",
        K_CHROM_FLUSH_A => "chrom/flush-a",
        K_CHROM_FLUSH_B => "chrom/flush-b",
        K_CHROM_SYNC_PART => "chrom/sync-part",
        K_CHROM_SYNC_GLOB => "chrom/sync-glob",
        K_CHROM_SNAP_DONE => "chrom/snap-done",
        K_CHROM_SNAP_RESUME => "chrom/snap-resume",
        K_LOCK_REQ => "lock/req",
        K_SCOPE_DATA => "lock/scope-data",
        K_RELEASE => "lock/release",
        K_LOCK_SCHED => "lock/sched",
        K_TOKEN => "lock/token",
        K_HALT => "lock/halt",
        K_HALT_ACK => "lock/halt-ack",
        K_LSYNC_PART => "lock/sync-part",
        K_LSYNC_GLOB => "lock/sync-glob",
        K_LSYNC_REQ => "lock/sync-req",
        K_UPD_NOTE => "lock/upd-note",
        K_SNAP_SYNC_START => "snap/sync-start",
        K_SNAP_SYNC_READY => "snap/sync-ready",
        K_SNAP_SYNC_FLUSH => "snap/sync-flush",
        K_SNAP_DONE => "snap/done",
        K_SNAP_RESUME => "snap/resume",
        K_SNAP_ASYNC_START => "snap/async-start",
        K_SNAP_ASYNC_MDONE => "snap/async-mdone",
        K_RECOVER_READY => "recover/ready",
        K_ROLLBACK => "recover/rollback",
        K_RECOVERED => "recover/recovered",
        K_RESUME => "recover/resume",
        K_RECOVER_ABORT => "recover/abort",
        K_FLUSH_MARK => "recover/flush-mark",
        K_ADOPT_PLAN => "recover/adopt-plan",
        K_ADOPT_DATA => "recover/adopt-data",
        graphlab_net::K_BATCH => "net/batch",
        graphlab_net::K_ZIP => "net/zip",
        graphlab_net::K_DOWN => "fault/down",
        graphlab_net::K_UP => "fault/up",
        graphlab_net::K_LEASE => "net/lease",
        _ => "unknown",
    }
}

// ---- shared rows ----

/// A versioned vertex datum on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct VertexRow {
    /// Global vertex id.
    pub vid: VertexId,
    /// Owner-side version.
    pub version: u64,
    /// Snapshot epoch marker (asynchronous Chandy-Lamport snapshots ride
    /// with the data; 0 = not snapshotted).
    pub snap: u32,
    /// Encoded `V`.
    pub data: Bytes,
}

impl Codec for VertexRow {
    fn encode(&self, buf: &mut BytesMut) {
        self.vid.encode(buf);
        self.version.encode(buf);
        self.snap.encode(buf);
        self.data.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(VertexRow {
            vid: VertexId::decode(buf)?,
            version: u64::decode(buf)?,
            snap: u32::decode(buf)?,
            data: Bytes::decode(buf)?,
        })
    }
}

/// A versioned edge datum on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct EdgeRow {
    /// Global edge id.
    pub eid: EdgeId,
    /// Owner-side version.
    pub version: u64,
    /// Encoded `E`.
    pub data: Bytes,
}

impl Codec for EdgeRow {
    fn encode(&self, buf: &mut BytesMut) {
        self.eid.encode(buf);
        self.version.encode(buf);
        self.data.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(EdgeRow {
            eid: EdgeId::decode(buf)?,
            version: u64::decode(buf)?,
            data: Bytes::decode(buf)?,
        })
    }
}

/// Scheduling rows: `(vertex, priority)`.
///
/// Priorities travel as `f32`: they are only a scheduling hint (the FIFO
/// scheduler ignores them entirely, the priority scheduler buckets them by
/// power of two), so half the bytes lose nothing that affects results.
/// `f64::INFINITY` (the snapshot priority, a *sentinel* at the receiver)
/// survives the round-trip; finite priorities are clamped to the finite
/// `f32` range so no legal priority can alias into the sentinel.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleMsg {
    /// Tasks to enqueue at the receiving owner.
    pub tasks: Vec<(VertexId, f64)>,
}

/// Narrows a scheduling priority for the wire without letting a finite
/// value overflow into `±inf` (infinity is reserved as the snapshot-task
/// sentinel).
fn wire_priority(p: f64) -> f32 {
    if p.is_finite() {
        p.clamp(f32::MIN as f64, f32::MAX as f64) as f32
    } else {
        p as f32
    }
}

impl Codec for ScheduleMsg {
    fn encode(&self, buf: &mut BytesMut) {
        put_uvarint(buf, self.tasks.len() as u64);
        for &(v, prio) in &self.tasks {
            v.encode(buf);
            wire_priority(prio).encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let n = get_uvarint(buf)? as usize;
        let mut tasks = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            tasks.push((VertexId::decode(buf)?, f32::decode(buf)? as f64));
        }
        Some(ScheduleMsg { tasks })
    }
}

// ---- chromatic engine ----

/// Step-tagged data envelope: the chromatic engine's flush accounting
/// buckets data messages by `(step, phase)`.
#[derive(Clone, Debug, PartialEq)]
pub struct StepTagged<T> {
    /// Global colour-step counter.
    pub step: u64,
    /// Flush phase the message belongs to (0 = direct, 1 = forwarded).
    pub phase: u8,
    /// Payload.
    pub inner: T,
}

impl<T: Codec> Codec for StepTagged<T> {
    fn encode(&self, buf: &mut BytesMut) {
        self.step.encode(buf);
        self.phase.encode(buf);
        self.inner.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(StepTagged { step: u64::decode(buf)?, phase: u8::decode(buf)?, inner: T::decode(buf)? })
    }
}

/// Flush marker: "during (step, phase) I sent you `count` data messages;
/// I executed `updates` updates this step and have `pending` tasks queued".
#[derive(Clone, Debug, PartialEq)]
pub struct FlushMsg {
    /// Global colour-step counter.
    pub step: u64,
    /// Number of data messages the sender addressed to the receiver in
    /// this step/phase.
    pub count: u64,
    /// Updates the sender executed this step (phase A only; diagnostics /
    /// halt decision input).
    pub updates: u64,
    /// Sender's total queued tasks at flush time.
    pub pending: u64,
}

impl Codec for FlushMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.step.encode(buf);
        self.count.encode(buf);
        self.updates.encode(buf);
        self.pending.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(FlushMsg {
            step: u64::decode(buf)?,
            count: u64::decode(buf)?,
            updates: u64::decode(buf)?,
            pending: u64::decode(buf)?,
        })
    }
}

/// Sync partial accumulators for one cycle (machine → master). Also the
/// cycle-end barrier: sent even when no sync ops are registered.
///
/// Partials are `(handle id, codec bytes)` rows: each registered
/// [`crate::Aggregate`]'s typed accumulator travels pre-encoded, tagged by
/// its `Copy` [`crate::GlobalHandle`] id — no names on the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct SyncPartialMsg {
    /// Cycle number.
    pub cycle: u64,
    /// `(handle id, encoded accumulator)` per registered sync op, in
    /// registration order.
    pub partials: Vec<(u32, Bytes)>,
    /// Sender's pending task count at cycle end.
    pub pending: u64,
    /// Sender's executed-update count for the whole cycle.
    pub updates: u64,
}

impl Codec for SyncPartialMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.cycle.encode(buf);
        self.partials.encode(buf);
        self.pending.encode(buf);
        self.updates.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(SyncPartialMsg {
            cycle: u64::decode(buf)?,
            partials: Vec::<(u32, Bytes)>::decode(buf)?,
            pending: u64::decode(buf)?,
            updates: u64::decode(buf)?,
        })
    }
}

/// Master's cycle-end broadcast: finalised globals, halt flag, snapshot
/// trigger.
#[derive(Clone, Debug, PartialEq)]
pub struct SyncGlobalsMsg {
    /// Cycle number.
    pub cycle: u64,
    /// `(handle id, version, encoded finalized value)` rows to apply.
    pub globals: Vec<(u32, u64, Bytes)>,
    /// All machines must halt after this cycle.
    pub halt: bool,
    /// All machines must write a snapshot (id) before the next cycle.
    pub snapshot: Option<u64>,
}

impl Codec for SyncGlobalsMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.cycle.encode(buf);
        self.globals.encode(buf);
        self.halt.encode(buf);
        self.snapshot.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(SyncGlobalsMsg {
            cycle: u64::decode(buf)?,
            globals: Vec::<(u32, u64, Bytes)>::decode(buf)?,
            halt: bool::decode(buf)?,
            snapshot: Option::<u64>::decode(buf)?,
        })
    }
}

// ---- locking engine ----

/// A pipelined lock-chain request hop (§4.2.2).
///
/// The chain visits `machines` in ascending id order; each hop acquires its
/// local locks sequentially through the callback rwlock, sends fresh
/// [`ScopeDataMsg`] rows to the requester, and forwards the request to the
/// next hop.
///
/// The request names only the scope **centre** and the consistency
/// `model`; it does not ship a lock plan. Earlier revisions forwarded the
/// full plan plus the requester's cached versions on every hop (~80+ bytes
/// per hop per update — the single largest traffic kind). Both are
/// redundant against replicated state:
///
/// - every participating machine owns a scope vertex, hence holds the
///   centre (at least as a ghost) together with every scope edge incident
///   on its owned vertices, so it can **derive its local lock set** from
///   the model exactly as the requester did (same canonical `(owner, v)`
///   order restricted to one machine = ascending vertex id);
/// - version filtering is done by the **owner-side remote-cache table**
///   (`RemoteCacheTable`): each owner remembers the highest version every
///   peer holds (advanced on every row shipped and write-back applied,
///   both FIFO), so requester versions need not travel at all.
#[derive(Clone, Debug, PartialEq)]
pub struct LockReqMsg {
    /// Machine that initiated the chain (owner of the scope's centre).
    pub requester: MachineId,
    /// Requester-unique request id.
    pub reqid: u64,
    /// Central vertex of the scope.
    pub scope_v: VertexId,
    /// Remaining chain, ascending: the receiving machine at the head,
    /// machines still to visit behind it. Each hop pops itself off before
    /// forwarding, so visited hops stop paying wire bytes.
    pub machines: Vec<MachineId>,
    /// Consistency model the scope is locked under (0 = vertex, 1 = edge,
    /// 2 = full; see [`consistency_to_u8`]). Snapshot chains lock under
    /// edge consistency regardless of the engine default, so the model
    /// must ride with the request.
    pub model: u8,
}

/// Encodes a [`ConsistencyModel`] for the wire.
pub fn consistency_to_u8(m: ConsistencyModel) -> u8 {
    match m {
        ConsistencyModel::Vertex => 0,
        ConsistencyModel::Edge => 1,
        ConsistencyModel::Full => 2,
    }
}

/// Decodes a [`ConsistencyModel`] from the wire.
pub fn consistency_from_u8(v: u8) -> Option<ConsistencyModel> {
    match v {
        0 => Some(ConsistencyModel::Vertex),
        1 => Some(ConsistencyModel::Edge),
        2 => Some(ConsistencyModel::Full),
        _ => None,
    }
}

/// Encodes a [`LockType`] for the wire.
pub fn lock_type_to_u8(t: LockType) -> u8 {
    match t {
        LockType::Read => 0,
        LockType::Write => 1,
    }
}

/// Decodes a [`LockType`] from the wire.
pub fn lock_type_from_u8(v: u8) -> Option<LockType> {
    match v {
        0 => Some(LockType::Read),
        1 => Some(LockType::Write),
        _ => None,
    }
}

impl Codec for LockReqMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.requester.encode(buf);
        self.reqid.encode(buf);
        self.scope_v.encode(buf);
        self.machines.encode(buf);
        self.model.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(LockReqMsg {
            requester: MachineId::decode(buf)?,
            reqid: u64::decode(buf)?,
            scope_v: VertexId::decode(buf)?,
            machines: Vec::<MachineId>::decode(buf)?,
            model: u8::decode(buf)?,
        })
    }
}

/// Scope data synchronisation (hop → requester): only rows whose owner
/// version exceeds what the owner's remote-cache table says the requester
/// already holds are included — the versioning system "eliminating the
/// transmission of unchanged data". Skipped data is acknowledged by the
/// compact `vsame`/`esame` **unchanged markers** (one varint count each,
/// typically a single byte): the requester knows exactly which scope data
/// each hop owns, so a count pins the skipped set and lets it verify that
/// rows + markers cover the hop's whole share of the scope.
#[derive(Clone, Debug, PartialEq)]
pub struct ScopeDataMsg {
    /// Request this responds to.
    pub reqid: u64,
    /// Fresh vertex rows.
    pub vrows: Vec<VertexRow>,
    /// Fresh edge rows.
    pub erows: Vec<EdgeRow>,
    /// Owned scope vertices skipped because the requester's cached copy is
    /// already current.
    pub vsame: u32,
    /// Owned scope edges skipped because the requester's cached copy is
    /// already current.
    pub esame: u32,
}

impl Codec for ScopeDataMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.reqid.encode(buf);
        self.vrows.encode(buf);
        self.erows.encode(buf);
        self.vsame.encode(buf);
        self.esame.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(ScopeDataMsg {
            reqid: u64::decode(buf)?,
            vrows: Vec::<VertexRow>::decode(buf)?,
            erows: Vec::<EdgeRow>::decode(buf)?,
            vsame: u32::decode(buf)?,
            esame: u32::decode(buf)?,
        })
    }
}

/// Lock release (requester → hop) with piggybacked write-backs of dirty
/// data owned by the receiving machine. Riding the release guarantees the
/// owner applies writes before any later conflicting grant.
///
/// The message does not name the locks to drop: the receiving hop still
/// holds its `HopChain` for `(src, reqid)`, whose derived lock set is
/// exactly what the requester would have listed.
#[derive(Clone, Debug, PartialEq)]
pub struct ReleaseMsg {
    /// Request being released.
    pub reqid: u64,
    /// Dirty vertex data owned by the receiver (snap marker rides along).
    pub vwrites: Vec<(VertexId, u32, Bytes)>,
    /// Dirty edge data owned by the receiver.
    pub ewrites: Vec<(EdgeId, Bytes)>,
}

impl Codec for ReleaseMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.reqid.encode(buf);
        (self.vwrites.len() as u32).encode(buf);
        for (v, snap, b) in &self.vwrites {
            v.encode(buf);
            snap.encode(buf);
            b.encode(buf);
        }
        (self.ewrites.len() as u32).encode(buf);
        for (e, b) in &self.ewrites {
            e.encode(buf);
            b.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let reqid = u64::decode(buf)?;
        let nv = u32::decode(buf)? as usize;
        let mut vwrites = Vec::with_capacity(nv);
        for _ in 0..nv {
            vwrites.push((VertexId::decode(buf)?, u32::decode(buf)?, Bytes::decode(buf)?));
        }
        let ne = u32::decode(buf)? as usize;
        let mut ewrites = Vec::with_capacity(ne);
        for _ in 0..ne {
            ewrites.push((EdgeId::decode(buf)?, Bytes::decode(buf)?));
        }
        Some(ReleaseMsg { reqid, vwrites, ewrites })
    }
}

/// Background sync partial (locking engine).
#[derive(Clone, Debug, PartialEq)]
pub struct LockSyncPartialMsg {
    /// Sync epoch.
    pub epoch: u64,
    /// `(handle id, encoded accumulator)` per registered sync op.
    pub partials: Vec<(u32, Bytes)>,
}

impl Codec for LockSyncPartialMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.epoch.encode(buf);
        self.partials.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(LockSyncPartialMsg {
            epoch: u64::decode(buf)?,
            partials: Vec::<(u32, Bytes)>::decode(buf)?,
        })
    }
}

/// Counter-threshold update note ([`K_UPD_NOTE`], machine → master): the
/// sender has executed `updates` update functions in total since engine
/// start. Cumulative and therefore idempotent — the master keeps the max
/// per peer, so duplicates, reordering across rollbacks (counters never
/// reset; re-executed work keeps counting) and a dead peer's last value
/// are all harmless.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UpdNoteMsg {
    /// Sending machine.
    pub from: MachineId,
    /// Sender's cumulative local update count.
    pub updates: u64,
}

impl Codec for UpdNoteMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.from.encode(buf);
        self.updates.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(UpdNoteMsg { from: MachineId::decode(buf)?, updates: u64::decode(buf)? })
    }
}

/// Synchronous-snapshot drain acknowledgement with cumulative engine
/// message send counts per destination (for channel flushing).
#[derive(Clone, Debug, PartialEq)]
pub struct SnapReadyMsg {
    /// Snapshot id.
    pub snap: u64,
    /// Cumulative counted-work messages this machine has sent to each
    /// destination machine since engine start.
    pub sent_to: Vec<u64>,
}

impl Codec for SnapReadyMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.snap.encode(buf);
        self.sent_to.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(SnapReadyMsg { snap: u64::decode(buf)?, sent_to: Vec::<u64>::decode(buf)? })
    }
}

/// Aggregated flush targets: machine `i` must have received
/// `expect_from[j]` counted messages from each machine `j` before writing
/// its snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapFlushMsg {
    /// Snapshot id.
    pub snap: u64,
    /// Per-source cumulative receive targets for the *receiving* machine.
    pub expect_from: Vec<u64>,
}

impl Codec for SnapFlushMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.snap.encode(buf);
        self.expect_from.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(SnapFlushMsg { snap: u64::decode(buf)?, expect_from: Vec::<u64>::decode(buf)? })
    }
}

// ---- recovery (both engines) ----

/// Drain acknowledgement: "I have stopped sending engine traffic for
/// fault era `era`" (machine → master; a reborn machine sends it as soon
/// as its fabric `K_UP` arrives).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoverReadyMsg {
    /// Fabric fault era this drain belongs to.
    pub era: u32,
}

impl Codec for RecoverReadyMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.era.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(RecoverReadyMsg { era: u32::decode(buf)? })
    }
}

/// Master's rollback order: broadcast the era's [`K_FLUSH_MARK`] to every
/// peer, drain inbound channels until every peer's marker arrived, then
/// restore checkpoint `snap` and reset all volatile engine state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RollbackMsg {
    /// Fault era the rollback resolves.
    pub era: u32,
    /// Checkpoint to restore (the latest complete one).
    pub snap: u64,
}

impl Codec for RollbackMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.era.encode(buf);
        self.snap.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(RollbackMsg { era: u32::decode(buf)?, snap: u64::decode(buf)? })
    }
}

/// Rollback-applied acknowledgement (machine → master); the payload is the
/// fault era. Also used, era-tagged, for the final `K_RESUME` barrier
/// release (master → all), so late resumers never miss work sent by early
/// ones — pre-resume arrivals are buffered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoverEraMsg {
    /// Fault era being acknowledged/released.
    pub era: u32,
}

impl Codec for RecoverEraMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.era.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(RecoverEraMsg { era: u32::decode(buf)? })
    }
}

/// Unrecoverable-failure broadcast: the run fails cleanly with `reason`
/// (e.g. *"no complete checkpoint"*) instead of hanging or panicking.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoverAbortMsg {
    /// Fault era the abort resolves.
    pub era: u32,
    /// Human-readable failure reason, surfaced through
    /// [`crate::EngineOutput::failure`].
    pub reason: String,
}

impl Codec for RecoverAbortMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.era.encode(buf);
        self.reason.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(RecoverAbortMsg { era: u32::decode(buf)?, reason: String::decode(buf)? })
    }
}

/// Master's adoption order (master → survivors, [`K_ADOPT_PLAN`]): the
/// re-balanced atom placement after reassigning every dead machine's atoms
/// over the survivors. Survivors rebuild their local graph from this
/// placement's journals, then overlay checkpoint `snap` for the adopted
/// atoms when one is complete (`None` = journal-only adoption: adopted
/// vertices restart from their ingress-initial data and are re-scheduled).
#[derive(Clone, Debug, PartialEq)]
pub struct AdoptPlanMsg {
    /// Fault era the adoption resolves.
    pub era: u32,
    /// Machines being adopted away (dead, no restart scheduled).
    pub dead: Vec<u16>,
    /// The new atom → machine assignment.
    pub placement: graphlab_atoms::Placement,
    /// Complete per-atom checkpoint to overlay for adopted atoms, if any.
    pub snap: Option<u64>,
}

impl Codec for AdoptPlanMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.era.encode(buf);
        self.dead.encode(buf);
        self.placement.encode(buf);
        self.snap.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(AdoptPlanMsg {
            era: u32::decode(buf)?,
            dead: Vec::<u16>::decode(buf)?,
            placement: graphlab_atoms::Placement::decode(buf)?,
            snap: Option::<u64>::decode(buf)?,
        })
    }
}

/// Ghost-rebuild round ([`K_ADOPT_DATA`], survivor → survivor): the
/// sender's authoritative current data for vertices it owns that the
/// receiver mirrors, and for edges whose replica lives on the receiver.
/// Sent exactly once per ordered survivor pair — an empty one still
/// travels, so the round doubles as a FIFO flush barrier.
#[derive(Clone, Debug, PartialEq)]
pub struct AdoptDataMsg {
    /// Fault era the adoption resolves.
    pub era: u32,
    /// `(vertex, encoded V)` rows owned by the sender.
    pub vrows: Vec<(VertexId, Bytes)>,
    /// `(edge, encoded E)` rows owned by the sender.
    pub erows: Vec<(EdgeId, Bytes)>,
}

impl Codec for AdoptDataMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.era.encode(buf);
        self.vrows.encode(buf);
        self.erows.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Some(AdoptDataMsg {
            era: u32::decode(buf)?,
            vrows: Vec::<(VertexId, Bytes)>::decode(buf)?,
            erows: Vec::<(EdgeId, Bytes)>::decode(buf)?,
        })
    }
}

/// Wraps a Safra token for the wire.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TokenMsg(pub Token);

impl Codec for TokenMsg {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        Token::decode(buf).map(TokenMsg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_net::codec::{decode_from, encode_to_bytes};

    fn rt<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let b = encode_to_bytes(&v);
        assert_eq!(decode_from::<T>(b), Some(v));
    }

    #[test]
    fn rows_roundtrip() {
        rt(VertexRow { vid: VertexId(4), version: 9, snap: 1, data: Bytes::from_static(b"xy") });
        rt(EdgeRow { eid: EdgeId(7), version: 3, data: Bytes::new() });
        rt(ScheduleMsg { tasks: vec![(VertexId(1), 0.5), (VertexId(2), 2.0)] });
    }

    #[test]
    fn chromatic_msgs_roundtrip() {
        rt(StepTagged {
            step: 12,
            phase: 1,
            inner: VertexRow { vid: VertexId(0), version: 1, snap: 0, data: Bytes::from_static(b"d") },
        });
        rt(FlushMsg { step: 3, count: 17, updates: 5, pending: 2 });
        rt(SyncPartialMsg {
            cycle: 2,
            partials: vec![(0, Bytes::from_static(b"acc")), (7, Bytes::new())],
            pending: 7,
            updates: 4,
        });
        rt(SyncGlobalsMsg {
            cycle: 2,
            globals: vec![(4, 3, Bytes::from_static(b"out"))],
            halt: true,
            snapshot: Some(1),
        });
    }

    #[test]
    fn locking_msgs_roundtrip() {
        rt(LockReqMsg {
            requester: MachineId(1),
            reqid: 42,
            scope_v: VertexId(5),
            machines: vec![MachineId(0), MachineId(1)],
            model: 1,
        });
        rt(ScopeDataMsg {
            reqid: 42,
            vrows: vec![VertexRow { vid: VertexId(3), version: 3, snap: 0, data: Bytes::from_static(b"v") }],
            erows: vec![EdgeRow { eid: EdgeId(9), version: 2, data: Bytes::from_static(b"e") }],
            vsame: 2,
            esame: 1,
        });
        rt(ReleaseMsg {
            reqid: 42,
            vwrites: vec![(VertexId(3), 1, Bytes::from_static(b"w"))],
            ewrites: vec![(EdgeId(9), Bytes::from_static(b"z"))],
        });
        rt(LockSyncPartialMsg { epoch: 1, partials: vec![(2, Bytes::from_static(b"p"))] });
        rt(UpdNoteMsg { from: MachineId(3), updates: 12345 });
        rt(SnapReadyMsg { snap: 1, sent_to: vec![10, 0, 5] });
        rt(SnapFlushMsg { snap: 1, expect_from: vec![2, 2, 2] });
        rt(TokenMsg(Token { count: -2, black: false, round: 4 }));
    }

    #[test]
    fn recovery_msgs_roundtrip() {
        rt(RecoverReadyMsg { era: 2 });
        rt(RollbackMsg { era: 2, snap: 1 });
        rt(RecoverEraMsg { era: 3 });
        rt(RecoverAbortMsg { era: 1, reason: "no complete checkpoint".into() });
        rt(AdoptPlanMsg {
            era: 4,
            dead: vec![2],
            placement: graphlab_atoms::Placement::round_robin(8, 3),
            snap: Some(5),
        });
        rt(AdoptPlanMsg {
            era: 1,
            dead: vec![1, 3],
            placement: graphlab_atoms::Placement::round_robin(4, 2),
            snap: None,
        });
        rt(AdoptDataMsg {
            era: 4,
            vrows: vec![(VertexId(3), Bytes::from_static(b"v"))],
            erows: vec![(EdgeId(9), Bytes::new())],
        });
    }

    #[test]
    fn recovery_control_classification() {
        for k in [
            K_RECOVER_READY,
            K_ROLLBACK,
            K_RECOVERED,
            K_RESUME,
            K_RECOVER_ABORT,
            K_FLUSH_MARK,
            K_ADOPT_PLAN,
            K_ADOPT_DATA,
        ] {
            assert!(is_recovery_control(k));
            assert!(!is_counted_work(k));
            assert_ne!(kind_name(k), "unknown");
        }
        assert!(is_recovery_control(graphlab_net::K_DOWN));
        assert!(is_recovery_control(graphlab_net::K_UP));
        assert!(is_recovery_control(graphlab_net::K_LEASE));
        assert!(!is_recovery_control(K_LOCK_REQ));
        assert!(!is_recovery_control(K_TOKEN));
        assert!(!is_recovery_control(K_CHROM_VDATA));
    }

    #[test]
    fn lock_type_wire_mapping() {
        assert_eq!(lock_type_from_u8(lock_type_to_u8(LockType::Read)), Some(LockType::Read));
        assert_eq!(lock_type_from_u8(lock_type_to_u8(LockType::Write)), Some(LockType::Write));
        assert_eq!(lock_type_from_u8(7), None);
    }

    #[test]
    fn counted_work_classification() {
        assert!(is_counted_work(K_LOCK_REQ));
        assert!(is_counted_work(K_SCOPE_DATA));
        assert!(is_counted_work(K_RELEASE));
        assert!(is_counted_work(K_LOCK_SCHED));
        assert!(!is_counted_work(K_TOKEN));
        assert!(!is_counted_work(K_HALT));
        assert!(!is_counted_work(K_CHROM_VDATA));
        assert!(!is_counted_work(K_LSYNC_PART));
        // An update note must disturb neither Safra's work counters nor
        // the recovery drain barrier.
        assert!(!is_counted_work(K_UPD_NOTE));
        assert!(!is_recovery_control(K_UPD_NOTE));
    }

    #[test]
    fn every_engine_kind_has_a_name() {
        for k in (1..=11).chain(20..=35).chain([37, 38]) {
            assert_ne!(kind_name(k), "unknown", "kind {k} unnamed");
        }
        assert_eq!(kind_name(graphlab_net::K_BATCH), "net/batch");
        assert_eq!(kind_name(graphlab_net::K_ZIP), "net/zip");
        assert_eq!(kind_name(12345), "unknown");
    }

    #[test]
    fn lock_req_wire_size_is_compact() {
        // A typical 8-neighbour scope request: the v2 format (varints,
        // derived plans — only centre/routing/model travel) must stay far
        // under the old plan-carrying encoding (~250 bytes fixed-width).
        let msg = LockReqMsg {
            requester: MachineId(3),
            reqid: 1000,
            scope_v: VertexId(4321),
            machines: (0..5).map(MachineId).collect(),
            model: 1,
        };
        let bytes = encode_to_bytes(&msg);
        assert!(bytes.len() <= 16, "LockReqMsg encodes to {} bytes", bytes.len());
    }

    #[test]
    fn huge_finite_priority_does_not_alias_into_snapshot_sentinel() {
        // 1e39 overflows f32; a naive cast would turn it into +inf, which
        // the locking engine treats as "this is a snapshot task" and drops
        // when no snapshot is active. It must clamp to a finite value.
        let msg = ScheduleMsg { tasks: vec![(VertexId(1), 1e39), (VertexId(2), -1e39)] };
        let dec = decode_from::<ScheduleMsg>(encode_to_bytes(&msg)).expect("decode");
        assert!(dec.tasks[0].1.is_finite() && dec.tasks[0].1 > 0.0);
        assert!(dec.tasks[1].1.is_finite() && dec.tasks[1].1 < 0.0);
        // The real sentinel still travels as infinity.
        let msg = ScheduleMsg { tasks: vec![(VertexId(1), f64::INFINITY)] };
        let dec = decode_from::<ScheduleMsg>(encode_to_bytes(&msg)).expect("decode");
        assert_eq!(dec.tasks[0].1, f64::INFINITY);
    }

    #[test]
    fn consistency_wire_mapping() {
        for m in [ConsistencyModel::Vertex, ConsistencyModel::Edge, ConsistencyModel::Full] {
            assert_eq!(consistency_from_u8(consistency_to_u8(m)), Some(m));
        }
        assert_eq!(consistency_from_u8(9), None);
    }
}
