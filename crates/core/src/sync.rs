//! The sync operation (§3.5): associative-commutative aggregation over the
//! graph producing global values,
//!
//! ```text
//! Z = Finalize( ⊕_{v ∈ V} Map(S_v) )
//! ```
//!
//! The map runs per-vertex on each machine's owned vertices; partial
//! accumulators are combined up to the master, finalised, and the result is
//! broadcast back into every machine's [`crate::globals::GlobalRegistry`].
//! In the chromatic engine syncs run between colour-steps (trivially
//! consistent); the locking engine interleaves them with computation
//! ("runs continuously in the background") at a configurable update
//! cadence, which corresponds to the paper's *inconsistent* sync mode —
//! adequate for the statistics the applications maintain.

use graphlab_graph::VertexId;

use crate::local::LocalGraph;

/// A sync operation definition.
///
/// Accumulators are `f64` vectors; `map` produces one per vertex, `combine`
/// folds them (must be associative and commutative), and `finalize` turns
/// the cluster-wide accumulator into the published global value (e.g.
/// normalisation).
pub trait SyncOp<V, E>: Send + Sync {
    /// Name under which the result is published.
    fn name(&self) -> String;
    /// Identity accumulator.
    fn init(&self) -> Vec<f64>;
    /// Maps one vertex's scope (vertex datum) to an accumulator.
    fn map(&self, vertex: VertexId, data: &V) -> Vec<f64>;
    /// Folds `part` into `acc`.
    fn combine(&self, acc: &mut Vec<f64>, part: &[f64]);
    /// Finalisation (normalisation etc.); `total_vertices` is |V|.
    fn finalize(&self, acc: Vec<f64>, total_vertices: u64) -> Vec<f64>;
}

/// Computes one machine's partial accumulator over its owned vertices.
pub fn local_partial<V, E>(op: &dyn SyncOp<V, E>, lg: &LocalGraph<V, E>) -> Vec<f64> {
    let mut acc = op.init();
    for &l in lg.owned_vertices() {
        let part = op.map(lg.vertex_gvid(l), lg.vertex_data(l));
        op.combine(&mut acc, &part);
    }
    acc
}

/// Element-wise sum sync op: publishes `finalize(Σ map(v))`. The most
/// common shape (convergence estimators, counters, GMM sufficient
/// statistics); constructed from plain functions.
#[allow(clippy::type_complexity)]
pub struct FnSync<V> {
    name: String,
    width: usize,
    map: Box<dyn Fn(VertexId, &V) -> Vec<f64> + Send + Sync>,
    finalize: Box<dyn Fn(Vec<f64>, u64) -> Vec<f64> + Send + Sync>,
}

impl<V> FnSync<V> {
    /// Builds a sum-combined sync op.
    pub fn new(
        name: impl Into<String>,
        width: usize,
        map: impl Fn(VertexId, &V) -> Vec<f64> + Send + Sync + 'static,
        finalize: impl Fn(Vec<f64>, u64) -> Vec<f64> + Send + Sync + 'static,
    ) -> Self {
        FnSync { name: name.into(), width, map: Box::new(map), finalize: Box::new(finalize) }
    }
}

impl<V: Send + Sync, E> SyncOp<V, E> for FnSync<V> {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn init(&self) -> Vec<f64> {
        vec![0.0; self.width]
    }
    fn map(&self, vertex: VertexId, data: &V) -> Vec<f64> {
        (self.map)(vertex, data)
    }
    fn combine(&self, acc: &mut Vec<f64>, part: &[f64]) {
        debug_assert_eq!(acc.len(), part.len());
        for (a, p) in acc.iter_mut().zip(part) {
            *a += p;
        }
    }
    fn finalize(&self, acc: Vec<f64>, total_vertices: u64) -> Vec<f64> {
        (self.finalize)(acc, total_vertices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_graph::{DataGraph, GraphBuilder};

    fn graph() -> DataGraph<f64, ()> {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(i as f64 + 1.0)).collect();
        b.add_edge(v[0], v[1], ()).unwrap();
        b.build()
    }

    #[test]
    fn sum_sync_over_single_machine() {
        let g = graph();
        let lg = LocalGraph::single_machine(&g, None);
        let op: FnSync<f64> = FnSync::new("total", 1, |_, d| vec![*d], |acc, _| acc);
        let partial = local_partial::<f64, ()>(&op, &lg);
        assert_eq!(partial, vec![10.0]);
        let final_val = SyncOp::<f64, ()>::finalize(&op, partial, 4);
        assert_eq!(final_val, vec![10.0]);
    }

    #[test]
    fn finalize_can_normalize() {
        let g = graph();
        let lg = LocalGraph::single_machine(&g, None);
        let op: FnSync<f64> = FnSync::new(
            "mean",
            1,
            |_, d| vec![*d],
            |acc, n| acc.into_iter().map(|x| x / n as f64).collect(),
        );
        let partial = local_partial::<f64, ()>(&op, &lg);
        assert_eq!(SyncOp::<f64, ()>::finalize(&op, partial, 4), vec![2.5]);
    }

    #[test]
    fn combine_is_elementwise_sum() {
        let op: FnSync<f64> = FnSync::new("s", 2, |_, _| vec![0.0, 0.0], |acc, _| acc);
        let mut acc = vec![1.0, 2.0];
        SyncOp::<f64, ()>::combine(&op, &mut acc, &[0.5, 0.5]);
        assert_eq!(acc, vec![1.5, 2.5]);
    }
}
