//! The sync operation (§3.5): associative-commutative aggregation over the
//! graph producing global values,
//!
//! ```text
//! Z = Finalize( ⊕_{v ∈ V} Map(S_v) )
//! ```
//!
//! An [`Aggregate`] maps every vertex **scope** to a typed, codec-encodable
//! accumulator; partial accumulators are combined up to the master,
//! finalised, and the result is broadcast back into every machine's
//! [`crate::GlobalRegistry`] under the [`crate::GlobalHandle`] the program
//! registered it with. Update functions read it back with
//! [`crate::UpdateContext::global`] — a typed read keyed by a `Copy` id, so
//! no names travel on the wire and nothing allocates per evaluation.
//!
//! In the chromatic engine syncs run between colour cycles (trivially
//! consistent); the locking engine interleaves them with computation ("runs
//! continuously in the background") at the program's update cadence, which
//! corresponds to the paper's *inconsistent* sync mode — adequate for the
//! statistics the applications maintain. The map sees the full scope
//! `S_v` (centre, adjacent edges, adjacent vertices), exactly as §3.5
//! defines it; under the locking engine's background mode those neighbour
//! reads may observe slightly stale ghosts.

use std::any::Any;
use std::sync::Arc;

use bytes::Bytes;
use graphlab_graph::{EdgeDir, VertexId};
use graphlab_net::codec::{decode_from, encode_to_bytes, Codec};

use crate::local::LocalGraph;

// ---------------------------------------------------------------------
// Scope view
// ---------------------------------------------------------------------

/// Read-only view of one vertex scope `S_v` handed to [`Aggregate::map`].
///
/// Unlike [`crate::UpdateContext`] this view enforces no consistency model:
/// the sync operation reads whatever is resident (the paper's background
/// sync mode); between chromatic colour cycles that is fully consistent.
pub struct SyncScope<'a, V, E> {
    lg: &'a LocalGraph<V, E>,
    v: u32,
}

impl<'a, V, E> SyncScope<'a, V, E> {
    pub(crate) fn new(lg: &'a LocalGraph<V, E>, v: u32) -> Self {
        SyncScope { lg, v }
    }

    /// Global id of the scope's central vertex.
    #[inline]
    pub fn vertex(&self) -> VertexId {
        self.lg.vertex_gvid(self.v)
    }

    /// The central vertex datum.
    #[inline]
    pub fn vertex_data(&self) -> &V {
        self.lg.vertex_data(self.v)
    }

    /// Number of vertices in the global graph.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.lg.total_vertices()
    }

    /// Number of adjacent edges (parallel edges counted individually).
    #[inline]
    pub fn num_neighbors(&self) -> usize {
        self.lg.adj(self.v).len()
    }

    /// Global id of the `i`-th neighbour.
    #[inline]
    pub fn nbr(&self, i: usize) -> VertexId {
        self.lg.vertex_gvid(self.lg.adj(self.v)[i].nbr)
    }

    /// Direction of the `i`-th adjacent edge relative to the centre.
    #[inline]
    pub fn nbr_dir(&self, i: usize) -> EdgeDir {
        self.lg.adj(self.v)[i].dir
    }

    /// The `i`-th neighbour's vertex datum.
    #[inline]
    pub fn nbr_data(&self, i: usize) -> &V {
        self.lg.vertex_data(self.lg.adj(self.v)[i].nbr)
    }

    /// The `i`-th adjacent edge's datum.
    #[inline]
    pub fn edge_data(&self, i: usize) -> &E {
        self.lg.edge_data(self.lg.adj(self.v)[i].edge)
    }
}

// ---------------------------------------------------------------------
// The typed aggregate
// ---------------------------------------------------------------------

/// A typed sync operation: Fold/Apply aggregation over vertex scopes.
///
/// `map` produces one accumulator per vertex scope, `combine` folds them
/// (must be associative and commutative — partials combine in machine
/// order, not vertex order), and `finalize` turns the cluster-wide
/// accumulator into the published global value (e.g. normalisation). Both
/// the accumulator and the output are [`Codec`]-encodable: partials and
/// finalized values travel as codec bytes tagged with the handle id.
pub trait Aggregate<V, E>: Send + Sync + 'static {
    /// Partial accumulator exchanged between machines.
    type Acc: Codec + Clone + Send + Sync + 'static;
    /// Finalized global value, readable through
    /// [`crate::UpdateContext::global`].
    type Out: Codec + Clone + Send + Sync + 'static;

    /// Identity accumulator.
    fn init(&self) -> Self::Acc;
    /// Maps one vertex scope to an accumulator.
    fn map(&self, scope: &SyncScope<'_, V, E>) -> Self::Acc;
    /// Folds `part` into `acc` (associative, commutative).
    fn combine(&self, acc: &mut Self::Acc, part: Self::Acc);
    /// Finalisation (normalisation etc.); `total_vertices` is |V|.
    fn finalize(&self, acc: Self::Acc, total_vertices: u64) -> Self::Out;
}

/// Element-wise sum sync op: publishes `finalize(Σ map(v))`. The most
/// common shape (convergence estimators, counters, GMM sufficient
/// statistics); constructed from plain functions over the central vertex
/// datum.
#[allow(clippy::type_complexity)]
pub struct FnSync<V> {
    width: usize,
    map: Box<dyn Fn(VertexId, &V) -> Vec<f64> + Send + Sync>,
    finalize: Box<dyn Fn(Vec<f64>, u64) -> Vec<f64> + Send + Sync>,
}

impl<V> FnSync<V> {
    /// Builds a sum-combined sync op over `width`-wide accumulators.
    pub fn new(
        width: usize,
        map: impl Fn(VertexId, &V) -> Vec<f64> + Send + Sync + 'static,
        finalize: impl Fn(Vec<f64>, u64) -> Vec<f64> + Send + Sync + 'static,
    ) -> Self {
        FnSync { width, map: Box::new(map), finalize: Box::new(finalize) }
    }
}

impl<V: Send + Sync + 'static, E: 'static> Aggregate<V, E> for FnSync<V> {
    type Acc = Vec<f64>;
    type Out = Vec<f64>;

    fn init(&self) -> Vec<f64> {
        vec![0.0; self.width]
    }
    fn map(&self, scope: &SyncScope<'_, V, E>) -> Vec<f64> {
        (self.map)(scope.vertex(), scope.vertex_data())
    }
    fn combine(&self, acc: &mut Vec<f64>, part: Vec<f64>) {
        debug_assert_eq!(acc.len(), part.len());
        for (a, p) in acc.iter_mut().zip(part) {
            *a += p;
        }
    }
    fn finalize(&self, acc: Vec<f64>, total_vertices: u64) -> Vec<f64> {
        (self.finalize)(acc, total_vertices)
    }
}

/// Computes one machine's typed partial accumulator over its owned
/// vertices.
pub fn local_partial<V, E, A: Aggregate<V, E>>(op: &A, lg: &LocalGraph<V, E>) -> A::Acc {
    let mut acc = op.init();
    for &l in lg.owned_vertices() {
        let part = op.map(&SyncScope::new(lg, l));
        op.combine(&mut acc, part);
    }
    acc
}

// ---------------------------------------------------------------------
// Type-erased plumbing (engine side)
// ---------------------------------------------------------------------

/// Object-safe seam between the engines and the typed [`Aggregate`]s the
/// program registered: accumulators cross it as codec [`Bytes`] (the wire
/// shape) or `dyn Any` (the master's in-flight fold), tagged by the `Copy`
/// handle id.
pub(crate) trait ErasedSync<V, E>: Send + Sync {
    /// Handle id the finalized value publishes under.
    fn id(&self) -> u32;
    /// One machine's encoded partial over its owned vertices.
    fn local_partial(&self, lg: &LocalGraph<V, E>) -> Bytes;
    /// Fresh identity accumulator for the master-side fold.
    fn init_acc(&self) -> Box<dyn Any + Send>;
    /// Decodes `part` and folds it into `acc`.
    fn combine(&self, acc: &mut dyn Any, part: &Bytes);
    /// Finalizes: returns the encoded value (for broadcast) and the typed
    /// value (for the master's own registry).
    fn finalize(&self, acc: Box<dyn Any + Send>, total_vertices: u64)
        -> (Bytes, Arc<dyn Any + Send + Sync>);
    /// Decodes a broadcast finalized value into its typed form.
    fn decode_out(&self, bytes: Bytes) -> Option<Arc<dyn Any + Send + Sync>>;
    /// Single-machine evaluation: typed map → combine → finalize with no
    /// codec roundtrip (the `Bytes` shape is only needed on the wire).
    fn run_local(&self, lg: &LocalGraph<V, E>) -> Arc<dyn Any + Send + Sync>;
}

/// An [`Aggregate`] registered under a handle id.
pub(crate) struct RegisteredSync<A> {
    pub(crate) id: u32,
    pub(crate) op: A,
}

impl<V, E, A> ErasedSync<V, E> for RegisteredSync<A>
where
    A: Aggregate<V, E>,
{
    fn id(&self) -> u32 {
        self.id
    }
    fn local_partial(&self, lg: &LocalGraph<V, E>) -> Bytes {
        encode_to_bytes(&local_partial(&self.op, lg))
    }
    fn init_acc(&self) -> Box<dyn Any + Send> {
        Box::new(self.op.init())
    }
    fn combine(&self, acc: &mut dyn Any, part: &Bytes) {
        let acc = acc.downcast_mut::<A::Acc>().expect("accumulator type");
        let part = decode_from::<A::Acc>(part.clone()).expect("malformed sync partial");
        self.op.combine(acc, part);
    }
    fn finalize(
        &self,
        acc: Box<dyn Any + Send>,
        total_vertices: u64,
    ) -> (Bytes, Arc<dyn Any + Send + Sync>) {
        let acc = *acc.downcast::<A::Acc>().expect("accumulator type");
        let out = self.op.finalize(acc, total_vertices);
        (encode_to_bytes(&out), Arc::new(out))
    }
    fn decode_out(&self, bytes: Bytes) -> Option<Arc<dyn Any + Send + Sync>> {
        decode_from::<A::Out>(bytes).map(|v| Arc::new(v) as Arc<dyn Any + Send + Sync>)
    }
    fn run_local(&self, lg: &LocalGraph<V, E>) -> Arc<dyn Any + Send + Sync> {
        let acc = local_partial(&self.op, lg);
        Arc::new(self.op.finalize(acc, lg.total_vertices()))
    }
}

/// The engines' shared sync list.
pub(crate) type SyncList<V, E> = Arc<Vec<Box<dyn ErasedSync<V, E>>>>;

/// Runs every registered sync locally (single-machine path: the
/// sequential engine), staying typed end to end — no codec roundtrip.
pub(crate) fn run_local_syncs<V, E>(
    syncs: &[Box<dyn ErasedSync<V, E>>],
    lg: &LocalGraph<V, E>,
    globals: &mut crate::globals::GlobalRegistry,
) {
    for op in syncs {
        let typed = op.run_local(lg);
        globals.set(op.id(), typed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_graph::{DataGraph, GraphBuilder};

    fn graph() -> DataGraph<f64, ()> {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(i as f64 + 1.0)).collect();
        b.add_edge(v[0], v[1], ()).unwrap();
        b.build()
    }

    #[test]
    fn sum_sync_over_single_machine() {
        let g = graph();
        let lg = LocalGraph::single_machine(&g, None);
        let op: FnSync<f64> = FnSync::new(1, |_, d| vec![*d], |acc, _| acc);
        let partial = local_partial::<f64, (), _>(&op, &lg);
        assert_eq!(partial, vec![10.0]);
        let final_val = Aggregate::<f64, ()>::finalize(&op, partial, 4);
        assert_eq!(final_val, vec![10.0]);
    }

    #[test]
    fn finalize_can_normalize() {
        let g = graph();
        let lg = LocalGraph::single_machine(&g, None);
        let op: FnSync<f64> = FnSync::new(
            1,
            |_, d| vec![*d],
            |acc, n| acc.into_iter().map(|x| x / n as f64).collect(),
        );
        let partial = local_partial::<f64, (), _>(&op, &lg);
        assert_eq!(Aggregate::<f64, ()>::finalize(&op, partial, 4), vec![2.5]);
    }

    #[test]
    fn combine_is_elementwise_sum() {
        let op: FnSync<f64> = FnSync::new(2, |_, _| vec![0.0, 0.0], |acc, _| acc);
        let mut acc = vec![1.0, 2.0];
        Aggregate::<f64, ()>::combine(&op, &mut acc, vec![0.5, 0.5]);
        assert_eq!(acc, vec![1.5, 2.5]);
    }

    /// A scope-reading aggregate: sums |v - mean(neighbours)| — exercises
    /// the neighbour access path of `SyncScope`.
    struct NbrGap;
    impl Aggregate<f64, ()> for NbrGap {
        type Acc = f64;
        type Out = f64;
        fn init(&self) -> f64 {
            0.0
        }
        fn map(&self, s: &SyncScope<'_, f64, ()>) -> f64 {
            let deg = s.num_neighbors();
            if deg == 0 {
                return 0.0;
            }
            let mean: f64 = (0..deg).map(|i| *s.nbr_data(i)).sum::<f64>() / deg as f64;
            (s.vertex_data() - mean).abs()
        }
        fn combine(&self, acc: &mut f64, part: f64) {
            *acc += part;
        }
        fn finalize(&self, acc: f64, _: u64) -> f64 {
            acc
        }
    }

    #[test]
    fn scope_map_reads_neighbours() {
        let g = graph(); // v0=1, v1=2 connected; v2, v3 isolated
        let lg = LocalGraph::single_machine(&g, None);
        let total = local_partial(&NbrGap, &lg);
        // |1-2| + |2-1| = 2
        assert_eq!(total, 2.0);
    }

    #[test]
    fn erased_path_matches_typed_path() {
        let g = graph();
        let lg = LocalGraph::single_machine(&g, None);
        let erased: Box<dyn ErasedSync<f64, ()>> = Box::new(RegisteredSync {
            id: 3,
            op: FnSync::new(1, |_, d: &f64| vec![*d], |acc, n| vec![acc[0] / n as f64]),
        });
        let mut globals = crate::globals::GlobalRegistry::new();
        run_local_syncs(std::slice::from_ref(&erased), &lg, &mut globals);
        let h: crate::globals::GlobalHandle<Vec<f64>> = crate::globals::GlobalHandle::new(3);
        assert_eq!(globals.get(h), Some(&vec![2.5]));
        assert_eq!(globals.version(3), 1);
    }

    #[test]
    fn erased_combine_decodes_partials() {
        let erased: Box<dyn ErasedSync<f64, ()>> = Box::new(RegisteredSync {
            id: 0,
            op: FnSync::new(2, |_, _: &f64| vec![0.0, 0.0], |acc, _| acc),
        });
        let mut acc = erased.init_acc();
        erased.combine(acc.as_mut(), &encode_to_bytes(&vec![1.0f64, 2.0]));
        erased.combine(acc.as_mut(), &encode_to_bytes(&vec![0.5f64, 0.5]));
        let (bytes, typed) = erased.finalize(acc, 4);
        assert_eq!(decode_from::<Vec<f64>>(bytes), Some(vec![1.5, 2.5]));
        assert_eq!(typed.downcast_ref::<Vec<f64>>(), Some(&vec![1.5, 2.5]));
    }
}
