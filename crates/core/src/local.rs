//! Machine-local storage of a partition of the distributed data graph.
//!
//! Each machine materialises its [`LocalGraphInit`] (owned vertices/edges
//! plus ghosts, §4.1) into a [`LocalGraph`]: dense columns indexed by
//! *local* ids with hash maps back to global ids, a local CSR adjacency,
//! and a data *version* per datum implementing the ghost cache coherence
//! scheme ("cache coherence is managed using a simple versioning system,
//! eliminating the transmission of unchanged or constant data").
//!
//! Invariant: every **owned** vertex has its complete global adjacency
//! locally (guaranteed by atom construction), so update functions always
//! run against full scopes. Ghost vertices have partial adjacency.

use std::collections::HashMap;

use graphlab_graph::{
    AtomId, Coloring, ConsistencyModel, DataGraph, EdgeDir, EdgeId, LockType, MachineId, VertexId,
};
use graphlab_atoms::{InitEdge, InitVertex, LocalGraphInit};

/// Entry of a local adjacency list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalAdjEntry {
    /// Local index of the neighbour vertex.
    pub nbr: u32,
    /// Local index of the connecting edge.
    pub edge: u32,
    /// Direction of the edge relative to the list's owner.
    pub dir: EdgeDir,
}

/// One machine's portion of the data graph.
pub struct LocalGraph<V, E> {
    machine: MachineId,
    num_machines: usize,
    total_vertices: u64,
    total_edges: u64,

    // Vertex columns (local index).
    gvid: Vec<VertexId>,
    vowner: Vec<MachineId>,
    vdata: Vec<V>,
    vversion: Vec<u64>,
    vcolor: Vec<u32>,
    /// Owner atom of each local vertex (ghosts included) — the unit of
    /// per-atom checkpointing and adoption.
    vatom: Vec<AtomId>,
    /// For owned vertices: machines holding a ghost copy.
    vmirrors: Vec<Vec<MachineId>>,

    // Edge columns (local index).
    geid: Vec<EdgeId>,
    esrc: Vec<u32>,
    edst: Vec<u32>,
    eowner: Vec<MachineId>,
    edata: Vec<E>,
    eversion: Vec<u64>,

    // Local CSR adjacency over local vertices.
    adj_off: Vec<u32>,
    adj: Vec<LocalAdjEntry>,

    // Global → local maps.
    vmap: HashMap<VertexId, u32>,
    emap: HashMap<EdgeId, u32>,

    /// Local indices of owned vertices, ascending by global id.
    owned: Vec<u32>,
}

impl<V, E> LocalGraph<V, E> {
    /// Materialises an ingress part. `coloring`, when present, attaches a
    /// colour to every local vertex (chromatic engine).
    pub fn from_init(init: LocalGraphInit<V, E>, coloring: Option<&Coloring>) -> Self {
        let LocalGraphInit { machine, num_machines, vertices, edges, total_vertices, total_edges } =
            init;
        let nv = vertices.len();
        let ne = edges.len();

        let mut vmap = HashMap::with_capacity(nv);
        let mut gvid = Vec::with_capacity(nv);
        let mut vowner = Vec::with_capacity(nv);
        let mut vdata = Vec::with_capacity(nv);
        let mut vmirrors = Vec::with_capacity(nv);
        let mut vcolor = Vec::with_capacity(nv);
        let mut vatom = Vec::with_capacity(nv);
        for (i, InitVertex { gvid: g, atom, owner, mirrors, data }) in
            vertices.into_iter().enumerate()
        {
            vmap.insert(g, i as u32);
            gvid.push(g);
            vowner.push(owner);
            vdata.push(data);
            vmirrors.push(mirrors);
            vcolor.push(coloring.map_or(0, |c| c.color(g)));
            vatom.push(atom);
        }

        let mut emap = HashMap::with_capacity(ne);
        let mut geid = Vec::with_capacity(ne);
        let mut esrc = Vec::with_capacity(ne);
        let mut edst = Vec::with_capacity(ne);
        let mut eowner = Vec::with_capacity(ne);
        let mut edata = Vec::with_capacity(ne);
        for (i, InitEdge { geid: g, src, dst, owner, data }) in edges.into_iter().enumerate() {
            emap.insert(g, i as u32);
            geid.push(g);
            esrc.push(*vmap.get(&src).expect("edge src locally present"));
            edst.push(*vmap.get(&dst).expect("edge dst locally present"));
            eowner.push(owner);
            edata.push(data);
        }

        // CSR over local vertices.
        let mut counts = vec![0u32; nv + 1];
        for i in 0..ne {
            counts[esrc[i] as usize + 1] += 1;
            counts[edst[i] as usize + 1] += 1;
        }
        for i in 0..nv {
            counts[i + 1] += counts[i];
        }
        let adj_off = counts;
        let mut cursor: Vec<u32> = adj_off[..nv].to_vec();
        let mut adj = vec![LocalAdjEntry { nbr: 0, edge: 0, dir: EdgeDir::Out }; 2 * ne];
        for e in 0..ne {
            let (s, d) = (esrc[e], edst[e]);
            adj[cursor[s as usize] as usize] =
                LocalAdjEntry { nbr: d, edge: e as u32, dir: EdgeDir::Out };
            cursor[s as usize] += 1;
            adj[cursor[d as usize] as usize] =
                LocalAdjEntry { nbr: s, edge: e as u32, dir: EdgeDir::In };
            cursor[d as usize] += 1;
        }
        // Deterministic order: sort each slice by (global nbr id, global edge id).
        for vi in 0..nv {
            let (lo, hi) = (adj_off[vi] as usize, adj_off[vi + 1] as usize);
            adj[lo..hi].sort_unstable_by_key(|e| (gvid[e.nbr as usize], geid[e.edge as usize]));
        }

        let owned: Vec<u32> = (0..nv as u32).filter(|&i| vowner[i as usize] == machine).collect();

        LocalGraph {
            machine,
            num_machines,
            total_vertices,
            total_edges,
            gvid,
            vowner,
            vdata,
            vversion: vec![0; nv],
            vcolor,
            vatom,
            vmirrors,
            geid,
            esrc,
            edst,
            eowner,
            edata,
            eversion: vec![0; ne],
            adj_off,
            adj,
            vmap,
            emap,
            owned,
        }
    }

    /// Builds the whole graph as a single machine's local graph (sequential
    /// reference engine, single-machine runs).
    pub fn single_machine(graph: &DataGraph<V, E>, coloring: Option<&Coloring>) -> Self
    where
        V: Clone,
        E: Clone,
    {
        let init = LocalGraphInit {
            machine: MachineId(0),
            num_machines: 1,
            vertices: graph
                .vertices()
                .map(|v| InitVertex {
                    gvid: v,
                    atom: AtomId(0),
                    owner: MachineId(0),
                    mirrors: Vec::new(),
                    data: graph.vertex_data(v).clone(),
                })
                .collect(),
            edges: graph
                .edges()
                .map(|e| {
                    let (src, dst) = graph.edge_endpoints(e);
                    InitEdge {
                        geid: e,
                        src,
                        dst,
                        owner: MachineId(0),
                        data: graph.edge_data(e).clone(),
                    }
                })
                .collect(),
            total_vertices: graph.num_vertices() as u64,
            total_edges: graph.num_edges() as u64,
        };
        LocalGraph::from_init(init, coloring)
    }

    // ---- identity & sizes ----

    /// This machine.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Cluster size.
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// |V| of the full distributed graph.
    pub fn total_vertices(&self) -> u64 {
        self.total_vertices
    }

    /// |E| of the full distributed graph.
    pub fn total_edges(&self) -> u64 {
        self.total_edges
    }

    /// Number of local (owned + ghost) vertices.
    pub fn num_local_vertices(&self) -> usize {
        self.gvid.len()
    }

    /// Number of local edges.
    pub fn num_local_edges(&self) -> usize {
        self.geid.len()
    }

    /// Local indices of owned vertices.
    pub fn owned_vertices(&self) -> &[u32] {
        &self.owned
    }

    // ---- id mapping ----

    /// Local index of a global vertex id, if present.
    #[inline]
    pub fn local_vertex(&self, g: VertexId) -> Option<u32> {
        self.vmap.get(&g).copied()
    }

    /// Local index of a global edge id, if present.
    #[inline]
    pub fn local_edge(&self, g: EdgeId) -> Option<u32> {
        self.emap.get(&g).copied()
    }

    /// Global id of a local vertex.
    #[inline]
    pub fn vertex_gvid(&self, l: u32) -> VertexId {
        self.gvid[l as usize]
    }

    /// Global id of a local edge.
    #[inline]
    pub fn edge_geid(&self, l: u32) -> EdgeId {
        self.geid[l as usize]
    }

    // ---- ownership / coherence ----

    /// Owner machine of a local vertex.
    #[inline]
    pub fn vertex_owner(&self, l: u32) -> MachineId {
        self.vowner[l as usize]
    }

    /// Whether this machine owns the vertex.
    #[inline]
    pub fn owns_vertex(&self, l: u32) -> bool {
        self.vowner[l as usize] == self.machine
    }

    /// Owner machine of a local edge.
    #[inline]
    pub fn edge_owner(&self, l: u32) -> MachineId {
        self.eowner[l as usize]
    }

    /// Whether this machine owns the edge.
    #[inline]
    pub fn owns_edge(&self, l: u32) -> bool {
        self.eowner[l as usize] == self.machine
    }

    /// Machines holding ghosts of an owned vertex.
    #[inline]
    pub fn vertex_mirrors(&self, l: u32) -> &[MachineId] {
        &self.vmirrors[l as usize]
    }

    /// Owner atom of a local vertex (ghosts included). Edges belong to
    /// the atom of their **target** vertex (the atom-construction edge
    /// ownership rule), so this also keys per-atom edge grouping.
    #[inline]
    pub fn vertex_atom(&self, l: u32) -> AtomId {
        self.vatom[l as usize]
    }

    /// Owner atom of a local edge: the atom of its target vertex.
    #[inline]
    pub fn edge_atom(&self, l: u32) -> AtomId {
        self.vatom[self.edst[l as usize] as usize]
    }

    /// Current version of a vertex datum (authoritative on the owner,
    /// cached elsewhere).
    #[inline]
    pub fn vertex_version(&self, l: u32) -> u64 {
        self.vversion[l as usize]
    }

    /// Current version of an edge datum.
    #[inline]
    pub fn edge_version(&self, l: u32) -> u64 {
        self.eversion[l as usize]
    }

    /// Owner-side version bump after a local write; returns the new version.
    #[inline]
    pub fn bump_vertex_version(&mut self, l: u32) -> u64 {
        debug_assert!(self.owns_vertex(l));
        self.vversion[l as usize] += 1;
        self.vversion[l as usize]
    }

    /// Owner-side edge version bump; returns the new version.
    #[inline]
    pub fn bump_edge_version(&mut self, l: u32) -> u64 {
        debug_assert!(self.owns_edge(l));
        self.eversion[l as usize] += 1;
        self.eversion[l as usize]
    }

    /// Applies a ghost-cache update if `version` is newer. Returns whether
    /// the payload was applied.
    pub fn apply_vertex_update(&mut self, l: u32, version: u64, data: V) -> bool {
        if version > self.vversion[l as usize] {
            self.vversion[l as usize] = version;
            self.vdata[l as usize] = data;
            true
        } else {
            false
        }
    }

    /// Edge counterpart of [`LocalGraph::apply_vertex_update`].
    pub fn apply_edge_update(&mut self, l: u32, version: u64, data: E) -> bool {
        if version > self.eversion[l as usize] {
            self.eversion[l as usize] = version;
            self.edata[l as usize] = data;
            true
        } else {
            false
        }
    }

    /// Resets every datum version to 0 — the checkpoint-rollback ground
    /// state. Valid only when the whole cluster resets together against
    /// identical restored data (version 0 means "the value every machine
    /// already holds", the same convention ingress establishes).
    pub fn reset_versions(&mut self) {
        self.vversion.fill(0);
        self.eversion.fill(0);
    }

    // ---- colours ----

    /// Colour of a local vertex (0 when no colouring was supplied).
    #[inline]
    pub fn vertex_color(&self, l: u32) -> u32 {
        self.vcolor[l as usize]
    }

    // ---- data access ----

    /// Vertex data (local index).
    #[inline]
    pub fn vertex_data(&self, l: u32) -> &V {
        &self.vdata[l as usize]
    }

    /// Mutable vertex data (local index). Engines are responsible for the
    /// consistency protocol; user code goes through `UpdateContext`.
    #[inline]
    pub fn vertex_data_mut(&mut self, l: u32) -> &mut V {
        &mut self.vdata[l as usize]
    }

    /// Edge data (local index).
    #[inline]
    pub fn edge_data(&self, l: u32) -> &E {
        &self.edata[l as usize]
    }

    /// Mutable edge data (local index).
    #[inline]
    pub fn edge_data_mut(&mut self, l: u32) -> &mut E {
        &mut self.edata[l as usize]
    }

    /// Endpoints of a local edge as local indices `(src, dst)`.
    #[inline]
    pub fn edge_endpoints_local(&self, l: u32) -> (u32, u32) {
        (self.esrc[l as usize], self.edst[l as usize])
    }

    /// Local adjacency of a local vertex.
    #[inline]
    pub fn adj(&self, l: u32) -> &[LocalAdjEntry] {
        let lo = self.adj_off[l as usize] as usize;
        let hi = self.adj_off[l as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    // ---- lock planning (§4.2.2) ----

    /// The lock plan of vertex `l`'s scope under `model`: distinct
    /// `(vertex, lock)` pairs sorted by the canonical deadlock-avoidance
    /// order `(owner(v), v)`. Returns global vertex ids.
    pub fn lock_plan(&self, l: u32, model: ConsistencyModel) -> Vec<(VertexId, LockType)> {
        let mut plan: Vec<(MachineId, VertexId, LockType)> = Vec::with_capacity(self.adj(l).len() + 1);
        plan.push((self.vowner[l as usize], self.gvid[l as usize], model.central_lock()));
        if let Some(nbr_lock) = model.neighbor_lock() {
            for e in self.adj(l) {
                plan.push((self.vowner[e.nbr as usize], self.gvid[e.nbr as usize], nbr_lock));
            }
        }
        plan.sort_unstable();
        // Merge duplicates (parallel edges): strongest lock wins.
        plan.dedup_by(|next, prev| {
            if prev.1 == next.1 {
                if next.2 == LockType::Write {
                    prev.2 = LockType::Write;
                }
                true
            } else {
                false
            }
        });
        plan.into_iter().map(|(_, v, t)| (v, t)).collect()
    }

    /// Consumes the local graph, returning the owned data for result
    /// collection: `(vertex rows, edge rows)` with global ids.
    #[allow(clippy::type_complexity)]
    pub fn into_owned_data(mut self) -> (Vec<(VertexId, V)>, Vec<(EdgeId, E)>) {
        let mut vrows = Vec::with_capacity(self.owned.len());
        // Drain in descending local index so swap_remove-like moves stay valid.
        let owned = std::mem::take(&mut self.owned);
        let mut vdata: Vec<Option<V>> = self.vdata.into_iter().map(Some).collect();
        for &l in &owned {
            vrows.push((self.gvid[l as usize], vdata[l as usize].take().expect("owned data")));
        }
        let mut erows = Vec::new();
        let mut edata: Vec<Option<E>> = self.edata.into_iter().map(Some).collect();
        for (l, &geid) in self.geid.iter().enumerate() {
            if self.eowner[l] == self.machine {
                erows.push((geid, edata[l].take().expect("owned edge data")));
            }
        }
        (vrows, erows)
    }
}

/// Owner-side table of the highest data version each remote machine is
/// known to hold for each locally-stored datum — the responder half of the
/// §4.2.2 ghost-cache versioning scheme ("eliminating the transmission of
/// unchanged or constant data").
///
/// Entries are advanced on exactly two events, both of which ride FIFO
/// channels so the remote copy is guaranteed current by the time any later
/// message from this machine is processed there:
///
/// 1. a scope-data row is shipped to machine `m` (it will apply it before
///    executing the scope that requested it), and
/// 2. a write-back from machine `m` is applied (the writer holds exactly
///    the data it wrote).
///
/// **Invalidation**: local writes bump the datum's version, which makes
/// every machine's entry stale automatically (entry < current ⇒ resend);
/// [`RemoteCacheTable::invalidate_all`] additionally drops every
/// assumption, used conservatively at snapshot boundaries so a checkpoint
/// cut never depends on residency bookkeeping. Entries start at 0, which
/// is *valid* knowledge: version-0 data is the ingress-loaded initial
/// value every machine already holds.
#[derive(Debug)]
pub struct RemoteCacheTable {
    nv: usize,
    ne: usize,
    v: Vec<u64>,
    e: Vec<u64>,
}

impl RemoteCacheTable {
    /// A table for `machines` peers over `nv` local vertices and `ne`
    /// local edges, all initialised to version 0.
    pub fn new(machines: usize, nv: usize, ne: usize) -> Self {
        RemoteCacheTable { nv, ne, v: vec![0; machines * nv], e: vec![0; machines * ne] }
    }

    /// Highest vertex version machine `m` is known to hold for local
    /// vertex `lv`.
    #[inline]
    pub fn v_known(&self, m: usize, lv: u32) -> u64 {
        self.v[m * self.nv + lv as usize]
    }

    /// Records that machine `m` holds at least version `ver` of `lv`.
    #[inline]
    pub fn note_v(&mut self, m: usize, lv: u32, ver: u64) {
        let slot = &mut self.v[m * self.nv + lv as usize];
        if ver > *slot {
            *slot = ver;
        }
    }

    /// Highest edge version machine `m` is known to hold for local edge
    /// `le`.
    #[inline]
    pub fn e_known(&self, m: usize, le: u32) -> u64 {
        self.e[m * self.ne + le as usize]
    }

    /// Records that machine `m` holds at least version `ver` of `le`.
    #[inline]
    pub fn note_e(&mut self, m: usize, le: u32, ver: u64) {
        let slot = &mut self.e[m * self.ne + le as usize];
        if ver > *slot {
            *slot = ver;
        }
    }

    /// Forgets everything: every subsequent sync re-sends ground truth.
    pub fn invalidate_all(&mut self) {
        self.v.fill(0);
        self.e.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_graph::GraphBuilder;

    fn path3() -> DataGraph<f64, f64> {
        // v0 -> v1 -> v2
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..3).map(|i| b.add_vertex(i as f64)).collect();
        b.add_edge(v[0], v[1], 0.1).unwrap();
        b.add_edge(v[1], v[2], 0.2).unwrap();
        b.build()
    }

    #[test]
    fn single_machine_mirrors_graph() {
        let g = path3();
        let lg = LocalGraph::single_machine(&g, None);
        assert_eq!(lg.num_local_vertices(), 3);
        assert_eq!(lg.num_local_edges(), 2);
        assert_eq!(lg.owned_vertices().len(), 3);
        assert_eq!(lg.total_vertices(), 3);
        let l1 = lg.local_vertex(VertexId(1)).unwrap();
        assert_eq!(lg.adj(l1).len(), 2);
        assert!(lg.owns_vertex(l1));
    }

    #[test]
    fn lock_plan_edge_consistency_sorted_dedup() {
        let g = path3();
        let lg = LocalGraph::single_machine(&g, None);
        let l1 = lg.local_vertex(VertexId(1)).unwrap();
        let plan = lg.lock_plan(l1, ConsistencyModel::Edge);
        assert_eq!(
            plan,
            vec![
                (VertexId(0), LockType::Read),
                (VertexId(1), LockType::Write),
                (VertexId(2), LockType::Read),
            ]
        );
    }

    #[test]
    fn lock_plan_vertex_consistency_is_central_only() {
        let g = path3();
        let lg = LocalGraph::single_machine(&g, None);
        let l1 = lg.local_vertex(VertexId(1)).unwrap();
        assert_eq!(
            lg.lock_plan(l1, ConsistencyModel::Vertex),
            vec![(VertexId(1), LockType::Write)]
        );
    }

    #[test]
    fn lock_plan_full_consistency_write_locks_neighbors() {
        let g = path3();
        let lg = LocalGraph::single_machine(&g, None);
        let l0 = lg.local_vertex(VertexId(0)).unwrap();
        assert_eq!(
            lg.lock_plan(l0, ConsistencyModel::Full),
            vec![(VertexId(0), LockType::Write), (VertexId(1), LockType::Write)]
        );
    }

    #[test]
    fn parallel_edges_dedup_to_strongest_lock() {
        let mut b = GraphBuilder::new();
        let a = b.add_vertex(0.0f64);
        let c = b.add_vertex(1.0f64);
        b.add_edge(a, c, 1.0f64).unwrap();
        b.add_edge(c, a, 2.0).unwrap();
        let g = b.build();
        let lg = LocalGraph::single_machine(&g, None);
        let la = lg.local_vertex(VertexId(0)).unwrap();
        let plan = lg.lock_plan(la, ConsistencyModel::Edge);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0], (VertexId(0), LockType::Write));
        assert_eq!(plan[1], (VertexId(1), LockType::Read));
    }

    #[test]
    fn version_updates_apply_monotonically() {
        let g = path3();
        let mut lg = LocalGraph::single_machine(&g, None);
        assert!(lg.apply_vertex_update(0, 3, 99.0));
        assert_eq!(*lg.vertex_data(0), 99.0);
        assert!(!lg.apply_vertex_update(0, 2, 11.0), "stale update dropped");
        assert_eq!(*lg.vertex_data(0), 99.0);
        assert!(lg.apply_edge_update(1, 1, 0.9));
        assert_eq!(*lg.edge_data(1), 0.9);
    }

    #[test]
    fn bump_versions_increment() {
        let g = path3();
        let mut lg = LocalGraph::single_machine(&g, None);
        assert_eq!(lg.bump_vertex_version(0), 1);
        assert_eq!(lg.bump_vertex_version(0), 2);
        assert_eq!(lg.bump_edge_version(0), 1);
        assert_eq!(lg.vertex_version(0), 2);
    }

    #[test]
    fn into_owned_data_returns_everything_single_machine() {
        let g = path3();
        let lg = LocalGraph::single_machine(&g, None);
        let (vs, es) = lg.into_owned_data();
        assert_eq!(vs.len(), 3);
        assert_eq!(es.len(), 2);
    }

    #[test]
    fn remote_cache_table_notes_are_monotone() {
        let mut t = RemoteCacheTable::new(3, 4, 2);
        assert_eq!(t.v_known(1, 2), 0);
        t.note_v(1, 2, 5);
        assert_eq!(t.v_known(1, 2), 5);
        t.note_v(1, 2, 3); // stale note ignored
        assert_eq!(t.v_known(1, 2), 5);
        t.note_v(1, 2, 9);
        assert_eq!(t.v_known(1, 2), 9);
        // Other machines and other vertices are independent.
        assert_eq!(t.v_known(0, 2), 0);
        assert_eq!(t.v_known(1, 3), 0);
        t.note_e(2, 1, 7);
        assert_eq!(t.e_known(2, 1), 7);
        assert_eq!(t.e_known(2, 0), 0);
        t.invalidate_all();
        assert_eq!(t.v_known(1, 2), 0);
        assert_eq!(t.e_known(2, 1), 0);
    }

    #[test]
    fn colors_attached() {
        let g = path3();
        let coloring = graphlab_graph::greedy_coloring(&g);
        let lg = LocalGraph::single_machine(&g, Some(&coloring));
        for l in 0..3u32 {
            assert_eq!(lg.vertex_color(l), coloring.color(lg.vertex_gvid(l)));
        }
    }
}
