//! Shared bookkeeping for the engines' checkpoint-rollback recovery
//! protocol (§4.3; see the [`crate::snapshot`] module docs for the full
//! protocol walkthrough).
//!
//! Both engines drive the same master-coordinated state machine, keyed on
//! the fabric **fault era** (total kills so far, carried by every
//! `K_DOWN`/`K_UP` notification):
//!
//! ```text
//! normal --K_DOWN--> drain --K_ROLLBACK--> marker flush --all marks-->
//!   restore+reset --K_RECOVERED--> await-resume --K_RESUME--> normal
//! ```
//!
//! The **marker flush** is what makes the rollback cut exact without any
//! global counters: a machine stops sending engine traffic when it enters
//! the drain (only recovery control flows after), and broadcasts the
//! era's `K_FLUSH_MARK` when the rollback order arrives. Per-channel FIFO
//! then guarantees that once a machine holds the current era's marker
//! from every peer, every pre-drain engine message has already been
//! delivered (and discarded) — nothing stale can surface after the
//! restore. Channels touching the dead machine need no flushing at all:
//! the fabric drops in-flight traffic of dead incarnations, and the
//! reborn machine starts from an empty inbox.
//!
//! The tracker owns the era arithmetic (overlapping failures supersede a
//! round safely) and the master's READY/RECOVERED collection. All
//! engine-specific state teardown (schedulers, lock tables, colour
//! queues) stays in the engines.

use std::time::Duration;

use graphlab_atoms::SimDfs;
use graphlab_net::fault::DownMsg;

use crate::messages::{RecoverAbortMsg, RollbackMsg};
use crate::snapshot::{latest_complete_snapshot, prune_snapshots_after};

/// A recovery round that makes no progress for this long fails the run
/// with a clean error instead of hanging (the chaos suite's "never hangs"
/// guarantee; generous against CI scheduling noise).
pub(crate) const RECOVERY_DEADLINE: Duration = Duration::from_secs(60);

/// The clean failure reason for a permanent (restart-less) kill — shared
/// so every detection site (either engine, survivor or victim) reports
/// the same thing.
pub(crate) fn unrecoverable_down(d: &DownMsg) -> String {
    format!(
        "machine {} lost at fault era {} with no restart scheduled — its owned partition \
         cannot be recovered",
        d.machine, d.era
    )
}

/// Master, all READYs in: prunes torn checkpoints and picks the rollback
/// target. `parts` is the number of distinct parts a complete checkpoint
/// holds (one per atom in the engines' per-atom layout). `Ok` is the
/// order to broadcast; `Err` is the abort to broadcast (no complete
/// checkpoint — nothing to roll back to). Shared by both engines so the
/// selection policy and the failure wording cannot diverge.
pub(crate) fn pick_rollback(
    dfs: &SimDfs,
    prefix: &str,
    parts: usize,
    era: u32,
) -> Result<RollbackMsg, RecoverAbortMsg> {
    let latest = latest_complete_snapshot(dfs, prefix, parts);
    prune_snapshots_after(dfs, prefix, latest);
    match latest {
        Some(snap) => Ok(RollbackMsg { era, snap }),
        None => Err(RecoverAbortMsg {
            era,
            reason: format!(
                "machine failure at fault era {era} with no complete checkpoint to roll back \
                 to — configure snapshots (SnapshotConfig) to make runs recoverable"
            ),
        }),
    }
}

/// Master, all surviving READYs in under [`crate::RecoveryMode::Adopt`]:
/// computes the adoption order — the re-balanced placement (dead
/// machines' atoms LPT-spread over survivors) plus the latest complete
/// per-atom checkpoint to overlay, if any (`None` degrades to
/// journal-only adoption: adopted vertices restart from ingress-initial
/// data and reconverge through re-scheduling — adoption never *requires*
/// checkpoints the way rollback does).
pub(crate) fn pick_adoption(
    dfs: &SimDfs,
    prefix: &str,
    parts: usize,
    era: u32,
    index: &graphlab_atoms::AtomIndex,
    placement: &graphlab_atoms::Placement,
    dead: &[bool],
) -> crate::messages::AdoptPlanMsg {
    let snap = latest_complete_snapshot(dfs, prefix, parts);
    prune_snapshots_after(dfs, prefix, snap);
    crate::messages::AdoptPlanMsg {
        era,
        dead: (0..dead.len()).filter(|&m| dead[m]).map(|m| m as u16).collect(),
        placement: placement.adopt(index, dead),
        snap,
    }
}

/// Where a machine stands in the recovery protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RecoveryPhase {
    /// No recovery in progress.
    Normal,
    /// This machine is dead (fault plan); waiting for the fabric restart.
    Dead,
    /// Drained and READY sent; waiting for the master's rollback order.
    Drain,
    /// Rollback received and own marker broadcast; discarding stale
    /// traffic until every peer's flush marker arrived.
    FlushWait,
    /// Adoption applied locally; waiting for every surviving peer's
    /// `K_ADOPT_DATA` ghost round (locking engine only — the chromatic
    /// engine collects the round inside its nested recovery loop).
    AdoptData,
    /// Rolled back; waiting for the cluster-wide resume barrier.
    AwaitResume,
}

/// Per-machine recovery bookkeeping shared by both distributed engines.
#[derive(Debug)]
pub(crate) struct RecoveryTracker {
    me: usize,
    n: usize,
    /// Latest fabric fault era seen (0 = no fault yet).
    pub era: u32,
    /// Completed rollbacks on this machine.
    pub recoveries: u64,
    /// Completed adoption rounds on this machine (restart-free recovery).
    pub adoptions: u64,
    /// Machines known permanently dead (no restart scheduled). Every
    /// collection below counts survivors only; deaths persist across
    /// eras. Restartable kills are *not* recorded here — the rollback
    /// round must wait for the reborn machine's READY.
    dead: Vec<bool>,
    /// Master: machines whose READY arrived for the current era.
    ready: Vec<bool>,
    /// Peers whose flush marker arrived for the current era.
    marks: Vec<bool>,
    /// Master: K_RECOVERED acknowledgements for the current era.
    recovered: usize,
}

impl RecoveryTracker {
    pub(crate) fn new(me: usize, n: usize) -> Self {
        RecoveryTracker {
            me,
            n,
            era: 0,
            recoveries: 0,
            adoptions: 0,
            dead: vec![false; n],
            ready: vec![false; n],
            marks: vec![false; n],
            recovered: 0,
        }
    }

    /// Records a permanent (restart-less) death: `machine` drops out of
    /// every barrier from here on. Idempotent.
    pub(crate) fn note_death(&mut self, machine: usize) {
        self.dead[machine] = true;
    }

    /// Whether `machine` is recorded permanently dead.
    pub(crate) fn is_dead(&self, machine: usize) -> bool {
        self.dead[machine]
    }

    /// The permanent-death mask (index = machine).
    pub(crate) fn dead_mask(&self) -> &[bool] {
        &self.dead
    }

    /// Number of machines still alive.
    pub(crate) fn survivors(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }

    /// Observes a fault era (from `K_DOWN`, `K_UP`, or — on a reborn
    /// machine — the rollback order itself). Returns `true` when the era
    /// advanced: the caller must (re-)enter the drain phase and send a
    /// fresh READY; all collection state restarts.
    pub(crate) fn observe_era(&mut self, era: u32) -> bool {
        if era <= self.era {
            return false;
        }
        self.era = era;
        self.ready.fill(false);
        self.marks.fill(false);
        self.recovered = 0;
        true
    }

    /// Master: records machine `src`'s READY for `era` (stale ignored).
    pub(crate) fn note_ready(&mut self, src: usize, era: u32) {
        if era == self.era {
            self.ready[src] = true;
        }
    }

    /// Master: whether every *surviving* machine (reborn included — a
    /// restartable kill never enters the dead set) reported READY for the
    /// current era.
    pub(crate) fn all_ready(&self) -> bool {
        (0..self.n).all(|j| self.dead[j] || self.ready[j])
    }

    /// Records peer `src`'s flush marker for `era` (stale ignored).
    pub(crate) fn note_mark(&mut self, src: usize, era: u32) {
        if era == self.era {
            self.marks[src] = true;
        }
    }

    /// Whether the current era's marker arrived from every surviving peer
    /// — the FIFO barrier after which no pre-drain engine message can
    /// surface (dead machines' channels need no flushing: the fabric
    /// drops dead incarnations' traffic).
    pub(crate) fn marks_complete(&self) -> bool {
        (0..self.n).all(|j| j == self.me || self.dead[j] || self.marks[j])
    }

    /// Called when this machine's rollback is applied.
    pub(crate) fn after_rollback(&mut self) {
        self.recoveries += 1;
    }

    /// Called when this machine's adoption round completes.
    pub(crate) fn after_adoption(&mut self) {
        self.adoptions += 1;
    }

    /// Master: counts a K_RECOVERED for `era`; returns whether every
    /// survivor has recovered and the resume barrier can release.
    pub(crate) fn note_recovered(&mut self, era: u32) -> bool {
        if era == self.era {
            self.recovered += 1;
        }
        self.recovered >= self.survivors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn era_advance_resets_collection() {
        let mut t = RecoveryTracker::new(0, 3);
        assert!(t.observe_era(1));
        t.note_ready(0, 1);
        t.note_ready(1, 1);
        t.note_ready(2, 1);
        assert!(t.all_ready());
        t.note_mark(1, 1);
        t.note_mark(2, 1);
        assert!(t.marks_complete());
        // A second failure restarts the round.
        assert!(t.observe_era(2));
        assert!(!t.all_ready());
        assert!(!t.marks_complete());
        assert!(!t.observe_era(2), "same era observed twice is a no-op");
        assert!(!t.observe_era(1), "stale era ignored");
    }

    #[test]
    fn stale_control_is_ignored() {
        let mut t = RecoveryTracker::new(1, 2);
        t.observe_era(3);
        t.note_ready(0, 2); // stale era
        assert!(!t.all_ready());
        t.note_mark(0, 2); // stale era
        assert!(!t.marks_complete());
        t.note_mark(0, 3);
        assert!(t.marks_complete(), "own channel needs no marker");
    }

    #[test]
    fn dead_machines_drop_out_of_every_barrier() {
        let mut t = RecoveryTracker::new(0, 4);
        t.observe_era(1);
        t.note_death(2);
        assert!(t.is_dead(2));
        assert_eq!(t.survivors(), 3);
        t.note_ready(0, 1);
        t.note_ready(1, 1);
        assert!(!t.all_ready(), "machine 3 still owes a READY");
        t.note_ready(3, 1);
        assert!(t.all_ready(), "the dead machine owes nothing");
        t.note_mark(1, 1);
        t.note_mark(3, 1);
        assert!(t.marks_complete(), "no marker expected from the dead");
        assert!(!t.note_recovered(1));
        assert!(!t.note_recovered(1));
        assert!(t.note_recovered(1), "resume releases at 3 survivors");
        // Deaths persist across eras; collection state does not.
        assert!(t.observe_era(2));
        assert!(t.is_dead(2));
        assert!(!t.all_ready());
        t.after_adoption();
        assert_eq!(t.adoptions, 1);
        assert_eq!(t.recoveries, 0);
    }

    #[test]
    fn resume_barrier_counts_current_era_only() {
        let mut t = RecoveryTracker::new(0, 2);
        t.observe_era(1);
        assert!(!t.note_recovered(1));
        assert!(!t.note_recovered(0), "stale era not counted");
        assert!(t.note_recovered(1));
        t.after_rollback();
        assert_eq!(t.recoveries, 1);
    }
}
