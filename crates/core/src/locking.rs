//! The distributed locking engine (§4.2.2).
//!
//! Fully asynchronous execution with prioritised dynamic scheduling.
//! Serializability is enforced by associating a readers-writer lock with
//! every vertex: vertex consistency write-locks the centre, edge
//! consistency adds read locks on neighbours, full consistency write-locks
//! the whole scope. Deadlocks are avoided by acquiring locks sequentially
//! in the canonical order `(owner(v), v)`, which also lets all locks on one
//! remote machine be requested in a single message.
//!
//! Two latency-hiding techniques from the paper are implemented:
//!
//! 1. **Ghost caching with versioning** — each lock-chain hop attaches only
//!    the scope data whose owner-side version is newer than what the hop's
//!    [`RemoteCacheTable`] says the requester already caches; skipped data
//!    is acknowledged with compact "unchanged" markers. The table advances
//!    on every row shipped and every write-back applied (both FIFO), so a
//!    skipped row is always already resident at the requester by the time
//!    its scope executes. It is conservatively invalidated at snapshot
//!    boundaries.
//! 2. **Pipelining** — every machine keeps up to `max_pipeline` lock
//!    chains in flight; scopes whose locks and data have arrived are
//!    executed by the machine loop while the rest of the pipeline fills
//!    (Alg. 4). The non-blocking lock table below is the "callback"
//!    readers-writer lock: acquisition never blocks the engine thread,
//!    parked requests are resumed from release processing.
//!
//! Termination uses the marker/token algorithm (Misra \[26\], Safra
//! formulation) from `graphlab-net`. Snapshots (§4.3) come in both
//! flavours: stop-and-flush synchronous, and the asynchronous
//! Chandy-Lamport variant expressed as a prioritised update function
//! (Alg. 5).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::Ordering as AtomicOrdering;
use std::time::{Duration, Instant};

use bytes::Bytes;
use graphlab_atoms::{load_machine_part, LocalGraphInit};
use graphlab_graph::{ConsistencyModel, LockType, MachineId, VertexId};
use graphlab_net::codec::{decode_from, encode_to_bytes, Codec};
use graphlab_net::fault::{DownMsg, UpMsg};
use graphlab_net::termination::{Safra, SafraAction};
use graphlab_net::{Batcher, Endpoint, Envelope, LeaseConfig, RecvError};

use crate::config::{RecoveryMode, SnapshotMode};
use crate::driver::{MachineResult, MachineSetup};
use crate::globals::GlobalRegistry;
use crate::local::{LocalGraph, RemoteCacheTable};
use crate::messages::*;
use crate::recovery::{
    pick_adoption, pick_rollback, unrecoverable_down, RecoveryPhase, RecoveryTracker,
    RECOVERY_DEADLINE,
};
use crate::reference::InitialSchedule;
use crate::scheduler::Scheduler;
use crate::snapshot::{
    apply_file, restore_atoms_into_local, restore_into_local, write_snapshot_atoms, SnapshotFile,
};
use crate::update::{UpdateContext, UpdateEffects, UpdateFunction};

/// Priority marking a schedule request as a snapshot task (Alg. 5:
/// "the Snapshot Update is prioritized over other update functions").
pub const SNAPSHOT_PRIORITY: f64 = f64::INFINITY;

/// Receive deadline while the machine is in a recovery phase: recovery
/// stall detection is timer-based, so the loop must tick.
const IDLE_BLOCK: Duration = Duration::from_millis(25);

/// Receive deadline for an idle (or pipeline-full) machine in the normal
/// phase — master included, now that [`K_UPD_NOTE`] announces worker
/// update counts and sync/snapshot/halt triggers are message-driven.
/// Purely a liveness backstop: every state change arrives as a message,
/// which wakes the blocked `recv_timeout` immediately, so a healthy
/// cluster never lets this expire (the idle-cluster regression pins the
/// master's expiry count at zero).
const IDLE_BACKSTOP: Duration = Duration::from_millis(500);

/// Receive deadline for an injected straggler's host machine until its
/// stall fires: the trigger reads the shared update counter, which no
/// message announces, so that one diagnostic path still polls.
const STRAGGLER_POLL: Duration = Duration::from_millis(2);

/// Identifies a lock chain cluster-wide: `(requester machine, reqid)`.
type ChainKey = (u16, u64);

/// Master-side in-flight sync epoch: `(epoch, accumulators, partials got)`.
type SyncEpoch = (u64, Vec<Box<dyn std::any::Any + Send>>, usize);

// ---------------------------------------------------------------------
// Non-blocking callback readers-writer lock table
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct LockState {
    readers: u32,
    writer: bool,
    queue: VecDeque<(ChainKey, LockType)>,
}

impl LockState {
    fn compatible(&self, t: LockType) -> bool {
        match t {
            LockType::Read => !self.writer,
            LockType::Write => !self.writer && self.readers == 0,
        }
    }
    fn grant(&mut self, t: LockType) {
        match t {
            LockType::Read => self.readers += 1,
            LockType::Write => self.writer = true,
        }
    }
    fn ungrant(&mut self, t: LockType) {
        match t {
            LockType::Read => {
                debug_assert!(self.readers > 0);
                self.readers -= 1;
            }
            LockType::Write => {
                debug_assert!(self.writer);
                self.writer = false;
            }
        }
    }
}

/// Per-machine table of vertex locks. FIFO-fair: a request parks behind
/// earlier arrivals even when it would be immediately compatible, which
/// (with ordered acquisition) guarantees liveness.
#[derive(Debug)]
pub(crate) struct LockTable {
    states: Vec<LockState>,
}

impl LockTable {
    pub(crate) fn new(n: usize) -> Self {
        LockTable { states: (0..n).map(|_| LockState::default()).collect() }
    }

    /// Attempts to acquire; returns `true` when granted immediately,
    /// otherwise the request is queued and will surface through
    /// [`LockTable::release`].
    pub(crate) fn acquire(&mut self, v: u32, t: LockType, key: ChainKey) -> bool {
        let st = &mut self.states[v as usize];
        if st.queue.is_empty() && st.compatible(t) {
            st.grant(t);
            true
        } else {
            st.queue.push_back((key, t));
            false
        }
    }

    /// Releases a held lock; returns the chains whose queued request on
    /// this vertex just got granted (readers batch).
    pub(crate) fn release(&mut self, v: u32, t: LockType) -> Vec<ChainKey> {
        let st = &mut self.states[v as usize];
        st.ungrant(t);
        let mut granted = Vec::new();
        while let Some(&(key, ty)) = st.queue.front() {
            if st.compatible(ty) {
                st.grant(ty);
                st.queue.pop_front();
                granted.push(key);
            } else {
                break;
            }
        }
        granted
    }

    #[cfg(test)]
    fn held(&self, v: u32) -> (u32, bool) {
        (self.states[v as usize].readers, self.states[v as usize].writer)
    }
}

// ---------------------------------------------------------------------
// Chain bookkeeping
// ---------------------------------------------------------------------

/// A lock chain resident at this machine (one hop's view).
struct HopChain {
    msg: LockReqMsg,
    /// Plan entries owned by this machine: (local vertex, lock type), in
    /// plan (canonical) order.
    my_locks: Vec<(u32, LockType)>,
    /// Next lock to acquire (sequential acquisition).
    next: usize,
}

/// Requester-side state of an outstanding scope acquisition.
struct OutScope {
    center_l: u32,
    plan: Vec<(VertexId, LockType)>,
    machines: Vec<MachineId>,
    remote_needed: usize,
    data_got: usize,
    has_local_hop: bool,
    local_done: bool,
    is_snapshot: bool,
    queued_ready: bool,
}

impl OutScope {
    /// Becomes true exactly once: when all remote hops delivered their
    /// scope data and the local hop (if any) completed.
    fn now_ready(&mut self) -> bool {
        let ready = self.data_got >= self.remote_needed && (!self.has_local_hop || self.local_done);
        if ready && !self.queued_ready {
            self.queued_ready = true;
            true
        } else {
            false
        }
    }
}

fn trace_on() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("GRAPHLAB_TRACE").is_some())
}

macro_rules! tr {
    ($($arg:tt)*) => {
        if trace_on() {
            eprintln!($($arg)*);
        }
    };
}

fn enc<T: Codec>(v: &T) -> Bytes {
    encode_to_bytes(v)
}

fn dec<T: Codec>(b: Bytes) -> T {
    decode_from(b).expect("malformed engine message")
}

// ---------------------------------------------------------------------
// The machine loop
// ---------------------------------------------------------------------

pub(crate) struct LockingMachine<V, E, U: ?Sized> {
    lg: LocalGraph<V, E>,
    net: Batcher,
    setup: MachineSetup<V, E, U>,
    globals: GlobalRegistry,
    scheduler: Scheduler,
    locks: LockTable,
    /// Owner-side ghost-cache version table: what every peer already holds
    /// of this machine's data (delta scope sync, §4.2.2 versioning).
    cache: RemoteCacheTable,
    hop_chains: HashMap<ChainKey, HopChain>,
    out_scopes: HashMap<u64, OutScope>,
    ready: VecDeque<u64>,
    next_reqid: u64,
    safra: Safra,
    halted: bool,
    cap_reached: bool,

    // Counted-work message accounting (snapshot channel flush).
    sent_counts: Vec<u64>,
    recv_counts: Vec<u64>,

    // Snapshot state.
    snap_epoch: Vec<u32>,
    current_snap: u32,
    snap_queue: VecDeque<u32>,
    snap_buffer: SnapshotFile,
    snap_remaining: usize,
    snap_paused: bool,
    snap_ready_sent: bool,
    snap_flush_target: Option<Vec<u64>>,
    snap_written: bool,
    snapshots_written: u64,

    // Master-only coordination state.
    m_snap_in_progress: bool,
    m_snap_ready: Vec<Option<Vec<u64>>>,
    m_snap_done: usize,
    m_async_done: usize,
    m_last_snap_updates: u64,
    m_halt_pending: bool,
    m_halt_sent: bool,
    m_halt_acks: usize,
    m_sync_epoch: u64,
    m_sync_next_at: u64,
    m_sync_outstanding: Option<SyncEpoch>,
    m_final_sync_done: bool,

    // Failure recovery (§4.3; protocol in `crate::snapshot` docs).
    rec: RecoveryTracker,
    phase: RecoveryPhase,
    /// Rollback order being flushed towards (FlushWait).
    rollback: Option<RollbackMsg>,
    /// Adoption order being flushed towards (FlushWait, Adopt mode).
    adopt_plan: Option<AdoptPlanMsg>,
    /// Surviving peers whose ghost-data round arrived (AdoptData).
    adopt_got: Vec<bool>,
    /// K_ADOPT_DATA that raced ahead of a slower peer's flush marker —
    /// replayed once our own adoption is applied.
    adopt_early: Vec<Envelope>,
    /// Clean permanent-death exit under [`RecoveryMode::Adopt`]: the
    /// survivors absorbed this machine's atoms; it reports empty rows.
    dead: bool,
    /// Post-rollback traffic from machines that resumed before us
    /// (AwaitResume) — replayed after K_RESUME, never dropped.
    resume_buffer: Vec<Envelope>,
    /// Entry time of the current recovery phase (stall deadline).
    phase_since: Instant,
    failure: Option<String>,

    // Misc.
    /// Scope data confirmed current by an "unchanged" marker instead of a
    /// full row (diagnostics).
    rows_unchanged: u64,
    updates_local: u64,
    // BTreeMap: drained into the run's trace output at finish — iteration
    // order must be deterministic, not the hasher's.
    update_count_map: BTreeMap<VertexId, u64>,
    straggled: bool,
    effects: UpdateEffects,

    // Control-plane accounting (`repro -- abl-control`).
    /// Lock-chain span histogram: `chain_spans[s]` counts chains that
    /// touched exactly `s` machines.
    chain_spans: Vec<u64>,
    /// Normal-phase receive deadlines that expired with no message and no
    /// runnable work. Message-driven triggers keep this at zero on an
    /// idle healthy cluster.
    idle_wakeups: u64,
    /// [`K_UPD_NOTE`] granule: a worker notifies the master every
    /// `note_every` local updates. 0 = no counter-driven triggers are
    /// configured, so no notes are ever sent.
    note_every: u64,
    /// Local update count as of the last note sent (workers only).
    last_noted: u64,
    /// Master: highest cumulative update count each peer has announced
    /// via [`K_UPD_NOTE`]. Own slot unused — `updates_local` is
    /// authoritative. Monotonic, so notes are idempotent and survive
    /// rollbacks (local counts never reset).
    m_peer_updates: Vec<u64>,
}

impl<V, E, U> LockingMachine<V, E, U>
where
    V: Codec + Clone + Send + Sync + 'static,
    E: Codec + Clone + Send + Sync + 'static,
    U: UpdateFunction<V, E> + ?Sized,
{
    pub(crate) fn new(
        ep: Endpoint,
        setup: MachineSetup<V, E, U>,
        init: LocalGraphInit<V, E>,
    ) -> Self {
        let lg = LocalGraph::from_init(init, None);
        let nv = lg.num_local_vertices();
        let ne = lg.num_local_edges();
        let m = lg.num_machines();
        let machine = lg.machine();
        let mut net = Batcher::new(ep, setup.config.batch);
        if let Some(period) = setup.config.lease {
            net.enable_lease(LeaseConfig::with_period(period));
        }
        // K_UPD_NOTE granule: fine enough that the master observes a
        // counter-driven trigger at most ~1/8 interval late across the
        // whole cluster (m-1 peers, each up to a granule behind), coarse
        // enough that notes stay a negligible traffic fraction. No
        // counter-driven triggers configured → no notes, ever.
        let mut finest = u64::MAX;
        if setup.config.sync_interval_updates > 0 && !setup.syncs.is_empty() {
            finest = finest.min(setup.config.sync_interval_updates);
        }
        let snap_cfg = setup.config.snapshot;
        if snap_cfg.mode != SnapshotMode::None
            && snap_cfg.every_updates > 0
            && snap_cfg.max_snapshots > 0
        {
            finest = finest.min(snap_cfg.every_updates);
        }
        let note_every =
            if finest == u64::MAX { 0 } else { (finest / (8 * m as u64)).max(1) };
        LockingMachine {
            scheduler: Scheduler::new(setup.config.scheduler, nv),
            locks: LockTable::new(nv),
            cache: RemoteCacheTable::new(m, nv, ne),
            hop_chains: HashMap::new(),
            out_scopes: HashMap::new(),
            ready: VecDeque::new(),
            next_reqid: 1,
            safra: Safra::new(machine, m),
            halted: false,
            cap_reached: false,
            sent_counts: vec![0; m],
            recv_counts: vec![0; m],
            snap_epoch: vec![0; nv],
            current_snap: 0,
            snap_queue: VecDeque::new(),
            snap_buffer: SnapshotFile::default(),
            snap_remaining: 0,
            snap_paused: false,
            snap_ready_sent: false,
            snap_flush_target: None,
            snap_written: false,
            snapshots_written: 0,
            m_snap_in_progress: false,
            m_snap_ready: vec![None; m],
            m_snap_done: 0,
            m_async_done: 0,
            m_last_snap_updates: 0,
            m_halt_pending: false,
            m_halt_sent: false,
            m_halt_acks: 0,
            m_sync_epoch: 0,
            m_sync_next_at: setup.config.sync_interval_updates,
            m_sync_outstanding: None,
            m_final_sync_done: false,
            rec: RecoveryTracker::new(machine.index(), m),
            phase: RecoveryPhase::Normal,
            rollback: None,
            adopt_plan: None,
            adopt_got: Vec::new(),
            adopt_early: Vec::new(),
            dead: false,
            resume_buffer: Vec::new(),
            // lint: allow(determinism) -- recovery-phase stall timer; bounds waiting, never enters payloads or traces
            phase_since: Instant::now(),
            failure: None,
            rows_unchanged: 0,
            updates_local: 0,
            update_count_map: BTreeMap::new(),
            straggled: false,
            effects: UpdateEffects::default(),
            chain_spans: Vec::new(),
            idle_wakeups: 0,
            note_every,
            last_noted: 0,
            m_peer_updates: vec![0; m],
            globals: GlobalRegistry::new(),
            lg,
            net,
            setup,
        }
    }

    fn me(&self) -> MachineId {
        self.lg.machine()
    }

    fn is_master(&self) -> bool {
        self.me() == MachineId(0)
    }

    fn num_machines(&self) -> usize {
        self.lg.num_machines()
    }

    /// Machines not recorded permanently dead. Every master-side
    /// coordination barrier (halt acks, snapshot READY/DONE collection,
    /// sync partials) counts against this, not `num_machines`, so the
    /// cluster keeps converging after an adoption.
    fn live_machines(&self) -> usize {
        self.rec.survivors()
    }

    fn global_updates(&self) -> u64 {
        self.setup.counters.updates.load(AtomicOrdering::Relaxed)
    }

    /// The master's message-driven view of the cluster-wide update count:
    /// its own local count plus the highest count each peer announced via
    /// [`K_UPD_NOTE`]. Drives sync/snapshot triggers instead of polling
    /// the shared counter — a lower bound on the true total, at most
    /// ~`finest_interval / 8` behind by the note granule. On non-masters
    /// (all note slots zero) this degenerates to the local count.
    fn observed_updates(&self) -> u64 {
        self.updates_local + self.m_peer_updates.iter().sum::<u64>()
    }

    /// Worker-side half of the message-driven master: announce the local
    /// cumulative update count when it crosses a granule boundary, or
    /// (`flush`) with its exact value on the idle transition, so the
    /// master's last trigger window closes without a timer.
    fn maybe_send_upd_note(&mut self, flush: bool) {
        if self.note_every == 0 || self.is_master() {
            return;
        }
        let due = if flush {
            self.updates_local > self.last_noted
        } else {
            self.updates_local - self.last_noted >= self.note_every
        };
        if due {
            self.last_noted = self.updates_local;
            let msg = UpdNoteMsg { from: self.me(), updates: self.updates_local };
            self.send_msg(MachineId(0), K_UPD_NOTE, enc(&msg));
        }
    }

    /// Single send point for all engine traffic. Recovery correctness
    /// depends on a machine sending **no** engine message between its
    /// drain point and the cluster-wide resume — the flush-marker barrier
    /// is only a barrier because everything after a machine's drain is
    /// recovery control; this assert enforces it.
    fn send_msg(&mut self, dst: MachineId, kind: u16, payload: Bytes) {
        debug_assert!(
            self.phase == RecoveryPhase::Normal || is_recovery_control(kind),
            "engine message kind {kind} sent during recovery phase {:?}",
            self.phase
        );
        self.net.send(dst, kind, payload);
    }

    fn broadcast_msg(&mut self, kind: u16, payload: &Bytes) {
        for i in 0..self.num_machines() {
            let dst = MachineId::from(i);
            if dst != self.me() && !self.rec.is_dead(i) {
                self.send_msg(dst, kind, payload.clone());
            }
        }
    }

    fn send_counted(&mut self, dst: MachineId, kind: u16, payload: Bytes) {
        debug_assert!(is_counted_work(kind));
        debug_assert!(dst != self.me());
        self.safra.on_message_sent(1);
        self.sent_counts[dst.index()] += 1;
        self.send_msg(dst, kind, payload);
    }

    fn initial_schedule(&mut self) {
        match &*self.setup.initial {
            InitialSchedule::AllVertices => {
                for i in 0..self.lg.owned_vertices().len() {
                    let l = self.lg.owned_vertices()[i];
                    self.scheduler.add(l, 1.0);
                }
            }
            InitialSchedule::Vertices(vs) => {
                for (v, p) in vs.clone() {
                    if let Some(l) = self.lg.local_vertex(v) {
                        if self.lg.owns_vertex(l) {
                            self.scheduler.add(l, p);
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn run(mut self) -> MachineResult<V, E> {
        self.initial_schedule();
        let mut iters = 0u64;
        while !self.halted && self.failure.is_none() {
            iters += 1;
            if std::env::var_os("GRAPHLAB_DEBUG").is_some() && iters.is_multiple_of(500) {
                eprintln!(
                    "[m{}] iter={} phase={:?} sched={} snapq={} out={} ready={} chains={} paused={} halt_pend={} updates={} same_rows={}",
                    self.me().0,
                    iters,
                    self.phase,
                    self.scheduler.len(),
                    self.snap_queue.len(),
                    self.out_scopes.len(),
                    self.ready.len(),
                    self.hop_chains.len(),
                    self.snap_paused,
                    self.m_halt_pending,
                    self.updates_local,
                    self.rows_unchanged,
                );
            }
            if self.phase == RecoveryPhase::Normal {
                self.maybe_straggle();
                if self.is_master() {
                    self.master_triggers();
                }
                self.pump();
                self.execute_ready();
                self.check_snapshot_progress();
                self.update_idle();
                if self.is_master() {
                    // update_idle may have completed Safra termination
                    // (m_halt_pending) — sequence the halt now rather than
                    // after a full idle deadline.
                    self.master_triggers();
                    if self.halted {
                        break;
                    }
                }
            } else {
                self.recovery_triggers();
                if self.halted || self.failure.is_some() {
                    break;
                }
            }
            let deadline = if self.phase == RecoveryPhase::Normal {
                self.next_recv_deadline()
            } else {
                IDLE_BLOCK
            };
            match self.net.recv_timeout(deadline) {
                Ok(env) => {
                    self.dispatch(env);
                    // Drain the inbox without blocking to amortise the
                    // pump/execute overhead across message bursts.
                    for _ in 0..512 {
                        match self.net.try_recv() {
                            Ok(env) => self.dispatch(env),
                            Err(_) => break,
                        }
                    }
                }
                Err(RecvError::Timeout) => {
                    if self.phase == RecoveryPhase::Normal && deadline > Duration::ZERO {
                        self.idle_wakeups += 1;
                    }
                }
                Err(RecvError::MachineDown) => self.on_self_death(),
                Err(RecvError::Disconnected) => break,
            }
        }
        // Halt-era messages (acks, final releases) may still sit in the
        // batch queues; the master is blocked waiting for them.
        self.net.flush_all();
        self.finish()
    }

    /// Routes one envelope: the recovery/fabric control plane is handled
    /// in every phase; engine traffic is handled (Normal), counted and
    /// discarded (Drain/FlushWait — it predates the rollback), buffered
    /// (AwaitResume — it is post-rollback work from early resumers), or
    /// ignored (Dead).
    fn dispatch(&mut self, env: Envelope) {
        match env.kind {
            graphlab_net::K_DOWN => {
                let d: DownMsg = dec(env.payload);
                self.on_peer_down(d);
            }
            graphlab_net::K_UP => {
                let u: UpMsg = dec(env.payload);
                self.on_self_up(u);
            }
            K_RECOVER_READY => {
                let msg: RecoverReadyMsg = dec(env.payload);
                if self.is_master() {
                    // The fabric delivers K_UP to the reborn machine only;
                    // its READY is the master's cue to lease it afresh (and
                    // to lift the expiry fence a restartable kill raised).
                    self.net.lease_note_up(env.src.0, msg.era);
                    self.rec.note_ready(env.src.index(), msg.era);
                }
            }
            K_ROLLBACK => {
                let msg: RollbackMsg = dec(env.payload);
                self.on_rollback(msg);
            }
            K_ADOPT_PLAN => {
                let msg: AdoptPlanMsg = dec(env.payload);
                self.on_adopt_plan(msg);
            }
            K_ADOPT_DATA => {
                self.on_adopt_data(env);
            }
            K_RECOVERED => {
                let msg: RecoverEraMsg = dec(env.payload);
                if self.is_master() && self.rec.note_recovered(msg.era) {
                    self.master_release_resume();
                }
            }
            K_RESUME => {
                let msg: RecoverEraMsg = dec(env.payload);
                self.on_resume(msg);
            }
            K_FLUSH_MARK => {
                let msg: RecoverEraMsg = dec(env.payload);
                self.rec.note_mark(env.src.index(), msg.era);
            }
            K_RECOVER_ABORT => {
                let msg: RecoverAbortMsg = dec(env.payload);
                self.failure = Some(msg.reason);
            }
            _ => match self.phase {
                RecoveryPhase::Normal => self.handle(env),
                // Pre-rollback traffic (it precedes its sender's flush
                // marker): discard — the rollback wipes whatever it would
                // have changed.
                RecoveryPhase::Drain | RecoveryPhase::FlushWait => {}
                // Post-rollback work from machines that resumed before
                // us: replay after K_RESUME, never drop.
                RecoveryPhase::AwaitResume => self.resume_buffer.push(env),
                // No peer has resumed while any machine still collects
                // ghost data, so engine traffic here can only be from a
                // *future* resume racing ahead: buffer like AwaitResume.
                RecoveryPhase::AdoptData => self.resume_buffer.push(env),
                RecoveryPhase::Dead => {}
            },
        }
    }

    /// How long the machine loop may block in `recv_timeout`.
    ///
    /// With runnable local work the loop must not block at all; otherwise
    /// progress is message-driven (lock grants, scope data, releases,
    /// tokens — and, for the master's sync/snapshot/halt triggers,
    /// [`K_UPD_NOTE`] counter announcements — all wake the blocked
    /// receive), so idle and pipeline-full machines sleep on a pure
    /// liveness backstop. The one timed path left is an injected
    /// straggler that has not fired yet: its trigger reads the shared
    /// update counter, which no message announces.
    fn next_recv_deadline(&self) -> Duration {
        if self.has_runnable_work() {
            return Duration::ZERO;
        }
        if let Some(s) = self.setup.config.straggler {
            if s.machine == self.me().0 && !self.straggled {
                return STRAGGLER_POLL;
            }
        }
        IDLE_BACKSTOP
    }

    /// Whether `pump`/`execute_ready` could make progress right now
    /// without receiving anything.
    fn has_runnable_work(&self) -> bool {
        if !self.ready.is_empty() {
            return true;
        }
        if self.snap_paused || self.halted {
            return false;
        }
        if self.out_scopes.len() >= self.setup.config.max_pipeline.max(1) {
            return false;
        }
        if !self.snap_queue.is_empty() {
            return true;
        }
        !self.cap_reached && !self.scheduler.is_empty()
    }

    // ---- pipeline ----

    fn pump(&mut self) {
        if self.snap_paused || self.halted {
            return;
        }
        let cap = self.setup.config.max_updates;
        if cap > 0 && !self.cap_reached && self.global_updates() >= cap {
            // Drop remaining tasks so the cluster can quiesce.
            self.cap_reached = true;
            self.scheduler = Scheduler::new(self.setup.config.scheduler, self.lg.num_local_vertices());
        }
        while self.out_scopes.len() < self.setup.config.max_pipeline.max(1) {
            // Snapshot tasks first (priority), then the app scheduler.
            let (l, is_snap) = if let Some(l) = self.pop_snap_task() {
                (l, true)
            } else if !self.cap_reached {
                match self.scheduler.pop() {
                    Some(l) => (l, false),
                    None => break,
                }
            } else {
                break;
            };
            self.initiate_chain(l, is_snap);
        }
    }

    fn pop_snap_task(&mut self) -> Option<u32> {
        while let Some(l) = self.snap_queue.pop_front() {
            if self.snap_epoch[l as usize] != self.current_snap {
                return Some(l);
            }
        }
        None
    }

    fn initiate_chain(&mut self, l: u32, is_snapshot: bool) {
        let model = if is_snapshot {
            ConsistencyModel::Edge
        } else if self.setup.config.racing {
            // Fig. 1(d): lock only the central vertex; reads of neighbour
            // ghosts race against concurrent writers.
            ConsistencyModel::Vertex
        } else {
            self.setup.config.consistency
        };
        let plan = self.lg.lock_plan(l, model);
        let mut machines: Vec<MachineId> = Vec::new();
        for &(v, _) in &plan {
            let lv = self.lg.local_vertex(v).expect("plan vertex local");
            let owner = self.lg.vertex_owner(lv);
            if machines.last() != Some(&owner) {
                machines.push(owner);
            }
        }
        debug_assert!(machines.windows(2).all(|w| w[0] < w[1]), "plan sorted by owner");

        let span = machines.len();
        if self.chain_spans.len() <= span {
            self.chain_spans.resize(span + 1, 0);
        }
        self.chain_spans[span] += 1;

        let reqid = self.next_reqid;
        self.next_reqid += 1;
        tr!("[m{}] INIT reqid={} center=v{} machines={:?}",
            self.me().0, reqid, self.lg.vertex_gvid(l).0,
            machines.iter().map(|m| m.0).collect::<Vec<_>>());
        let msg = LockReqMsg {
            requester: self.me(),
            reqid,
            scope_v: self.lg.vertex_gvid(l),
            machines: machines.clone(),
            model: consistency_to_u8(model),
        };
        let remote_needed = machines.iter().filter(|&&m| m != self.me()).count();
        let has_local_hop = machines.contains(&self.me());
        self.out_scopes.insert(
            reqid,
            OutScope {
                center_l: l,
                plan,
                machines: machines.clone(),
                remote_needed,
                data_got: 0,
                has_local_hop,
                local_done: false,
                is_snapshot,
                queued_ready: false,
            },
        );
        if machines[0] == self.me() {
            self.start_hop(msg);
        } else {
            let dst = machines[0];
            self.send_counted(dst, K_LOCK_REQ, enc(&msg));
        }
    }

    // ---- hop processing ----

    fn start_hop(&mut self, msg: LockReqMsg) {
        debug_assert_eq!(msg.machines.first(), Some(&self.me()), "chain head is this hop");
        let key: ChainKey = (msg.requester.0, msg.reqid);
        let my_locks: Vec<(u32, LockType)> = if msg.requester == self.me() {
            // The requester kept the authoritative plan in its OutScope.
            let out = self.out_scopes.get(&msg.reqid).expect("own scope");
            out.plan
                .iter()
                .filter_map(|&(v, t)| {
                    let lv = self.lg.local_vertex(v).expect("plan vertex local");
                    self.lg.owns_vertex(lv).then_some((lv, t))
                })
                .collect()
        } else {
            self.derive_local_locks(&msg)
        };
        debug_assert!(!my_locks.is_empty(), "hop visits a machine owning scope vertices");
        self.hop_chains.insert(key, HopChain { msg, my_locks, next: 0 });
        self.advance_chain(key);
    }

    /// Reconstructs this machine's share of the scope's lock plan from
    /// replicated structure — the request ships no plan (derived plans).
    ///
    /// Agreement with the requester's [`LocalGraph::lock_plan`] is exact:
    /// a hop owns a scope vertex only if it is the centre or one of its
    /// neighbours; every edge incident on an owned vertex is local
    /// (ownership invariant), so the owned neighbour set is fully visible
    /// through the ghost centre's local adjacency, and the canonical
    /// `(owner, v)` order restricted to one machine is just ascending
    /// vertex id.
    fn derive_local_locks(&self, msg: &LockReqMsg) -> Vec<(u32, LockType)> {
        let model = consistency_from_u8(msg.model).expect("valid consistency model");
        let c = self.lg.local_vertex(msg.scope_v).expect("scope centre replicated at hop");
        let mut locks: Vec<(u32, LockType)> = Vec::new();
        if self.lg.owns_vertex(c) {
            locks.push((c, model.central_lock()));
        }
        if let Some(nbr_lock) = model.neighbor_lock() {
            for e in self.lg.adj(c) {
                if self.lg.owns_vertex(e.nbr) {
                    locks.push((e.nbr, nbr_lock));
                }
            }
        }
        locks.sort_unstable_by_key(|&(lv, _)| self.lg.vertex_gvid(lv));
        // Parallel edges repeat a neighbour with the same lock type.
        locks.dedup_by_key(|&mut (lv, _)| lv);
        locks
    }

    fn advance_chain(&mut self, key: ChainKey) {
        loop {
            let Some(chain) = self.hop_chains.get_mut(&key) else { return };
            if chain.next < chain.my_locks.len() {
                let (lv, t) = chain.my_locks[chain.next];
                if self.locks.acquire(lv, t, key) {
                    let chain = self.hop_chains.get_mut(&key).expect("still present");
                    chain.next += 1;
                } else {
                    return; // parked; resumed through resume_chain
                }
            } else {
                self.complete_hop(key);
                return;
            }
        }
    }

    /// Resumes a chain whose parked lock was just granted by
    /// [`LockTable::release`]: the lock at `next` is already held, so step
    /// past it before continuing sequential acquisition.
    fn resume_chain(&mut self, key: ChainKey) {
        let chain = self.hop_chains.get_mut(&key).expect("granted chain present");
        chain.next += 1;
        self.advance_chain(key);
    }

    /// All local locks of `key` granted: send fresh scope data to the
    /// requester and forward the chain.
    fn complete_hop(&mut self, key: ChainKey) {
        let chain = self.hop_chains.get(&key).expect("chain present");
        let msg = chain.msg.clone();
        let my_locks = chain.my_locks.clone();
        let requester = msg.requester;

        if requester != self.me() {
            // Version-filtered data sync: "synchronization of locked data is
            // performed immediately as each machine completes its local
            // locks". A row is skipped when the remote-cache table proves
            // the requester already holds the current version (it was
            // either shipped to it, or written *by* it, on this same FIFO
            // channel pair) — a compact marker rides instead. The owned
            // vertex set is the derived lock set; the owned edge set is
            // derived from the ghost centre's adjacency the same way.
            let req = requester.index();
            let filter = !self.setup.config.no_version_filter;
            let mut vrows = Vec::new();
            let mut vsame = 0u32;
            for &(lv, _) in &my_locks {
                debug_assert!(self.lg.owns_vertex(lv));
                let cur = self.lg.vertex_version(lv);
                if filter && self.cache.v_known(req, lv) >= cur {
                    vsame += 1;
                } else {
                    self.cache.note_v(req, lv, cur);
                    vrows.push(VertexRow {
                        vid: self.lg.vertex_gvid(lv),
                        version: cur,
                        snap: self.snap_epoch[lv as usize],
                        data: enc(self.lg.vertex_data(lv)),
                    });
                }
            }
            let c = self.lg.local_vertex(msg.scope_v).expect("scope centre replicated at hop");
            let mut owned_edges: Vec<(graphlab_graph::EdgeId, u32)> = self
                .lg
                .adj(c)
                .iter()
                .filter(|e| self.lg.owns_edge(e.edge))
                .map(|e| (self.lg.edge_geid(e.edge), e.edge))
                .collect();
            owned_edges.sort_unstable();
            owned_edges.dedup();
            let mut erows = Vec::new();
            let mut esame = 0u32;
            for (ge, le) in owned_edges {
                let cur = self.lg.edge_version(le);
                if filter && self.cache.e_known(req, le) >= cur {
                    esame += 1;
                } else {
                    self.cache.note_e(req, le, cur);
                    erows.push(EdgeRow { eid: ge, version: cur, data: enc(self.lg.edge_data(le)) });
                }
            }
            let data = ScopeDataMsg { reqid: msg.reqid, vrows, erows, vsame, esame };
            self.send_counted(requester, K_SCOPE_DATA, enc(&data));
        } else {
            let out = self.out_scopes.get_mut(&msg.reqid).expect("own scope");
            out.local_done = true;
            if out.now_ready() {
                self.ready.push_back(msg.reqid);
            }
        }

        // Continuation passing: forward to the next machine in canonical
        // order, popping this hop off the chain so visited machines stop
        // paying wire bytes.
        if msg.machines.len() > 1 {
            let mut fwd = msg;
            fwd.machines.remove(0);
            let dst = fwd.machines[0];
            if dst == self.me() {
                self.start_hop(fwd);
            } else {
                self.send_counted(dst, K_LOCK_REQ, enc(&fwd));
            }
        }
    }

    // ---- execution ----

    fn execute_ready(&mut self) {
        while let Some(reqid) = self.ready.pop_front() {
            let is_snap = self.out_scopes.get(&reqid).expect("ready scope").is_snapshot;
            if is_snap {
                self.execute_snapshot_update(reqid);
            } else {
                self.execute_update(reqid);
            }
        }
    }

    fn execute_update(&mut self, reqid: u64) {
        let center = self.out_scopes.get(&reqid).expect("scope").center_l;
        self.effects.clear();
        {
            let mut ctx = UpdateContext::new(
                &mut self.lg,
                center,
                self.setup.config.consistency,
                &self.globals,
                &mut self.effects,
            );
            self.setup.update.update(&mut ctx);
        }
        self.updates_local += 1;
        if trace_on() {
            let nbrs: Vec<(u32, u64)> = self
                .lg
                .adj(center)
                .iter()
                .map(|e| (self.lg.vertex_gvid(e.nbr).0, self.lg.vertex_version(e.nbr)))
                .collect();
            tr!("[m{}] EXEC reqid={} v{} dirty={} sched={:?} nbr_vers={:?}",
                self.me().0, reqid, self.lg.vertex_gvid(center).0, self.effects.dirty_self,
                self.effects.scheduled.iter().map(|(v, _)| v.0).collect::<Vec<_>>(), nbrs);
        }
        self.setup.counters.updates.fetch_add(1, AtomicOrdering::Relaxed);
        self.maybe_send_upd_note(false);
        if self.setup.config.trace {
            *self.update_count_map.entry(self.lg.vertex_gvid(center)).or_insert(0) += 1;
        }
        self.commit_and_release(reqid);
    }

    fn commit_and_release(&mut self, reqid: u64) {
        let me = self.me();
        let effects = std::mem::take(&mut self.effects);
        let out = self.out_scopes.remove(&reqid).expect("scope");
        let center = out.center_l;

        // Version bumps for locally-owned dirty data; write-back rows for
        // remotely-owned dirty data, grouped by owner.
        let mut vwrites: HashMap<MachineId, Vec<(VertexId, u32, Bytes)>> = HashMap::new();
        let mut ewrites: HashMap<MachineId, Vec<(graphlab_graph::EdgeId, Bytes)>> = HashMap::new();

        if effects.dirty_self {
            debug_assert!(self.lg.owns_vertex(center));
            self.lg.bump_vertex_version(center);
        }
        let mut dirty_edges = effects.dirty_edges.clone();
        dirty_edges.sort_unstable();
        dirty_edges.dedup();
        for le in dirty_edges {
            if self.lg.owns_edge(le) {
                self.lg.bump_edge_version(le);
            } else {
                let owner = self.lg.edge_owner(le);
                ewrites
                    .entry(owner)
                    .or_default()
                    .push((self.lg.edge_geid(le), enc(self.lg.edge_data(le))));
            }
        }
        let mut dirty_nbrs = effects.dirty_nbrs.clone();
        dirty_nbrs.sort_unstable();
        dirty_nbrs.dedup();
        for ln in dirty_nbrs {
            if self.lg.owns_vertex(ln) {
                self.lg.bump_vertex_version(ln);
            } else {
                let owner = self.lg.vertex_owner(ln);
                vwrites.entry(owner).or_default().push((
                    self.lg.vertex_gvid(ln),
                    self.snap_epoch[ln as usize],
                    enc(self.lg.vertex_data(ln)),
                ));
            }
        }

        // Scheduling — must happen before the scope is unlocked (snapshot
        // correctness condition, and per-channel FIFO makes "before" hold
        // remotely too).
        // BTreeMap: sends fan out in machine order so delivery interleavings
        // are a function of the seed, not the hasher (fault-trace replay).
        let mut remote_sched: BTreeMap<MachineId, Vec<(VertexId, f64)>> = BTreeMap::new();
        for &(gv, prio) in &effects.scheduled {
            let lv = self.lg.local_vertex(gv).expect("scheduled vertex in scope");
            let owner = self.lg.vertex_owner(lv);
            if owner == me {
                if !self.cap_reached {
                    let fresh = self.scheduler.add(lv, prio);
                    tr!("[m{}] SCHED_LOCAL v{} fresh={}", me.0, gv.0, fresh);
                }
            } else {
                remote_sched.entry(owner).or_default().push((gv, prio));
            }
        }
        for (mm, tasks) in remote_sched {
            tr!("[m{}] SCHED_SEND to=m{} {:?}", me.0, mm.0,
                tasks.iter().map(|(v, _)| v.0).collect::<Vec<_>>());
            self.send_counted(mm, K_LOCK_SCHED, enc(&ScheduleMsg { tasks }));
        }

        // Release per machine, with piggybacked write-backs. Remote hops
        // drop their own derived lock set (the release only names the
        // chain); the local hop releases through its HopChain directly.
        for &mm in &out.machines {
            if mm == me {
                let chain = self.hop_chains.remove(&(me.0, reqid)).expect("local hop chain");
                for (lv, t) in chain.my_locks {
                    let granted = self.locks.release(lv, t);
                    for key in granted {
                        self.resume_chain(key);
                    }
                }
            } else {
                let rel = ReleaseMsg {
                    reqid,
                    vwrites: vwrites.remove(&mm).unwrap_or_default(),
                    ewrites: ewrites.remove(&mm).unwrap_or_default(),
                };
                self.send_counted(mm, K_RELEASE, enc(&rel));
            }
        }
        debug_assert!(vwrites.is_empty(), "write-back owner not in lock plan");
        debug_assert!(ewrites.is_empty(), "edge write-back owner not in lock plan");
        self.effects = effects;
    }

    /// Alg. 5: the snapshot update function.
    fn execute_snapshot_update(&mut self, reqid: u64) {
        let center = self.out_scopes.get(&reqid).expect("scope").center_l;
        let snap = self.current_snap;
        if self.snap_epoch[center as usize] != snap {
            // Save D_v.
            self.snap_buffer
                .vrows
                .push((self.lg.vertex_gvid(center), enc(self.lg.vertex_data(center))));
            // Save edges to not-yet-snapshotted neighbours; schedule them.
            let adj: Vec<_> = self.lg.adj(center).to_vec();
            for e in adj {
                if self.snap_epoch[e.nbr as usize] != snap {
                    self.snap_buffer
                        .erows
                        .push((self.lg.edge_geid(e.edge), enc(self.lg.edge_data(e.edge))));
                    self.effects.scheduled.push((self.lg.vertex_gvid(e.nbr), SNAPSHOT_PRIORITY));
                }
            }
            // Mark v as snapshotted; bump the version so the marker
            // propagates with the ordinary scope-data synchronisation.
            self.snap_epoch[center as usize] = snap;
            self.snap_remaining -= 1;
            self.lg.bump_vertex_version(center);
        }
        // Route snapshot schedules: owned → snapshot queue, remote → owner.
        let scheduled = std::mem::take(&mut self.effects.scheduled);
        // BTreeMap: sends fan out in machine order so delivery interleavings
        // are a function of the seed, not the hasher (fault-trace replay).
        let mut remote_sched: BTreeMap<MachineId, Vec<(VertexId, f64)>> = BTreeMap::new();
        for (gv, prio) in scheduled {
            let lv = self.lg.local_vertex(gv).expect("in scope");
            let owner = self.lg.vertex_owner(lv);
            if owner == self.me() {
                if self.snap_epoch[lv as usize] != snap {
                    self.snap_queue.push_back(lv);
                }
            } else {
                remote_sched.entry(owner).or_default().push((gv, prio));
            }
        }
        for (mm, tasks) in remote_sched {
            self.send_counted(mm, K_LOCK_SCHED, enc(&ScheduleMsg { tasks }));
        }
        self.effects.clear();
        self.commit_and_release(reqid);
    }

    // ---- message handling ----

    fn handle(&mut self, env: Envelope) {
        if is_counted_work(env.kind) {
            self.safra.on_message_received(1);
            self.recv_counts[env.src.index()] += 1;
        }
        match env.kind {
            K_LOCK_REQ => {
                let msg: LockReqMsg = dec(env.payload);
                self.start_hop(msg);
            }
            K_SCOPE_DATA => {
                let msg: ScopeDataMsg = dec(env.payload);
                self.rows_unchanged += (msg.vsame + msg.esame) as u64;
                tr!("[m{}] DATA reqid={} rows={}v/{}e same={}v/{}e", self.me().0, msg.reqid,
                    msg.vrows.len(), msg.erows.len(), msg.vsame, msg.esame);
                // Rows + unchanged markers must cover the hop's whole share
                // of the scope's vertices (the requester knows exactly
                // which plan vertices env.src owns).
                debug_assert!(
                    self.out_scopes.get(&msg.reqid).is_none_or(|out| {
                        let owned = out
                            .plan
                            .iter()
                            .filter(|&&(v, _)| {
                                let lv = self.lg.local_vertex(v).expect("plan vertex local");
                                self.lg.vertex_owner(lv) == env.src
                            })
                            .count();
                        msg.vrows.len() + msg.vsame as usize == owned
                    }),
                    "scope response does not cover the hop's owned vertices"
                );
                for row in msg.vrows {
                    if let Some(lv) = self.lg.local_vertex(row.vid) {
                        let applied = self.lg.apply_vertex_update(lv, row.version, dec(row.data));
                        tr!("[m{}] DATA reqid={} v{} ver={} applied={}", self.me().0,
                            msg.reqid, row.vid.0, row.version, applied);
                        if row.snap > self.snap_epoch[lv as usize] {
                            self.snap_epoch[lv as usize] = row.snap;
                        }
                    }
                }
                for row in msg.erows {
                    if let Some(le) = self.lg.local_edge(row.eid) {
                        self.lg.apply_edge_update(le, row.version, dec(row.data));
                    }
                }
                if let Some(out) = self.out_scopes.get_mut(&msg.reqid) {
                    out.data_got += 1;
                    if out.now_ready() {
                        self.ready.push_back(msg.reqid);
                    }
                }
            }
            K_RELEASE => {
                let msg: ReleaseMsg = dec(env.payload);
                for (v, snap, blob) in msg.vwrites {
                    let lv = self.lg.local_vertex(v).expect("write-back target local");
                    debug_assert!(self.lg.owns_vertex(lv));
                    *self.lg.vertex_data_mut(lv) = dec(blob);
                    let ver = self.lg.bump_vertex_version(lv);
                    // The bump invalidates every peer's cache entry; the
                    // writer itself holds exactly the data it wrote.
                    self.cache.note_v(env.src.index(), lv, ver);
                    if snap > self.snap_epoch[lv as usize] {
                        self.snap_epoch[lv as usize] = snap;
                    }
                }
                for (e, blob) in msg.ewrites {
                    let le = self.lg.local_edge(e).expect("write-back target local");
                    debug_assert!(self.lg.owns_edge(le));
                    *self.lg.edge_data_mut(le) = dec(blob);
                    let ver = self.lg.bump_edge_version(le);
                    self.cache.note_e(env.src.index(), le, ver);
                }
                let chain = self
                    .hop_chains
                    .remove(&(env.src.0, msg.reqid))
                    .expect("release for a chain this hop holds");
                for (lv, t) in chain.my_locks {
                    let granted = self.locks.release(lv, t);
                    for key in granted {
                        self.resume_chain(key);
                    }
                }
            }
            K_LOCK_SCHED => {
                let msg: ScheduleMsg = dec(env.payload);
                for (gv, prio) in msg.tasks {
                    if let Some(lv) = self.lg.local_vertex(gv) {
                        debug_assert!(self.lg.owns_vertex(lv));
                        if prio == SNAPSHOT_PRIORITY {
                            if self.current_snap > 0 && self.snap_epoch[lv as usize] != self.current_snap
                            {
                                self.snap_queue.push_back(lv);
                            }
                        } else if !self.cap_reached {
                            let fresh = self.scheduler.add(lv, prio);
                            tr!("[m{}] SCHED_RECV v{} fresh={}", self.me().0, gv.0, fresh);
                        }
                    }
                }
            }
            K_TOKEN => {
                let tok: TokenMsg = dec(env.payload);
                // Re-evaluate idleness *now*: work-bearing messages handled
                // earlier in this same receive batch may have refilled the
                // scheduler since the last `update_idle`, and deciding (or
                // forwarding) on a stale idle flag lets the initiator
                // declare termination with tasks still queued locally.
                self.update_idle();
                let action = self.safra.on_token(tok.0);
                self.apply_safra(action);
            }
            K_HALT => {
                tr!("[m{}] HALT sched_len={} out={} ready={}", self.me().0,
                    self.scheduler.len(), self.out_scopes.len(), self.ready.len());
                self.send_msg(MachineId(0), K_HALT_ACK, Bytes::new());
                self.halted = true;
            }
            K_HALT_ACK => {
                self.m_halt_acks += 1;
            }
            K_LSYNC_PART => {
                let msg: LockSyncPartialMsg = dec(env.payload);
                self.master_collect_sync(msg);
            }
            K_LSYNC_GLOB => {
                let msg: SyncGlobalsMsg = dec(env.payload);
                for (id, ver, bytes) in msg.globals {
                    let op = self
                        .setup
                        .syncs
                        .iter()
                        .find(|s| s.id() == id)
                        .expect("broadcast global matches a registered sync");
                    let typed = op.decode_out(bytes).expect("malformed global value");
                    self.globals.apply(id, ver, typed);
                }
            }
            K_LSYNC_REQ => {
                let epoch: u64 = dec(env.payload);
                let partials: Vec<(u32, Bytes)> = self
                    .setup
                    .syncs
                    .iter()
                    .map(|op| (op.id(), op.local_partial(&self.lg)))
                    .collect();
                self.send_msg(
                    MachineId(0),
                    K_LSYNC_PART,
                    enc(&LockSyncPartialMsg { epoch, partials }),
                );
            }
            K_SNAP_SYNC_START => {
                let _snap: u64 = dec(env.payload);
                self.begin_sync_snapshot();
            }
            K_SNAP_SYNC_READY => {
                let msg: SnapReadyMsg = dec(env.payload);
                self.master_collect_snap_ready(env.src, msg);
            }
            K_SNAP_SYNC_FLUSH => {
                let msg: SnapFlushMsg = dec(env.payload);
                self.snap_flush_target = Some(msg.expect_from);
            }
            K_SNAP_DONE => {
                self.m_snap_done += 1;
            }
            K_SNAP_RESUME => {
                self.snap_paused = false;
                self.snap_ready_sent = false;
                self.snap_flush_target = None;
                self.snap_written = false;
                // Conservative: the checkpoint just cut may be restored
                // into a fresh cluster later; drop residency assumptions so
                // the table never spans a snapshot boundary.
                self.cache.invalidate_all();
            }
            K_SNAP_ASYNC_START => {
                let snap: u64 = dec(env.payload);
                self.begin_async_snapshot(snap as u32);
            }
            K_SNAP_ASYNC_MDONE => {
                self.m_async_done += 1;
            }
            K_UPD_NOTE => {
                let msg: UpdNoteMsg = dec(env.payload);
                if self.is_master() {
                    let slot = &mut self.m_peer_updates[msg.from.index()];
                    *slot = (*slot).max(msg.updates);
                }
            }
            other => panic!("unexpected message kind {other} in locking engine"),
        }
    }

    fn apply_safra(&mut self, action: SafraAction) {
        match action {
            SafraAction::None => {}
            SafraAction::SendToken { to, token } => {
                // Route around permanently-dead ring members: a dead
                // machine is indistinguishable from an idle white peer
                // with zero counters, so skipping it preserves Safra's
                // invariant. When every other member is dead the token is
                // self-delivered (sole-survivor decision); bounded because
                // a self-delivered round whitens us, so the retry decides.
                let n = self.num_machines();
                let mut to = to;
                let mut token = token;
                for _ in 0..4 {
                    while self.rec.is_dead(to.index()) {
                        to = MachineId::from((to.index() + 1) % n);
                    }
                    if to != self.me() {
                        self.send_msg(to, K_TOKEN, enc(&TokenMsg(token)));
                        return;
                    }
                    match self.safra.on_token(token) {
                        SafraAction::SendToken { to: t, token: k } => {
                            to = t;
                            token = k;
                        }
                        other => {
                            self.apply_safra(other);
                            return;
                        }
                    }
                }
                self.failure = Some(
                    "termination probe cannot complete: sole survivor with a nonzero \
                     message balance"
                        .into(),
                );
            }
            SafraAction::Terminated => {
                debug_assert!(self.is_master());
                tr!("[m{}] SAFRA_TERMINATED", self.me().0);
                self.m_halt_pending = true;
            }
        }
    }

    fn update_idle(&mut self) {
        let idle = (self.scheduler.is_empty() || self.cap_reached)
            && self.snap_queue.is_empty()
            && self.out_scopes.is_empty()
            && self.ready.is_empty();
        if idle {
            // Close the master's last trigger window with an exact count
            // before going quiet (notes are not counted work, so Safra's
            // balance is untouched).
            self.maybe_send_upd_note(true);
        }
        let action = self.safra.set_idle(idle);
        self.apply_safra(action);
    }

    // ---- master coordination ----

    fn master_triggers(&mut self) {
        debug_assert!(self.is_master());
        let g_updates = self.observed_updates();

        // Background sync epochs.
        let interval = self.setup.config.sync_interval_updates;
        if interval > 0
            && !self.setup.syncs.is_empty()
            && self.m_sync_outstanding.is_none()
            && g_updates >= self.m_sync_next_at
            && !self.m_halt_sent
        {
            self.m_sync_next_at = g_updates + interval;
            self.start_sync_epoch(false);
        }

        // Snapshot triggers.
        let snap_cfg = self.setup.config.snapshot;
        if snap_cfg.mode != SnapshotMode::None
            && snap_cfg.every_updates > 0
            && !self.m_snap_in_progress
            && (self.snapshots_written) < snap_cfg.max_snapshots
            && g_updates.saturating_sub(self.m_last_snap_updates) >= snap_cfg.every_updates
            && !self.m_halt_pending
            && !self.m_halt_sent
        {
            self.m_last_snap_updates = g_updates;
            self.m_snap_in_progress = true;
            self.m_snap_done = 0;
            self.m_async_done = 0;
            self.m_snap_ready = vec![None; self.num_machines()];
            let id = self.snapshots_written;
            match snap_cfg.mode {
                SnapshotMode::Synchronous => {
                    let payload = enc(&id);
                    self.broadcast_msg(K_SNAP_SYNC_START, &payload);
                    self.begin_sync_snapshot();
                }
                SnapshotMode::Asynchronous => {
                    let payload = enc(&(id + 1));
                    self.broadcast_msg(K_SNAP_ASYNC_START, &payload);
                    self.begin_async_snapshot((id + 1) as u32);
                }
                SnapshotMode::None => unreachable!(),
            }
        }

        // Async snapshot completion.
        if self.m_snap_in_progress
            && self.setup.config.snapshot.mode == SnapshotMode::Asynchronous
            && self.m_async_done >= self.live_machines()
        {
            self.m_snap_in_progress = false;
        }

        // Halt sequencing: optional final sync, then halt broadcast.
        if self.m_halt_pending && !self.m_snap_in_progress && !self.m_halt_sent {
            if !self.setup.syncs.is_empty() && !self.m_final_sync_done {
                if self.m_sync_outstanding.is_none() {
                    self.start_sync_epoch(true);
                }
            } else {
                self.m_halt_sent = true;
                self.m_halt_acks = 1; // self
                self.broadcast_msg(K_HALT, &Bytes::new());
            }
        }
        if self.m_halt_sent && self.m_halt_acks >= self.live_machines() {
            self.halted = true;
        }
    }

    fn start_sync_epoch(&mut self, fin: bool) {
        self.m_sync_epoch += 1;
        let epoch = if fin { u64::MAX } else { self.m_sync_epoch };
        let payload = enc(&epoch);
        self.broadcast_msg(K_LSYNC_REQ, &payload);
        let mut accs: Vec<Box<dyn std::any::Any + Send>> =
            self.setup.syncs.iter().map(|op| op.init_acc()).collect();
        for (i, op) in self.setup.syncs.iter().enumerate() {
            let part = op.local_partial(&self.lg);
            op.combine(accs[i].as_mut(), &part);
        }
        self.m_sync_outstanding = Some((epoch, accs, 1));
        if self.live_machines() == 1 {
            self.finish_sync_epoch();
        }
    }

    fn master_collect_sync(&mut self, msg: LockSyncPartialMsg) {
        let need = self.live_machines();
        let Some((epoch, accs, got)) = self.m_sync_outstanding.as_mut() else {
            return; // stale partial from an abandoned epoch
        };
        if msg.epoch != *epoch {
            return;
        }
        for (i, (id, part)) in msg.partials.iter().enumerate() {
            debug_assert_eq!(*id, self.setup.syncs[i].id());
            self.setup.syncs[i].combine(accs[i].as_mut(), part);
        }
        *got += 1;
        if *got >= need {
            self.finish_sync_epoch();
        }
    }

    fn finish_sync_epoch(&mut self) {
        let (epoch, accs, _) = self.m_sync_outstanding.take().expect("epoch active");
        let total = self.lg.total_vertices();
        let mut rows = Vec::new();
        for (op, acc) in self.setup.syncs.iter().zip(accs) {
            let (bytes, typed) = op.finalize(acc, total);
            let ver = self.globals.set(op.id(), typed);
            rows.push((op.id(), ver, bytes));
        }
        let msg = SyncGlobalsMsg { cycle: epoch, globals: rows, halt: false, snapshot: None };
        let payload = enc(&msg);
        self.broadcast_msg(K_LSYNC_GLOB, &payload);
        if epoch == u64::MAX {
            self.m_final_sync_done = true;
        }
        // Aggregate-driven termination (§3.5): evaluate the stop predicate
        // over the just-finalized globals. The epoch that tripped it doubles
        // as the final sync — everyone already holds these values.
        if !self.m_halt_pending && self.setup.stop.as_ref().is_some_and(|f| f(&self.globals)) {
            tr!("[m{}] STOP_WHEN fired at epoch {}", self.me().0, epoch);
            self.m_halt_pending = true;
            self.m_final_sync_done = true;
        }
    }

    // ---- snapshots ----

    fn begin_sync_snapshot(&mut self) {
        self.snap_paused = true;
        self.snap_ready_sent = false;
        self.snap_flush_target = None;
        self.snap_written = false;
    }

    fn begin_async_snapshot(&mut self, snap: u32) {
        // Snapshot boundary: drop all residency assumptions (see the
        // K_SNAP_RESUME note). Alg. 5's marker propagation additionally
        // relies on version bumps, which this makes unconditionally safe.
        self.cache.invalidate_all();
        self.current_snap = snap;
        self.snap_buffer = SnapshotFile::default();
        self.snap_remaining = self.lg.owned_vertices().len();
        self.snap_queue.clear();
        for i in 0..self.lg.owned_vertices().len() {
            let l = self.lg.owned_vertices()[i];
            self.snap_queue.push_back(l);
        }
        if self.snap_remaining == 0 {
            // No owned vertices: immediately done.
            self.finish_async_snapshot();
        }
    }

    fn finish_async_snapshot(&mut self) {
        let file = std::mem::take(&mut self.snap_buffer);
        write_snapshot_atoms(
            &self.setup.dfs,
            &self.setup.snap_prefix,
            self.current_snap as u64 - 1,
            file,
            &self.lg,
            &self.setup.placement.atoms_of(self.me()),
        );
        self.snapshots_written += 1;
        if self.is_master() {
            self.m_async_done += 1;
        } else {
            self.send_msg(MachineId(0), K_SNAP_ASYNC_MDONE, Bytes::new());
        }
    }

    fn check_snapshot_progress(&mut self) {
        // Asynchronous: machine part complete when every owned vertex is
        // marked.
        if self.current_snap > 0 && self.snap_remaining == 0 && !self.snap_buffer_is_flushed() {
            self.finish_async_snapshot();
        }

        // Synchronous: drained → READY; flush satisfied → write + DONE.
        if self.snap_paused && !self.snap_ready_sent && self.out_scopes.is_empty() && self.ready.is_empty()
        {
            self.snap_ready_sent = true;
            let msg = SnapReadyMsg { snap: self.snapshots_written, sent_to: self.sent_counts.clone() };
            if self.is_master() {
                self.master_collect_snap_ready(MachineId(0), msg);
            } else {
                self.send_msg(MachineId(0), K_SNAP_SYNC_READY, enc(&msg));
            }
        }
        if self.snap_paused && !self.snap_written {
            if let Some(target) = &self.snap_flush_target {
                let flushed = (0..self.num_machines()).all(|j| {
                    j == self.me().index() || self.rec.is_dead(j) || self.recv_counts[j] >= target[j]
                });
                if flushed {
                    self.snap_written = true;
                    let file = SnapshotFile::capture(&self.lg);
                    write_snapshot_atoms(
                        &self.setup.dfs,
                        &self.setup.snap_prefix,
                        self.snapshots_written,
                        file,
                        &self.lg,
                        &self.setup.placement.atoms_of(self.me()),
                    );
                    self.snapshots_written += 1;
                    if self.is_master() {
                        self.m_snap_done += 1;
                        self.master_check_snap_done();
                    } else {
                        self.send_msg(MachineId(0), K_SNAP_DONE, Bytes::new());
                    }
                }
            }
        }
        if self.is_master() {
            self.master_check_snap_done();
        }
    }

    fn snap_buffer_is_flushed(&self) -> bool {
        // After finish_async_snapshot the buffer is empty *and* remaining is
        // zero; use the written counter as the definitive latch.
        self.snap_buffer.vrows.is_empty()
            && self.snap_buffer.erows.is_empty()
            && self.snapshots_written as u32 >= self.current_snap
    }

    fn master_collect_snap_ready(&mut self, src: MachineId, msg: SnapReadyMsg) {
        if !self.is_master() {
            return;
        }
        self.m_snap_ready[src.index()] = Some(msg.sent_to);
        let all_ready = self
            .m_snap_ready
            .iter()
            .enumerate()
            .all(|(j, r)| self.rec.is_dead(j) || r.is_some());
        if all_ready {
            // All survivors drained: broadcast per-machine flush targets
            // (dead machines contribute no counted work: expect zero).
            let m = self.num_machines();
            for i in 0..m {
                let expect_from: Vec<u64> = (0..m)
                    .map(|j| self.m_snap_ready[j].as_ref().map_or(0, |sent| sent[i]))
                    .collect();
                let msg = SnapFlushMsg { snap: self.snapshots_written, expect_from };
                if i == self.me().index() {
                    self.snap_flush_target = Some(msg.expect_from);
                } else if !self.rec.is_dead(i) {
                    self.send_msg(MachineId::from(i), K_SNAP_SYNC_FLUSH, enc(&msg));
                }
            }
            self.m_snap_ready = vec![None; m];
        }
    }

    fn master_check_snap_done(&mut self) {
        if self.m_snap_in_progress
            && self.setup.config.snapshot.mode == SnapshotMode::Synchronous
            && self.m_snap_done >= self.live_machines()
        {
            self.m_snap_in_progress = false;
            self.m_snap_done = 0;
            self.broadcast_msg(K_SNAP_RESUME, &Bytes::new());
            self.snap_paused = false;
            self.snap_ready_sent = false;
            self.snap_flush_target = None;
            self.snap_written = false;
            // The master resumes inline (it never receives its own
            // broadcast): same conservative invalidation as K_SNAP_RESUME.
            self.cache.invalidate_all();
        }
    }

    // ---- failure recovery (§4.3; protocol in crate::snapshot docs) ----

    /// Fabric notification: a peer died. Enter (or restart, on a newer
    /// era) the drain phase. A notification about *ourselves* is the
    /// fabric's wakeup for a victim that was blocked in `recv` when the
    /// kill fired — equivalent to observing `MachineDown`.
    fn on_peer_down(&mut self, d: DownMsg) {
        if self.phase == RecoveryPhase::Dead {
            return;
        }
        if d.machine == self.me().0 {
            self.on_self_death();
            return;
        }
        // Fence the victim's lease for every kind of death: a restartable
        // victim is silent through its dead window and must not be
        // re-declared by expiry (its READY after rebirth lifts the fence).
        self.net.lease_note_death(d.machine, d.era);
        if !d.restart {
            if self.setup.config.recovery != RecoveryMode::Adopt {
                self.failure = Some(unrecoverable_down(&d));
                return;
            }
            self.rec.note_death(d.machine as usize);
            self.net.fence(d.machine);
        }
        tr!("[m{}] PEER_DOWN m{} era={} restart={}", self.me().0, d.machine, d.era, d.restart);
        if self.rec.observe_era(d.era) {
            self.enter_drain();
        }
    }

    /// Fabric notification on the reborn machine itself: rejoin the
    /// recovery round for the current era with empty state.
    fn on_self_up(&mut self, u: UpMsg) {
        debug_assert_eq!(u.machine, self.me().0, "K_UP is delivered to the reborn machine only");
        tr!("[m{}] SELF_UP era={}", self.me().0, u.era);
        if self.phase != RecoveryPhase::Dead {
            // The dead window passed without this thread ever observing
            // MachineDown (it was busy on its pre-crash inbox backlog):
            // complete the crash now, before rejoining.
            self.wipe_volatile();
        }
        self.rec.observe_era(u.era);
        self.phase = RecoveryPhase::Drain;
        self.enter_drain();
    }

    /// This machine was killed: discard all volatile state and wait for
    /// the fabric restart (the engine equivalent of a process replacement
    /// that will reload from the checkpoint).
    fn on_self_death(&mut self) {
        if self.phase == RecoveryPhase::Dead {
            return; // still dead; keep polling for rebirth
        }
        if self.net.self_death() == Some(false) {
            if self.setup.config.recovery == RecoveryMode::Adopt {
                // Restart-free mode: the survivors adopt our atoms; exit
                // cleanly with nothing to report (rows empty by contract).
                tr!("[m{}] SELF_DEATH permanent — clean exit", self.me().0);
                self.wipe_volatile();
                self.dead = true;
                self.halted = true;
                self.phase = RecoveryPhase::Dead;
                return;
            }
            self.failure =
                Some(format!("machine {} killed with no restart scheduled", self.me().0));
            return;
        }
        tr!("[m{}] SELF_DEATH", self.me().0);
        self.wipe_volatile();
        self.phase = RecoveryPhase::Dead;
        // lint: allow(determinism) -- recovery-phase stall timer; bounds waiting, never enters payloads or traces
        self.phase_since = Instant::now();
    }

    /// Crash semantics: every piece of volatile engine state is gone.
    /// Graph data is restored (and work re-seeded) by the rollback that
    /// must follow.
    fn wipe_volatile(&mut self) {
        self.net.clear();
        self.reset_engine_state();
        // Permanent deaths survive the wipe: they are cluster-durable
        // facts (a real deployment relearns them from the master), and a
        // reborn machine that forgot them would wait forever for a dead
        // peer's flush marker.
        let dead = self.rec.dead_mask().to_vec();
        self.rec = RecoveryTracker::new(self.me().index(), self.num_machines());
        for (m, was_dead) in dead.into_iter().enumerate() {
            if was_dead {
                self.rec.note_death(m);
            }
        }
        self.rollback = None;
        self.adopt_plan = None;
        self.adopt_early.clear();
        self.resume_buffer.clear();
    }

    /// Stops engine work and reports the drain point to the master.
    fn enter_drain(&mut self) {
        self.phase = RecoveryPhase::Drain;
        // lint: allow(determinism) -- recovery-phase stall timer; bounds waiting, never enters payloads or traces
        self.phase_since = Instant::now();
        self.rollback = None;
        self.adopt_plan = None;
        self.adopt_early.clear();
        self.resume_buffer.clear();
        // Abort in-progress coordination; recovery rebuilds it.
        self.m_sync_outstanding = None;
        self.m_snap_in_progress = false;
        // Engine sends still sitting in batch queues precede the drain
        // point and must go out ahead of the (future) flush marker on
        // each channel: flush, do not clear.
        self.net.flush_all();
        let era = self.rec.era;
        tr!("[m{}] DRAIN era={}", self.me().0, era);
        if self.is_master() {
            self.rec.note_ready(0, era);
        } else {
            self.send_msg(MachineId(0), K_RECOVER_READY, enc(&RecoverReadyMsg { era }));
            self.net.flush_all();
        }
    }

    /// Per-iteration recovery progress: stall deadline, flush-target
    /// completion, and the master's READY-collection trigger.
    fn recovery_triggers(&mut self) {
        if self.phase_since.elapsed() > RECOVERY_DEADLINE {
            self.failure = Some(format!(
                "recovery stalled in {:?} at fault era {} (machine {}, {:?})",
                self.phase,
                self.rec.era,
                self.me().0,
                self.rec
            ));
            return;
        }
        if self.phase == RecoveryPhase::FlushWait && self.rec.marks_complete() {
            if self.rollback.is_some() {
                self.do_rollback();
            } else if self.adopt_plan.is_some() {
                self.do_adoption();
            }
        }
        if self.is_master() && self.phase == RecoveryPhase::Drain && self.rec.all_ready() {
            // A non-empty dead set (possible only under Adopt mode — any
            // other mode aborts on the K_DOWN) means restart-free
            // adoption; a full cluster rolls back to the checkpoint.
            // lint: allow(survivor-barrier) -- not a barrier: comparing the live count to the full roster is how permanent deaths are detected (adopt vs rollback)
            if self.rec.survivors() < self.num_machines() {
                self.master_order_adoption();
            } else {
                self.master_order_rollback();
            }
        }
    }

    /// Master, all READYs in: prune torn checkpoints, pick the newest
    /// complete one, and order the cluster-wide rollback — or abort the
    /// run cleanly when there is nothing to roll back to.
    fn master_order_rollback(&mut self) {
        let parts = self.setup.config.num_atoms;
        match pick_rollback(&self.setup.dfs, &self.setup.snap_prefix, parts, self.rec.era) {
            Ok(msg) => {
                tr!("[m{}] ROLLBACK_ORDER snap={} era={}", self.me().0, msg.snap, msg.era);
                let payload = enc(&msg);
                self.broadcast_msg(K_ROLLBACK, &payload);
                self.net.flush_all();
                self.on_rollback(msg);
            }
            Err(abort) => {
                let payload = enc(&abort);
                self.broadcast_msg(K_RECOVER_ABORT, &payload);
                self.net.flush_all();
                self.failure = Some(abort.reason);
            }
        }
    }

    /// Rollback order received: broadcast this era's flush marker, then
    /// drain inbound channels until every peer's marker arrived.
    fn on_rollback(&mut self, msg: RollbackMsg) {
        if msg.era < self.rec.era {
            return; // superseded round
        }
        // A reborn machine may have missed intermediate K_DOWNs; the
        // rollback's era is authoritative.
        self.rec.observe_era(msg.era);
        let payload = enc(&RecoverEraMsg { era: msg.era });
        self.broadcast_msg(K_FLUSH_MARK, &payload);
        self.net.flush_all();
        self.rollback = Some(msg);
        self.phase = RecoveryPhase::FlushWait;
        // lint: allow(determinism) -- recovery-phase stall timer; bounds waiting, never enters payloads or traces
        self.phase_since = Instant::now();
        // Markers may already all be here (recovery_triggers rechecks
        // after every received batch).
        self.recovery_triggers();
    }

    /// Master, all surviving READYs in with at least one permanent death:
    /// compute the adoption plan (re-balanced absolute placement + the
    /// newest complete per-atom checkpoint to overlay, if any) and order
    /// the restart-free round.
    fn master_order_adoption(&mut self) {
        let plan = pick_adoption(
            &self.setup.dfs,
            &self.setup.snap_prefix,
            self.setup.config.num_atoms,
            self.rec.era,
            &self.setup.index,
            &self.setup.placement,
            self.rec.dead_mask(),
        );
        tr!(
            "[m{}] ADOPT_ORDER snap={:?} era={} dead={:?}",
            self.me().0,
            plan.snap,
            plan.era,
            plan.dead
        );
        let payload = enc(&plan);
        self.broadcast_msg(K_ADOPT_PLAN, &payload);
        self.net.flush_all();
        self.on_adopt_plan(plan);
    }

    /// Adoption order received: record the deaths it carries (a machine
    /// deep in its inbox may see the plan before the K_DOWN), broadcast
    /// this era's flush marker, then drain inbound channels until every
    /// survivor's marker arrived.
    fn on_adopt_plan(&mut self, msg: AdoptPlanMsg) {
        if msg.era < self.rec.era {
            return; // superseded round
        }
        self.rec.observe_era(msg.era);
        for &dm in &msg.dead {
            self.rec.note_death(dm as usize);
            self.net.lease_note_death(dm, msg.era);
            self.net.fence(dm);
        }
        let payload = enc(&RecoverEraMsg { era: msg.era });
        self.broadcast_msg(K_FLUSH_MARK, &payload);
        self.net.flush_all();
        self.rollback = None;
        self.adopt_plan = Some(msg);
        self.phase = RecoveryPhase::FlushWait;
        // lint: allow(determinism) -- recovery-phase stall timer; bounds waiting, never enters payloads or traces
        self.phase_since = Instant::now();
        self.recovery_triggers();
    }

    /// Channels flushed: restore the checkpoint, rebuild all volatile
    /// state, and wait at the resume barrier.
    fn do_rollback(&mut self) {
        let msg = self.rollback.take().expect("rollback order");
        if let Err(e) =
            restore_into_local(&self.setup.dfs, &self.setup.snap_prefix, msg.snap, &mut self.lg)
        {
            self.failure = Some(format!("checkpoint {} unreadable during rollback: {e}", msg.snap));
            return;
        }
        self.reset_engine_state();
        // The restored checkpoint keeps its id; new snapshots continue
        // after it (pruning already removed anything newer).
        self.snapshots_written = msg.snap + 1;
        // Conservative re-seeding: checkpoints do not capture scheduler
        // state, so every owned vertex re-runs (self-stabilising update
        // functions reconverge; cf. §4.3 recovery semantics).
        for i in 0..self.lg.owned_vertices().len() {
            let l = self.lg.owned_vertices()[i];
            self.scheduler.add(l, 1.0);
        }
        self.rec.after_rollback();
        self.phase = RecoveryPhase::AwaitResume;
        // lint: allow(determinism) -- recovery-phase stall timer; bounds waiting, never enters payloads or traces
        self.phase_since = Instant::now();
        let era = self.rec.era;
        tr!("[m{}] ROLLED_BACK snap={} era={}", self.me().0, msg.snap, era);
        if self.is_master() {
            if self.rec.note_recovered(era) {
                self.master_release_resume();
            }
        } else {
            self.send_msg(MachineId(0), K_RECOVERED, enc(&RecoverEraMsg { era }));
            self.net.flush_all();
        }
    }

    /// Channels flushed under an adoption order: rebuild this machine
    /// under the adopted placement without rolling the cluster back (the
    /// restart-free §3 elasticity path). Own atoms keep their *live*
    /// data; adopted atoms overlay the latest complete per-atom
    /// checkpoint when one exists (journal-only otherwise — ingress
    /// -initial data reconverges through re-scheduling); then one
    /// [`K_ADOPT_DATA`] ghost round between every surviving pair
    /// refreshes replicas and doubles as the FIFO barrier before the
    /// resume handshake.
    fn do_adoption(&mut self) {
        let plan = self.adopt_plan.take().expect("adoption order");
        let me = self.me();
        // Diff against what this machine *currently* holds — the plan's
        // placement is absolute, so adoptions interrupted by overlapping
        // failures compose.
        let old_atoms: std::collections::BTreeSet<graphlab_graph::AtomId> =
            self.setup.placement.atoms_of(me).into_iter().collect();
        let adopted: Vec<graphlab_graph::AtomId> = plan
            .placement
            .atoms_of(me)
            .into_iter()
            .filter(|a| !old_atoms.contains(a))
            .collect();

        // Keep the live values of everything currently owned, then reload
        // the journals under the adopted placement (new ghost structure,
        // mirror lists and atom spans).
        let live = SnapshotFile::capture(&self.lg);
        let init =
            match load_machine_part::<V, E>(&self.setup.dfs, &self.setup.index, &plan.placement, me)
            {
                Ok(init) => init,
                Err(e) => {
                    self.failure =
                        Some(format!("adoption reload failed on machine {}: {e}", me.0));
                    return;
                }
            };
        self.lg = LocalGraph::from_init(init, None);
        self.setup.placement = std::sync::Arc::new(plan.placement.clone());
        // All volatile engine state anew, at the new local sizes.
        self.reset_engine_state();

        // Own rows keep their live values...
        if let Err(e) = apply_file(live, &mut self.lg) {
            self.failure = Some(format!("live data re-apply failed during adoption: {e}"));
            return;
        }
        // ...and adopted rows overlay from the checkpoint, when one exists.
        if let Some(snap) = plan.snap {
            if !adopted.is_empty() {
                if let Err(e) = restore_atoms_into_local(
                    &self.setup.dfs,
                    &self.setup.snap_prefix,
                    snap,
                    &adopted,
                    &mut self.lg,
                ) {
                    self.failure =
                        Some(format!("checkpoint {snap} unreadable during adoption: {e}"));
                    return;
                }
            }
        }
        // New snapshots continue after the overlaid checkpoint (pruning
        // already removed anything newer); journal-only restarts from 0.
        self.snapshots_written = plan.snap.map_or(0, |s| s + 1);
        tr!("[m{}] ADOPTED atoms={:?} era={}", me.0, adopted, plan.era);

        self.send_adopt_data(plan.era);
        self.adopt_got = vec![false; self.num_machines()];
        self.phase = RecoveryPhase::AdoptData;
        // lint: allow(determinism) -- recovery-phase stall timer; bounds waiting, never enters payloads or traces
        self.phase_since = Instant::now();
        for env in std::mem::take(&mut self.adopt_early) {
            self.on_adopt_data(env);
        }
        self.check_adopt_done();
    }

    /// Sends exactly one [`K_ADOPT_DATA`] to every surviving peer — even
    /// when empty, so receipt of the round is a per-channel barrier —
    /// carrying the owned vertex rows mirrored on that peer and the owned
    /// edge rows replicated there.
    fn send_adopt_data(&mut self, era: u32) {
        let m = self.num_machines();
        let me = self.me();
        let mut out: Vec<AdoptDataMsg> =
            (0..m).map(|_| AdoptDataMsg { era, vrows: Vec::new(), erows: Vec::new() }).collect();
        for i in 0..self.lg.owned_vertices().len() {
            let l = self.lg.owned_vertices()[i];
            let mirrors = self.lg.vertex_mirrors(l).to_vec();
            if mirrors.is_empty() {
                continue;
            }
            let row = (self.lg.vertex_gvid(l), enc(self.lg.vertex_data(l)));
            for mm in mirrors {
                out[mm.index()].vrows.push(row.clone());
            }
        }
        for l in 0..self.lg.num_local_edges() as u32 {
            if !self.lg.owns_edge(l) {
                continue;
            }
            let (s, d) = self.lg.edge_endpoints_local(l);
            let ms = self.lg.vertex_owner(s);
            let md = self.lg.vertex_owner(d);
            let other = if ms == me { md } else { ms };
            if other != me {
                out[other.index()].erows.push((self.lg.edge_geid(l), enc(self.lg.edge_data(l))));
            }
        }
        for (j, msg) in out.into_iter().enumerate() {
            if j != me.index() && !self.rec.is_dead(j) {
                self.send_msg(MachineId::from(j), K_ADOPT_DATA, enc(&msg));
            }
        }
        self.net.flush_all();
    }

    /// One surviving peer's ghost-data round. Arrivals ahead of our own
    /// marker completion (fast peers) are buffered and replayed once our
    /// adoption is applied; rounds from superseded eras are dropped.
    fn on_adopt_data(&mut self, env: Envelope) {
        match self.phase {
            // Our own adoption has not applied yet: hold the rows until
            // the local graph exists under the new placement.
            RecoveryPhase::Drain | RecoveryPhase::FlushWait => {
                self.adopt_early.push(env);
                return;
            }
            RecoveryPhase::AdoptData => {}
            // Normal/AwaitResume/Dead: any round arriving here is from an
            // era we already completed (a peer cannot start a newer round
            // before our own flush marker, which we have not sent).
            _ => return,
        }
        let msg: AdoptDataMsg = dec(env.payload);
        if msg.era != self.rec.era {
            return; // superseded round
        }
        for (v, blob) in msg.vrows {
            if let Some(l) = self.lg.local_vertex(v) {
                *self.lg.vertex_data_mut(l) = dec(blob);
            }
        }
        for (e, blob) in msg.erows {
            if let Some(l) = self.lg.local_edge(e) {
                *self.lg.edge_data_mut(l) = dec(blob);
            }
        }
        self.adopt_got[env.src.index()] = true;
        self.check_adopt_done();
    }

    /// Every surviving peer's ghost round arrived: re-seed work and join
    /// the resume barrier.
    fn check_adopt_done(&mut self) {
        if self.phase != RecoveryPhase::AdoptData {
            return;
        }
        let me = self.me().index();
        let done = (0..self.num_machines())
            .all(|j| j == me || self.rec.is_dead(j) || self.adopt_got[j]);
        if !done {
            return;
        }
        // Conservative re-seeding: schedule every owned vertex (adopted
        // data may lag surviving live data; re-execution reconverges).
        for i in 0..self.lg.owned_vertices().len() {
            let l = self.lg.owned_vertices()[i];
            self.scheduler.add(l, 1.0);
        }
        self.rec.after_adoption();
        self.phase = RecoveryPhase::AwaitResume;
        // lint: allow(determinism) -- recovery-phase stall timer; bounds waiting, never enters payloads or traces
        self.phase_since = Instant::now();
        let era = self.rec.era;
        tr!("[m{}] ADOPT_DONE era={}", self.me().0, era);
        if self.is_master() {
            if self.rec.note_recovered(era) {
                self.master_release_resume();
            }
        } else {
            self.send_msg(MachineId(0), K_RECOVERED, enc(&RecoverEraMsg { era }));
            self.net.flush_all();
        }
    }

    /// Resets every piece of volatile engine state (shared by crash wipe,
    /// rollback, and adoption). Reallocates everything sized by the local
    /// graph — adoption changes the local vertex/edge space, so the
    /// tables' dimensions must follow the graph. Does not touch graph
    /// data, metrics, or the recovery tracker.
    fn reset_engine_state(&mut self) {
        let n = self.num_machines();
        let nv = self.lg.num_local_vertices();
        let ne = self.lg.num_local_edges();
        self.scheduler = Scheduler::new(self.setup.config.scheduler, nv);
        self.locks = LockTable::new(nv);
        self.cache = RemoteCacheTable::new(n, nv, ne);
        self.hop_chains.clear();
        self.out_scopes.clear();
        self.ready.clear();
        // The crash may have taken the ring's only token with it; the
        // cluster-wide reset re-probes from scratch (see
        // `graphlab_net::termination` § Faults).
        self.safra.reset();
        self.cap_reached = false;
        self.sent_counts = vec![0; n];
        self.recv_counts = vec![0; n];
        self.snap_epoch = vec![0; nv];
        self.current_snap = 0;
        self.snap_queue.clear();
        self.snap_buffer = SnapshotFile::default();
        self.snap_remaining = 0;
        self.snap_paused = false;
        self.snap_ready_sent = false;
        self.snap_flush_target = None;
        self.snap_written = false;
        self.m_snap_in_progress = false;
        self.m_snap_ready = vec![None; n];
        self.m_snap_done = 0;
        self.m_async_done = 0;
        // `updates_local` and the K_UPD_NOTE state (`last_noted`,
        // `m_peer_updates`) deliberately survive: counts are cumulative
        // and never reset, which is what makes stale notes idempotent.
        self.m_last_snap_updates = self.observed_updates();
        self.m_halt_pending = false;
        self.m_halt_sent = false;
        self.m_halt_acks = 0;
        self.m_sync_outstanding = None;
        self.m_sync_next_at = self.observed_updates() + self.setup.config.sync_interval_updates;
        self.m_final_sync_done = false;
        self.effects.clear();
    }

    /// Master: the whole cluster rolled back — release the resume barrier.
    fn master_release_resume(&mut self) {
        let era = self.rec.era;
        let payload = enc(&RecoverEraMsg { era });
        self.broadcast_msg(K_RESUME, &payload);
        self.net.flush_all();
        self.on_resume(RecoverEraMsg { era });
    }

    /// Resume barrier released: replay buffered post-rollback traffic and
    /// return to normal operation.
    fn on_resume(&mut self, msg: RecoverEraMsg) {
        if msg.era != self.rec.era || self.phase != RecoveryPhase::AwaitResume {
            return;
        }
        tr!("[m{}] RESUME era={} buffered={}", self.me().0, msg.era, self.resume_buffer.len());
        self.phase = RecoveryPhase::Normal;
        for env in std::mem::take(&mut self.resume_buffer) {
            self.handle(env);
        }
    }

    fn maybe_straggle(&mut self) {
        if let Some(s) = self.setup.config.straggler {
            if !self.straggled && self.me().0 == s.machine && self.global_updates() >= s.after_updates
            {
                self.straggled = true;
                std::thread::sleep(s.duration);
            }
        }
    }

    fn finish(mut self) -> MachineResult<V, E> {
        let update_counts: Vec<(VertexId, u64)> =
            std::mem::take(&mut self.update_count_map).into_iter().collect();
        let globals = std::mem::take(&mut self.globals);
        let updates = self.updates_local;
        let snapshots = self.snapshots_written;
        let recoveries = self.rec.recoveries;
        let adoptions = self.rec.adoptions;
        let failed = self.failure.take();
        let dead = self.dead;
        let (vrows, erows) =
            if dead { (Vec::new(), Vec::new()) } else { self.lg.into_owned_data() };
        MachineResult {
            vrows,
            erows,
            globals,
            updates,
            update_counts,
            steps: 0,
            snapshots,
            recoveries,
            adoptions,
            dead,
            failed,
            phase: crate::metrics::PhaseTimes::default(),
            chain_spans: std::mem::take(&mut self.chain_spans),
            idle_wakeups: self.idle_wakeups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KA: ChainKey = (0, 1);
    const KB: ChainKey = (0, 2);
    const KC: ChainKey = (1, 1);

    #[test]
    fn read_locks_share() {
        let mut t = LockTable::new(2);
        assert!(t.acquire(0, LockType::Read, KA));
        assert!(t.acquire(0, LockType::Read, KB));
        assert_eq!(t.held(0), (2, false));
    }

    #[test]
    fn write_excludes() {
        let mut t = LockTable::new(1);
        assert!(t.acquire(0, LockType::Write, KA));
        assert!(!t.acquire(0, LockType::Read, KB));
        assert!(!t.acquire(0, LockType::Write, KC));
        let granted = t.release(0, LockType::Write);
        // FIFO: the read parked first is granted; the write must wait.
        assert_eq!(granted, vec![KB]);
        assert_eq!(t.held(0), (1, false));
        let granted = t.release(0, LockType::Read);
        assert_eq!(granted, vec![KC]);
        assert_eq!(t.held(0), (0, true));
    }

    #[test]
    fn fifo_fairness_blocks_barging_readers() {
        let mut t = LockTable::new(1);
        assert!(t.acquire(0, LockType::Read, KA));
        assert!(!t.acquire(0, LockType::Write, KB)); // queued
        // A new reader may NOT barge past the queued writer.
        assert!(!t.acquire(0, LockType::Read, KC));
        let granted = t.release(0, LockType::Read);
        assert_eq!(granted, vec![KB]);
        let granted = t.release(0, LockType::Write);
        assert_eq!(granted, vec![KC]);
    }

    #[test]
    fn reader_batch_grant() {
        let mut t = LockTable::new(1);
        assert!(t.acquire(0, LockType::Write, KA));
        assert!(!t.acquire(0, LockType::Read, KB));
        assert!(!t.acquire(0, LockType::Read, KC));
        let granted = t.release(0, LockType::Write);
        assert_eq!(granted, vec![KB, KC], "consecutive readers granted together");
        assert_eq!(t.held(0), (2, false));
    }

    #[test]
    fn independent_vertices_do_not_interact() {
        let mut t = LockTable::new(3);
        assert!(t.acquire(0, LockType::Write, KA));
        assert!(t.acquire(1, LockType::Write, KB));
        assert!(t.acquire(2, LockType::Read, KC));
    }

    #[test]
    fn release_empty_queue_grants_nothing() {
        let mut t = LockTable::new(1);
        assert!(t.acquire(0, LockType::Read, KA));
        assert!(t.release(0, LockType::Read).is_empty());
    }
}
