//! Engine configuration shared by the chromatic and locking engines.

use std::time::Duration;

use graphlab_atoms::PlacementStrategy;
use graphlab_graph::ConsistencyModel;
use graphlab_net::{BatchPolicy, FaultPlan, Transport};

use crate::scheduler::SchedulerKind;

/// Snapshotting mode (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum SnapshotMode {
    /// No fault tolerance.
    #[default]
    None,
    /// Synchronous snapshots: suspend, flush, save, resume.
    Synchronous,
    /// Asynchronous Chandy-Lamport snapshots expressed as update functions
    /// (Alg. 5).
    Asynchronous,
}

/// Snapshot scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct SnapshotConfig {
    /// Mode.
    pub mode: SnapshotMode,
    /// Trigger a snapshot every this many global updates (0 = never;
    /// Fig. 8(d) uses every |V| updates).
    pub every_updates: u64,
    /// At most this many snapshots per run (Fig. 4 issues exactly one).
    pub max_snapshots: u64,
}

/// What the cluster does when a machine dies with no restart scheduled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Classic checkpoint recovery only: a permanent death fails the run
    /// cleanly ("no restart scheduled"), a death with a scheduled restart
    /// rolls the whole cluster back to the latest complete checkpoint.
    #[default]
    Rollback,
    /// Restart-free elasticity (§3 atom graph): on a permanent death the
    /// master re-balances the dead machine's atoms over the survivors
    /// (k·n over-partitioning makes the shares even), survivors reload
    /// the adopted atoms' journals from the DFS — overlaying the latest
    /// complete per-atom checkpoint when one exists — rebuild ghosts and
    /// re-schedule only the adopted vertices. Surviving machines' own
    /// state is untouched; no cluster-wide rollback. Deaths *with* a
    /// scheduled restart still roll back as in [`RecoveryMode::Rollback`].
    Adopt,
}

/// Fault injection: delays one machine mid-run (Fig. 4(b) halts one
/// process for 15 s after the snapshot begins).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StragglerConfig {
    /// Machine to delay.
    pub machine: u16,
    /// Delay is injected once this many global updates have completed.
    pub after_updates: u64,
    /// Length of the stall.
    pub duration: Duration,
}

/// Configuration for a distributed engine run.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Number of simulated machines.
    pub num_machines: usize,
    /// Number of atoms for the two-phase partitioning (defaults to
    /// `8 × num_machines`; must be ≥ `num_machines`).
    pub num_atoms: usize,
    /// Second-phase placement: how the atoms pack onto machines.
    /// [`PlacementStrategy::ReplicationAware`] co-locates connected
    /// meta-graph neighborhoods so lock chains span fewer machines
    /// (`repro -- abl-control` measures the span/byte deltas).
    pub placement: PlacementStrategy,
    /// Consistency model to enforce.
    pub consistency: ConsistencyModel,
    /// Scheduler flavour (locking engine; the chromatic engine is
    /// inherently sweep-within-colour).
    pub scheduler: SchedulerKind,
    /// Transport backend: the deterministic in-process simulator with its
    /// latency model ([`Transport::Sim`], the default), or real TCP between
    /// OS processes ([`Transport::Tcp`]). TCP runs execute only this
    /// process's machine and do not support fault plans.
    pub transport: Transport,
    /// Message batching/coalescing policy: small control messages (lock
    /// hops, grants, schedule requests, write-backs) bound for the same
    /// machine ride one envelope. Flushed by size/count thresholds and
    /// before every blocking receive. `BatchPolicy::compress` additionally
    /// LZ-compresses envelopes above `compress_min` bytes (on by default);
    /// `BatchPolicy::uncompressed()` keeps batching but ships raw bytes,
    /// `BatchPolicy::disabled()` sends every message individually and raw
    /// (ablation baselines).
    pub batch: BatchPolicy,
    /// Maximum outstanding lock requests per machine (§4.2.2 pipelining).
    pub max_pipeline: usize,
    /// Run sync operations every this many local updates (locking engine;
    /// the chromatic engine syncs between colour cycles). 0 disables.
    pub sync_interval_updates: u64,
    /// Snapshot policy.
    pub snapshot: SnapshotConfig,
    /// Optional straggler fault injection.
    pub straggler: Option<StragglerConfig>,
    /// Optional deterministic crash/partition fault injection
    /// ([`graphlab_net::fault`]): the fabric kills machines per the plan
    /// and the engines recover by rolling the cluster back to the latest
    /// complete checkpoint (so pair it with a [`SnapshotConfig`] unless
    /// the clean "no complete checkpoint" failure path is the point).
    /// Machine 0 (the coordination master) must not be a kill target.
    pub faults: Option<FaultPlan>,
    /// Response to a permanent machine death (no restart scheduled):
    /// fail/rollback classically, or adopt the dead machine's atoms.
    pub recovery: RecoveryMode,
    /// Lease-based failure detection: when set, every machine piggybacks
    /// a lease refresh on traffic towards machine 0 (explicit heartbeats
    /// only when idle past half the period) and the master declares a
    /// machine dead when its lease expires — the detector that works on
    /// real TCP, where there is no fault-fabric oracle. `None` disables
    /// the detector on SimNet; TCP runs default it on (2 s period).
    pub lease: Option<Duration>,
    /// Collect per-vertex update counts and the updates-vs-time series.
    pub trace: bool,
    /// Safety cap on total updates (0 = unlimited). The engine halts once
    /// the cap is reached even if the schedulers are non-empty.
    pub max_updates: u64,
    /// **Deliberately unsafe** (Fig. 1(d)): acquire only the central
    /// vertex's write lock while still letting the update read neighbour
    /// data — the "non-serializable (racing)" execution the paper shows is
    /// unstable for dynamic ALS. Locking engine only.
    pub racing: bool,
    /// Ablation (DESIGN.md D4): disable the version-aware delta scope sync
    /// (the owner-side remote-cache table and its "unchanged" markers) so
    /// every lock grant re-sends the full scope data even when unchanged.
    pub no_version_filter: bool,
    /// Seed for partitioning and tie-breaking.
    pub seed: u64,
}

impl EngineConfig {
    /// A sensible default for `m` machines.
    pub fn new(num_machines: usize) -> Self {
        EngineConfig {
            num_machines,
            num_atoms: (8 * num_machines).max(1),
            placement: PlacementStrategy::default(),
            consistency: ConsistencyModel::Edge,
            scheduler: SchedulerKind::Fifo,
            transport: Transport::default(),
            batch: BatchPolicy::default(),
            max_pipeline: 64,
            sync_interval_updates: 0,
            snapshot: SnapshotConfig::default(),
            straggler: None,
            faults: None,
            recovery: RecoveryMode::default(),
            lease: None,
            trace: false,
            max_updates: 0,
            racing: false,
            no_version_filter: false,
            seed: 0x5EED,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = EngineConfig::new(4);
        assert_eq!(c.num_machines, 4);
        assert_eq!(c.num_atoms, 32);
        assert_eq!(c.consistency, ConsistencyModel::Edge);
        assert_eq!(c.placement, PlacementStrategy::Affinity);
        assert!(c.num_atoms >= c.num_machines);
    }

    #[test]
    fn single_machine_has_one_atom_minimum() {
        let c = EngineConfig::new(1);
        assert!(c.num_atoms >= 1);
    }
}
