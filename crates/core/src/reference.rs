//! Sequential reference engine: a literal implementation of the GraphLab
//! execution model (Alg. 2).
//!
//! ```text
//! while T is not empty:
//!     v      ← RemoveNext(T)
//!     (T',S) ← f(v, S_v)
//!     T      ← T ∪ T'
//! ```
//!
//! Every distributed execution must be *serializable*: equivalent to some
//! run of this loop (§3.4). The integration tests use this engine both as
//! the correctness oracle for the distributed engines and as the
//! single-threaded baseline for convergence studies (Fig. 1). It runs
//! behind the same program seam as the distributed engines
//! ([`crate::EngineKind::Sequential`] via [`crate::GraphLab`]): same
//! update functions, same typed syncs, same `stop_when` termination.

use std::sync::Arc;
use std::time::Instant;

use graphlab_atoms::SimDfs;
use graphlab_graph::{DataGraph, VertexId};

use crate::config::EngineConfig;
use crate::driver::{EngineOutput, StopFn};
use crate::globals::GlobalRegistry;
use crate::local::LocalGraph;
use crate::metrics::EngineMetrics;
use crate::scheduler::Scheduler;
use crate::sync::{run_local_syncs, ErasedSync};
use crate::update::{UpdateContext, UpdateEffects, UpdateFunction};

/// Initial task set.
#[derive(Clone, Debug)]
pub enum InitialSchedule {
    /// Schedule every vertex (uniform priority 1.0).
    AllVertices,
    /// Schedule the given vertices with priorities.
    Vertices(Vec<(VertexId, f64)>),
}

/// Runs Alg. 2 to completion on `graph`, mutating its data in place.
/// Entered exclusively through [`crate::GraphLab::run`].
pub(crate) fn run_sequential_program<V, E, U>(
    graph: &mut DataGraph<V, E>,
    update: &U,
    initial: InitialSchedule,
    syncs: &[Box<dyn ErasedSync<V, E>>],
    stop: Option<StopFn>,
    config: &EngineConfig,
) -> EngineOutput
where
    V: Clone + Send + Sync + 'static,
    E: Clone + Send + Sync + 'static,
    U: UpdateFunction<V, E> + ?Sized,
{
    let start = Instant::now();
    let mut lg = LocalGraph::single_machine(graph, None);
    let mut globals = GlobalRegistry::new();
    let mut scheduler = Scheduler::new(config.scheduler, lg.num_local_vertices());

    match &initial {
        InitialSchedule::AllVertices => {
            for l in 0..lg.num_local_vertices() as u32 {
                scheduler.add(l, 1.0);
            }
        }
        InitialSchedule::Vertices(vs) => {
            for &(v, p) in vs {
                let l = lg.local_vertex(v).expect("initial vertex exists");
                scheduler.add(l, p);
            }
        }
    }

    run_local_syncs(syncs, &lg, &mut globals);

    let mut updates = 0u64;
    let mut update_counts =
        if config.trace { vec![0u64; lg.total_vertices() as usize] } else { Vec::new() };
    let mut effects = UpdateEffects::default();

    while let Some(l) = scheduler.pop() {
        effects.clear();
        {
            let mut ctx = UpdateContext::new(&mut lg, l, config.consistency, &globals, &mut effects);
            update.update(&mut ctx);
        }
        updates += 1;
        if config.trace {
            update_counts[lg.vertex_gvid(l).index()] += 1;
        }
        for &(gv, prio) in &effects.scheduled {
            let lv = lg.local_vertex(gv).expect("scheduled vertex is local");
            scheduler.add(lv, prio);
        }
        if config.sync_interval_updates > 0
            && updates.is_multiple_of(config.sync_interval_updates)
        {
            run_local_syncs(syncs, &lg, &mut globals);
            // Aggregate-driven convergence check (§3.5) at the sync
            // boundary, composing with the update cap below.
            if stop.as_ref().is_some_and(|f| f(&globals)) {
                break;
            }
        }
        if config.max_updates > 0 && updates >= config.max_updates {
            break;
        }
    }

    run_local_syncs(syncs, &lg, &mut globals);

    // Write results back into the caller's graph.
    let (vrows, erows) = lg.into_owned_data();
    for (gv, data) in vrows {
        *graph.vertex_data_mut(gv) = data;
    }
    for (ge, data) in erows {
        *graph.edge_data_mut(ge) = data;
    }

    EngineOutput {
        metrics: EngineMetrics {
            updates,
            runtime: start.elapsed(),
            update_counts,
            updates_timeline: Vec::new(),
            bytes_sent_per_machine: vec![0],
            total_messages: 0,
            bytes_by_kind: Vec::new(),
            steps: 0,
            snapshots: 0,
            recoveries: 0,
            adoptions: 0,
            phases: Vec::new(),
            chain_spans: Vec::new(),
            idle_wakeups: Vec::new(),
        },
        globals,
        dfs: Arc::new(SimDfs::new()),
        failure: None,
        owned: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{GraphLab, SyncCadence};
    use crate::scheduler::SchedulerKind;
    use crate::EngineKind;
    use graphlab_graph::GraphBuilder;

    /// Toy diffusion: v takes the max of its neighbours; schedules
    /// neighbours when it changes. Converges to the global max everywhere.
    struct MaxDiffusion;
    impl UpdateFunction<f64, ()> for MaxDiffusion {
        fn update(&self, ctx: &mut UpdateContext<'_, f64, ()>) {
            let mut best = *ctx.vertex_data();
            for i in 0..ctx.num_neighbors() {
                best = best.max(*ctx.nbr_data(i));
            }
            if best > *ctx.vertex_data() {
                *ctx.vertex_data_mut() = best;
                for i in 0..ctx.num_neighbors() {
                    ctx.schedule_nbr(i, 1.0);
                }
            }
        }
    }

    fn path(n: usize) -> DataGraph<f64, ()> {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|i| b.add_vertex(i as f64)).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], ()).unwrap();
        }
        b.build()
    }

    #[test]
    fn max_diffusion_converges() {
        let mut g = path(20);
        let out = GraphLab::on(&mut g).run(MaxDiffusion);
        assert!(out.metrics.updates >= 20);
        for v in g.vertices() {
            assert_eq!(*g.vertex_data(v), 19.0);
        }
    }

    #[test]
    fn initial_subset_only_touches_reachable_work() {
        let mut g = path(5);
        let out = GraphLab::on(&mut g)
            .initial(InitialSchedule::Vertices(vec![(VertexId(0), 1.0)]))
            .run(MaxDiffusion);
        // v0 pulls max(v1)=1.0 and schedules neighbours, cascade follows.
        assert!(out.metrics.updates >= 1);
        assert_eq!(*g.vertex_data(VertexId(0)), 4.0);
    }

    #[test]
    fn max_updates_caps_execution() {
        let mut g = path(50);
        let out = GraphLab::on(&mut g).max_updates(10).run(MaxDiffusion);
        assert_eq!(out.metrics.updates, 10);
    }

    #[test]
    fn trace_counts_updates_per_vertex() {
        let mut g = path(4);
        let out = GraphLab::on(&mut g).trace(true).run(MaxDiffusion);
        assert_eq!(out.metrics.update_counts.len(), 4);
        assert_eq!(out.metrics.update_counts.iter().sum::<u64>(), out.metrics.updates);
    }

    #[test]
    fn syncs_publish_globals() {
        use crate::globals::GlobalHandle;
        use crate::sync::FnSync;
        const SUM: GlobalHandle<Vec<f64>> = GlobalHandle::new(0);
        let mut g = path(3);
        // The sync runs before the first update, so every update observes it.
        struct CheckGlobal;
        impl UpdateFunction<f64, ()> for CheckGlobal {
            fn update(&self, ctx: &mut UpdateContext<'_, f64, ()>) {
                assert!(ctx.global(SUM).is_some(), "sync ran before updates");
            }
        }
        let out = GraphLab::on(&mut g)
            .sync(SUM, FnSync::new(1, |_, d: &f64| vec![*d], |acc, _| acc), SyncCadence::Updates(1))
            .run(CheckGlobal);
        assert_eq!(out.globals.get(SUM), Some(&vec![3.0]));
    }

    #[test]
    fn priority_scheduler_orders_execution() {
        // Record execution order via vertex data mutation.
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_vertex(0.0f64);
        }
        let mut g: DataGraph<f64, ()> = b.build();

        use std::sync::atomic::{AtomicU64, Ordering};
        let order = Arc::new(AtomicU64::new(1));
        let order2 = Arc::clone(&order);
        let f = move |ctx: &mut UpdateContext<'_, f64, ()>| {
            *ctx.vertex_data_mut() = order2.fetch_add(1, Ordering::Relaxed) as f64;
        };
        GraphLab::on(&mut g)
            .scheduler(SchedulerKind::Priority)
            .initial(InitialSchedule::Vertices(vec![
                (VertexId(0), 1.0),
                (VertexId(1), 100.0),
                (VertexId(2), 10.0),
            ]))
            .run(f);
        assert_eq!(*g.vertex_data(VertexId(1)), 1.0);
        assert_eq!(*g.vertex_data(VertexId(2)), 2.0);
        assert_eq!(*g.vertex_data(VertexId(0)), 3.0);
    }

    #[test]
    fn sequential_engine_kind_is_explicit() {
        let mut g = path(8);
        let out = GraphLab::on(&mut g).engine(EngineKind::Sequential).run(MaxDiffusion);
        assert!(out.metrics.updates >= 8);
        assert_eq!(out.metrics.total_messages, 0, "no fabric traffic sequentially");
    }

}
