//! Sequential reference engine: a literal implementation of the GraphLab
//! execution model (Alg. 2).
//!
//! ```text
//! while T is not empty:
//!     v      ← RemoveNext(T)
//!     (T',S) ← f(v, S_v)
//!     T      ← T ∪ T'
//! ```
//!
//! Every distributed execution must be *serializable*: equivalent to some
//! run of this loop (§3.4). The integration tests use this engine both as
//! the correctness oracle for the distributed engines and as the
//! single-threaded baseline for convergence studies (Fig. 1).

use std::time::Instant;

use graphlab_graph::{ConsistencyModel, DataGraph, VertexId};

use crate::globals::GlobalRegistry;
use crate::local::LocalGraph;
use crate::metrics::EngineMetrics;
use crate::scheduler::{Scheduler, SchedulerKind};
use crate::sync::{local_partial, SyncOp};
use crate::update::{UpdateContext, UpdateEffects, UpdateFunction};

/// Initial task set.
#[derive(Clone, Debug)]
pub enum InitialSchedule {
    /// Schedule every vertex (uniform priority 1.0).
    AllVertices,
    /// Schedule the given vertices with priorities.
    Vertices(Vec<(VertexId, f64)>),
}

/// Options for a sequential run.
pub struct SequentialConfig<'a, V, E> {
    /// Consistency model to *enforce on scope accesses* (execution is
    /// sequential, so every model is trivially serializable — the model
    /// only gates the access checks).
    pub consistency: ConsistencyModel,
    /// Scheduler flavour for `RemoveNext(T)`.
    pub scheduler: SchedulerKind,
    /// Stop after this many updates (0 = run to empty scheduler).
    pub max_updates: u64,
    /// Sync operations, run every `sync_interval_updates`.
    pub syncs: Vec<&'a dyn SyncOp<V, E>>,
    /// Cadence of sync operations in updates (0 = only once at start).
    pub sync_interval_updates: u64,
    /// Record per-vertex update counts.
    pub trace: bool,
}

impl<V, E> Default for SequentialConfig<'_, V, E> {
    fn default() -> Self {
        SequentialConfig {
            consistency: ConsistencyModel::Edge,
            scheduler: SchedulerKind::Fifo,
            max_updates: 0,
            syncs: Vec::new(),
            sync_interval_updates: 0,
            trace: false,
        }
    }
}

fn run_syncs<V, E>(
    syncs: &[&dyn SyncOp<V, E>],
    lg: &LocalGraph<V, E>,
    globals: &mut GlobalRegistry,
) {
    for op in syncs {
        let partial = local_partial(*op, lg);
        let value = op.finalize(partial, lg.total_vertices());
        globals.set(&op.name(), value);
    }
}

/// Runs Alg. 2 to completion on `graph`, mutating its data in place.
pub fn run_sequential<V, E, U>(
    graph: &mut DataGraph<V, E>,
    update: &U,
    initial: InitialSchedule,
    config: SequentialConfig<'_, V, E>,
) -> EngineMetrics
where
    V: Clone + Send + Sync + 'static,
    E: Clone + Send + Sync + 'static,
    U: UpdateFunction<V, E>,
{
    let start = Instant::now();
    let mut lg = LocalGraph::single_machine(graph, None);
    let mut globals = GlobalRegistry::new();
    let mut scheduler = Scheduler::new(config.scheduler, lg.num_local_vertices());

    match &initial {
        InitialSchedule::AllVertices => {
            for l in 0..lg.num_local_vertices() as u32 {
                scheduler.add(l, 1.0);
            }
        }
        InitialSchedule::Vertices(vs) => {
            for &(v, p) in vs {
                let l = lg.local_vertex(v).expect("initial vertex exists");
                scheduler.add(l, p);
            }
        }
    }

    run_syncs(&config.syncs, &lg, &mut globals);

    let mut updates = 0u64;
    let mut update_counts =
        if config.trace { vec![0u64; lg.total_vertices() as usize] } else { Vec::new() };
    let mut effects = UpdateEffects::default();

    while let Some(l) = scheduler.pop() {
        effects.clear();
        {
            let mut ctx = UpdateContext::new(&mut lg, l, config.consistency, &globals, &mut effects);
            update.update(&mut ctx);
        }
        updates += 1;
        if config.trace {
            update_counts[lg.vertex_gvid(l).index()] += 1;
        }
        for &(gv, prio) in &effects.scheduled {
            let lv = lg.local_vertex(gv).expect("scheduled vertex is local");
            scheduler.add(lv, prio);
        }
        if config.sync_interval_updates > 0 && updates.is_multiple_of(config.sync_interval_updates) {
            run_syncs(&config.syncs, &lg, &mut globals);
        }
        if config.max_updates > 0 && updates >= config.max_updates {
            break;
        }
    }

    run_syncs(&config.syncs, &lg, &mut globals);

    // Write results back into the caller's graph.
    let (vrows, erows) = lg.into_owned_data();
    for (gv, data) in vrows {
        *graph.vertex_data_mut(gv) = data;
    }
    for (ge, data) in erows {
        *graph.edge_data_mut(ge) = data;
    }

    EngineMetrics {
        updates,
        runtime: start.elapsed(),
        update_counts,
        updates_timeline: Vec::new(),
        bytes_sent_per_machine: vec![0],
        total_messages: 0,
        bytes_by_kind: Vec::new(),
        steps: 0,
        snapshots: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_graph::GraphBuilder;

    /// Toy diffusion: v takes the max of its neighbours; schedules
    /// neighbours when it changes. Converges to the global max everywhere.
    struct MaxDiffusion;
    impl UpdateFunction<f64, ()> for MaxDiffusion {
        fn update(&self, ctx: &mut UpdateContext<'_, f64, ()>) {
            let mut best = *ctx.vertex_data();
            for i in 0..ctx.num_neighbors() {
                best = best.max(*ctx.nbr_data(i));
            }
            if best > *ctx.vertex_data() {
                *ctx.vertex_data_mut() = best;
                for i in 0..ctx.num_neighbors() {
                    ctx.schedule_nbr(i, 1.0);
                }
            }
        }
    }

    fn path(n: usize) -> DataGraph<f64, ()> {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|i| b.add_vertex(i as f64)).collect();
        for w in vs.windows(2) {
            b.add_edge(w[0], w[1], ()).unwrap();
        }
        b.build()
    }

    #[test]
    fn max_diffusion_converges() {
        let mut g = path(20);
        let m = run_sequential(
            &mut g,
            &MaxDiffusion,
            InitialSchedule::AllVertices,
            SequentialConfig::default(),
        );
        assert!(m.updates >= 20);
        for v in g.vertices() {
            assert_eq!(*g.vertex_data(v), 19.0);
        }
    }

    #[test]
    fn initial_subset_only_touches_reachable_work() {
        let mut g = path(5);
        // Only vertex 0 scheduled: its value (0) is not the max, nothing
        // propagates, but the single update still runs.
        let m = run_sequential(
            &mut g,
            &MaxDiffusion,
            InitialSchedule::Vertices(vec![(VertexId(0), 1.0)]),
            SequentialConfig::default(),
        );
        // v0 pulls max(v1)=1.0 and schedules neighbours, cascade follows.
        assert!(m.updates >= 1);
        assert_eq!(*g.vertex_data(VertexId(0)), 4.0);
    }

    #[test]
    fn max_updates_caps_execution() {
        let mut g = path(50);
        let m = run_sequential(
            &mut g,
            &MaxDiffusion,
            InitialSchedule::AllVertices,
            SequentialConfig { max_updates: 10, ..Default::default() },
        );
        assert_eq!(m.updates, 10);
    }

    #[test]
    fn trace_counts_updates_per_vertex() {
        let mut g = path(4);
        let m = run_sequential(
            &mut g,
            &MaxDiffusion,
            InitialSchedule::AllVertices,
            SequentialConfig { trace: true, ..Default::default() },
        );
        assert_eq!(m.update_counts.len(), 4);
        assert_eq!(m.update_counts.iter().sum::<u64>(), m.updates);
    }

    #[test]
    fn syncs_publish_globals() {
        use crate::sync::FnSync;
        let mut g = path(3);
        let total: FnSync<f64> = FnSync::new("sum", 1, |_, d| vec![*d], |acc, _| acc);
        let cfg = SequentialConfig {
            syncs: vec![&total],
            sync_interval_updates: 1,
            ..Default::default()
        };
        // We cannot easily read globals back out (they live in the run), but
        // the update can: check it observes a value.
        struct CheckGlobal;
        impl UpdateFunction<f64, ()> for CheckGlobal {
            fn update(&self, ctx: &mut UpdateContext<'_, f64, ()>) {
                assert!(ctx.global("sum").is_some(), "sync ran before updates");
            }
        }
        run_sequential(&mut g, &CheckGlobal, InitialSchedule::AllVertices, cfg);
    }

    #[test]
    fn priority_scheduler_orders_execution() {
        // Record execution order via vertex data mutation.
        let mut b = GraphBuilder::new();
        for _ in 0..3 {
            b.add_vertex(0.0f64);
        }
        let mut g: DataGraph<f64, ()> = b.build();

        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let order = Arc::new(AtomicU64::new(1));
        let order2 = Arc::clone(&order);
        let f = move |ctx: &mut UpdateContext<'_, f64, ()>| {
            *ctx.vertex_data_mut() = order2.fetch_add(1, Ordering::Relaxed) as f64;
        };
        run_sequential(
            &mut g,
            &f,
            InitialSchedule::Vertices(vec![
                (VertexId(0), 1.0),
                (VertexId(1), 100.0),
                (VertexId(2), 10.0),
            ]),
            SequentialConfig { scheduler: SchedulerKind::Priority, ..Default::default() },
        );
        assert_eq!(*g.vertex_data(VertexId(1)), 1.0);
        assert_eq!(*g.vertex_data(VertexId(2)), 2.0);
        assert_eq!(*g.vertex_data(VertexId(0)), 3.0);
    }
}
