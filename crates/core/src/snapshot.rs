//! Fault tolerance through distributed checkpoints (§4.3).
//!
//! Two snapshot constructions are implemented inside the engines:
//!
//! - **Synchronous**: suspend update execution, flush all communication
//!   channels, save all owned data. The chromatic engine does this at a
//!   cycle boundary (a natural barrier); the locking engine runs a
//!   drain → counted channel flush → save → resume protocol.
//! - **Asynchronous**: the Chandy-Lamport variant expressed *as a GraphLab
//!   update function* (Alg. 5), valid under edge consistency with
//!   schedule-before-unlock and snapshot-update priority. Each vertex saves
//!   its own datum and the data of edges to not-yet-snapshotted neighbours;
//!   the `snapshotted` marker propagates with the ordinary versioned scope
//!   data synchronisation.
//!
//! # Failure model and recovery protocol
//!
//! The failure model is **crash-restart of any non-master machine**,
//! injected deterministically by the fabric's
//! [`graphlab_net::fault::FaultPlan`]: a killed machine loses all volatile
//! state (local graph data, scheduler, locks, caches, in-flight traffic),
//! the fabric drops everything on the wire to or from it, and every
//! survivor is notified with a fabric `K_DOWN` envelope. The checkpoint
//! files on the DFS are the only durable state (§4.3: "the failed machine
//! is restored from the last checkpoint").
//!
//! Recovery is a master-coordinated cluster rollback, keyed on the fabric
//! *fault era* (total kills so far):
//!
//! 1. **Drain.** On `K_DOWN` every survivor abandons its in-progress work
//!    (epochs, snapshots, lock chains), stops sending engine traffic, and
//!    reports `READY{era}` to the master. A reborn machine reports as
//!    soon as its fabric `K_UP` (which carries the current era) arrives.
//! 2. **Rollback.** With all `n` READYs of the current era, the master
//!    prunes incomplete snapshots from the DFS, picks the **latest
//!    complete checkpoint** ([`latest_complete_snapshot`]) — or aborts the
//!    run with a clean *"no complete checkpoint"* error — and broadcasts
//!    `ROLLBACK{era, snap}`.
//! 3. **Marker flush + restore.** On the rollback order each machine
//!    broadcasts the era's `FLUSH_MARK` to every peer, then consumes (and
//!    discards) incoming traffic until every peer's marker arrived. A
//!    peer's engine traffic all predates its drain point, and markers ride
//!    the same per-channel FIFO the engines already rely on — so holding
//!    all markers proves no stale pre-rollback message can ever surface
//!    (channels touching the dead machine need no flushing: the fabric
//!    drops dead incarnations' traffic and the reborn machine starts from
//!    an empty inbox). The machine then restores owned *and ghost* data
//!    from the checkpoint ([`restore_into_local`]), resets versions to
//!    zero, conservatively invalidates its `RemoteCacheTable`, rebuilds
//!    scheduler/lock/engine state (including the termination detector —
//!    the crash may have eaten the Safra token), and re-schedules all
//!    owned vertices (the conservative over-approximation of the lost
//!    scheduler state).
//! 4. **Resume.** A final `RECOVERED`/`RESUME` barrier keeps post-rollback
//!    work from racing ahead of machines still restoring; traffic that
//!    does arrive early is buffered, not dropped. Overlapping failures
//!    advance the era and restart the round from step 1.
//!
//! Rolled-back updates re-execute, so `EngineMetrics::updates` counts some
//! work twice after a failure — exactly the recomputation cost Fig. 4
//! measures. Self-stabilising programs (PageRank, ALS, LBP, anything with
//! a confluent or contracting fixpoint) reconverge to the fault-free
//! answer; the chaos suite (`tests/properties.rs::recovery`) pins that.
//!
//! This module holds what the engines share: the checkpoint file format on
//! the DFS, restoration, completeness scanning/pruning, and Young's
//! first-order optimal checkpoint interval (Eq. 3).

use bytes::{Bytes, BytesMut};
use graphlab_graph::{DataGraph, EdgeId, MachineId, VertexId};
use graphlab_net::codec::{decode_from, encode_to_bytes, Codec};
use graphlab_atoms::SimDfs;

use crate::local::LocalGraph;

/// A checkpoint file: one per machine per snapshot.
///
/// Vertex/edge data are stored as encoded blobs so the file format is
/// independent of the user types.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SnapshotFile {
    /// Saved vertex rows `(vertex, encoded data)`.
    pub vrows: Vec<(VertexId, Bytes)>,
    /// Saved edge rows `(edge, encoded data)`.
    pub erows: Vec<(EdgeId, Bytes)>,
}

impl Codec for SnapshotFile {
    fn encode(&self, buf: &mut BytesMut) {
        (self.vrows.len() as u32).encode(buf);
        for (v, b) in &self.vrows {
            v.encode(buf);
            b.encode(buf);
        }
        (self.erows.len() as u32).encode(buf);
        for (e, b) in &self.erows {
            e.encode(buf);
            b.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let nv = u32::decode(buf)? as usize;
        let mut vrows = Vec::with_capacity(nv);
        for _ in 0..nv {
            vrows.push((VertexId::decode(buf)?, Bytes::decode(buf)?));
        }
        let ne = u32::decode(buf)? as usize;
        let mut erows = Vec::with_capacity(ne);
        for _ in 0..ne {
            erows.push((EdgeId::decode(buf)?, Bytes::decode(buf)?));
        }
        Some(SnapshotFile { vrows, erows })
    }
}

impl SnapshotFile {
    /// Captures all owned data of a local graph (synchronous snapshots save
    /// the complete owned state).
    pub fn capture<V: Codec, E: Codec>(lg: &LocalGraph<V, E>) -> SnapshotFile {
        let mut vrows = Vec::with_capacity(lg.owned_vertices().len());
        for &l in lg.owned_vertices() {
            vrows.push((lg.vertex_gvid(l), encode_to_bytes(lg.vertex_data(l))));
        }
        let mut erows = Vec::new();
        for l in 0..lg.num_local_edges() as u32 {
            if lg.owns_edge(l) {
                erows.push((lg.edge_geid(l), encode_to_bytes(lg.edge_data(l))));
            }
        }
        SnapshotFile { vrows, erows }
    }
}

/// DFS file name of machine `m`'s part of snapshot `id`.
pub fn snap_file_name(prefix: &str, id: u64, machine: MachineId) -> String {
    format!("{prefix}/snap_{id:04}/machine_{:04}", machine.0)
}

/// Lists the machines that contributed to snapshot `id`.
pub fn snapshot_exists(dfs: &SimDfs, prefix: &str, id: u64) -> bool {
    !dfs.list_prefix(&format!("{prefix}/snap_{id:04}/")).is_empty()
}

/// Parses `"<prefix>/snap_XXXX/machine_YYYY"` into its snapshot id.
fn parse_snap_id(prefix: &str, name: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?.strip_prefix("/snap_")?;
    let (id, _machine) = rest.split_once('/')?;
    id.parse().ok()
}

/// The newest snapshot id for which **every** machine's file exists — the
/// only kind of checkpoint recovery may restore (a partial set is a torn
/// cut: some machine died mid-write).
pub fn latest_complete_snapshot(dfs: &SimDfs, prefix: &str, machines: usize) -> Option<u64> {
    let mut counts: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    for name in dfs.list_prefix(&format!("{prefix}/snap_")) {
        if let Some(id) = parse_snap_id(prefix, &name) {
            *counts.entry(id).or_default() += 1;
        }
    }
    counts.into_iter().rev().find(|&(_, c)| c >= machines).map(|(id, _)| id)
}

/// Deletes every snapshot file newer than `keep_through` (all files when
/// `None`). Recovery runs this before rolling back so a half-written
/// snapshot from before the failure can never be completed by post-rollback
/// writes into a mixed-era (corrupt) cut.
pub fn prune_snapshots_after(dfs: &SimDfs, prefix: &str, keep_through: Option<u64>) -> usize {
    let mut pruned = 0;
    for name in dfs.list_prefix(&format!("{prefix}/snap_")) {
        if let Some(id) = parse_snap_id(prefix, &name) {
            if keep_through.is_none_or(|k| id > k) && dfs.delete(&name) {
                pruned += 1;
            }
        }
    }
    pruned
}

/// Restores snapshot `id` into one machine's [`LocalGraph`]: reads every
/// machine's checkpoint file and applies each row that is locally present
/// (owned **or** ghost — ghosts are restored from their owner's file, so
/// the whole cluster resumes from one consistent cut), then resets all
/// data versions to zero, the post-rollback ground state every machine
/// agrees on. Returns `(vertex rows applied, edge rows applied)`.
pub fn restore_into_local<V, E>(
    dfs: &SimDfs,
    prefix: &str,
    id: u64,
    lg: &mut LocalGraph<V, E>,
) -> Result<(usize, usize), String>
where
    V: Codec,
    E: Codec,
{
    let files = dfs.list_prefix(&format!("{prefix}/snap_{id:04}/"));
    if files.is_empty() {
        return Err(format!("snapshot {id} not found under {prefix}"));
    }
    let mut nv = 0;
    let mut ne = 0;
    for name in files {
        let bytes = dfs.read(&name).map_err(|e| e.to_string())?;
        let file: SnapshotFile = decode_from(bytes).ok_or("corrupt snapshot file")?;
        for (v, blob) in file.vrows {
            if let Some(l) = lg.local_vertex(v) {
                *lg.vertex_data_mut(l) = decode_from(blob).ok_or("corrupt vertex blob")?;
                nv += 1;
            }
        }
        for (e, blob) in file.erows {
            if let Some(l) = lg.local_edge(e) {
                *lg.edge_data_mut(l) = decode_from(blob).ok_or("corrupt edge blob")?;
                ne += 1;
            }
        }
    }
    lg.reset_versions();
    Ok((nv, ne))
}

/// Restores snapshot `id` into `graph` (which must share the structure the
/// snapshot was taken from). Returns the number of vertex and edge records
/// applied.
///
/// Asynchronous snapshots may save an edge on both sides of a machine
/// boundary; records are applied idempotently (the values are identical by
/// the Chandy-Lamport argument).
pub fn restore_snapshot<V, E>(
    dfs: &SimDfs,
    prefix: &str,
    id: u64,
    graph: &mut DataGraph<V, E>,
) -> Result<(usize, usize), String>
where
    V: Codec,
    E: Codec,
{
    let files = dfs.list_prefix(&format!("{prefix}/snap_{id:04}/"));
    if files.is_empty() {
        return Err(format!("snapshot {id} not found under {prefix}"));
    }
    let mut nv = 0;
    let mut ne = 0;
    for name in files {
        let bytes = dfs.read(&name).map_err(|e| e.to_string())?;
        let file: SnapshotFile = decode_from(bytes).ok_or("corrupt snapshot file")?;
        for (v, blob) in file.vrows {
            let data: V = decode_from(blob).ok_or("corrupt vertex blob")?;
            *graph.vertex_data_mut(v) = data;
            nv += 1;
        }
        for (e, blob) in file.erows {
            let data: E = decode_from(blob).ok_or("corrupt edge blob")?;
            *graph.edge_data_mut(e) = data;
            ne += 1;
        }
    }
    Ok((nv, ne))
}

/// Young's first-order approximation of the optimal checkpoint interval
/// (Eq. 3): `T_interval = sqrt(2 · T_checkpoint · T_mtbf)`.
///
/// `mtbf_per_machine_secs` is the per-machine mean time between failures;
/// the cluster MTBF is `mtbf_per_machine_secs / machines`.
pub fn young_interval(checkpoint_secs: f64, mtbf_per_machine_secs: f64, machines: u32) -> f64 {
    assert!(machines >= 1);
    assert!(checkpoint_secs >= 0.0 && mtbf_per_machine_secs >= 0.0);
    let cluster_mtbf = mtbf_per_machine_secs / machines as f64;
    (2.0 * checkpoint_secs * cluster_mtbf).sqrt()
}

/// Alias of [`young_interval`] under its historical name.
pub fn optimal_checkpoint_interval_secs(
    checkpoint_secs: f64,
    mtbf_per_machine_secs: f64,
    machines: u32,
) -> f64 {
    young_interval(checkpoint_secs, mtbf_per_machine_secs, machines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_graph::GraphBuilder;

    fn graph() -> DataGraph<f64, u32> {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(i as f64)).collect();
        b.add_edge(v[0], v[1], 10).unwrap();
        b.add_edge(v[1], v[2], 11).unwrap();
        b.add_edge(v[2], v[3], 12).unwrap();
        b.build()
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let g = graph();
        let lg = LocalGraph::single_machine(&g, None);
        let f = SnapshotFile::capture(&lg);
        assert_eq!(f.vrows.len(), 4);
        assert_eq!(f.erows.len(), 3);
        let enc = encode_to_bytes(&f);
        assert_eq!(decode_from::<SnapshotFile>(enc), Some(f));
    }

    #[test]
    fn capture_restore_roundtrips_state() {
        let mut g = graph();
        // Mutate, capture, mutate again, restore: original mutation returns.
        *g.vertex_data_mut(VertexId(2)) = 99.0;
        *g.edge_data_mut(EdgeId(0)) = 77;
        let lg = LocalGraph::single_machine(&g, None);
        let dfs = SimDfs::new();
        dfs.write(
            &snap_file_name("ckpt", 0, MachineId(0)),
            encode_to_bytes(&SnapshotFile::capture(&lg)),
        );
        assert!(snapshot_exists(&dfs, "ckpt", 0));
        *g.vertex_data_mut(VertexId(2)) = -1.0;
        *g.edge_data_mut(EdgeId(0)) = 0;
        let (nv, ne) = restore_snapshot(&dfs, "ckpt", 0, &mut g).unwrap();
        assert_eq!((nv, ne), (4, 3));
        assert_eq!(*g.vertex_data(VertexId(2)), 99.0);
        assert_eq!(*g.edge_data(EdgeId(0)), 77);
    }

    #[test]
    fn missing_snapshot_errors() {
        let mut g = graph();
        let dfs = SimDfs::new();
        assert!(restore_snapshot(&dfs, "ckpt", 3, &mut g).is_err());
        assert!(!snapshot_exists(&dfs, "ckpt", 3));
    }

    #[test]
    fn youngs_interval_matches_paper_example() {
        // §4.3: 64 machines, per-machine MTBF 1 year, checkpoint 2 min
        // → interval ≈ 3 hours.
        let t = optimal_checkpoint_interval_secs(120.0, 365.25 * 24.0 * 3600.0, 64);
        let hours = t / 3600.0;
        assert!((2.5..3.5).contains(&hours), "got {hours} hours");
    }

    #[test]
    fn interval_grows_with_mtbf() {
        let a = optimal_checkpoint_interval_secs(60.0, 1e6, 8);
        let b = optimal_checkpoint_interval_secs(60.0, 4e6, 8);
        assert!((b / a - 2.0).abs() < 1e-9, "sqrt scaling");
    }

    #[test]
    fn young_interval_known_inputs() {
        // sqrt(2 * 2 s * (100 s / 1 machine)) = sqrt(400) = 20 s.
        assert!((young_interval(2.0, 100.0, 1) - 20.0).abs() < 1e-12);
        // 4 machines quarter the cluster MTBF: sqrt(2*2*25) = 10 s.
        assert!((young_interval(2.0, 100.0, 4) - 10.0).abs() < 1e-12);
        // Zero checkpoint cost => checkpoint continuously.
        assert_eq!(young_interval(0.0, 1e9, 16), 0.0);
        // The historical name is a strict alias.
        assert_eq!(young_interval(7.0, 1234.0, 3), optimal_checkpoint_interval_secs(7.0, 1234.0, 3));
    }

    #[test]
    fn young_interval_is_monotone_in_mtbf_and_checkpoint_cost() {
        let mut last = 0.0;
        for mtbf in [1e2, 1e3, 1e4, 1e5, 1e6, 1e7] {
            let t = young_interval(60.0, mtbf, 8);
            assert!(t > last, "interval must grow with MTBF ({mtbf})");
            last = t;
        }
        let mut last = 0.0;
        for ck in [1.0, 10.0, 100.0, 1000.0] {
            let t = young_interval(ck, 1e6, 8);
            assert!(t > last, "interval must grow with checkpoint cost ({ck})");
            last = t;
        }
        // ... and shrink as the cluster grows (more machines, more failures).
        assert!(young_interval(60.0, 1e6, 64) < young_interval(60.0, 1e6, 8));
    }

    #[test]
    fn latest_complete_snapshot_ignores_partial_cuts() {
        let dfs = SimDfs::new();
        let blob = || encode_to_bytes(&SnapshotFile::default());
        // Snapshot 0: complete over 3 machines.
        for m in 0..3 {
            dfs.write(&snap_file_name("ckpt", 0, MachineId(m)), blob());
        }
        // Snapshot 1: torn (machine 2 died mid-write).
        for m in 0..2 {
            dfs.write(&snap_file_name("ckpt", 1, MachineId(m)), blob());
        }
        assert_eq!(latest_complete_snapshot(&dfs, "ckpt", 3), Some(0));
        // Completing snapshot 1 moves the answer forward.
        dfs.write(&snap_file_name("ckpt", 1, MachineId(2)), blob());
        assert_eq!(latest_complete_snapshot(&dfs, "ckpt", 3), Some(1));
        // No checkpoint at all.
        assert_eq!(latest_complete_snapshot(&dfs, "none", 3), None);
        // A single-machine "cluster" accepts its own lone file.
        assert_eq!(latest_complete_snapshot(&dfs, "ckpt", 1), Some(1));
    }

    #[test]
    fn prune_deletes_only_newer_snapshots() {
        let dfs = SimDfs::new();
        let blob = || encode_to_bytes(&SnapshotFile::default());
        for id in 0..3u64 {
            for m in 0..2 {
                dfs.write(&snap_file_name("ckpt", id, MachineId(m)), blob());
            }
        }
        assert_eq!(prune_snapshots_after(&dfs, "ckpt", Some(0)), 4);
        assert!(snapshot_exists(&dfs, "ckpt", 0));
        assert!(!snapshot_exists(&dfs, "ckpt", 1));
        assert!(!snapshot_exists(&dfs, "ckpt", 2));
        assert_eq!(prune_snapshots_after(&dfs, "ckpt", None), 2);
        assert!(!snapshot_exists(&dfs, "ckpt", 0));
    }

    #[test]
    fn restore_into_local_applies_rows_and_resets_versions() {
        let mut g = graph();
        let mut lg = LocalGraph::single_machine(&g, None);
        *lg.vertex_data_mut(2) = 42.0;
        lg.bump_vertex_version(2);
        lg.bump_edge_version(0);
        let dfs = SimDfs::new();
        dfs.write(
            &snap_file_name("ckpt", 0, MachineId(0)),
            encode_to_bytes(&SnapshotFile::capture(&lg)),
        );
        // Wreck the live state, then roll back.
        *lg.vertex_data_mut(2) = -1.0;
        let (nv, ne) = restore_into_local(&dfs, "ckpt", 0, &mut lg).unwrap();
        assert_eq!((nv, ne), (4, 3));
        assert_eq!(*lg.vertex_data(2), 42.0);
        assert_eq!(lg.vertex_version(2), 0, "versions reset to the ground state");
        assert_eq!(lg.edge_version(0), 0);
        // Missing snapshot errors cleanly.
        assert!(restore_into_local(&dfs, "ckpt", 9, &mut lg).is_err());
        let _ = g.vertex_data_mut(VertexId(0));
    }
}
