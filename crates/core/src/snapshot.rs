//! Fault tolerance through distributed checkpoints (§4.3).
//!
//! Two snapshot constructions are implemented inside the engines:
//!
//! - **Synchronous**: suspend update execution, flush all communication
//!   channels, save all owned data. The chromatic engine does this at a
//!   cycle boundary (a natural barrier); the locking engine runs a
//!   drain → counted channel flush → save → resume protocol.
//! - **Asynchronous**: the Chandy-Lamport variant expressed *as a GraphLab
//!   update function* (Alg. 5), valid under edge consistency with
//!   schedule-before-unlock and snapshot-update priority. Each vertex saves
//!   its own datum and the data of edges to not-yet-snapshotted neighbours;
//!   the `snapshotted` marker propagates with the ordinary versioned scope
//!   data synchronisation.
//!
//! # Failure model and recovery protocol
//!
//! The failure model is **crash-restart of any non-master machine**,
//! injected deterministically by the fabric's
//! [`graphlab_net::fault::FaultPlan`]: a killed machine loses all volatile
//! state (local graph data, scheduler, locks, caches, in-flight traffic),
//! the fabric drops everything on the wire to or from it, and every
//! survivor is notified with a fabric `K_DOWN` envelope. The checkpoint
//! files on the DFS are the only durable state (§4.3: "the failed machine
//! is restored from the last checkpoint").
//!
//! Recovery is a master-coordinated cluster rollback, keyed on the fabric
//! *fault era* (total kills so far):
//!
//! 1. **Drain.** On `K_DOWN` every survivor abandons its in-progress work
//!    (epochs, snapshots, lock chains), stops sending engine traffic, and
//!    reports `READY{era}` to the master. A reborn machine reports as
//!    soon as its fabric `K_UP` (which carries the current era) arrives.
//! 2. **Rollback.** With all `n` READYs of the current era, the master
//!    prunes incomplete snapshots from the DFS, picks the **latest
//!    complete checkpoint** ([`latest_complete_snapshot`]) — or aborts the
//!    run with a clean *"no complete checkpoint"* error — and broadcasts
//!    `ROLLBACK{era, snap}`.
//! 3. **Marker flush + restore.** On the rollback order each machine
//!    broadcasts the era's `FLUSH_MARK` to every peer, then consumes (and
//!    discards) incoming traffic until every peer's marker arrived. A
//!    peer's engine traffic all predates its drain point, and markers ride
//!    the same per-channel FIFO the engines already rely on — so holding
//!    all markers proves no stale pre-rollback message can ever surface
//!    (channels touching the dead machine need no flushing: the fabric
//!    drops dead incarnations' traffic and the reborn machine starts from
//!    an empty inbox). The machine then restores owned *and ghost* data
//!    from the checkpoint ([`restore_into_local`]), resets versions to
//!    zero, conservatively invalidates its `RemoteCacheTable`, rebuilds
//!    scheduler/lock/engine state (including the termination detector —
//!    the crash may have eaten the Safra token), and re-schedules all
//!    owned vertices (the conservative over-approximation of the lost
//!    scheduler state).
//! 4. **Resume.** A final `RECOVERED`/`RESUME` barrier keeps post-rollback
//!    work from racing ahead of machines still restoring; traffic that
//!    does arrive early is buffered, not dropped. Overlapping failures
//!    advance the era and restart the round from step 1.
//!
//! Rolled-back updates re-execute, so `EngineMetrics::updates` counts some
//! work twice after a failure — exactly the recomputation cost Fig. 4
//! measures. Self-stabilising programs (PageRank, ALS, LBP, anything with
//! a confluent or contracting fixpoint) reconverge to the fault-free
//! answer; the chaos suite (`tests/properties.rs::recovery`) pins that.
//!
//! This module holds what the engines share: the checkpoint file format on
//! the DFS, restoration, completeness scanning/pruning, and Young's
//! first-order optimal checkpoint interval (Eq. 3).

use bytes::{Bytes, BytesMut};
use graphlab_graph::{AtomId, DataGraph, EdgeId, MachineId, VertexId};
use graphlab_net::codec::{decode_from, encode_to_bytes, Codec};
use graphlab_atoms::SimDfs;

use crate::local::LocalGraph;

/// A checkpoint file: one per machine per snapshot.
///
/// Vertex/edge data are stored as encoded blobs so the file format is
/// independent of the user types.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SnapshotFile {
    /// Saved vertex rows `(vertex, encoded data)`.
    pub vrows: Vec<(VertexId, Bytes)>,
    /// Saved edge rows `(edge, encoded data)`.
    pub erows: Vec<(EdgeId, Bytes)>,
}

impl Codec for SnapshotFile {
    fn encode(&self, buf: &mut BytesMut) {
        (self.vrows.len() as u32).encode(buf);
        for (v, b) in &self.vrows {
            v.encode(buf);
            b.encode(buf);
        }
        (self.erows.len() as u32).encode(buf);
        for (e, b) in &self.erows {
            e.encode(buf);
            b.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let nv = u32::decode(buf)? as usize;
        let mut vrows = Vec::with_capacity(nv);
        for _ in 0..nv {
            vrows.push((VertexId::decode(buf)?, Bytes::decode(buf)?));
        }
        let ne = u32::decode(buf)? as usize;
        let mut erows = Vec::with_capacity(ne);
        for _ in 0..ne {
            erows.push((EdgeId::decode(buf)?, Bytes::decode(buf)?));
        }
        Some(SnapshotFile { vrows, erows })
    }
}

impl SnapshotFile {
    /// Captures all owned data of a local graph (synchronous snapshots save
    /// the complete owned state).
    pub fn capture<V: Codec, E: Codec>(lg: &LocalGraph<V, E>) -> SnapshotFile {
        let mut vrows = Vec::with_capacity(lg.owned_vertices().len());
        for &l in lg.owned_vertices() {
            vrows.push((lg.vertex_gvid(l), encode_to_bytes(lg.vertex_data(l))));
        }
        let mut erows = Vec::new();
        for l in 0..lg.num_local_edges() as u32 {
            if lg.owns_edge(l) {
                erows.push((lg.edge_geid(l), encode_to_bytes(lg.edge_data(l))));
            }
        }
        SnapshotFile { vrows, erows }
    }
}

/// DFS directory of snapshot `id`. Padding is cosmetic only: every
/// comparison parses ids numerically, so names written at different
/// padding widths (or past the width, e.g. id 10000 under the historical
/// 4-digit scheme) still order correctly.
fn snap_dir(prefix: &str, id: u64) -> String {
    format!("{prefix}/snap_{id:06}")
}

/// DFS file name of machine `m`'s part of snapshot `id` (whole-machine
/// checkpoint files: the single-machine/reference paths and
/// [`restore_snapshot`] tests; distributed engines write per-atom files,
/// [`atom_snap_file_name`]).
pub fn snap_file_name(prefix: &str, id: u64, machine: MachineId) -> String {
    format!("{}/machine_{:06}", snap_dir(prefix, id), machine.0)
}

/// DFS file name of `machine`'s rows for `atom` in snapshot `id` — the
/// per-atom checkpoint layout adoption restores from. Written only by the
/// atom's **owner**; these are the files completeness counting demands.
pub fn atom_snap_file_name(prefix: &str, id: u64, atom: AtomId, machine: MachineId) -> String {
    format!("{}/atom_{:06}_m{:06}", snap_dir(prefix, id), atom.0, machine.0)
}

/// DFS file name for rows of a **foreign** atom saved by `machine` — the
/// asynchronous snapshot saves ghost-edge data on whichever side reaches
/// the marker first, which may not be the owner. Ghost files are restored
/// like owner files but never count toward snapshot completeness: a
/// machine that died mid-snapshot must not have its atoms "completed" by
/// surviving neighbours' ghost rows, leaving a torn cut that passes the
/// completeness check.
fn ghost_snap_file_name(prefix: &str, id: u64, atom: AtomId, machine: MachineId) -> String {
    format!("{}/ghost_{:06}_m{:06}", snap_dir(prefix, id), atom.0, machine.0)
}

/// Whether any file of snapshot `id` exists.
pub fn snapshot_exists(dfs: &SimDfs, prefix: &str, id: u64) -> bool {
    let dir = format!("{}/", snap_dir(prefix, id));
    !dfs.list_prefix(&dir).is_empty()
}

/// Parses `"<prefix>/snap_<ID>/<part>"` into its **numeric** snapshot id,
/// whatever the padding width the name was written at.
fn parse_snap_id(prefix: &str, name: &str) -> Option<u64> {
    let rest = name.strip_prefix(prefix)?.strip_prefix("/snap_")?;
    let (id, _part) = rest.split_once('/')?;
    id.parse().ok()
}

/// The distinct *part* a snapshot file contributes: an owner-written atom
/// file (per-atom layout), a ghost contribution (foreign-atom rows — real
/// data, but `counted: false`), or a whole machine (legacy layout).
/// Kind-namespaced so atom 3 and machine 3 never collide.
struct SnapPart {
    id: u64,
    /// `(kind, index)`: `(0, machine)` legacy, `(1, atom)` owner file,
    /// `(2, atom)` ghost contribution.
    part: (u8, u64),
    /// Whether this part counts toward snapshot completeness. Ghost files
    /// don't: only the owner's write proves the atom finished its cut.
    counted: bool,
}

fn parse_snap_part(prefix: &str, name: &str) -> Option<SnapPart> {
    let rest = name.strip_prefix(prefix)?.strip_prefix("/snap_")?;
    let (id, part) = rest.split_once('/')?;
    let id: u64 = id.parse().ok()?;
    let atom_of = |s: &str| -> Option<u64> {
        let s = s.split_once("_m").map_or(s, |(a, _)| a);
        s.parse().ok()
    };
    if let Some(atom) = part.strip_prefix("atom_") {
        return Some(SnapPart { id, part: (1, atom_of(atom)?), counted: true });
    }
    if let Some(atom) = part.strip_prefix("ghost_") {
        return Some(SnapPart { id, part: (2, atom_of(atom)?), counted: false });
    }
    let machine = part.strip_prefix("machine_")?;
    Some(SnapPart { id, part: (0, machine.parse().ok()?), counted: true })
}

/// The newest snapshot id for which all `parts` distinct counted parts
/// exist — every atom written *by its owner* in the distributed per-atom
/// layout, every machine in the whole-machine layout — the only kind of
/// checkpoint recovery may restore (a partial set is a torn cut: some
/// machine died mid-write). Ghost contributions never count: they would
/// mark a dead machine's atoms complete without its data. Ids compare
/// numerically, never lexicographically.
pub fn latest_complete_snapshot(dfs: &SimDfs, prefix: &str, parts: usize) -> Option<u64> {
    let mut seen: std::collections::BTreeMap<u64, std::collections::BTreeSet<(u8, u64)>> =
        std::collections::BTreeMap::new();
    for name in dfs.list_prefix(&format!("{prefix}/snap_")) {
        if let Some(p) = parse_snap_part(prefix, &name) {
            if p.counted {
                seen.entry(p.id).or_default().insert(p.part);
            }
        }
    }
    seen.into_iter().rev().find(|(_, s)| s.len() >= parts).map(|(id, _)| id)
}

/// Deletes every snapshot file newer than `keep_through` (all files when
/// `None`). Recovery runs this before rolling back so a half-written
/// snapshot from before the failure can never be completed by post-rollback
/// writes into a mixed-era (corrupt) cut.
pub fn prune_snapshots_after(dfs: &SimDfs, prefix: &str, keep_through: Option<u64>) -> usize {
    let mut pruned = 0;
    for name in dfs.list_prefix(&format!("{prefix}/snap_")) {
        if let Some(id) = parse_snap_id(prefix, &name) {
            if keep_through.is_none_or(|k| id > k) && dfs.delete(&name) {
                pruned += 1;
            }
        }
    }
    pruned
}

/// Restores snapshot `id` into one machine's [`LocalGraph`]: reads every
/// machine's checkpoint file and applies each row that is locally present
/// (owned **or** ghost — ghosts are restored from their owner's file, so
/// the whole cluster resumes from one consistent cut), then resets all
/// data versions to zero, the post-rollback ground state every machine
/// agrees on. Returns `(vertex rows applied, edge rows applied)`.
pub fn restore_into_local<V, E>(
    dfs: &SimDfs,
    prefix: &str,
    id: u64,
    lg: &mut LocalGraph<V, E>,
) -> Result<(usize, usize), String>
where
    V: Codec,
    E: Codec,
{
    let files = dfs.list_prefix(&format!("{}/", snap_dir(prefix, id)));
    if files.is_empty() {
        return Err(format!("snapshot {id} not found under {prefix}"));
    }
    let mut nv = 0;
    let mut ne = 0;
    for name in files {
        let bytes = dfs.read(&name).map_err(|e| e.to_string())?;
        let file: SnapshotFile = decode_from(bytes).ok_or("corrupt snapshot file")?;
        let (av, ae) = apply_file(file, lg)?;
        nv += av;
        ne += ae;
    }
    lg.reset_versions();
    Ok((nv, ne))
}

/// Applies one checkpoint file's locally-present rows; returns the counts.
/// Also used by adoption to re-apply a survivor's own live rows after the
/// local graph is rebuilt under the adopted placement.
pub(crate) fn apply_file<V: Codec, E: Codec>(
    file: SnapshotFile,
    lg: &mut LocalGraph<V, E>,
) -> Result<(usize, usize), String> {
    let mut nv = 0;
    let mut ne = 0;
    for (v, blob) in file.vrows {
        if let Some(l) = lg.local_vertex(v) {
            *lg.vertex_data_mut(l) = decode_from(blob).ok_or("corrupt vertex blob")?;
            nv += 1;
        }
    }
    for (e, blob) in file.erows {
        if let Some(l) = lg.local_edge(e) {
            *lg.edge_data_mut(l) = decode_from(blob).ok_or("corrupt edge blob")?;
            ne += 1;
        }
    }
    Ok((nv, ne))
}

/// Writes one machine's checkpoint rows as **per-atom** files: `rows`
/// (typically [`SnapshotFile::capture`] of the whole machine, or the
/// asynchronous snapshot's accumulated buffer) is split by owner atom —
/// vertices by their atom, edges by their target's atom — and one file is
/// written per atom in `my_atoms` *even when empty*, so completeness
/// counting ([`latest_complete_snapshot`] with `parts = num_atoms`) can
/// demand every atom without special-casing atoms that own nothing. Rows
/// of foreign atoms (the asynchronous snapshot saves ghost-edge data on
/// whichever side snapshots first) are written as *ghost* files
/// (`ghost_snap_file_name`): restored like any other, but invisible to
/// completeness counting, so they can never mark a dead owner's atom as
/// checkpointed.
pub fn write_snapshot_atoms<V, E>(
    dfs: &SimDfs,
    prefix: &str,
    id: u64,
    rows: SnapshotFile,
    lg: &LocalGraph<V, E>,
    my_atoms: &[AtomId],
) {
    let mine: std::collections::BTreeSet<AtomId> = my_atoms.iter().copied().collect();
    let mut by_atom: std::collections::BTreeMap<AtomId, SnapshotFile> =
        my_atoms.iter().map(|&a| (a, SnapshotFile::default())).collect();
    for (v, blob) in rows.vrows {
        let atom = lg.vertex_atom(lg.local_vertex(v).expect("saved vertex is local"));
        by_atom.entry(atom).or_default().vrows.push((v, blob));
    }
    for (e, blob) in rows.erows {
        let atom = lg.edge_atom(lg.local_edge(e).expect("saved edge is local"));
        by_atom.entry(atom).or_default().erows.push((e, blob));
    }
    for (atom, file) in by_atom {
        let name = if mine.contains(&atom) {
            atom_snap_file_name(prefix, id, atom, lg.machine())
        } else {
            ghost_snap_file_name(prefix, id, atom, lg.machine())
        };
        dfs.write(&name, encode_to_bytes(&file));
    }
}

/// Adoption overlay: applies snapshot `id`'s rows of exactly the given
/// `atoms` (every contributing machine's owner *and* ghost files) into
/// `lg`. Used by a
/// survivor after it reloaded an adopted atom's journal — the checkpoint
/// rows advance the adopted vertices from their ingress-initial data to
/// the last checkpointed cut without touching any other atom's state.
/// Versions are *not* reset; adoption runs against a freshly rebuilt
/// (all-zero-version) local graph.
pub fn restore_atoms_into_local<V, E>(
    dfs: &SimDfs,
    prefix: &str,
    id: u64,
    atoms: &[AtomId],
    lg: &mut LocalGraph<V, E>,
) -> Result<(usize, usize), String>
where
    V: Codec,
    E: Codec,
{
    let wanted: std::collections::BTreeSet<u64> = atoms.iter().map(|a| a.0 as u64).collect();
    let mut nv = 0;
    let mut ne = 0;
    for name in dfs.list_prefix(&format!("{}/", snap_dir(prefix, id))) {
        match parse_snap_part(prefix, &name) {
            Some(SnapPart { part: (1 | 2, atom), .. }) if wanted.contains(&atom) => {}
            _ => continue,
        }
        let bytes = dfs.read(&name).map_err(|e| e.to_string())?;
        let file: SnapshotFile = decode_from(bytes).ok_or("corrupt snapshot file")?;
        let (av, ae) = apply_file(file, lg)?;
        nv += av;
        ne += ae;
    }
    Ok((nv, ne))
}

/// Restores snapshot `id` into `graph` (which must share the structure the
/// snapshot was taken from). Returns the number of vertex and edge records
/// applied.
///
/// Asynchronous snapshots may save an edge on both sides of a machine
/// boundary; records are applied idempotently (the values are identical by
/// the Chandy-Lamport argument).
pub fn restore_snapshot<V, E>(
    dfs: &SimDfs,
    prefix: &str,
    id: u64,
    graph: &mut DataGraph<V, E>,
) -> Result<(usize, usize), String>
where
    V: Codec,
    E: Codec,
{
    let files = dfs.list_prefix(&format!("{}/", snap_dir(prefix, id)));
    if files.is_empty() {
        return Err(format!("snapshot {id} not found under {prefix}"));
    }
    let mut nv = 0;
    let mut ne = 0;
    for name in files {
        let bytes = dfs.read(&name).map_err(|e| e.to_string())?;
        let file: SnapshotFile = decode_from(bytes).ok_or("corrupt snapshot file")?;
        for (v, blob) in file.vrows {
            let data: V = decode_from(blob).ok_or("corrupt vertex blob")?;
            *graph.vertex_data_mut(v) = data;
            nv += 1;
        }
        for (e, blob) in file.erows {
            let data: E = decode_from(blob).ok_or("corrupt edge blob")?;
            *graph.edge_data_mut(e) = data;
            ne += 1;
        }
    }
    Ok((nv, ne))
}

/// Young's first-order approximation of the optimal checkpoint interval
/// (Eq. 3): `T_interval = sqrt(2 · T_checkpoint · T_mtbf)`.
///
/// `mtbf_per_machine_secs` is the per-machine mean time between failures;
/// the cluster MTBF is `mtbf_per_machine_secs / machines`.
pub fn young_interval(checkpoint_secs: f64, mtbf_per_machine_secs: f64, machines: u32) -> f64 {
    assert!(machines >= 1);
    assert!(checkpoint_secs >= 0.0 && mtbf_per_machine_secs >= 0.0);
    let cluster_mtbf = mtbf_per_machine_secs / machines as f64;
    (2.0 * checkpoint_secs * cluster_mtbf).sqrt()
}

/// Alias of [`young_interval`] under its historical name.
pub fn optimal_checkpoint_interval_secs(
    checkpoint_secs: f64,
    mtbf_per_machine_secs: f64,
    machines: u32,
) -> f64 {
    young_interval(checkpoint_secs, mtbf_per_machine_secs, machines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_graph::GraphBuilder;

    fn graph() -> DataGraph<f64, u32> {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(i as f64)).collect();
        b.add_edge(v[0], v[1], 10).unwrap();
        b.add_edge(v[1], v[2], 11).unwrap();
        b.add_edge(v[2], v[3], 12).unwrap();
        b.build()
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let g = graph();
        let lg = LocalGraph::single_machine(&g, None);
        let f = SnapshotFile::capture(&lg);
        assert_eq!(f.vrows.len(), 4);
        assert_eq!(f.erows.len(), 3);
        let enc = encode_to_bytes(&f);
        assert_eq!(decode_from::<SnapshotFile>(enc), Some(f));
    }

    #[test]
    fn capture_restore_roundtrips_state() {
        let mut g = graph();
        // Mutate, capture, mutate again, restore: original mutation returns.
        *g.vertex_data_mut(VertexId(2)) = 99.0;
        *g.edge_data_mut(EdgeId(0)) = 77;
        let lg = LocalGraph::single_machine(&g, None);
        let dfs = SimDfs::new();
        dfs.write(
            &snap_file_name("ckpt", 0, MachineId(0)),
            encode_to_bytes(&SnapshotFile::capture(&lg)),
        );
        assert!(snapshot_exists(&dfs, "ckpt", 0));
        *g.vertex_data_mut(VertexId(2)) = -1.0;
        *g.edge_data_mut(EdgeId(0)) = 0;
        let (nv, ne) = restore_snapshot(&dfs, "ckpt", 0, &mut g).unwrap();
        assert_eq!((nv, ne), (4, 3));
        assert_eq!(*g.vertex_data(VertexId(2)), 99.0);
        assert_eq!(*g.edge_data(EdgeId(0)), 77);
    }

    #[test]
    fn missing_snapshot_errors() {
        let mut g = graph();
        let dfs = SimDfs::new();
        assert!(restore_snapshot(&dfs, "ckpt", 3, &mut g).is_err());
        assert!(!snapshot_exists(&dfs, "ckpt", 3));
    }

    #[test]
    fn youngs_interval_matches_paper_example() {
        // §4.3: 64 machines, per-machine MTBF 1 year, checkpoint 2 min
        // → interval ≈ 3 hours.
        let t = optimal_checkpoint_interval_secs(120.0, 365.25 * 24.0 * 3600.0, 64);
        let hours = t / 3600.0;
        assert!((2.5..3.5).contains(&hours), "got {hours} hours");
    }

    #[test]
    fn interval_grows_with_mtbf() {
        let a = optimal_checkpoint_interval_secs(60.0, 1e6, 8);
        let b = optimal_checkpoint_interval_secs(60.0, 4e6, 8);
        assert!((b / a - 2.0).abs() < 1e-9, "sqrt scaling");
    }

    #[test]
    fn young_interval_known_inputs() {
        // sqrt(2 * 2 s * (100 s / 1 machine)) = sqrt(400) = 20 s.
        assert!((young_interval(2.0, 100.0, 1) - 20.0).abs() < 1e-12);
        // 4 machines quarter the cluster MTBF: sqrt(2*2*25) = 10 s.
        assert!((young_interval(2.0, 100.0, 4) - 10.0).abs() < 1e-12);
        // Zero checkpoint cost => checkpoint continuously.
        assert_eq!(young_interval(0.0, 1e9, 16), 0.0);
        // The historical name is a strict alias.
        assert_eq!(young_interval(7.0, 1234.0, 3), optimal_checkpoint_interval_secs(7.0, 1234.0, 3));
    }

    #[test]
    fn young_interval_is_monotone_in_mtbf_and_checkpoint_cost() {
        let mut last = 0.0;
        for mtbf in [1e2, 1e3, 1e4, 1e5, 1e6, 1e7] {
            let t = young_interval(60.0, mtbf, 8);
            assert!(t > last, "interval must grow with MTBF ({mtbf})");
            last = t;
        }
        let mut last = 0.0;
        for ck in [1.0, 10.0, 100.0, 1000.0] {
            let t = young_interval(ck, 1e6, 8);
            assert!(t > last, "interval must grow with checkpoint cost ({ck})");
            last = t;
        }
        // ... and shrink as the cluster grows (more machines, more failures).
        assert!(young_interval(60.0, 1e6, 64) < young_interval(60.0, 1e6, 8));
    }

    #[test]
    fn latest_complete_snapshot_ignores_partial_cuts() {
        let dfs = SimDfs::new();
        let blob = || encode_to_bytes(&SnapshotFile::default());
        // Snapshot 0: complete over 3 machines.
        for m in 0..3 {
            dfs.write(&snap_file_name("ckpt", 0, MachineId(m)), blob());
        }
        // Snapshot 1: torn (machine 2 died mid-write).
        for m in 0..2 {
            dfs.write(&snap_file_name("ckpt", 1, MachineId(m)), blob());
        }
        assert_eq!(latest_complete_snapshot(&dfs, "ckpt", 3), Some(0));
        // Completing snapshot 1 moves the answer forward.
        dfs.write(&snap_file_name("ckpt", 1, MachineId(2)), blob());
        assert_eq!(latest_complete_snapshot(&dfs, "ckpt", 3), Some(1));
        // No checkpoint at all.
        assert_eq!(latest_complete_snapshot(&dfs, "none", 3), None);
        // A single-machine "cluster" accepts its own lone file.
        assert_eq!(latest_complete_snapshot(&dfs, "ckpt", 1), Some(1));
    }

    #[test]
    fn prune_deletes_only_newer_snapshots() {
        let dfs = SimDfs::new();
        let blob = || encode_to_bytes(&SnapshotFile::default());
        for id in 0..3u64 {
            for m in 0..2 {
                dfs.write(&snap_file_name("ckpt", id, MachineId(m)), blob());
            }
        }
        assert_eq!(prune_snapshots_after(&dfs, "ckpt", Some(0)), 4);
        assert!(snapshot_exists(&dfs, "ckpt", 0));
        assert!(!snapshot_exists(&dfs, "ckpt", 1));
        assert!(!snapshot_exists(&dfs, "ckpt", 2));
        assert_eq!(prune_snapshots_after(&dfs, "ckpt", None), 2);
        assert!(!snapshot_exists(&dfs, "ckpt", 0));
    }

    #[test]
    fn snapshot_ids_compare_numerically_across_padding_widths() {
        // Regression (9999 → 10000): the historical 4-digit padding emits
        // id 10000 unpadded, and lexicographically "snap_10000" sorts
        // *before* "snap_9999" — a string-ordered latest/prune would pick
        // the wrong snapshot. Hand-written mixed-width names pin that every
        // comparison is numeric, whatever width a file was written at.
        let dfs = SimDfs::new();
        let blob = || encode_to_bytes(&SnapshotFile::default());
        dfs.write("ckpt/snap_9999/machine_0000", blob());
        dfs.write("ckpt/snap_10000/machine_0000", blob());
        assert_eq!(latest_complete_snapshot(&dfs, "ckpt", 1), Some(10000));
        assert_eq!(prune_snapshots_after(&dfs, "ckpt", Some(9999)), 1);
        assert!(dfs.exists("ckpt/snap_9999/machine_0000"), "9999 kept");
        assert!(!dfs.exists("ckpt/snap_10000/machine_0000"), "10000 pruned");
    }

    #[test]
    fn snapshot_naming_survives_the_padding_boundary() {
        // Same property through the real naming fns, crossing the current
        // 6-digit width at 999999 → 1000000.
        let dfs = SimDfs::new();
        let blob = || encode_to_bytes(&SnapshotFile::default());
        for id in [999_999, 1_000_000] {
            dfs.write(&snap_file_name("ckpt", id, MachineId(0)), blob());
        }
        assert!(snapshot_exists(&dfs, "ckpt", 1_000_000));
        assert_eq!(latest_complete_snapshot(&dfs, "ckpt", 1), Some(1_000_000));
        assert_eq!(prune_snapshots_after(&dfs, "ckpt", Some(999_999)), 1);
        assert_eq!(latest_complete_snapshot(&dfs, "ckpt", 1), Some(999_999));
    }

    #[test]
    fn per_atom_completeness_counts_distinct_atoms() {
        let dfs = SimDfs::new();
        let blob = || encode_to_bytes(&SnapshotFile::default());
        // 4 atoms over 2 machines; machine ids never alias atom ids.
        for (atom, m) in [(0u32, 0u16), (1, 0), (2, 1)] {
            dfs.write(&atom_snap_file_name("ckpt", 0, AtomId(atom), MachineId(m)), blob());
        }
        assert_eq!(latest_complete_snapshot(&dfs, "ckpt", 4), None, "atom 3 missing");
        // A ghost contribution for the missing atom (async ghost-edge
        // saves from a non-owner) must NOT complete the snapshot: the
        // owner may have died mid-cut, and restoring would tear the cut.
        dfs.write(&ghost_snap_file_name("ckpt", 0, AtomId(3), MachineId(0)), blob());
        assert_eq!(latest_complete_snapshot(&dfs, "ckpt", 4), None, "ghost file spoofed an atom");
        dfs.write(&atom_snap_file_name("ckpt", 0, AtomId(3), MachineId(1)), blob());
        assert_eq!(latest_complete_snapshot(&dfs, "ckpt", 4), Some(0));
        // A snapshot covering only one atom (owner file + a duplicate
        // owner-side write) is still incomplete.
        dfs.write(&atom_snap_file_name("ckpt", 1, AtomId(3), MachineId(0)), blob());
        dfs.write(&atom_snap_file_name("ckpt", 1, AtomId(3), MachineId(1)), blob());
        assert_eq!(latest_complete_snapshot(&dfs, "ckpt", 4), Some(0), "id 1 covers one atom");
    }

    #[test]
    fn write_and_adopt_per_atom_checkpoints() {
        use graphlab_atoms::{build_atoms, load_machine_part, write_atoms, VertexPartition};

        // A 12-ring cut into 4 atoms on 2 machines.
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..12).map(|i| b.add_vertex(i as f64)).collect();
        for i in 0..12 {
            b.add_edge(vs[i], vs[(i + 1) % 12], i as u32).unwrap();
        }
        let g = b.build();
        let part = VertexPartition::random_hash(12, 4, 7);
        let dfs = SimDfs::new();
        let (atoms, index) = build_atoms(&g, &part, "ring");
        write_atoms(&dfs, "ring", &atoms, &index);
        let placement = graphlab_atoms::Placement::compute(&index, 2);

        // Both machines mutate their owned vertices, then checkpoint
        // per-atom.
        let mut lgs: Vec<LocalGraph<f64, u32>> = (0..2)
            .map(|m| {
                let init =
                    load_machine_part(&dfs, &index, &placement, MachineId(m)).unwrap();
                LocalGraph::from_init(init, None)
            })
            .collect();
        for lg in &mut lgs {
            for &l in &lg.owned_vertices().to_vec() {
                *lg.vertex_data_mut(l) += 100.0;
            }
        }
        for lg in &lgs {
            write_snapshot_atoms(
                &dfs,
                "ckpt",
                0,
                SnapshotFile::capture(lg),
                lg,
                &placement.atoms_of(lg.machine()),
            );
        }
        assert_eq!(latest_complete_snapshot(&dfs, "ckpt", 4), Some(0));

        // Machine 1 dies; machine 0 adopts its atoms: rebuild from the
        // adopted placement's journals, then overlay only the adopted
        // atoms' checkpoint rows.
        let adopted_placement = placement.adopt(&index, &[false, true]);
        let adopted_atoms = placement.atoms_of(MachineId(1));
        let init = load_machine_part(&dfs, &index, &adopted_placement, MachineId(0)).unwrap();
        let mut lg: LocalGraph<f64, u32> = LocalGraph::from_init(init, None);
        // Survivor re-applies its own live state (untouched by adoption).
        for &l in &lg.owned_vertices().to_vec() {
            if placement.machine_of(lg.vertex_atom(l)) == MachineId(0) {
                *lg.vertex_data_mut(l) += 100.0;
            }
        }
        let (nv, _) = restore_atoms_into_local(&dfs, "ckpt", 0, &adopted_atoms, &mut lg).unwrap();
        assert!(nv > 0, "adopted atoms had checkpoint rows");
        // Every vertex now carries the checkpointed value, whichever side
        // it was adopted from.
        for &l in lg.owned_vertices() {
            let want = lg.vertex_gvid(l).0 as f64 + 100.0;
            assert_eq!(*lg.vertex_data(l), want, "vertex {}", lg.vertex_gvid(l));
        }
    }

    #[test]
    fn restore_into_local_applies_rows_and_resets_versions() {
        let mut g = graph();
        let mut lg = LocalGraph::single_machine(&g, None);
        *lg.vertex_data_mut(2) = 42.0;
        lg.bump_vertex_version(2);
        lg.bump_edge_version(0);
        let dfs = SimDfs::new();
        dfs.write(
            &snap_file_name("ckpt", 0, MachineId(0)),
            encode_to_bytes(&SnapshotFile::capture(&lg)),
        );
        // Wreck the live state, then roll back.
        *lg.vertex_data_mut(2) = -1.0;
        let (nv, ne) = restore_into_local(&dfs, "ckpt", 0, &mut lg).unwrap();
        assert_eq!((nv, ne), (4, 3));
        assert_eq!(*lg.vertex_data(2), 42.0);
        assert_eq!(lg.vertex_version(2), 0, "versions reset to the ground state");
        assert_eq!(lg.edge_version(0), 0);
        // Missing snapshot errors cleanly.
        assert!(restore_into_local(&dfs, "ckpt", 9, &mut lg).is_err());
        let _ = g.vertex_data_mut(VertexId(0));
    }
}
