//! Fault tolerance through distributed checkpoints (§4.3).
//!
//! Two snapshot constructions are implemented inside the engines:
//!
//! - **Synchronous**: suspend update execution, flush all communication
//!   channels, save all owned data. The chromatic engine does this at a
//!   cycle boundary (a natural barrier); the locking engine runs a
//!   drain → counted channel flush → save → resume protocol.
//! - **Asynchronous**: the Chandy-Lamport variant expressed *as a GraphLab
//!   update function* (Alg. 5), valid under edge consistency with
//!   schedule-before-unlock and snapshot-update priority. Each vertex saves
//!   its own datum and the data of edges to not-yet-snapshotted neighbours;
//!   the `snapshotted` marker propagates with the ordinary versioned scope
//!   data synchronisation.
//!
//! This module holds what both share: the checkpoint file format on the
//! DFS, restoration, and Young's first-order optimal checkpoint interval
//! (Eq. 3).

use bytes::{Bytes, BytesMut};
use graphlab_graph::{DataGraph, EdgeId, MachineId, VertexId};
use graphlab_net::codec::{decode_from, encode_to_bytes, Codec};
use graphlab_atoms::SimDfs;

use crate::local::LocalGraph;

/// A checkpoint file: one per machine per snapshot.
///
/// Vertex/edge data are stored as encoded blobs so the file format is
/// independent of the user types.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SnapshotFile {
    /// Saved vertex rows `(vertex, encoded data)`.
    pub vrows: Vec<(VertexId, Bytes)>,
    /// Saved edge rows `(edge, encoded data)`.
    pub erows: Vec<(EdgeId, Bytes)>,
}

impl Codec for SnapshotFile {
    fn encode(&self, buf: &mut BytesMut) {
        (self.vrows.len() as u32).encode(buf);
        for (v, b) in &self.vrows {
            v.encode(buf);
            b.encode(buf);
        }
        (self.erows.len() as u32).encode(buf);
        for (e, b) in &self.erows {
            e.encode(buf);
            b.encode(buf);
        }
    }
    fn decode(buf: &mut Bytes) -> Option<Self> {
        let nv = u32::decode(buf)? as usize;
        let mut vrows = Vec::with_capacity(nv);
        for _ in 0..nv {
            vrows.push((VertexId::decode(buf)?, Bytes::decode(buf)?));
        }
        let ne = u32::decode(buf)? as usize;
        let mut erows = Vec::with_capacity(ne);
        for _ in 0..ne {
            erows.push((EdgeId::decode(buf)?, Bytes::decode(buf)?));
        }
        Some(SnapshotFile { vrows, erows })
    }
}

impl SnapshotFile {
    /// Captures all owned data of a local graph (synchronous snapshots save
    /// the complete owned state).
    pub fn capture<V: Codec, E: Codec>(lg: &LocalGraph<V, E>) -> SnapshotFile {
        let mut vrows = Vec::with_capacity(lg.owned_vertices().len());
        for &l in lg.owned_vertices() {
            vrows.push((lg.vertex_gvid(l), encode_to_bytes(lg.vertex_data(l))));
        }
        let mut erows = Vec::new();
        for l in 0..lg.num_local_edges() as u32 {
            if lg.owns_edge(l) {
                erows.push((lg.edge_geid(l), encode_to_bytes(lg.edge_data(l))));
            }
        }
        SnapshotFile { vrows, erows }
    }
}

/// DFS file name of machine `m`'s part of snapshot `id`.
pub fn snap_file_name(prefix: &str, id: u64, machine: MachineId) -> String {
    format!("{prefix}/snap_{id:04}/machine_{:04}", machine.0)
}

/// Lists the machines that contributed to snapshot `id`.
pub fn snapshot_exists(dfs: &SimDfs, prefix: &str, id: u64) -> bool {
    !dfs.list_prefix(&format!("{prefix}/snap_{id:04}/")).is_empty()
}

/// Restores snapshot `id` into `graph` (which must share the structure the
/// snapshot was taken from). Returns the number of vertex and edge records
/// applied.
///
/// Asynchronous snapshots may save an edge on both sides of a machine
/// boundary; records are applied idempotently (the values are identical by
/// the Chandy-Lamport argument).
pub fn restore_snapshot<V, E>(
    dfs: &SimDfs,
    prefix: &str,
    id: u64,
    graph: &mut DataGraph<V, E>,
) -> Result<(usize, usize), String>
where
    V: Codec,
    E: Codec,
{
    let files = dfs.list_prefix(&format!("{prefix}/snap_{id:04}/"));
    if files.is_empty() {
        return Err(format!("snapshot {id} not found under {prefix}"));
    }
    let mut nv = 0;
    let mut ne = 0;
    for name in files {
        let bytes = dfs.read(&name).map_err(|e| e.to_string())?;
        let file: SnapshotFile = decode_from(bytes).ok_or("corrupt snapshot file")?;
        for (v, blob) in file.vrows {
            let data: V = decode_from(blob).ok_or("corrupt vertex blob")?;
            *graph.vertex_data_mut(v) = data;
            nv += 1;
        }
        for (e, blob) in file.erows {
            let data: E = decode_from(blob).ok_or("corrupt edge blob")?;
            *graph.edge_data_mut(e) = data;
            ne += 1;
        }
    }
    Ok((nv, ne))
}

/// Young's first-order approximation of the optimal checkpoint interval
/// (Eq. 3): `T_interval = sqrt(2 · T_checkpoint · T_mtbf)`.
///
/// `mtbf_per_machine` is the per-machine mean time between failures; the
/// cluster MTBF is `mtbf_per_machine / machines`.
pub fn optimal_checkpoint_interval_secs(
    checkpoint_secs: f64,
    mtbf_per_machine_secs: f64,
    machines: u32,
) -> f64 {
    assert!(machines >= 1);
    let cluster_mtbf = mtbf_per_machine_secs / machines as f64;
    (2.0 * checkpoint_secs * cluster_mtbf).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_graph::GraphBuilder;

    fn graph() -> DataGraph<f64, u32> {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..4).map(|i| b.add_vertex(i as f64)).collect();
        b.add_edge(v[0], v[1], 10).unwrap();
        b.add_edge(v[1], v[2], 11).unwrap();
        b.add_edge(v[2], v[3], 12).unwrap();
        b.build()
    }

    #[test]
    fn snapshot_file_roundtrip() {
        let g = graph();
        let lg = LocalGraph::single_machine(&g, None);
        let f = SnapshotFile::capture(&lg);
        assert_eq!(f.vrows.len(), 4);
        assert_eq!(f.erows.len(), 3);
        let enc = encode_to_bytes(&f);
        assert_eq!(decode_from::<SnapshotFile>(enc), Some(f));
    }

    #[test]
    fn capture_restore_roundtrips_state() {
        let mut g = graph();
        // Mutate, capture, mutate again, restore: original mutation returns.
        *g.vertex_data_mut(VertexId(2)) = 99.0;
        *g.edge_data_mut(EdgeId(0)) = 77;
        let lg = LocalGraph::single_machine(&g, None);
        let dfs = SimDfs::new();
        dfs.write(
            &snap_file_name("ckpt", 0, MachineId(0)),
            encode_to_bytes(&SnapshotFile::capture(&lg)),
        );
        assert!(snapshot_exists(&dfs, "ckpt", 0));
        *g.vertex_data_mut(VertexId(2)) = -1.0;
        *g.edge_data_mut(EdgeId(0)) = 0;
        let (nv, ne) = restore_snapshot(&dfs, "ckpt", 0, &mut g).unwrap();
        assert_eq!((nv, ne), (4, 3));
        assert_eq!(*g.vertex_data(VertexId(2)), 99.0);
        assert_eq!(*g.edge_data(EdgeId(0)), 77);
    }

    #[test]
    fn missing_snapshot_errors() {
        let mut g = graph();
        let dfs = SimDfs::new();
        assert!(restore_snapshot(&dfs, "ckpt", 3, &mut g).is_err());
        assert!(!snapshot_exists(&dfs, "ckpt", 3));
    }

    #[test]
    fn youngs_interval_matches_paper_example() {
        // §4.3: 64 machines, per-machine MTBF 1 year, checkpoint 2 min
        // → interval ≈ 3 hours.
        let t = optimal_checkpoint_interval_secs(120.0, 365.25 * 24.0 * 3600.0, 64);
        let hours = t / 3600.0;
        assert!((2.5..3.5).contains(&hours), "got {hours} hours");
    }

    #[test]
    fn interval_grows_with_mtbf() {
        let a = optimal_checkpoint_interval_secs(60.0, 1e6, 8);
        let b = optimal_checkpoint_interval_secs(60.0, 4e6, 8);
        assert!((b / a - 2.0).abs() < 1e-9, "sqrt scaling");
    }
}
