//! Per-machine vertex schedulers maintaining the task set `T` (§3.3).
//!
//! "The only requirement imposed by the GraphLab abstraction is that all
//! vertices in T are eventually executed"; duplicates are ignored. This
//! paper relaxes the original shared-memory ordering guarantees to enable
//! efficient distributed FIFO and priority scheduling, which is exactly
//! what we provide:
//!
//! - [`SchedulerKind::Fifo`] — queue order.
//! - [`SchedulerKind::Priority`] — *approximate* priority: 64 power-of-two
//!   buckets popped hottest-first (the C++ implementation's approximate
//!   priority queue; §5.2 uses it for residual BP). Re-scheduling an
//!   enqueued vertex with a higher priority promotes it.
//! - [`SchedulerKind::Sweep`] — cyclic scan over local vertices, a cheap
//!   static order used by sweep-style experiments.
//!
//! The priority queue is a **lazy-delete bucket queue**: promotion pushes
//! a second entry into the hotter bucket and the stale one is skipped at
//! pop time, and a 64-bit occupancy mask over the buckets makes finding
//! the hottest non-empty bucket one `leading_zeros` instead of a scan —
//! the pop hot path is O(1) + amortised stale-skips, where the previous
//! implementation walked all 64 buckets top-down on every pop (the
//! scheduler churn visible in high-fan-in profiles; see ROADMAP).
//!
//! Vertices are tracked by *local* index; the engine translates remote
//! schedule requests before insertion.

use std::collections::VecDeque;

/// Scheduler flavour.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// First-in first-out.
    #[default]
    Fifo,
    /// Approximate priority (bucketed, highest first).
    Priority,
    /// Cyclic sweep over local vertices.
    Sweep,
}

const NUM_BUCKETS: usize = 64;
/// Bucket for a priority: log2-spaced, clamped. Higher bucket = hotter.
#[inline]
fn bucket_of(priority: f64) -> u8 {
    if priority.is_nan() || priority <= 0.0 {
        return 0;
    }
    if priority.is_infinite() {
        return (NUM_BUCKETS - 1) as u8;
    }
    // log2(priority) in [-32, 31] -> bucket [0, 63]
    let l = priority.log2().floor();
    (l.clamp(-32.0, 31.0) as i32 + 32) as u8
}

/// A per-machine scheduler over `n` local vertices.
#[derive(Debug)]
pub struct Scheduler {
    kind: SchedulerKind,
    /// Dedup flag: vertex currently scheduled.
    queued: Vec<bool>,
    /// Current bucket of a queued vertex (priority only; detects stale
    /// bucket entries after promotion).
    bucket: Vec<u8>,
    fifo: VecDeque<u32>,
    buckets: Vec<VecDeque<u32>>,
    /// Occupancy mask: bit `b` set ⇔ `buckets[b]` is non-empty (stale
    /// entries count — they are discovered and discarded at pop time).
    occupied: u64,
    /// Sweep state.
    sweep_pos: usize,
    len: usize,
}

impl Scheduler {
    /// Creates a scheduler for `n` local vertices.
    pub fn new(kind: SchedulerKind, n: usize) -> Self {
        Scheduler {
            kind,
            queued: vec![false; n],
            bucket: vec![0; n],
            fifo: VecDeque::new(),
            buckets: match kind {
                SchedulerKind::Priority => (0..NUM_BUCKETS).map(|_| VecDeque::new()).collect(),
                _ => Vec::new(),
            },
            occupied: 0,
            sweep_pos: 0,
            len: 0,
        }
    }

    /// Scheduler flavour.
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Number of distinct scheduled vertices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the task set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds local vertex `v` with `priority`. Duplicates are ignored
    /// (priority scheduler: promoted if the new priority is hotter).
    /// Returns true if the vertex was newly inserted.
    pub fn add(&mut self, v: u32, priority: f64) -> bool {
        let vi = v as usize;
        if self.queued[vi] {
            if self.kind == SchedulerKind::Priority {
                let b = bucket_of(priority);
                if b > self.bucket[vi] {
                    // Promote: push into the hotter bucket; the stale entry
                    // is skipped at pop time via the bucket check.
                    self.bucket[vi] = b;
                    self.buckets[b as usize].push_back(v);
                    self.occupied |= 1 << b;
                }
            }
            return false;
        }
        self.queued[vi] = true;
        self.len += 1;
        match self.kind {
            SchedulerKind::Fifo => self.fifo.push_back(v),
            SchedulerKind::Priority => {
                let b = bucket_of(priority);
                self.bucket[vi] = b;
                self.buckets[b as usize].push_back(v);
                self.occupied |= 1 << b;
            }
            SchedulerKind::Sweep => {}
        }
        true
    }

    /// Removes and returns the next vertex, or `None` when empty.
    pub fn pop(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        match self.kind {
            SchedulerKind::Fifo => {
                let v = self.fifo.pop_front().expect("len > 0");
                self.queued[v as usize] = false;
                self.len -= 1;
                Some(v)
            }
            SchedulerKind::Priority => {
                // Hottest occupied bucket in O(1) via the occupancy mask;
                // stale (promoted/popped) entries are lazily discarded.
                while self.occupied != 0 {
                    let b = 63 - self.occupied.leading_zeros() as usize;
                    while let Some(v) = self.buckets[b].pop_front() {
                        let vi = v as usize;
                        if self.buckets[b].is_empty() {
                            self.occupied &= !(1 << b);
                        }
                        if self.queued[vi] && self.bucket[vi] == b as u8 {
                            self.queued[vi] = false;
                            self.len -= 1;
                            return Some(v);
                        }
                        // stale entry (promoted or already popped): skip
                    }
                    self.occupied &= !(1 << b);
                }
                unreachable!("len > 0 but no live entry found");
            }
            SchedulerKind::Sweep => {
                let n = self.queued.len();
                for _ in 0..n {
                    let v = self.sweep_pos;
                    self.sweep_pos = (self.sweep_pos + 1) % n;
                    if self.queued[v] {
                        self.queued[v] = false;
                        self.len -= 1;
                        return Some(v as u32);
                    }
                }
                unreachable!("len > 0 but sweep found nothing");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_dedup() {
        let mut s = Scheduler::new(SchedulerKind::Fifo, 5);
        assert!(s.add(3, 1.0));
        assert!(s.add(1, 1.0));
        assert!(!s.add(3, 9.0), "duplicate ignored");
        assert_eq!(s.len(), 2);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn reinsert_after_pop_allowed() {
        let mut s = Scheduler::new(SchedulerKind::Fifo, 2);
        s.add(0, 1.0);
        assert_eq!(s.pop(), Some(0));
        assert!(s.add(0, 1.0));
        assert_eq!(s.pop(), Some(0));
    }

    #[test]
    fn priority_pops_hottest_first() {
        let mut s = Scheduler::new(SchedulerKind::Priority, 10);
        s.add(1, 0.001);
        s.add(2, 100.0);
        s.add(3, 1.0);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(1));
    }

    #[test]
    fn priority_promotion() {
        let mut s = Scheduler::new(SchedulerKind::Priority, 10);
        s.add(1, 0.001);
        s.add(2, 1.0);
        // Promote 1 above 2.
        assert!(!s.add(1, 1000.0));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), None);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn priority_demotion_is_ignored() {
        let mut s = Scheduler::new(SchedulerKind::Priority, 4);
        s.add(0, 100.0);
        s.add(1, 50.0);
        s.add(0, 0.0001); // lower: ignored
        assert_eq!(s.pop(), Some(0));
        assert_eq!(s.pop(), Some(1));
    }

    #[test]
    fn sweep_cycles_in_index_order() {
        let mut s = Scheduler::new(SchedulerKind::Sweep, 6);
        s.add(4, 1.0);
        s.add(1, 1.0);
        s.add(5, 1.0);
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), Some(4));
        s.add(0, 1.0);
        assert_eq!(s.pop(), Some(5));
        // wrapped around
        assert_eq!(s.pop(), Some(0));
        assert!(s.is_empty());
    }

    #[test]
    fn bucket_function_monotone() {
        assert!(bucket_of(2.0) > bucket_of(1.0));
        assert!(bucket_of(1.0) > bucket_of(0.25));
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
        assert_eq!(bucket_of(f64::INFINITY), 63);
        assert_eq!(bucket_of(1e300), 63);
        assert_eq!(bucket_of(1e-300), 0);
    }

    #[test]
    fn zero_priority_still_schedulable() {
        let mut s = Scheduler::new(SchedulerKind::Priority, 2);
        s.add(0, 0.0);
        assert_eq!(s.pop(), Some(0));
    }

    // ---- contract pins (ISSUE 3 satellite): the exact add/pop semantics a
    // pairing-heap / lazy-delete replacement must preserve ----

    #[test]
    fn fifo_duplicate_add_keeps_original_position() {
        let mut s = Scheduler::new(SchedulerKind::Fifo, 4);
        s.add(0, 1.0);
        s.add(1, 1.0);
        assert!(!s.add(0, 1.0), "re-add of a queued vertex is a no-op");
        assert_eq!(s.len(), 2);
        // Vertex 0 pops first: the duplicate did not move it to the back.
        assert_eq!(s.pop(), Some(0));
        assert_eq!(s.pop(), Some(1));
    }

    #[test]
    fn priority_same_bucket_is_fifo() {
        let mut s = Scheduler::new(SchedulerKind::Priority, 8);
        // 1.0 and 1.5 land in the same power-of-two bucket: insertion order
        // breaks the tie.
        s.add(3, 1.0);
        s.add(5, 1.5);
        s.add(1, 1.2);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(5));
        assert_eq!(s.pop(), Some(1));
    }

    #[test]
    fn priority_same_bucket_readd_does_not_promote() {
        let mut s = Scheduler::new(SchedulerKind::Priority, 4);
        s.add(0, 1.0);
        s.add(1, 1.0);
        // 1.9 is hotter than 1.0 but stays in the same log2 bucket: the
        // approximate priority queue must not reorder.
        assert!(!s.add(1, 1.9));
        assert_eq!(s.pop(), Some(0));
        assert_eq!(s.pop(), Some(1));
    }

    #[test]
    fn priority_promotion_leaves_no_ghost_entry() {
        let mut s = Scheduler::new(SchedulerKind::Priority, 4);
        s.add(0, 1.0);
        assert!(!s.add(0, 1000.0), "promotion is not an insertion");
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop(), Some(0));
        // The stale low-bucket entry must not resurface as a second pop.
        assert_eq!(s.pop(), None);
        assert_eq!(s.len(), 0);
        // Re-adding afterwards works and pops exactly once again.
        assert!(s.add(0, 2.0));
        assert_eq!(s.pop(), Some(0));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn pop_then_readd_cycles_indefinitely() {
        for kind in [SchedulerKind::Fifo, SchedulerKind::Priority, SchedulerKind::Sweep] {
            let mut s = Scheduler::new(kind, 3);
            for round in 0..5 {
                assert!(s.add(2, 1.0), "round {round}: fresh insert after pop ({kind:?})");
                assert_eq!(s.len(), 1);
                assert_eq!(s.pop(), Some(2));
                assert!(s.is_empty());
            }
        }
    }

    #[test]
    fn interleaved_model_check_all_kinds() {
        // Model: a scheduler is exactly a set with kind-specific pop order;
        // add returns whether the vertex was newly inserted. Drive every
        // kind through a deterministic interleaving of adds and pops and
        // check set semantics (dedup, len, total pops) against the model.
        for kind in [SchedulerKind::Fifo, SchedulerKind::Priority, SchedulerKind::Sweep] {
            let n = 16u32;
            let mut s = Scheduler::new(kind, n as usize);
            let mut queued = vec![false; n as usize];
            let mut popped = 0usize;
            let mut x = 0x5EEDu64;
            for step in 0..500 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if !x.is_multiple_of(3) {
                    let v = (x >> 8) as u32 % n;
                    let prio = ((x >> 16) % 1000) as f64 / 10.0;
                    let fresh = s.add(v, prio);
                    assert_eq!(fresh, !queued[v as usize], "step {step} ({kind:?})");
                    queued[v as usize] = true;
                } else if let Some(v) = s.pop() {
                    assert!(queued[v as usize], "popped unqueued vertex ({kind:?})");
                    queued[v as usize] = false;
                    popped += 1;
                }
                assert_eq!(s.len(), queued.iter().filter(|&&q| q).count(), "({kind:?})");
                assert_eq!(s.is_empty(), queued.iter().all(|&q| !q));
            }
            // Drain: every queued vertex pops exactly once.
            while let Some(v) = s.pop() {
                assert!(queued[v as usize]);
                queued[v as usize] = false;
                popped += 1;
            }
            assert!(queued.iter().all(|&q| !q), "({kind:?})");
            assert!(popped > 0);
        }
    }

    #[test]
    fn occupancy_mask_tracks_buckets() {
        let mut s = Scheduler::new(SchedulerKind::Priority, 8);
        assert_eq!(s.occupied, 0);
        s.add(0, 1.0); // bucket 32
        s.add(1, 4.0); // bucket 34
        assert_eq!(s.occupied, (1 << 32) | (1 << 34));
        // Promotion leaves a stale entry in bucket 32 and sets bucket 40.
        s.add(0, 256.0);
        assert_eq!(s.occupied, (1 << 32) | (1 << 34) | (1 << 40));
        assert_eq!(s.pop(), Some(0));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
        // Lazy delete: vertex 0's stale bucket-32 entry may outlive the
        // drain (len hit 0 before it was visited) — it must be skipped,
        // not resurfaced, once live work arrives below it.
        s.add(2, 0.25); // bucket 30, colder than the stale entry
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), None);
        assert_eq!(s.occupied & !(1 << 32), 0, "only the stale bucket may stay flagged");
    }

    #[test]
    fn stress_priority_consistency() {
        let mut s = Scheduler::new(SchedulerKind::Priority, 100);
        let mut expected = 0usize;
        for i in 0..100u32 {
            if s.add(i % 50, (i % 7) as f64 + 0.5) {
                expected += 1;
            }
        }
        let mut popped = 0;
        while s.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, expected);
        assert_eq!(s.len(), 0);
    }
}
