//! The chromatic engine (§4.2.1).
//!
//! Given a proper vertex colouring, executing all scheduled vertices of one
//! colour — a *colour-step* — satisfies the edge consistency model, because
//! no two adjacent vertices share a colour (full consistency uses a
//! second-order colouring, vertex consistency a single colour). Changes to
//! ghost data are communicated **asynchronously while the colour-step
//! runs**, and a full communication barrier separates colour-steps.
//!
//! The barrier is realised as a two-round counting flush: after executing
//! its part of the step, every machine tells every other machine how many
//! data messages it sent them (round A); write-backs processed during
//! round A may trigger forwards to other mirrors, which are accounted in
//! round B. A machine enters the next colour-step only after receiving
//! every promised message, so all modifications are visible before the
//! next colour begins.
//!
//! Between colour *cycles* (one pass over all colours) the machines run the
//! sync operations and the master decides halting ("the entire cycle
//! executed zero updates and all schedulers are empty") and snapshot
//! triggers.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::{Duration, Instant};

use bytes::Bytes;
use graphlab_atoms::{load_machine_part, LocalGraphInit};
use graphlab_graph::{MachineId, VertexId};
use graphlab_net::codec::{decode_from, encode_to_bytes, Codec};
use graphlab_net::fault::{DownMsg, UpMsg};
use graphlab_net::{Batcher, Endpoint, Envelope, LeaseConfig, RecvError};

use crate::config::RecoveryMode;
use crate::driver::{MachineResult, MachineSetup};
use crate::globals::GlobalRegistry;
use crate::local::{LocalGraph, RemoteCacheTable};
use crate::messages::*;
use crate::recovery::{
    pick_adoption, pick_rollback, unrecoverable_down, RecoveryTracker, RECOVERY_DEADLINE,
};
use crate::reference::InitialSchedule;
use crate::snapshot::{
    apply_file, restore_atoms_into_local, restore_into_local, write_snapshot_atoms, SnapshotFile,
};
use crate::update::{UpdateContext, UpdateEffects, UpdateFunction};

const RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// Receive deadline inside the recovery sub-loops (progress is re-checked
/// between receives; the overall round is bounded by `RECOVERY_DEADLINE`).
const RECOVERY_POLL: Duration = Duration::from_millis(25);

/// Why the BSP cycle machinery unwound to the top-level run loop.
enum Interrupt {
    /// A peer died — run the drain/rollback/resume recovery round.
    Recover,
    /// This machine was killed — wipe volatile state and wait for rebirth.
    Die,
    /// This machine is permanently dead under [`RecoveryMode::Adopt`]:
    /// exit cleanly (no failure) while the survivors adopt its atoms.
    Exit,
    /// Unrecoverable: fail the run cleanly with this reason.
    Abort(String),
}

/// The master's recovery order for one fault era: roll everyone back to a
/// checkpoint, or have the survivors adopt the dead machines' atoms.
enum RecoveryOrder {
    Rollback(RollbackMsg),
    Adopt(AdoptPlanMsg),
}

fn enc<T: Codec>(v: &T) -> Bytes {
    encode_to_bytes(v)
}

fn dec<T: Codec>(b: Bytes) -> T {
    decode_from(b).expect("malformed engine message")
}

pub(crate) struct ChromaticMachine<V, E, U: ?Sized> {
    lg: LocalGraph<V, E>,
    net: Batcher,
    setup: MachineSetup<V, E, U>,
    globals: GlobalRegistry,
    num_colors: u32,
    /// Owner-side ghost version table over the exchange path.
    ///
    /// The chromatic exchange is *push-based*: every ghost push follows a
    /// strictly newer version bump, so — unlike the locking engine's
    /// pull-based scope sync — direct pushes are already version-minimal
    /// by construction and carry no guard here. The table earns its keep
    /// on the **write-back fan-out**: a write-back source is noted at the
    /// bumped version, and forwards go only to mirrors whose known version
    /// is older, which is the version-aware generalisation of "do not
    /// bounce the data back to its writer".
    cache: RemoteCacheTable,

    // Task queues, one per colour; `queued` dedups.
    queues: Vec<VecDeque<u32>>,
    queued: Vec<bool>,
    pending_total: u64,

    // Step / flush accounting.
    step: u64,
    /// Received data-message counts bucketed by (src, step, phase).
    recv_buckets: HashMap<(u16, u64, u8), u64>,
    /// Flush promises bucketed by (src, step, phase).
    flush_promises: HashMap<(u16, u64, u8), FlushMsg>,
    /// Sync partials that raced ahead of the master's own cycle end: a
    /// fast peer can finish the cycle's last flush round and send its
    /// partial while we are still collecting flushes from a slower peer.
    /// `handle_msg` stashes them here; `cycle_end_round` drains first.
    sync_stash: VecDeque<Envelope>,
    /// Forward sends per destination accumulated during the current phase-A
    /// wait (write-back propagation).
    fwd_counts: Vec<u64>,

    // Bookkeeping.
    updates_local: u64,
    cycle_updates: u64,
    update_counts: Vec<(VertexId, u64)>,
    // BTreeMap: drained into the run's trace output at finish — iteration
    // order must be deterministic, not the hasher's.
    update_count_map: BTreeMap<VertexId, u64>,
    snapshots_taken: u64,
    last_snap_updates: u64,
    straggled: bool,
    effects: UpdateEffects,

    // Failure recovery (§4.3; protocol in `crate::snapshot` docs).
    rec: RecoveryTracker,
    /// Colour-steps executed across the whole run (unlike `step`, never
    /// reset by a rollback — the metrics source).
    steps_total: u64,
    failure: Option<String>,
    /// Permanently dead under adoption: the run ends cleanly with no
    /// owned data (the survivors adopted it).
    dead: bool,
}

impl<V, E, U> ChromaticMachine<V, E, U>
where
    V: Codec + Clone + Send + Sync + 'static,
    E: Codec + Clone + Send + Sync + 'static,
    U: UpdateFunction<V, E> + ?Sized,
{
    pub(crate) fn new(
        ep: Endpoint,
        setup: MachineSetup<V, E, U>,
        init: LocalGraphInit<V, E>,
    ) -> Self {
        let lg = LocalGraph::from_init(init, Some(&setup.coloring));
        let num_colors = setup.coloring.num_colors().max(1);
        let nv = lg.num_local_vertices();
        let m = lg.num_machines();
        let machine = lg.machine();
        let mut net = Batcher::new(ep, setup.config.batch);
        if let Some(period) = setup.config.lease {
            net.enable_lease(LeaseConfig::with_period(period));
        }
        ChromaticMachine {
            // Edge slots unused: edges have exactly two replicas, so an
            // edge write-back never fans out.
            cache: RemoteCacheTable::new(m, nv, 0),
            queues: (0..num_colors).map(|_| VecDeque::new()).collect(),
            queued: vec![false; nv],
            pending_total: 0,
            step: 0,
            recv_buckets: HashMap::new(),
            flush_promises: HashMap::new(),
            sync_stash: VecDeque::new(),
            fwd_counts: vec![0; m],
            updates_local: 0,
            cycle_updates: 0,
            update_counts: Vec::new(),
            update_count_map: BTreeMap::new(),
            snapshots_taken: 0,
            last_snap_updates: 0,
            straggled: false,
            effects: UpdateEffects::default(),
            rec: RecoveryTracker::new(machine.index(), m),
            steps_total: 0,
            failure: None,
            dead: false,
            globals: GlobalRegistry::new(),
            num_colors,
            lg,
            net,
            setup,
        }
    }

    fn me(&self) -> MachineId {
        self.lg.machine()
    }

    fn num_machines(&self) -> usize {
        self.lg.num_machines()
    }

    fn enqueue_local(&mut self, l: u32) {
        if !self.queued[l as usize] {
            self.queued[l as usize] = true;
            let c = self.lg.vertex_color(l) as usize;
            self.queues[c].push_back(l);
            self.pending_total += 1;
        }
    }

    fn initial_schedule(&mut self) {
        match &*self.setup.initial {
            InitialSchedule::AllVertices => {
                for i in 0..self.lg.owned_vertices().len() {
                    let l = self.lg.owned_vertices()[i];
                    self.enqueue_local(l);
                }
            }
            InitialSchedule::Vertices(vs) => {
                let initial = vs.clone();
                for (v, _) in initial {
                    if let Some(l) = self.lg.local_vertex(v) {
                        if self.lg.owns_vertex(l) {
                            self.enqueue_local(l);
                        }
                    }
                }
            }
        }
    }

    pub(crate) fn run(mut self) -> MachineResult<V, E> {
        self.initial_schedule();
        loop {
            match self.run_cycles() {
                Ok(()) => break,
                Err(int) => match self.handle_interrupt(int) {
                    // Recovered: the BSP machinery restarts at cycle 0.
                    Ok(true) => {}
                    // Permanently dead under adoption: clean exit.
                    Ok(false) => break,
                    Err(reason) => {
                        self.failure = Some(reason);
                        break;
                    }
                },
            }
        }
        // The master's final globals/halt broadcast may still sit in the
        // batch queues; peers are blocked waiting for it.
        self.net.flush_all();
        self.finish()
    }

    /// The BSP cycle machinery. Returns `Ok(())` on a normal halt and
    /// unwinds with an [`Interrupt`] when a failure (ours or a peer's)
    /// preempts it.
    fn run_cycles(&mut self) -> Result<(), Interrupt> {
        let mut cycle = 0u64;
        loop {
            self.cycle_updates = 0;
            for color in 0..self.num_colors {
                let direct = self.execute_color_step(color);
                self.flush_round(0, direct)?;
                let zeros = vec![0; self.num_machines()];
                let fwd = std::mem::replace(&mut self.fwd_counts, zeros);
                self.flush_round(1, fwd)?;
                self.step += 1;
                self.steps_total += 1;
                self.maybe_straggle();
            }
            let (halt, snapshot) = self.cycle_end_round(cycle)?;
            if let Some(snap) = snapshot {
                self.write_snapshot(snap)?;
            }
            if halt {
                return Ok(());
            }
            cycle += 1;
        }
    }

    /// Single send point for all engine traffic. Recovery correctness
    /// depends on a machine sending **no** engine message between its
    /// drain point and the cluster-wide resume — keeping every send here
    /// (and recovery control clearly separated) makes that auditable.
    fn send_msg(&mut self, dst: MachineId, kind: u16, payload: Bytes) {
        self.net.send(dst, kind, payload);
    }

    /// Receives one engine envelope, intercepting the fault/recovery
    /// control plane: a fresh `K_DOWN` (or `K_UP` on a machine that slept
    /// through its own dead window) unwinds into recovery, `MachineDown`
    /// unwinds into the dead wait, a timeout is a stall (clean failure,
    /// never a hang).
    fn recv_env(&mut self, timeout: Duration) -> Result<Envelope, Interrupt> {
        loop {
            match self.net.recv_timeout(timeout) {
                Ok(env) => match env.kind {
                    graphlab_net::K_DOWN => {
                        let d: DownMsg = dec(env.payload);
                        if d.machine == self.me().0 {
                            // The fabric's wakeup for a victim blocked in
                            // recv when the kill fired: we are the dead one.
                            return Err(Interrupt::Die);
                        }
                        if let Some(i) = self.on_peer_down(&d) {
                            return Err(i);
                        }
                        if self.rec.observe_era(d.era) {
                            return Err(Interrupt::Recover);
                        }
                    }
                    graphlab_net::K_UP => {
                        // Zombie path: the dead window passed while this
                        // thread was busy on its pre-crash backlog.
                        let u: UpMsg = dec(env.payload);
                        self.wipe_volatile();
                        self.rec.observe_era(u.era);
                        return Err(Interrupt::Recover);
                    }
                    K_RECOVER_ABORT => {
                        let a: RecoverAbortMsg = dec(env.payload);
                        return Err(Interrupt::Abort(a.reason));
                    }
                    K_RECOVER_READY | K_ROLLBACK | K_RECOVERED | K_RESUME | K_FLUSH_MARK
                    | K_ADOPT_PLAN | K_ADOPT_DATA => {
                        // Stale control from a superseded recovery round.
                    }
                    _ => return Ok(env),
                },
                Err(RecvError::Timeout) => {
                    return Err(Interrupt::Abort(format!(
                        "chromatic engine stalled: machine {} step {} received nothing for {:?}",
                        self.me().0,
                        self.step,
                        timeout
                    )));
                }
                Err(RecvError::MachineDown) => return Err(Interrupt::Die),
                Err(RecvError::Disconnected) => {
                    return Err(Interrupt::Abort("fabric disconnected".into()));
                }
            }
        }
    }

    /// Executes all queued vertices of `color`; returns data-message send
    /// counts per destination machine.
    fn execute_color_step(&mut self, color: u32) -> Vec<u64> {
        let m = self.num_machines();
        let mut direct = vec![0u64; m];
        let mut batch: Vec<u32> = Vec::with_capacity(self.queues[color as usize].len());
        while let Some(l) = self.queues[color as usize].pop_front() {
            self.queued[l as usize] = false;
            self.pending_total -= 1;
            batch.push(l);
        }
        for l in batch {
            self.effects.clear();
            {
                let mut ctx = UpdateContext::new(
                    &mut self.lg,
                    l,
                    self.setup.config.consistency,
                    &self.globals,
                    &mut self.effects,
                );
                self.setup.update.update(&mut ctx);
            }
            self.updates_local += 1;
            self.cycle_updates += 1;
            self.setup
                .counters
                .updates
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if self.setup.config.trace {
                *self.update_count_map.entry(self.lg.vertex_gvid(l)).or_insert(0) += 1;
            }
            self.commit(l, &mut direct);
            // Respect the global update cap: stop executing this step.
            let cap = self.setup.config.max_updates;
            if cap > 0
                && self.setup.counters.updates.load(std::sync::atomic::Ordering::Relaxed) >= cap
            {
                break;
            }
        }
        direct
    }

    /// Applies an update's effects: version bumps, ghost pushes,
    /// write-backs and schedule forwards.
    fn commit(&mut self, l: u32, direct: &mut [u64]) {
        let me = self.me();
        let step = self.step;
        let effects = std::mem::take(&mut self.effects);

        if effects.dirty_self {
            let version = self.lg.bump_vertex_version(l);
            let gvid = self.lg.vertex_gvid(l);
            if !self.lg.vertex_mirrors(l).is_empty() {
                let payload = enc(&StepTagged {
                    step,
                    phase: 0u8,
                    inner: VertexRow {
                        vid: gvid,
                        version,
                        snap: 0,
                        data: enc(self.lg.vertex_data(l)),
                    },
                });
                let mirrors = self.lg.vertex_mirrors(l).to_vec();
                for mm in mirrors {
                    self.send_msg(mm, K_CHROM_VDATA, payload.clone());
                    direct[mm.index()] += 1;
                }
            }
        }

        let mut dirty_edges = effects.dirty_edges.clone();
        dirty_edges.sort_unstable();
        dirty_edges.dedup();
        for le in dirty_edges {
            let geid = self.lg.edge_geid(le);
            if self.lg.owns_edge(le) {
                let version = self.lg.bump_edge_version(le);
                let (s, d) = self.lg.edge_endpoints_local(le);
                let ms = self.lg.vertex_owner(s);
                let md = self.lg.vertex_owner(d);
                let other = if ms == me { md } else { ms };
                if other != me {
                    let payload = enc(&StepTagged {
                        step,
                        phase: 0u8,
                        inner: EdgeRow { eid: geid, version, data: enc(self.lg.edge_data(le)) },
                    });
                    self.send_msg(other, K_CHROM_EDATA, payload);
                    direct[other.index()] += 1;
                }
            } else {
                let owner = self.lg.edge_owner(le);
                let payload = enc(&StepTagged {
                    step,
                    phase: 0u8,
                    inner: EdgeRow { eid: geid, version: 0, data: enc(self.lg.edge_data(le)) },
                });
                self.send_msg(owner, K_CHROM_WB_E, payload);
                direct[owner.index()] += 1;
            }
        }

        let mut dirty_nbrs = effects.dirty_nbrs.clone();
        dirty_nbrs.sort_unstable();
        dirty_nbrs.dedup();
        for ln in dirty_nbrs {
            let gvid = self.lg.vertex_gvid(ln);
            if self.lg.owns_vertex(ln) {
                let version = self.lg.bump_vertex_version(ln);
                if !self.lg.vertex_mirrors(ln).is_empty() {
                    let payload = enc(&StepTagged {
                        step,
                        phase: 0u8,
                        inner: VertexRow {
                            vid: gvid,
                            version,
                            snap: 0,
                            data: enc(self.lg.vertex_data(ln)),
                        },
                    });
                    let mirrors = self.lg.vertex_mirrors(ln).to_vec();
                    for mm in mirrors {
                        self.send_msg(mm, K_CHROM_VDATA, payload.clone());
                        direct[mm.index()] += 1;
                    }
                }
            } else {
                let owner = self.lg.vertex_owner(ln);
                let payload = enc(&StepTagged {
                    step,
                    phase: 0u8,
                    inner: VertexRow { vid: gvid, version: 0, snap: 0, data: enc(self.lg.vertex_data(ln)) },
                });
                self.send_msg(owner, K_CHROM_WB_V, payload);
                direct[owner.index()] += 1;
            }
        }

        // Scheduling: local tasks enqueue directly; remote tasks forward to
        // their owner, grouped into one message per machine. BTreeMap so the
        // per-destination send order is machine order, not hash order — the
        // fabric's delivery interleavings (and with them fault traces) must
        // be a function of the seed alone.
        let mut remote: BTreeMap<MachineId, Vec<(VertexId, f64)>> = BTreeMap::new();
        for &(gv, prio) in &effects.scheduled {
            let lv = self.lg.local_vertex(gv).expect("scheduled vertex is in scope");
            let owner = self.lg.vertex_owner(lv);
            if owner == me {
                self.enqueue_local(lv);
            } else {
                remote.entry(owner).or_default().push((gv, prio));
            }
        }
        for (mm, tasks) in remote {
            let payload = enc(&StepTagged { step, phase: 0u8, inner: ScheduleMsg { tasks } });
            self.send_msg(mm, K_CHROM_SCHED, payload);
            direct[mm.index()] += 1;
        }

        self.effects = effects;
    }

    /// Sends flush markers for (self.step, phase) promising `counts`, then
    /// blocks until every peer's flush and all promised data arrived.
    fn flush_round(&mut self, phase: u8, counts: Vec<u64>) -> Result<(), Interrupt> {
        let m = self.num_machines();
        let me = self.me().index();
        let step = self.step;
        for (j, &count) in counts.iter().enumerate().take(m) {
            if j != me && !self.rec.is_dead(j) {
                let msg = FlushMsg {
                    step,
                    count,
                    updates: self.cycle_updates,
                    pending: self.pending_total,
                };
                self.send_msg(
                    MachineId::from(j),
                    if phase == 0 { K_CHROM_FLUSH_A } else { K_CHROM_FLUSH_B },
                    enc(&msg),
                );
            }
        }
        loop {
            // Dead machines owe nothing: their atoms were adopted and the
            // fabric drops their in-flight traffic.
            let complete = (0..m).filter(|&j| j != me && !self.rec.is_dead(j)).all(|j| {
                match self.flush_promises.get(&(j as u16, step, phase)) {
                    None => false,
                    Some(f) => {
                        let got =
                            self.recv_buckets.get(&(j as u16, step, phase)).copied().unwrap_or(0);
                        got >= f.count
                    }
                }
            });
            if complete {
                break;
            }
            let env = self.recv_env(RECV_TIMEOUT)?;
            self.handle_msg(env);
        }
        // Prune accounting of completed steps to keep the maps small.
        if step > 1 {
            self.recv_buckets.retain(|&(_, s, _), _| s + 1 >= step);
            self.flush_promises.retain(|&(_, s, _), _| s + 1 >= step);
        }
        Ok(())
    }

    fn bucket_incr(&mut self, src: MachineId, step: u64, phase: u8) {
        *self.recv_buckets.entry((src.0, step, phase)).or_insert(0) += 1;
    }

    fn handle_msg(&mut self, env: Envelope) {
        match env.kind {
            K_CHROM_VDATA => {
                let t: StepTagged<VertexRow> = dec(env.payload);
                if let Some(l) = self.lg.local_vertex(t.inner.vid) {
                    self.lg.apply_vertex_update(l, t.inner.version, dec(t.inner.data));
                }
                self.bucket_incr(env.src, t.step, t.phase);
            }
            K_CHROM_EDATA => {
                let t: StepTagged<EdgeRow> = dec(env.payload);
                if let Some(l) = self.lg.local_edge(t.inner.eid) {
                    self.lg.apply_edge_update(l, t.inner.version, dec(t.inner.data));
                }
                self.bucket_incr(env.src, t.step, t.phase);
            }
            K_CHROM_WB_V => {
                let t: StepTagged<VertexRow> = dec(env.payload);
                let l = self.lg.local_vertex(t.inner.vid).expect("write-back target owned");
                debug_assert!(self.lg.owns_vertex(l));
                *self.lg.vertex_data_mut(l) = dec(t.inner.data);
                let version = self.lg.bump_vertex_version(l);
                // The writer holds exactly the data it sent us.
                self.cache.note_v(env.src.index(), l, version);
                // Forward to every mirror whose known version is older
                // (phase 1 accounting) — version-aware exclusion of the
                // writer itself.
                let mirrors: Vec<MachineId> = self
                    .lg
                    .vertex_mirrors(l)
                    .iter()
                    .copied()
                    .filter(|&mm| self.cache.v_known(mm.index(), l) < version)
                    .collect();
                if !mirrors.is_empty() {
                    let payload = enc(&StepTagged {
                        step: t.step,
                        phase: 1u8,
                        inner: VertexRow {
                            vid: t.inner.vid,
                            version,
                            snap: 0,
                            data: enc(self.lg.vertex_data(l)),
                        },
                    });
                    for mm in mirrors {
                        self.cache.note_v(mm.index(), l, version);
                        self.send_msg(mm, K_CHROM_VDATA, payload.clone());
                        self.fwd_counts[mm.index()] += 1;
                    }
                }
                self.bucket_incr(env.src, t.step, t.phase);
            }
            K_CHROM_WB_E => {
                let t: StepTagged<EdgeRow> = dec(env.payload);
                let l = self.lg.local_edge(t.inner.eid).expect("write-back target owned");
                debug_assert!(self.lg.owns_edge(l));
                *self.lg.edge_data_mut(l) = dec(t.inner.data);
                self.lg.bump_edge_version(l);
                // An edge has exactly two replicas; the write-back came from
                // the only mirror, so no forward is needed.
                self.bucket_incr(env.src, t.step, t.phase);
            }
            K_CHROM_SCHED => {
                let t: StepTagged<ScheduleMsg> = dec(env.payload);
                for (gv, _prio) in &t.inner.tasks {
                    let l = self.lg.local_vertex(*gv).expect("scheduled vertex is local");
                    debug_assert!(self.lg.owns_vertex(l));
                    self.enqueue_local(l);
                }
                self.bucket_incr(env.src, t.step, t.phase);
            }
            K_CHROM_FLUSH_A => {
                let f: FlushMsg = dec(env.payload);
                self.flush_promises.insert((env.src.0, f.step, 0), f);
            }
            K_CHROM_FLUSH_B => {
                let f: FlushMsg = dec(env.payload);
                self.flush_promises.insert((env.src.0, f.step, 1), f);
            }
            K_CHROM_SYNC_PART => self.sync_stash.push_back(env),
            other => panic!("unexpected message kind {other} in chromatic engine"),
        }
    }

    /// Cycle-end sync + halt + snapshot coordination. Returns
    /// `(halt, snapshot_id)`.
    fn cycle_end_round(&mut self, cycle: u64) -> Result<(bool, Option<u64>), Interrupt> {
        let m = self.num_machines();
        let partials: Vec<(u32, Bytes)> = self
            .setup
            .syncs
            .iter()
            .map(|op| (op.id(), op.local_partial(&self.lg)))
            .collect();
        let my_msg = SyncPartialMsg {
            cycle,
            partials,
            pending: self.pending_total,
            updates: self.updates_local,
        };
        if self.me() == MachineId(0) {
            // Master: collect, combine, decide, broadcast.
            let mut pend = my_msg.pending;
            let mut accs: Vec<Box<dyn std::any::Any + Send>> =
                self.setup.syncs.iter().map(|op| op.init_acc()).collect();
            for (i, (_, part)) in my_msg.partials.iter().enumerate() {
                self.setup.syncs[i].combine(accs[i].as_mut(), part);
            }
            let mut received = 1usize;
            while received < self.rec.survivors() {
                let env = match self.sync_stash.pop_front() {
                    Some(env) => env,
                    None => self.recv_env(RECV_TIMEOUT)?,
                };
                if env.kind == K_CHROM_SYNC_PART {
                    let p: SyncPartialMsg = dec(env.payload);
                    assert_eq!(p.cycle, cycle, "sync round out of step");
                    pend += p.pending;
                    for (i, (id, part)) in p.partials.iter().enumerate() {
                        debug_assert_eq!(*id, self.setup.syncs[i].id());
                        self.setup.syncs[i].combine(accs[i].as_mut(), part);
                    }
                    received += 1;
                } else {
                    return Err(Interrupt::Abort(format!(
                        "unexpected kind {} during sync round",
                        env.kind
                    )));
                }
            }
            let total = self.lg.total_vertices();
            let mut globals_rows = Vec::new();
            for (op, acc) in self.setup.syncs.iter().zip(accs) {
                let (bytes, typed) = op.finalize(acc, total);
                let ver = self.globals.set(op.id(), typed);
                globals_rows.push((op.id(), ver, bytes));
            }
            let g_updates =
                self.setup.counters.updates.load(std::sync::atomic::Ordering::Relaxed);
            let cap = self.setup.config.max_updates;
            // Aggregate-driven termination (§3.5): the stop predicate runs
            // over the just-finalized globals, composing with the cap and
            // the natural no-pending-work halt.
            let stop_hit = self.setup.stop.as_ref().is_some_and(|f| f(&self.globals));
            let halt = pend == 0 || (cap > 0 && g_updates >= cap) || stop_hit;
            let snap_cfg = self.setup.config.snapshot;
            let snapshot = if !halt
                && snap_cfg.mode != crate::config::SnapshotMode::None
                && self.snapshots_taken < snap_cfg.max_snapshots
                && snap_cfg.every_updates > 0
                && g_updates - self.last_snap_updates >= snap_cfg.every_updates
            {
                self.last_snap_updates = g_updates;
                Some(self.snapshots_taken)
            } else {
                None
            };
            let out = SyncGlobalsMsg { cycle, globals: globals_rows, halt, snapshot };
            let payload = enc(&out);
            for j in 1..m {
                if !self.rec.is_dead(j) {
                    self.send_msg(MachineId::from(j), K_CHROM_SYNC_GLOB, payload.clone());
                }
            }
            Ok((halt, snapshot))
        } else {
            self.send_msg(MachineId(0), K_CHROM_SYNC_PART, enc(&my_msg));
            loop {
                let env = self.recv_env(RECV_TIMEOUT)?;
                if env.kind == K_CHROM_SYNC_GLOB {
                    let g: SyncGlobalsMsg = dec(env.payload);
                    assert_eq!(g.cycle, cycle);
                    for (id, ver, bytes) in g.globals {
                        let op = self
                            .setup
                            .syncs
                            .iter()
                            .find(|s| s.id() == id)
                            .expect("broadcast global matches a registered sync");
                        let typed = op.decode_out(bytes).expect("malformed global value");
                        self.globals.apply(id, ver, typed);
                    }
                    return Ok((g.halt, g.snapshot));
                }
                // Faster peers may already be executing the next cycle's
                // first colour-step: absorb their (step-tagged) data
                // traffic while we wait for our globals.
                self.handle_msg(env);
            }
        }
    }

    fn write_snapshot(&mut self, snap: u64) -> Result<(), Interrupt> {
        let file = SnapshotFile::capture(&self.lg);
        let my_atoms = self.setup.placement.atoms_of(self.me());
        write_snapshot_atoms(
            &self.setup.dfs,
            &self.setup.snap_prefix,
            snap,
            file,
            &self.lg,
            &my_atoms,
        );
        self.snapshots_taken = self.snapshots_taken.max(snap + 1);
        let m = self.num_machines();
        if self.me() == MachineId(0) {
            let mut done = 1usize;
            while done < self.rec.survivors() {
                let env = self.recv_env(RECV_TIMEOUT)?;
                if env.kind == K_CHROM_SNAP_DONE {
                    done += 1;
                } else {
                    return Err(Interrupt::Abort(format!(
                        "unexpected kind {} during snapshot",
                        env.kind
                    )));
                }
            }
            for j in 1..m {
                if !self.rec.is_dead(j) {
                    self.send_msg(MachineId::from(j), K_CHROM_SNAP_RESUME, Bytes::new());
                }
            }
        } else {
            self.send_msg(MachineId(0), K_CHROM_SNAP_DONE, Bytes::new());
            loop {
                let env = self.recv_env(RECV_TIMEOUT)?;
                if env.kind == K_CHROM_SNAP_RESUME {
                    break;
                }
                // Resumed peers may already be racing ahead.
                self.handle_msg(env);
            }
        }
        Ok(())
    }

    // ---- failure recovery (§4.3; protocol in crate::snapshot docs) ----

    /// Drives interrupts to quiescence: a death wait chains into a
    /// recovery round, overlapping failures restart the round, and only
    /// a successful resume returns `Ok(true)`. `Ok(false)` is the clean
    /// permanent-death exit under adoption (no failure: the survivors
    /// carry the run to completion without this machine).
    fn handle_interrupt(&mut self, int: Interrupt) -> Result<bool, String> {
        let mut int = int;
        loop {
            int = match int {
                Interrupt::Abort(reason) => return Err(reason),
                Interrupt::Exit => {
                    self.dead = true;
                    return Ok(false);
                }
                Interrupt::Die => match self.dead_wait() {
                    Ok(()) => Interrupt::Recover,
                    Err(i) => i,
                },
                Interrupt::Recover => match self.recover() {
                    Ok(()) => return Ok(true),
                    Err(i) => i,
                },
            };
        }
    }

    /// Shared handling of a peer's `K_DOWN` (any receive site): fence the
    /// lease table, and classify a restart-less death — an abort under
    /// [`RecoveryMode::Rollback`], a permanent-death record (the machine
    /// drops out of every barrier; its atoms will be adopted) under
    /// [`RecoveryMode::Adopt`]. The caller still observes the era.
    fn on_peer_down(&mut self, d: &DownMsg) -> Option<Interrupt> {
        self.net.lease_note_death(d.machine, d.era);
        if !d.restart {
            if self.setup.config.recovery != RecoveryMode::Adopt {
                return Some(Interrupt::Abort(unrecoverable_down(d)));
            }
            self.rec.note_death(d.machine as usize);
            self.net.fence(d.machine);
        }
        None
    }

    /// This machine was killed: discard all volatile state and poll until
    /// the fabric's `K_UP` marks the rebirth (adopting its fault era).
    fn dead_wait(&mut self) -> Result<(), Interrupt> {
        self.wipe_volatile();
        if self.net.self_death() == Some(false) {
            if self.setup.config.recovery == RecoveryMode::Adopt {
                // The survivors adopt our atoms; this machine's run is
                // over, cleanly.
                return Err(Interrupt::Exit);
            }
            // No restart scheduled: fail fast instead of stalling the
            // join for the full recovery deadline (survivors abort on
            // their K_DOWN{restart: false} in parallel).
            return Err(Interrupt::Abort(format!(
                "machine {} killed with no restart scheduled",
                self.me().0
            )));
        }
        // lint: allow(determinism) -- recovery deadline timer; bounds waiting, never enters payloads or traces
        let start = Instant::now();
        loop {
            if start.elapsed() > RECOVERY_DEADLINE {
                return Err(Interrupt::Abort(format!(
                    "machine {} dead past the recovery deadline with no restart",
                    self.me().0
                )));
            }
            match self.net.recv_timeout(RECOVERY_POLL) {
                Ok(env) if env.kind == graphlab_net::K_UP => {
                    let u: UpMsg = dec(env.payload);
                    self.rec.observe_era(u.era);
                    return Ok(());
                }
                Ok(_) => {} // pre-crash backlog junk: a crash loses it
                Err(RecvError::MachineDown) | Err(RecvError::Timeout) => {}
                Err(RecvError::Disconnected) => {
                    return Err(Interrupt::Abort("fabric disconnected while dead".into()));
                }
            }
        }
    }

    /// Crash semantics: every piece of volatile engine state is gone (the
    /// rollback that follows restores data and re-seeds work).
    fn wipe_volatile(&mut self) {
        self.net.clear();
        self.reset_engine_state();
        // Permanent deaths are cluster-durable facts: a reborn machine
        // that forgot them would wait forever on a dead peer's barriers.
        let dead = self.rec.dead_mask().to_vec();
        self.rec = RecoveryTracker::new(self.me().index(), self.num_machines());
        for (j, d) in dead.into_iter().enumerate() {
            if d {
                self.rec.note_death(j);
            }
        }
    }

    /// Resets all volatile BSP state: colour queues, step/flush
    /// accounting, ghost-cache assumptions. Graph data, metrics and the
    /// recovery tracker are untouched.
    fn reset_engine_state(&mut self) {
        for q in &mut self.queues {
            q.clear();
        }
        self.queued.fill(false);
        self.pending_total = 0;
        self.step = 0;
        self.recv_buckets.clear();
        self.flush_promises.clear();
        self.fwd_counts.fill(0);
        self.cycle_updates = 0;
        self.cache.invalidate_all();
        self.effects.clear();
        self.last_snap_updates =
            self.setup.counters.updates.load(std::sync::atomic::Ordering::Relaxed);
    }

    /// One full recovery round for the current fault era: drain → READY →
    /// rollback order → channel flush → restore → resume barrier. An
    /// `Err` escalates (a newer failure restarts the round via
    /// `handle_interrupt`; an abort fails the run).
    fn recover(&mut self) -> Result<(), Interrupt> {
        let me = self.me().index();
        loop {
            // ---- drain: report the stopped-traffic point ----
            self.net.flush_all();
            let ready_era = self.rec.era;
            if me == 0 {
                self.rec.note_ready(0, ready_era);
            } else {
                self.send_msg(
                    MachineId(0),
                    K_RECOVER_READY,
                    enc(&RecoverReadyMsg { era: ready_era }),
                );
                self.net.flush_all();
            }
            // lint: allow(determinism) -- recovery deadline timer; bounds waiting, never enters payloads or traces
            let started = Instant::now();
            let mut order: Option<RecoveryOrder> = None;
            // Ghost-round data pulled off the wire while still waiting for
            // a slower peer's flush marker (a fast peer may finish its
            // surgery first); replayed into the adoption below.
            let mut adopt_early: Vec<Envelope> = Vec::new();

            // ---- collect/flush until the order can be applied ----
            // `Some(order)` = channels flushed, apply it; `None` = the era
            // was superseded by a further failure, re-drain.
            let flushed: Option<RecoveryOrder> = loop {
                if self.rec.era > ready_era {
                    break None;
                }
                if started.elapsed() > RECOVERY_DEADLINE {
                    return Err(Interrupt::Abort(format!(
                        "recovery stalled at fault era {} (machine {}, order in: {}, {:?})",
                        self.rec.era,
                        me,
                        order.is_some(),
                        self.rec
                    )));
                }
                if me == 0 && order.is_none() && self.rec.all_ready() {
                    let survivors = self.rec.survivors();
                    // lint: allow(survivor-barrier) -- not a barrier: comparing the live count to the full roster is how permanent deaths are detected (adopt vs rollback)
                    order = if survivors < self.num_machines() {
                        // Permanent deaths under Adopt mode (Rollback
                        // aborts on them long before READY collection).
                        let plan = self.master_order_adoption();
                        self.broadcast_flush_mark(plan.era);
                        Some(RecoveryOrder::Adopt(plan))
                    } else {
                        let msg = self.master_order_rollback()?;
                        self.broadcast_flush_mark(msg.era);
                        Some(RecoveryOrder::Rollback(msg))
                    };
                }
                if order.is_some() && self.rec.marks_complete() {
                    break order.take();
                }
                match self.net.recv_timeout(RECOVERY_POLL) {
                    Ok(env) => match env.kind {
                        graphlab_net::K_DOWN => {
                            let d: DownMsg = dec(env.payload);
                            if d.machine == self.me().0 {
                                return Err(Interrupt::Die);
                            }
                            if let Some(i) = self.on_peer_down(&d) {
                                return Err(i);
                            }
                            // A newer era is caught at the top of the loop.
                            self.rec.observe_era(d.era);
                        }
                        graphlab_net::K_UP => {
                            let u: UpMsg = dec(env.payload);
                            self.wipe_volatile();
                            self.rec.observe_era(u.era);
                            break None; // re-drain as the reborn machine
                        }
                        K_RECOVER_READY => {
                            let msg: RecoverReadyMsg = dec(env.payload);
                            if me == 0 {
                                self.rec.note_ready(env.src.index(), msg.era);
                                // A READY proves the sender alive: un-fence
                                // its lease (a reborn machine re-leases).
                                self.net.lease_note_up(env.src.0, msg.era);
                            }
                        }
                        K_ROLLBACK => {
                            let msg: RollbackMsg = dec(env.payload);
                            if msg.era >= self.rec.era {
                                // Reborn machines adopt the rollback era.
                                self.rec.observe_era(msg.era);
                                self.broadcast_flush_mark(msg.era);
                                order = Some(RecoveryOrder::Rollback(msg));
                            }
                        }
                        K_ADOPT_PLAN => {
                            let msg: AdoptPlanMsg = dec(env.payload);
                            if msg.era >= self.rec.era {
                                self.rec.observe_era(msg.era);
                                // The plan is authoritative about who died
                                // (a worker may have missed a K_DOWN).
                                for &dm in &msg.dead {
                                    self.rec.note_death(dm as usize);
                                    self.net.lease_note_death(dm, msg.era);
                                    self.net.fence(dm);
                                }
                                self.broadcast_flush_mark(msg.era);
                                order = Some(RecoveryOrder::Adopt(msg));
                            }
                        }
                        K_ADOPT_DATA => {
                            // A fast peer already finished its surgery;
                            // keep its ghost data for our own.
                            adopt_early.push(env);
                        }
                        K_FLUSH_MARK => {
                            let msg: RecoverEraMsg = dec(env.payload);
                            self.rec.note_mark(env.src.index(), msg.era);
                        }
                        K_RECOVERED => {
                            let msg: RecoverEraMsg = dec(env.payload);
                            if me == 0 {
                                // Early finishers; the barrier releases
                                // after our own rollback below.
                                self.rec.note_recovered(msg.era);
                            }
                        }
                        K_RESUME => {} // stale
                        K_RECOVER_ABORT => {
                            let a: RecoverAbortMsg = dec(env.payload);
                            return Err(Interrupt::Abort(a.reason));
                        }
                        _ => {
                            // Pre-rollback engine traffic (it precedes its
                            // sender's flush marker): discard.
                        }
                    },
                    Err(RecvError::Timeout) => {}
                    Err(RecvError::MachineDown) => return Err(Interrupt::Die),
                    Err(RecvError::Disconnected) => {
                        return Err(Interrupt::Abort("fabric disconnected".into()));
                    }
                }
            };
            let Some(flushed) = flushed else {
                continue; // re-drain for the newer era
            };

            match flushed {
                RecoveryOrder::Rollback(flushed) => {
                    // ---- restore + reset ----
                    if let Err(e) = restore_into_local(
                        &self.setup.dfs,
                        &self.setup.snap_prefix,
                        flushed.snap,
                        &mut self.lg,
                    ) {
                        return Err(Interrupt::Abort(format!(
                            "checkpoint {} unreadable during rollback: {e}",
                            flushed.snap
                        )));
                    }
                    self.reset_engine_state();
                    self.snapshots_taken = flushed.snap + 1;
                    // Conservative re-seeding: schedule every owned vertex.
                    for i in 0..self.lg.owned_vertices().len() {
                        let l = self.lg.owned_vertices()[i];
                        self.enqueue_local(l);
                    }
                    self.rec.after_rollback();
                }
                RecoveryOrder::Adopt(plan) => {
                    self.apply_adoption(plan, adopt_early)?;
                }
            }

            // ---- resume barrier ----
            let era = self.rec.era;
            let mut buffered: Vec<Envelope> = Vec::new();
            if me == 0 {
                if self.rec.note_recovered(era) {
                    let payload = enc(&RecoverEraMsg { era });
                    for j in 1..self.num_machines() {
                        if !self.rec.is_dead(j) {
                            self.send_msg(MachineId::from(j), K_RESUME, payload.clone());
                        }
                    }
                    self.net.flush_all();
                    return Ok(());
                }
            } else {
                self.send_msg(MachineId(0), K_RECOVERED, enc(&RecoverEraMsg { era }));
                self.net.flush_all();
            }
            // lint: allow(determinism) -- recovery deadline timer; bounds waiting, never enters payloads or traces
            let barrier = Instant::now();
            loop {
                if barrier.elapsed() > RECOVERY_DEADLINE {
                    return Err(Interrupt::Abort(format!(
                        "resume barrier stalled at fault era {era} (machine {me})"
                    )));
                }
                match self.net.recv_timeout(RECOVERY_POLL) {
                    Ok(env) => match env.kind {
                        K_RESUME => {
                            let msg: RecoverEraMsg = dec(env.payload);
                            if msg.era == era {
                                // Replay post-rollback traffic from peers
                                // that resumed before us.
                                for env in buffered {
                                    self.handle_msg(env);
                                }
                                return Ok(());
                            }
                        }
                        K_RECOVERED => {
                            let msg: RecoverEraMsg = dec(env.payload);
                            if me == 0 && self.rec.note_recovered(msg.era) {
                                let payload = enc(&RecoverEraMsg { era });
                                for j in 1..self.num_machines() {
                                    if !self.rec.is_dead(j) {
                                        self.send_msg(
                                            MachineId::from(j),
                                            K_RESUME,
                                            payload.clone(),
                                        );
                                    }
                                }
                                self.net.flush_all();
                                for env in buffered {
                                    self.handle_msg(env);
                                }
                                return Ok(());
                            }
                        }
                        graphlab_net::K_DOWN => {
                            let d: DownMsg = dec(env.payload);
                            if d.machine == self.me().0 {
                                return Err(Interrupt::Die);
                            }
                            if let Some(i) = self.on_peer_down(&d) {
                                return Err(i);
                            }
                            if self.rec.observe_era(d.era) {
                                return Err(Interrupt::Recover);
                            }
                        }
                        K_RECOVER_ABORT => {
                            let a: RecoverAbortMsg = dec(env.payload);
                            return Err(Interrupt::Abort(a.reason));
                        }
                        K_RECOVER_READY | K_ROLLBACK | K_FLUSH_MARK | K_ADOPT_PLAN
                        | K_ADOPT_DATA | graphlab_net::K_UP => {}
                        _ => buffered.push(env),
                    },
                    Err(RecvError::Timeout) => {}
                    Err(RecvError::MachineDown) => return Err(Interrupt::Die),
                    Err(RecvError::Disconnected) => {
                        return Err(Interrupt::Abort("fabric disconnected".into()));
                    }
                }
            }
        }
    }

    /// Master: all READYs in — prune torn checkpoints, pick the newest
    /// complete one (shared policy: [`pick_rollback`]), broadcast the
    /// rollback order, and return our own.
    fn master_order_rollback(&mut self) -> Result<RollbackMsg, Interrupt> {
        let n = self.num_machines();
        let parts = self.setup.config.num_atoms;
        match pick_rollback(&self.setup.dfs, &self.setup.snap_prefix, parts, self.rec.era) {
            Ok(msg) => {
                let payload = enc(&msg);
                for i in 1..n {
                    self.send_msg(MachineId::from(i), K_ROLLBACK, payload.clone());
                }
                self.net.flush_all();
                Ok(msg)
            }
            Err(abort) => {
                let payload = enc(&abort);
                for j in 1..n {
                    self.send_msg(MachineId::from(j), K_RECOVER_ABORT, payload.clone());
                }
                self.net.flush_all();
                Err(Interrupt::Abort(abort.reason))
            }
        }
    }

    /// Master, every surviving READY in under [`RecoveryMode::Adopt`]:
    /// computes the adoption plan (shared policy: [`pick_adoption`]) and
    /// broadcasts it to the survivors.
    fn master_order_adoption(&mut self) -> AdoptPlanMsg {
        let plan = pick_adoption(
            &self.setup.dfs,
            &self.setup.snap_prefix,
            self.setup.config.num_atoms,
            self.rec.era,
            &self.setup.index,
            &self.setup.placement,
            self.rec.dead_mask(),
        );
        let payload = enc(&plan);
        for j in 1..self.num_machines() {
            if !self.rec.is_dead(j) {
                self.send_msg(MachineId::from(j), K_ADOPT_PLAN, payload.clone());
            }
        }
        self.net.flush_all();
        plan
    }

    /// Broadcasts this era's flush marker to every peer (see
    /// [`K_FLUSH_MARK`]): everything this machine sent before it is
    /// pre-drain engine traffic, delivered ahead of it by per-channel
    /// FIFO.
    fn broadcast_flush_mark(&mut self, era: u32) {
        let payload = enc(&RecoverEraMsg { era });
        for j in 0..self.num_machines() {
            if j != self.me().index() && !self.rec.is_dead(j) {
                self.send_msg(MachineId::from(j), K_FLUSH_MARK, payload.clone());
            }
        }
        self.net.flush_all();
    }

    /// Restart-free recovery (the §3 elasticity claim made concrete):
    /// rebuild this machine under the adopted placement without rolling
    /// the cluster back. Own atoms keep their *live* data; adopted atoms
    /// come from the latest complete per-atom checkpoint when one exists
    /// (journal-only otherwise — ingress-initial data reconverges through
    /// re-scheduling); ghosts are refreshed by one [`K_ADOPT_DATA`] round
    /// between every surviving pair, which doubles as the FIFO barrier
    /// before the resume handshake.
    fn apply_adoption(
        &mut self,
        plan: AdoptPlanMsg,
        early: Vec<Envelope>,
    ) -> Result<(), Interrupt> {
        let me = self.me();
        // Diff against what this machine *currently* holds — the plan's
        // placement is absolute, so adoptions interrupted by overlapping
        // failures compose.
        let old_atoms: std::collections::BTreeSet<graphlab_graph::AtomId> =
            self.setup.placement.atoms_of(me).into_iter().collect();
        let adopted: Vec<graphlab_graph::AtomId> = plan
            .placement
            .atoms_of(me)
            .into_iter()
            .filter(|a| !old_atoms.contains(a))
            .collect();

        // Keep the live values of everything currently owned, then reload
        // the journals under the adopted placement (new ghost structure,
        // mirror lists and atom spans).
        let live = SnapshotFile::capture(&self.lg);
        let init = match load_machine_part::<V, E>(
            &self.setup.dfs,
            &self.setup.index,
            &plan.placement,
            me,
        ) {
            Ok(init) => init,
            Err(e) => {
                return Err(Interrupt::Abort(format!(
                    "adoption reload failed on machine {}: {e}",
                    me.0
                )))
            }
        };
        self.lg = LocalGraph::from_init(init, Some(&self.setup.coloring));
        self.setup.placement = std::sync::Arc::new(plan.placement.clone());

        // Volatile engine state anew, at the new local sizes.
        let nv = self.lg.num_local_vertices();
        let m = self.num_machines();
        self.cache = RemoteCacheTable::new(m, nv, 0);
        self.queues = (0..self.num_colors).map(|_| VecDeque::new()).collect();
        self.queued = vec![false; nv];
        self.pending_total = 0;
        self.step = 0;
        self.recv_buckets.clear();
        self.flush_promises.clear();
        self.sync_stash.clear();
        self.fwd_counts = vec![0; m];
        self.cycle_updates = 0;
        self.effects.clear();
        self.last_snap_updates =
            self.setup.counters.updates.load(std::sync::atomic::Ordering::Relaxed);

        // Own rows keep their live values...
        if let Err(e) = apply_file(live, &mut self.lg) {
            return Err(Interrupt::Abort(format!(
                "live data re-apply failed during adoption: {e}"
            )));
        }
        // ...and adopted rows overlay from the checkpoint, when one exists.
        if let Some(snap) = plan.snap {
            if !adopted.is_empty() {
                if let Err(e) = restore_atoms_into_local(
                    &self.setup.dfs,
                    &self.setup.snap_prefix,
                    snap,
                    &adopted,
                    &mut self.lg,
                ) {
                    return Err(Interrupt::Abort(format!(
                        "checkpoint {snap} unreadable during adoption: {e}"
                    )));
                }
            }
        }
        self.snapshots_taken = plan.snap.map_or(0, |s| s + 1);

        // Ghost round: push our owned rows to every surviving peer that
        // replicates them, then wait for every peer's round in turn.
        self.send_adopt_data(plan.era);
        self.collect_adopt_data(plan.era, early)?;

        // Conservative re-seeding: schedule every owned vertex (adopted
        // data may lag surviving live data; re-execution reconverges).
        for i in 0..self.lg.owned_vertices().len() {
            let l = self.lg.owned_vertices()[i];
            self.enqueue_local(l);
        }
        self.rec.after_adoption();
        Ok(())
    }

    /// Sends exactly one [`K_ADOPT_DATA`] to every surviving peer — even
    /// when empty, so receipt of the round is a per-channel barrier —
    /// carrying the owned vertex rows mirrored on that peer and the owned
    /// edge rows replicated there.
    fn send_adopt_data(&mut self, era: u32) {
        let m = self.num_machines();
        let me = self.me();
        let mut out: Vec<AdoptDataMsg> = (0..m)
            .map(|_| AdoptDataMsg { era, vrows: Vec::new(), erows: Vec::new() })
            .collect();
        for i in 0..self.lg.owned_vertices().len() {
            let l = self.lg.owned_vertices()[i];
            let mirrors = self.lg.vertex_mirrors(l).to_vec();
            if mirrors.is_empty() {
                continue;
            }
            let row = (self.lg.vertex_gvid(l), enc(self.lg.vertex_data(l)));
            for mm in mirrors {
                out[mm.index()].vrows.push(row.clone());
            }
        }
        for l in 0..self.lg.num_local_edges() as u32 {
            if !self.lg.owns_edge(l) {
                continue;
            }
            let (s, d) = self.lg.edge_endpoints_local(l);
            let ms = self.lg.vertex_owner(s);
            let md = self.lg.vertex_owner(d);
            let other = if ms == me { md } else { ms };
            if other != me {
                out[other.index()]
                    .erows
                    .push((self.lg.edge_geid(l), enc(self.lg.edge_data(l))));
            }
        }
        for (j, msg) in out.into_iter().enumerate() {
            if j != me.index() && !self.rec.is_dead(j) {
                self.send_msg(MachineId::from(j), K_ADOPT_DATA, enc(&msg));
            }
        }
        self.net.flush_all();
    }

    /// Blocks until this era's ghost round arrived from every surviving
    /// peer, applying the rows as they land. `early` replays envelopes
    /// already pulled off the wire during the marker wait.
    fn collect_adopt_data(&mut self, era: u32, early: Vec<Envelope>) -> Result<(), Interrupt> {
        let me = self.me().index();
        let m = self.num_machines();
        let mut got = vec![false; m];
        // lint: allow(determinism) -- recovery deadline timer; bounds waiting, never enters payloads or traces
        let started = Instant::now();
        let mut queue: VecDeque<Envelope> = early.into();
        loop {
            if (0..m).all(|j| j == me || self.rec.is_dead(j) || got[j]) {
                return Ok(());
            }
            if started.elapsed() > RECOVERY_DEADLINE {
                return Err(Interrupt::Abort(format!(
                    "adoption ghost round stalled at fault era {era} (machine {me})"
                )));
            }
            let env = match queue.pop_front() {
                Some(env) => env,
                None => match self.net.recv_timeout(RECOVERY_POLL) {
                    Ok(env) => env,
                    Err(RecvError::Timeout) => continue,
                    Err(RecvError::MachineDown) => return Err(Interrupt::Die),
                    Err(RecvError::Disconnected) => {
                        return Err(Interrupt::Abort("fabric disconnected".into()));
                    }
                },
            };
            match env.kind {
                K_ADOPT_DATA => {
                    let d: AdoptDataMsg = dec(env.payload);
                    if d.era != era {
                        continue; // superseded round
                    }
                    for (v, blob) in d.vrows {
                        if let Some(l) = self.lg.local_vertex(v) {
                            *self.lg.vertex_data_mut(l) = dec(blob);
                        }
                    }
                    for (e, blob) in d.erows {
                        if let Some(l) = self.lg.local_edge(e) {
                            *self.lg.edge_data_mut(l) = dec(blob);
                        }
                    }
                    got[env.src.index()] = true;
                }
                graphlab_net::K_DOWN => {
                    let d: DownMsg = dec(env.payload);
                    if d.machine == self.me().0 {
                        return Err(Interrupt::Die);
                    }
                    if let Some(i) = self.on_peer_down(&d) {
                        return Err(i);
                    }
                    if self.rec.observe_era(d.era) {
                        return Err(Interrupt::Recover);
                    }
                }
                graphlab_net::K_UP => {
                    let u: UpMsg = dec(env.payload);
                    self.wipe_volatile();
                    self.rec.observe_era(u.era);
                    return Err(Interrupt::Recover);
                }
                K_RECOVERED => {
                    // Fast peers racing ahead to the resume barrier.
                    let msg: RecoverEraMsg = dec(env.payload);
                    if me == 0 {
                        self.rec.note_recovered(msg.era);
                    }
                }
                K_RECOVER_ABORT => {
                    let a: RecoverAbortMsg = dec(env.payload);
                    return Err(Interrupt::Abort(a.reason));
                }
                _ => {} // stale control from superseded rounds
            }
        }
    }

    fn maybe_straggle(&mut self) {
        if let Some(s) = self.setup.config.straggler {
            if !self.straggled
                && self.me().0 == s.machine
                && self.setup.counters.updates.load(std::sync::atomic::Ordering::Relaxed)
                    >= s.after_updates
            {
                self.straggled = true;
                std::thread::sleep(s.duration);
            }
        }
    }

    fn finish(mut self) -> MachineResult<V, E> {
        self.update_counts = std::mem::take(&mut self.update_count_map).into_iter().collect();
        let globals = std::mem::take(&mut self.globals);
        let updates = self.updates_local;
        let update_counts = std::mem::take(&mut self.update_counts);
        let snapshots = self.snapshots_taken;
        let recoveries = self.rec.recoveries;
        let adoptions = self.rec.adoptions;
        let failed = self.failure.take();
        let steps = self.steps_total;
        let dead = self.dead;
        // A dead machine's rows are stale by definition (survivors adopted
        // its atoms): it must contribute nothing to the write-back.
        let (vrows, erows) =
            if dead { (Vec::new(), Vec::new()) } else { self.lg.into_owned_data() };
        MachineResult {
            vrows,
            erows,
            globals,
            updates,
            update_counts,
            steps,
            snapshots,
            recoveries,
            adoptions,
            dead,
            failed,
            phase: crate::metrics::PhaseTimes::default(),
            chain_spans: Vec::new(),
            idle_wakeups: 0,
        }
    }
}
