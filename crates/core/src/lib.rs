//! # graphlab-core
//!
//! The Distributed GraphLab engines (Low et al., VLDB 2012) — the paper's
//! primary contribution.
//!
//! The abstraction has three parts: the *data graph* holding mutable user
//! data on a static structure (provided by `graphlab-graph` +
//! `graphlab-atoms`), *update functions* transforming vertex scopes and
//! scheduling further work ([`update`]), and the *sync operation*
//! maintaining global aggregates ([`sync`]). Serializable execution is
//! guaranteed under three consistency models (vertex/edge/full) by two
//! very different distributed engines:
//!
//! - the **chromatic engine** ([`chromatic`]): partially synchronous
//!   colour-step execution driven by a graph colouring (§4.2.1);
//! - the **locking engine** ([`locking`]): fully asynchronous pipelined
//!   distributed locking with prioritised dynamic scheduling (§4.2.2).
//!
//! Fault tolerance (§4.3) is provided by synchronous stop-the-world
//! snapshots and the fully asynchronous Chandy-Lamport variant expressed
//! as a GraphLab update function ([`snapshot`]).
//!
//! A literal sequential implementation of the execution model (Alg. 2)
//! lives in [`reference`]; it is the serializability oracle for all
//! distributed runs.

pub mod chromatic;
pub mod config;
pub mod driver;
pub mod globals;
pub mod local;
pub mod locking;
pub mod messages;
pub mod metrics;
pub mod reference;
pub mod scheduler;
pub mod snapshot;
pub mod sync;
pub mod update;

pub use config::{EngineConfig, SnapshotConfig, SnapshotMode, StragglerConfig};
pub use graphlab_net::BatchPolicy;
pub use driver::{run_chromatic, run_locking, DistributedGraph, EngineOutput, PartitionStrategy};
pub use globals::GlobalRegistry;
pub use local::{LocalAdjEntry, LocalGraph, RemoteCacheTable};
pub use metrics::EngineMetrics;
pub use reference::{run_sequential, InitialSchedule, SequentialConfig};
pub use scheduler::{Scheduler, SchedulerKind};
pub use snapshot::{optimal_checkpoint_interval_secs, restore_snapshot, snapshot_exists, SnapshotFile};
pub use sync::{FnSync, SyncOp};
pub use update::{UpdateContext, UpdateEffects, UpdateFunction};
