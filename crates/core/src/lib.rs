//! # graphlab-core
//!
//! The Distributed GraphLab engines (Low et al., VLDB 2012) — the paper's
//! primary contribution.
//!
//! The abstraction has three parts: the *data graph* holding mutable user
//! data on a static structure (provided by `graphlab-graph` +
//! `graphlab-atoms`), *update functions* transforming vertex scopes and
//! scheduling further work ([`update`]), and the *sync operation*
//! maintaining typed global aggregates ([`sync`]). A program is assembled
//! and run through the [`GraphLab`] builder ([`program`]) — the single
//! entry point selecting one of three engines behind the same seam:
//!
//! - the **sequential reference** ([`mod@reference`]): the literal execution
//!   model (Alg. 2), the serializability oracle for all distributed runs;
//! - the **chromatic engine** ([`chromatic`]): partially synchronous
//!   colour-step execution driven by a graph colouring (§4.2.1), which
//!   the builder auto-computes from the consistency model;
//! - the **locking engine** ([`locking`]): fully asynchronous pipelined
//!   distributed locking with prioritised dynamic scheduling (§4.2.2).
//!
//! Termination is first-class: [`GraphLab::stop_when`] predicates over
//! finalized globals run at sync boundaries (the paper's aggregate-driven
//! convergence checks), composing with update caps. Fault tolerance
//! (§4.3) is provided by synchronous stop-the-world snapshots and the
//! fully asynchronous Chandy-Lamport variant expressed as a GraphLab
//! update function ([`snapshot`]).

pub mod chromatic;
pub mod config;
pub mod driver;
pub mod globals;
pub mod local;
pub mod locking;
pub mod messages;
pub mod metrics;
pub mod program;
pub(crate) mod recovery;
pub mod reference;
pub mod scheduler;
pub mod snapshot;
pub mod sync;
pub mod update;

pub use config::{EngineConfig, RecoveryMode, SnapshotConfig, SnapshotMode, StragglerConfig};
pub use graphlab_atoms::PlacementStrategy;
pub use graphlab_net::{BatchPolicy, FaultPlan, FaultTrigger, TcpConfig, Transport};
pub use driver::{DistributedGraph, EngineKind, EngineOutput, PartitionStrategy};
/// `Engine` is an alias for [`EngineKind`], matching the builder-chain
/// spelling `GraphLab::on(..).engine(Engine::Locking)`.
pub use driver::EngineKind as Engine;
pub use globals::{GlobalHandle, GlobalRegistry};
pub use local::{LocalAdjEntry, LocalGraph, RemoteCacheTable};
pub use metrics::{EngineMetrics, PhaseTimes};
pub use program::{GraphLab, SyncCadence};
pub use reference::InitialSchedule;
pub use scheduler::{Scheduler, SchedulerKind};
pub use snapshot::{
    latest_complete_snapshot, optimal_checkpoint_interval_secs, restore_snapshot, snapshot_exists,
    young_interval, SnapshotFile,
};
pub use sync::{local_partial, Aggregate, FnSync, SyncScope};
pub use update::{UpdateContext, UpdateEffects, UpdateFunction};
