//! Typed global values (§3.5).
//!
//! Global values are *read* by update functions and *written* by sync
//! operations. Each value is registered under a [`GlobalHandle<T>`] — a
//! cheap `Copy` id carrying the value's type — and stored type-erased
//! behind `Arc<dyn Any>`, so `ctx.global(handle)` is a typed read with no
//! string lookup and no per-read decoding. Every value carries a version
//! that increases on every write, so machines can reject stale
//! re-broadcasts from the sync master.

use std::any::Any;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// Typed identity of a global value maintained by a sync operation.
///
/// A handle is just a `Copy` integer id plus the value's type; declare them
/// as constants next to the aggregate that maintains them:
///
/// ```
/// use graphlab_core::GlobalHandle;
/// const RESIDUAL: GlobalHandle<f64> = GlobalHandle::new(0);
/// ```
///
/// Ids must be unique within one program; [`crate::GraphLab::sync`] panics
/// on a duplicate registration. Convention: ids `0..100` belong to
/// application code, `100..` to library-provided aggregates (the
/// `graphlab-apps` crate's `PAGERANK_RESIDUAL`/`GMM_GLOBAL` live there),
/// so composing your own syncs with library ones never collides.
pub struct GlobalHandle<T> {
    id: u32,
    _type: PhantomData<fn() -> T>,
}

impl<T> GlobalHandle<T> {
    /// Creates a handle with the given program-unique id.
    pub const fn new(id: u32) -> Self {
        GlobalHandle { id, _type: PhantomData }
    }

    /// The raw id (wire identity of the value).
    #[inline]
    pub const fn id(self) -> u32 {
        self.id
    }
}

// Manual impls: `T` need not be `Clone`/`Copy` for the handle to be.
impl<T> Clone for GlobalHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for GlobalHandle<T> {}
impl<T> std::fmt::Debug for GlobalHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GlobalHandle#{}", self.id)
    }
}
impl<T> PartialEq for GlobalHandle<T> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl<T> Eq for GlobalHandle<T> {}

/// A type-erased global value: version + the finalized value.
type Slot = (u64, Arc<dyn Any + Send + Sync>);

/// Registry of global values on one machine, keyed by handle id.
#[derive(Default)]
pub struct GlobalRegistry {
    values: HashMap<u32, Slot>,
}

impl GlobalRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Typed read of a global value. `None` until its sync first ran (or if
    /// the handle's type does not match what the registered aggregate
    /// finalizes to).
    pub fn get<T: 'static>(&self, handle: GlobalHandle<T>) -> Option<&T> {
        self.values.get(&handle.id).and_then(|(_, v)| v.downcast_ref::<T>())
    }

    /// Version of a value (0 = never set).
    pub fn version(&self, id: u32) -> u64 {
        self.values.get(&id).map_or(0, |(ver, _)| *ver)
    }

    /// Writes a value (sync master), bumping its version.
    pub fn set(&mut self, id: u32, value: Arc<dyn Any + Send + Sync>) -> u64 {
        let entry = self.values.entry(id).or_insert_with(|| (0, Arc::new(())));
        entry.0 += 1;
        entry.1 = value;
        entry.0
    }

    /// Applies a replicated value if `version` is newer (machines receiving
    /// broadcasts from the sync master use this).
    pub fn apply(&mut self, id: u32, version: u64, value: Arc<dyn Any + Send + Sync>) -> bool {
        let entry = self.values.entry(id).or_insert_with(|| (0, Arc::new(())));
        if version > entry.0 {
            entry.0 = version;
            entry.1 = value;
            true
        } else {
            false
        }
    }

    /// Number of registered values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no value has been published yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Ids of all published values, sorted.
    pub fn ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.values.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

impl std::fmt::Debug for GlobalRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalRegistry").field("ids", &self.ids()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: GlobalHandle<f64> = GlobalHandle::new(7);
    const V: GlobalHandle<Vec<f64>> = GlobalHandle::new(9);

    #[test]
    fn set_and_typed_get() {
        let mut r = GlobalRegistry::new();
        assert_eq!(r.get(X), None);
        assert_eq!(r.set(X.id(), Arc::new(1.5f64)), 1);
        assert_eq!(r.get(X), Some(&1.5));
        assert_eq!(r.set(X.id(), Arc::new(2.5f64)), 2);
        assert_eq!(r.version(X.id()), 2);
        assert_eq!(r.get(X), Some(&2.5));
    }

    #[test]
    fn apply_respects_versions() {
        let mut r = GlobalRegistry::new();
        assert!(r.apply(V.id(), 5, Arc::new(vec![9.0f64])));
        assert!(!r.apply(V.id(), 4, Arc::new(vec![1.0f64])), "stale rejected");
        assert_eq!(r.get(V), Some(&vec![9.0]));
        assert!(r.apply(V.id(), 6, Arc::new(vec![2.0f64])));
        assert_eq!(r.get(V), Some(&vec![2.0]));
    }

    #[test]
    fn wrong_type_reads_none() {
        let mut r = GlobalRegistry::new();
        r.set(7, Arc::new(vec![1.0f64]));
        // X expects f64 at id 7 but a Vec<f64> is stored.
        assert_eq!(r.get(X), None);
    }

    #[test]
    fn ids_sorted() {
        let mut r = GlobalRegistry::new();
        r.set(3, Arc::new(0.0f64));
        r.set(1, Arc::new(0.0f64));
        assert_eq!(r.ids(), vec![1, 3]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn handles_are_copy_and_comparable() {
        let a = X;
        let b = a; // copy
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "GlobalHandle#7");
    }
}
