//! Global values (§3.5).
//!
//! Global values are *read* by update functions and *written* by sync
//! operations. Each value is a named `f64` vector (sufficient for the
//! paper's applications: convergence estimators, normalisation constants,
//! GMM parameter blocks) with a version that increases on every write, so
//! machines can skip re-broadcasts of unchanged values.

use std::collections::HashMap;

/// Registry of named global values on one machine.
#[derive(Debug, Default)]
pub struct GlobalRegistry {
    values: HashMap<String, (u64, Vec<f64>)>,
}

impl GlobalRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a global value.
    pub fn get(&self, name: &str) -> Option<&[f64]> {
        self.values.get(name).map(|(_, v)| v.as_slice())
    }

    /// Version of a value (0 = never set).
    pub fn version(&self, name: &str) -> u64 {
        self.values.get(name).map_or(0, |(ver, _)| *ver)
    }

    /// Writes a value, bumping its version.
    pub fn set(&mut self, name: &str, value: Vec<f64>) -> u64 {
        let entry = self.values.entry(name.to_string()).or_insert((0, Vec::new()));
        entry.0 += 1;
        entry.1 = value;
        entry.0
    }

    /// Applies a replicated value if `version` is newer (machines receiving
    /// broadcasts from the sync master use this).
    pub fn apply(&mut self, name: &str, version: u64, value: Vec<f64>) -> bool {
        let entry = self.values.entry(name.to_string()).or_insert((0, Vec::new()));
        if version > entry.0 {
            entry.0 = version;
            entry.1 = value;
            true
        } else {
            false
        }
    }

    /// Names of all registered values, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.values.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut r = GlobalRegistry::new();
        assert_eq!(r.get("x"), None);
        assert_eq!(r.set("x", vec![1.0]), 1);
        assert_eq!(r.get("x"), Some(&[1.0][..]));
        assert_eq!(r.set("x", vec![2.0]), 2);
        assert_eq!(r.version("x"), 2);
    }

    #[test]
    fn apply_respects_versions() {
        let mut r = GlobalRegistry::new();
        assert!(r.apply("g", 5, vec![9.0]));
        assert!(!r.apply("g", 4, vec![1.0]), "stale rejected");
        assert_eq!(r.get("g"), Some(&[9.0][..]));
        assert!(r.apply("g", 6, vec![2.0]));
        assert_eq!(r.get("g"), Some(&[2.0][..]));
    }

    #[test]
    fn names_sorted() {
        let mut r = GlobalRegistry::new();
        r.set("b", vec![]);
        r.set("a", vec![]);
        assert_eq!(r.names(), vec!["a".to_string(), "b".to_string()]);
    }
}
