//! Update functions and their execution contexts (§3.2).
//!
//! An update function is a *stateless* procedure
//! `f(v, S_v) → (S_v, T)` that transforms the data in the scope of a vertex
//! and returns the set of vertices to be executed in the future. The
//! [`UpdateContext`] is the concrete realisation of the scope `S_v`: it
//! exposes the central vertex, adjacent edges and adjacent vertices with
//! exactly the read/write permissions of the configured
//! [`ConsistencyModel`] (Fig. 2(b)) — violations panic, which is how the
//! "enforce consistency" property of Table 1 is realised.
//!
//! The same context type is used by every engine (sequential reference,
//! chromatic, locking), so application code is engine-agnostic.

use graphlab_graph::{ConsistencyModel, EdgeDir, VertexId};

use crate::globals::{GlobalHandle, GlobalRegistry};
use crate::local::LocalGraph;

/// User computation: the GraphLab update function.
pub trait UpdateFunction<V, E>: Send + Sync + 'static {
    /// Executes on the scope of `ctx.vertex()`. Mutate data through the
    /// context; call [`UpdateContext::schedule`] /
    /// [`UpdateContext::schedule_nbr`] to produce the returned task set `T`.
    fn update(&self, ctx: &mut UpdateContext<'_, V, E>);
}

impl<V, E, F> UpdateFunction<V, E> for F
where
    F: Fn(&mut UpdateContext<'_, V, E>) + Send + Sync + 'static,
{
    fn update(&self, ctx: &mut UpdateContext<'_, V, E>) {
        self(ctx)
    }
}

/// Shared update functions are update functions: callers that reuse one
/// across runs can hand [`crate::GraphLab::run`] an `Arc` clone directly.
impl<V, E, U> UpdateFunction<V, E> for std::sync::Arc<U>
where
    U: UpdateFunction<V, E> + ?Sized,
{
    fn update(&self, ctx: &mut UpdateContext<'_, V, E>) {
        (**self).update(ctx)
    }
}

/// Side effects recorded while an update executes; consumed by the engine
/// at commit time.
#[derive(Debug, Default)]
pub struct UpdateEffects {
    /// Vertices scheduled for future execution (global ids + priority).
    pub scheduled: Vec<(VertexId, f64)>,
    /// Central vertex datum was written.
    pub dirty_self: bool,
    /// Local edge indices whose data was written.
    pub dirty_edges: Vec<u32>,
    /// Local vertex indices of neighbours whose data was written (full
    /// consistency only).
    pub dirty_nbrs: Vec<u32>,
}

impl UpdateEffects {
    /// Clears for reuse.
    pub fn clear(&mut self) {
        self.scheduled.clear();
        self.dirty_self = false;
        self.dirty_edges.clear();
        self.dirty_nbrs.clear();
    }
}

/// The scope `S_v` handed to an update function.
pub struct UpdateContext<'a, V, E> {
    lg: &'a mut LocalGraph<V, E>,
    /// Local index of the central vertex.
    v: u32,
    consistency: ConsistencyModel,
    globals: &'a GlobalRegistry,
    effects: &'a mut UpdateEffects,
}

impl<'a, V, E> UpdateContext<'a, V, E> {
    /// Builds a context. `v` is the central vertex's local index; it must
    /// be owned by the machine.
    pub fn new(
        lg: &'a mut LocalGraph<V, E>,
        v: u32,
        consistency: ConsistencyModel,
        globals: &'a GlobalRegistry,
        effects: &'a mut UpdateEffects,
    ) -> Self {
        debug_assert!(lg.owns_vertex(v), "updates execute on locally owned vertices");
        UpdateContext { lg, v, consistency, globals, effects }
    }

    // ---- identity ----

    /// Global id of the central vertex.
    #[inline]
    pub fn vertex(&self) -> VertexId {
        self.lg.vertex_gvid(self.v)
    }

    /// Number of vertices in the *global* graph (`n` in PageRank's α/n).
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.lg.total_vertices()
    }

    /// The consistency model this execution runs under.
    #[inline]
    pub fn consistency(&self) -> ConsistencyModel {
        self.consistency
    }

    // ---- central vertex data ----

    /// Read the central vertex datum.
    #[inline]
    pub fn vertex_data(&self) -> &V {
        self.lg.vertex_data(self.v)
    }

    /// Write the central vertex datum (allowed in every model).
    #[inline]
    pub fn vertex_data_mut(&mut self) -> &mut V {
        self.effects.dirty_self = true;
        self.lg.vertex_data_mut(self.v)
    }

    // ---- neighbourhood ----

    /// Number of adjacent edges (parallel edges counted individually).
    #[inline]
    pub fn num_neighbors(&self) -> usize {
        self.lg.adj(self.v).len()
    }

    /// Global id of the `i`-th neighbour.
    #[inline]
    pub fn nbr(&self, i: usize) -> VertexId {
        self.lg.vertex_gvid(self.lg.adj(self.v)[i].nbr)
    }

    /// Direction of the `i`-th adjacent edge relative to the centre.
    #[inline]
    pub fn nbr_dir(&self, i: usize) -> EdgeDir {
        self.lg.adj(self.v)[i].dir
    }

    /// Read the `i`-th neighbour's vertex datum.
    ///
    /// # Panics
    /// Under vertex consistency (no read access to neighbours, Fig. 2(b)).
    #[inline]
    pub fn nbr_data(&self, i: usize) -> &V {
        assert!(
            self.consistency.can_read_neighbors(),
            "{} consistency forbids reading neighbour data",
            self.consistency
        );
        self.lg.vertex_data(self.lg.adj(self.v)[i].nbr)
    }

    /// Write the `i`-th neighbour's vertex datum.
    ///
    /// # Panics
    /// Unless running under full consistency.
    #[inline]
    pub fn nbr_data_mut(&mut self, i: usize) -> &mut V {
        assert!(
            self.consistency.can_write_neighbors(),
            "{} consistency forbids writing neighbour data",
            self.consistency
        );
        let nbr = self.lg.adj(self.v)[i].nbr;
        self.effects.dirty_nbrs.push(nbr);
        self.lg.vertex_data_mut(nbr)
    }

    /// Read the `i`-th adjacent edge's datum.
    ///
    /// # Panics
    /// Under vertex consistency.
    #[inline]
    pub fn edge_data(&self, i: usize) -> &E {
        assert!(
            self.consistency.can_access_edges(),
            "{} consistency forbids accessing edge data",
            self.consistency
        );
        self.lg.edge_data(self.lg.adj(self.v)[i].edge)
    }

    /// Write the `i`-th adjacent edge's datum.
    ///
    /// # Panics
    /// Under vertex consistency.
    #[inline]
    pub fn edge_data_mut(&mut self, i: usize) -> &mut E {
        assert!(
            self.consistency.can_access_edges(),
            "{} consistency forbids accessing edge data",
            self.consistency
        );
        let edge = self.lg.adj(self.v)[i].edge;
        self.effects.dirty_edges.push(edge);
        self.lg.edge_data_mut(edge)
    }

    // ---- scheduling ----

    /// Schedules the `i`-th neighbour with `priority` (higher = sooner
    /// under the priority scheduler; ignored by FIFO/sweep).
    #[inline]
    pub fn schedule_nbr(&mut self, i: usize, priority: f64) {
        let g = self.nbr(i);
        self.effects.scheduled.push((g, priority));
    }

    /// Re-schedules the central vertex itself.
    #[inline]
    pub fn schedule_self(&mut self, priority: f64) {
        let g = self.vertex();
        self.effects.scheduled.push((g, priority));
    }

    /// Schedules an arbitrary vertex of the scope by global id (must be the
    /// centre or an adjacent vertex — GraphLab update functions can only
    /// reach their scope).
    pub fn schedule(&mut self, v: VertexId, priority: f64) {
        debug_assert!(
            v == self.vertex() || (0..self.num_neighbors()).any(|i| self.nbr(i) == v),
            "scheduled vertex {v} outside the scope of {}",
            self.vertex()
        );
        self.effects.scheduled.push((v, priority));
    }

    // ---- globals (§3.5) ----

    /// Typed read of a global value maintained by a sync operation,
    /// keyed by the [`GlobalHandle`] it was registered under
    /// ([`crate::GraphLab::sync`]). `None` until the sync first runs.
    pub fn global<T: 'static>(&self, handle: GlobalHandle<T>) -> Option<&T> {
        self.globals.get(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_graph::{DataGraph, GraphBuilder};

    fn tri() -> DataGraph<f64, f64> {
        let mut b = GraphBuilder::new();
        let v: Vec<_> = (0..3).map(|i| b.add_vertex(i as f64)).collect();
        b.add_edge(v[0], v[1], 0.5).unwrap();
        b.add_edge(v[1], v[2], 1.5).unwrap();
        b.add_edge(v[2], v[0], 2.5).unwrap();
        b.build()
    }

    fn ctx_fixture(
        lg: &mut LocalGraph<f64, f64>,
        v: u32,
        model: ConsistencyModel,
        globals: &GlobalRegistry,
        effects: &mut UpdateEffects,
        f: impl FnOnce(&mut UpdateContext<'_, f64, f64>),
    ) {
        let mut ctx = UpdateContext::new(lg, v, model, globals, effects);
        f(&mut ctx);
    }

    #[test]
    fn edge_consistency_read_neighbors_write_edges() {
        let g = tri();
        let mut lg = LocalGraph::single_machine(&g, None);
        let globals = GlobalRegistry::new();
        let mut fx = UpdateEffects::default();
        ctx_fixture(&mut lg, 0, ConsistencyModel::Edge, &globals, &mut fx, |ctx| {
            assert_eq!(ctx.vertex(), VertexId(0));
            assert_eq!(ctx.num_neighbors(), 2);
            let total: f64 = (0..ctx.num_neighbors()).map(|i| ctx.nbr_data(i)).sum();
            assert_eq!(total, 3.0);
            *ctx.edge_data_mut(0) += 1.0;
            *ctx.vertex_data_mut() = 42.0;
            ctx.schedule_nbr(1, 2.0);
        });
        assert!(fx.dirty_self);
        assert_eq!(fx.dirty_edges.len(), 1);
        assert_eq!(fx.scheduled.len(), 1);
        assert_eq!(*lg.vertex_data(0), 42.0);
    }

    #[test]
    #[should_panic(expected = "forbids writing neighbour")]
    fn edge_consistency_rejects_neighbor_write() {
        let g = tri();
        let mut lg = LocalGraph::single_machine(&g, None);
        let globals = GlobalRegistry::new();
        let mut fx = UpdateEffects::default();
        ctx_fixture(&mut lg, 0, ConsistencyModel::Edge, &globals, &mut fx, |ctx| {
            *ctx.nbr_data_mut(0) = 1.0;
        });
    }

    #[test]
    #[should_panic(expected = "forbids reading neighbour")]
    fn vertex_consistency_rejects_neighbor_read() {
        let g = tri();
        let mut lg = LocalGraph::single_machine(&g, None);
        let globals = GlobalRegistry::new();
        let mut fx = UpdateEffects::default();
        ctx_fixture(&mut lg, 0, ConsistencyModel::Vertex, &globals, &mut fx, |ctx| {
            let _ = ctx.nbr_data(0);
        });
    }

    #[test]
    #[should_panic(expected = "forbids accessing edge")]
    fn vertex_consistency_rejects_edge_access() {
        let g = tri();
        let mut lg = LocalGraph::single_machine(&g, None);
        let globals = GlobalRegistry::new();
        let mut fx = UpdateEffects::default();
        ctx_fixture(&mut lg, 0, ConsistencyModel::Vertex, &globals, &mut fx, |ctx| {
            let _ = ctx.edge_data(0);
        });
    }

    #[test]
    fn full_consistency_allows_neighbor_write() {
        let g = tri();
        let mut lg = LocalGraph::single_machine(&g, None);
        let globals = GlobalRegistry::new();
        let mut fx = UpdateEffects::default();
        ctx_fixture(&mut lg, 1, ConsistencyModel::Full, &globals, &mut fx, |ctx| {
            *ctx.nbr_data_mut(0) = -5.0;
        });
        assert_eq!(fx.dirty_nbrs.len(), 1);
    }

    #[test]
    fn globals_visible() {
        const NORM: GlobalHandle<Vec<f64>> = GlobalHandle::new(1);
        const MISSING: GlobalHandle<f64> = GlobalHandle::new(2);
        let g = tri();
        let mut lg = LocalGraph::single_machine(&g, None);
        let mut globals = GlobalRegistry::new();
        globals.set(NORM.id(), std::sync::Arc::new(vec![2.5, 3.5]));
        let mut fx = UpdateEffects::default();
        ctx_fixture(&mut lg, 0, ConsistencyModel::Edge, &globals, &mut fx, |ctx| {
            assert_eq!(ctx.global(NORM), Some(&vec![2.5, 3.5]));
            assert_eq!(ctx.global(MISSING), None);
        });
    }

    #[test]
    fn closures_are_update_functions() {
        fn takes_update<V, E, U: UpdateFunction<V, E>>(_u: &U) {}
        let f = |ctx: &mut UpdateContext<'_, f64, f64>| {
            let _ = ctx.vertex();
        };
        takes_update(&f);
    }
}
