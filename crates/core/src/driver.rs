//! Engine drivers: ingress, machine-thread spawning, and result collection
//! (Fig. 5(a) "System Overview").
//!
//! The single public entry point is the [`crate::GraphLab`] program builder
//! (`crate::program`); this module holds the distributed skeleton it
//! drives. A distributed run mirrors the paper's deployment flow: the data
//! graph is over-partitioned into atoms and written to the DFS
//! (initialisation phase), atoms are placed onto machines via the atom
//! index, each machine loads its part in parallel, the engine executes,
//! and final data is collected. The machine topology depends on the
//! configured [`Transport`]: under [`Transport::Sim`] machines are OS
//! threads communicating through the deterministic [`SimNet`] fabric and
//! results return through thread join; under [`Transport::Tcp`] this
//! process *is* one machine of a multi-process cluster wired by
//! [`TcpNet`], runs only its own machine loop, and writes back only the
//! vertices it owns (the cross-process gather is the spawn harness's job,
//! standing in for the final gather the real system performs through the
//! DFS).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphlab_atoms::{build_atoms, load_machine_part, write_atoms, SimDfs, VertexPartition};
use graphlab_atoms::placement::Placement;
use graphlab_graph::{Coloring, DataGraph, EdgeId, MachineId, VertexId};
use graphlab_net::codec::Codec;
use graphlab_net::{Endpoint, SimNet, TcpNet, Transport};

use crate::chromatic::ChromaticMachine;
use crate::config::EngineConfig;
use crate::globals::GlobalRegistry;
use crate::locking::LockingMachine;
use crate::metrics::{sample_timeline, EngineMetrics, LiveCounters, PhaseTimes};
use crate::reference::InitialSchedule;
use crate::sync::SyncList;
use crate::update::UpdateFunction;

/// Which engine executes the program (§3.4 execution model; §4.2 engines).
///
/// All three run the same GraphLab abstraction — data graph + update
/// function + sync + consistency — interchangeably; pick through
/// [`crate::GraphLab::engine`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// The literal sequential execution model (Alg. 2): single-threaded,
    /// the serializability oracle for the distributed engines.
    Sequential,
    /// The chromatic engine (§4.2.1): partially synchronous colour-step
    /// execution driven by a graph colouring (auto-computed from the
    /// consistency model unless one is supplied).
    Chromatic,
    /// The distributed locking engine (§4.2.2): fully asynchronous
    /// pipelined locking with prioritised dynamic scheduling.
    Locking,
}

/// Convergence predicate over finalized globals, evaluated by the sync
/// master at sync boundaries (§3.5 aggregate-driven termination).
pub(crate) type StopFn = Arc<dyn Fn(&GlobalRegistry) -> bool + Send + Sync>;

/// How to over-partition the data graph into atoms (phase one of §4.1).
#[derive(Clone)]
pub enum PartitionStrategy {
    /// Random hash partitioning (Table 2: Netflix, NER).
    RandomHash,
    /// BFS region growing + refinement (stands in for Metis; Table 2:
    /// CoSeg's locality-aware partition and the §4.2.2 mesh).
    BfsGrow,
    /// Caller-supplied assignment (domain-specific partitions such as
    /// CoSeg frame blocks, or adversarial partitions for Fig. 8(b)).
    Custom(Arc<VertexPartition>),
}

impl std::fmt::Debug for PartitionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionStrategy::RandomHash => write!(f, "RandomHash"),
            PartitionStrategy::BfsGrow => write!(f, "BfsGrow"),
            PartitionStrategy::Custom(_) => write!(f, "Custom"),
        }
    }
}

/// Result of an engine run. The caller's graph data is updated in place;
/// this carries everything else.
pub struct EngineOutput {
    /// Run metrics.
    pub metrics: EngineMetrics,
    /// Final global values (typed, keyed by [`crate::GlobalHandle`]), from
    /// the sync master.
    pub globals: GlobalRegistry,
    /// The simulated DFS used for atoms and snapshots (inspect snapshot
    /// files, restore checkpoints). Fresh and empty for sequential runs.
    pub dfs: Arc<SimDfs>,
    /// `Some(reason)` when the run could not complete — an injected
    /// machine failure proved unrecoverable (no complete checkpoint, a
    /// permanent kill, or a stalled recovery round), or a TCP run failed
    /// to establish its mesh. The graph then holds whatever state the
    /// machines had; do not trust it.
    /// [`crate::GraphLab::run`] panics on this; [`crate::GraphLab::try_run`]
    /// surfaces it as an `Err`.
    pub failure: Option<String>,
    /// `Some(ids)` for a [`Transport::Tcp`] run: the vertices this
    /// process's machine owns — the only ones written back into the
    /// caller's graph. `None` for sim/sequential runs, where the whole
    /// graph is written back.
    pub owned: Option<Vec<VertexId>>,
}

/// What one machine thread hands back at join time.
pub(crate) struct MachineResult<V, E> {
    pub vrows: Vec<(VertexId, V)>,
    pub erows: Vec<(EdgeId, E)>,
    pub globals: GlobalRegistry,
    pub updates: u64,
    pub update_counts: Vec<(VertexId, u64)>,
    pub steps: u64,
    pub snapshots: u64,
    pub recoveries: u64,
    pub adoptions: u64,
    /// Permanently dead under [`crate::RecoveryMode::Adopt`]: this machine
    /// exited cleanly mid-run and its rows (empty by contract) must not
    /// overwrite the survivors' adopted results.
    pub dead: bool,
    pub failed: Option<String>,
    pub phase: PhaseTimes,
    /// Lock-chain span histogram for chains this machine initiated
    /// (`chain_spans[s]` = chains touching `s` machines; empty for the
    /// chromatic engine).
    pub chain_spans: Vec<u64>,
    /// Normal-phase receive deadlines that expired with nothing to do.
    pub idle_wakeups: u64,
}

/// Everything a machine thread needs at spawn (endpoint travels
/// separately so the machine loop can own it).
pub(crate) struct MachineSetup<V, E, U: ?Sized> {
    pub dfs: Arc<SimDfs>,
    pub index: Arc<graphlab_atoms::AtomIndex>,
    pub placement: Arc<Placement>,
    pub coloring: Arc<Coloring>,
    pub update: Arc<U>,
    pub syncs: SyncList<V, E>,
    pub stop: Option<StopFn>,
    pub initial: Arc<InitialSchedule>,
    pub config: EngineConfig,
    pub counters: Arc<LiveCounters>,
    pub snap_prefix: String,
}

pub(crate) fn make_partition<V, E>(
    graph: &DataGraph<V, E>,
    strategy: &PartitionStrategy,
    num_atoms: usize,
    seed: u64,
) -> VertexPartition {
    match strategy {
        PartitionStrategy::RandomHash => {
            VertexPartition::random_hash(graph.num_vertices(), num_atoms, seed)
        }
        PartitionStrategy::BfsGrow => VertexPartition::bfs_grow(graph, num_atoms, seed, 2),
        PartitionStrategy::Custom(p) => (**p).clone(),
    }
}

/// Shared distributed skeleton: ingress → spawn `run_machine` per machine
/// → join → write back. `engine` selects which machine loop runs; the
/// sequential engine never enters here.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_distributed<V, E, U>(
    engine: EngineKind,
    graph: &mut DataGraph<V, E>,
    coloring: Coloring,
    update: Arc<U>,
    initial: InitialSchedule,
    syncs: SyncList<V, E>,
    stop: Option<StopFn>,
    config: &EngineConfig,
    strategy: &PartitionStrategy,
) -> EngineOutput
where
    V: Codec + Clone + Send + Sync + 'static,
    E: Codec + Clone + Send + Sync + 'static,
    U: UpdateFunction<V, E>,
{
    assert!(engine != EngineKind::Sequential, "sequential runs bypass the distributed skeleton");
    assert!(config.num_machines >= 1);
    assert!(
        config.num_atoms >= config.num_machines,
        "need at least one atom per machine"
    );

    // Over real sockets a crashed peer never announces itself — lease
    // expiry is the only failure detector, so it defaults on. The period
    // is clamped to the transport's floor: below it, a peer blocked in one
    // reconnect stall looks dead and the master adopts live machines.
    let config = &{
        let mut c = config.clone();
        if matches!(c.transport, Transport::Tcp(_)) {
            let period = c.lease.unwrap_or(graphlab_net::MIN_TCP_LEASE);
            c.lease = Some(period.max(graphlab_net::MIN_TCP_LEASE));
        }
        c
    };

    // Initialisation phase (Fig. 5(a)): atoms onto the DFS.
    let prefix = "graph";
    let partition = make_partition(graph, strategy, config.num_atoms, config.seed);
    let dfs = Arc::new(SimDfs::new());
    let (atoms, index) = build_atoms(graph, &partition, prefix);
    write_atoms(&dfs, prefix, &atoms, &index);
    drop(atoms);
    let placement =
        Arc::new(Placement::with_strategy(&index, config.num_machines, config.placement));
    let index = Arc::new(index);
    let coloring = Arc::new(coloring);
    let initial = Arc::new(initial);
    let counters = LiveCounters::new();

    let make_setup = |counters: &Arc<LiveCounters>| -> MachineSetup<V, E, U> {
        MachineSetup {
            dfs: Arc::clone(&dfs),
            index: Arc::clone(&index),
            placement: Arc::clone(&placement),
            coloring: Arc::clone(&coloring),
            update: Arc::clone(&update),
            syncs: Arc::clone(&syncs),
            stop: stop.clone(),
            initial: Arc::clone(&initial),
            config: config.clone(),
            counters: Arc::clone(counters),
            snap_prefix: "ckpt".to_string(),
        }
    };

    let sampler = if config.trace {
        Some(sample_timeline(&counters, Duration::from_millis(5)))
    } else {
        None
    };

    // Real-socket runs: this process is exactly one machine of the mesh.
    if let Transport::Tcp(tcp) = &config.transport {
        assert!(
            config.faults.as_ref().is_none_or(|p| p.is_empty()),
            "fault plans are SimNet-only; TCP runs take real faults instead"
        );
        assert_eq!(
            tcp.peers.len(),
            config.num_machines,
            "TCP peer list must name every machine"
        );
        let machine = tcp.machine;
        // lint: allow(determinism) -- wall-clock phase metrics (EngineMetrics); measurement only, never crosses the wire
        let start = Instant::now();
        let result = match TcpNet::connect(tcp) {
            Ok((net, ep)) => {
                let r = run_machine(engine, ep.into(), make_setup(&counters));
                // Graceful close: FIN after any queued bytes, so slower
                // peers drain our final protocol messages; full teardown
                // happens when `net` drops below.
                net.shutdown();
                Ok((net, r))
            }
            Err(e) => Err(format!("machine {machine}: tcp mesh setup failed: {e}")),
        };
        let runtime = start.elapsed();
        counters.done.store(true, Ordering::Relaxed);
        let updates_timeline = sampler.map(|s| s.join().expect("sampler")).unwrap_or_default();

        let (net, r) = match result {
            Ok(x) => x,
            Err(failure) => {
                return EngineOutput {
                    metrics: EngineMetrics::default(),
                    globals: GlobalRegistry::new(),
                    dfs,
                    failure: Some(failure),
                    owned: Some(Vec::new()),
                }
            }
        };

        // Write back only what this machine owns; the spawn harness merges
        // the per-process results.
        let mut owned = Vec::with_capacity(r.vrows.len());
        for (v, d) in r.vrows {
            *graph.vertex_data_mut(v) = d;
            owned.push(v);
        }
        for (e, d) in r.erows {
            *graph.edge_data_mut(e) = d;
        }
        let mut update_counts =
            if config.trace { vec![0u64; graph.num_vertices()] } else { Vec::new() };
        for (v, c) in r.update_counts {
            update_counts[v.index()] += c;
        }
        let mut phases = vec![PhaseTimes::default(); config.num_machines];
        phases[machine.index()] = r.phase;
        let mut idle_wakeups = vec![0u64; config.num_machines];
        idle_wakeups[machine.index()] = r.idle_wakeups;

        let stats = net.stats();
        let metrics = EngineMetrics {
            updates: r.updates,
            runtime,
            update_counts,
            updates_timeline,
            bytes_sent_per_machine: stats.all().iter().map(|t| t.bytes_sent).collect(),
            total_messages: stats.total_msgs(),
            bytes_by_kind: stats.by_kind(),
            steps: r.steps,
            snapshots: r.snapshots,
            recoveries: r.recoveries,
            adoptions: r.adoptions,
            phases,
            chain_spans: r.chain_spans,
            idle_wakeups,
        };
        return EngineOutput {
            metrics,
            globals: r.globals,
            dfs,
            failure: r.failed,
            owned: Some(owned),
        };
    }

    let Transport::Sim(latency) = &config.transport else { unreachable!("tcp handled above") };
    let (net, endpoints) = match &config.faults {
        Some(plan) if !plan.is_empty() => {
            SimNet::with_faults(config.num_machines, *latency, config.seed, plan.clone())
        }
        _ => SimNet::with_seed(config.num_machines, *latency, config.seed),
    };

    // lint: allow(determinism) -- wall-clock phase metrics (EngineMetrics); measurement only, never crosses the wire
    let start = Instant::now();
    let mut handles = Vec::with_capacity(config.num_machines);
    for endpoint in endpoints {
        let setup = make_setup(&counters);
        let kind = engine;
        handles.push(
            std::thread::Builder::new()
                .name(format!("machine-{}", endpoint.id()))
                .spawn(move || run_machine(kind, endpoint.into(), setup))
                .expect("spawn machine thread"),
        );
    }

    let mut results: Vec<MachineResult<V, E>> = Vec::with_capacity(handles.len());
    for h in handles {
        results.push(h.join().expect("machine thread panicked"));
    }
    let runtime = start.elapsed();
    counters.done.store(true, Ordering::Relaxed);
    let updates_timeline = sampler.map(|s| s.join().expect("sampler")).unwrap_or_default();

    // Write final data back into the caller's graph.
    let mut update_counts =
        if config.trace { vec![0u64; graph.num_vertices()] } else { Vec::new() };
    let mut total_updates = 0u64;
    let mut steps = 0u64;
    let mut snapshots = 0u64;
    let mut recoveries = 0u64;
    let mut adoptions = 0u64;
    let mut failure: Option<String> = None;
    let mut globals = GlobalRegistry::new();
    let mut phases = vec![PhaseTimes::default(); config.num_machines];
    let mut chain_spans: Vec<u64> = Vec::new();
    let mut idle_wakeups = vec![0u64; config.num_machines];
    for (i, r) in results.into_iter().enumerate() {
        // A dead machine's rows are stale (the survivors adopted its
        // atoms and carry the authoritative values); write back nothing
        // from it. Its rows are empty by contract — this guards the
        // contract rather than trusting it.
        if !r.dead {
            for (v, d) in r.vrows {
                *graph.vertex_data_mut(v) = d;
            }
            for (e, d) in r.erows {
                *graph.edge_data_mut(e) = d;
            }
        }
        for (v, c) in r.update_counts {
            update_counts[v.index()] += c;
        }
        total_updates += r.updates;
        steps = steps.max(r.steps);
        snapshots = snapshots.max(r.snapshots);
        recoveries = recoveries.max(r.recoveries);
        adoptions = adoptions.max(r.adoptions);
        if failure.is_none() {
            failure = r.failed;
        }
        if i == 0 {
            globals = r.globals;
        }
        phases[i] = r.phase;
        if chain_spans.len() < r.chain_spans.len() {
            chain_spans.resize(r.chain_spans.len(), 0);
        }
        for (s, &n) in r.chain_spans.iter().enumerate() {
            chain_spans[s] += n;
        }
        idle_wakeups[i] = r.idle_wakeups;
    }

    let stats = net.stats();
    let metrics = EngineMetrics {
        updates: total_updates,
        runtime,
        update_counts,
        updates_timeline,
        bytes_sent_per_machine: stats.all().iter().map(|t| t.bytes_sent).collect(),
        total_messages: stats.total_msgs(),
        bytes_by_kind: stats.by_kind(),
        steps,
        snapshots,
        recoveries,
        adoptions,
        phases,
        chain_spans,
        idle_wakeups,
    };
    EngineOutput { metrics, globals, dfs, failure, owned: None }
}

/// Runs one machine's engine loop on the given (already-connected)
/// endpoint, splitting its wall clock into setup / compute / net-wait at
/// the transport seam.
fn run_machine<V, E, U>(
    kind: EngineKind,
    endpoint: Endpoint,
    setup: MachineSetup<V, E, U>,
) -> MachineResult<V, E>
where
    V: Codec + Clone + Send + Sync + 'static,
    E: Codec + Clone + Send + Sync + 'static,
    U: UpdateFunction<V, E>,
{
    // lint: allow(determinism) -- wall-clock phase metrics (EngineMetrics); measurement only, never crosses the wire
    let t0 = Instant::now();
    let machine = endpoint.id();
    let wait = endpoint.net_wait_counter();
    let init = load_machine_part::<V, E>(&setup.dfs, &setup.index, &setup.placement, machine)
        .expect("ingress");
    let setup_time = t0.elapsed();
    let mut r = match kind {
        EngineKind::Chromatic => ChromaticMachine::new(endpoint, setup, init).run(),
        EngineKind::Locking => LockingMachine::new(endpoint, setup, init).run(),
        EngineKind::Sequential => unreachable!("sequential runs bypass the machine loop"),
    };
    let total = t0.elapsed();
    let net_wait = Duration::from_nanos(wait.load(Ordering::Relaxed));
    r.phase = PhaseTimes {
        setup: setup_time,
        compute: total.saturating_sub(setup_time).saturating_sub(net_wait),
        net_wait,
    };
    r
}

/// Convenience: a [`DistributedGraph`] bundles the persisted atom
/// representation for callers that want to reuse one ingress across runs
/// (e.g. cluster-size sweeps, Fig. 6(a)).
pub struct DistributedGraph {
    /// Simulated DFS holding the atom journals.
    pub dfs: Arc<SimDfs>,
    /// Atom index (meta-graph).
    pub index: Arc<graphlab_atoms::AtomIndex>,
}

impl DistributedGraph {
    /// Builds atoms for `graph` under `strategy` and persists them.
    pub fn build<V, E>(
        graph: &DataGraph<V, E>,
        strategy: &PartitionStrategy,
        num_atoms: usize,
        seed: u64,
    ) -> Self
    where
        V: Codec + Clone,
        E: Codec + Clone,
    {
        let partition = make_partition(graph, strategy, num_atoms, seed);
        let dfs = Arc::new(SimDfs::new());
        let (atoms, index) = build_atoms(graph, &partition, "graph");
        write_atoms(&dfs, "graph", &atoms, &index);
        DistributedGraph { dfs, index: Arc::new(index) }
    }

    /// Places the atoms onto `num_machines` machines and loads every
    /// machine's part (ingress check / inspection).
    pub fn load_all<V, E>(&self, num_machines: usize) -> Vec<graphlab_atoms::LocalGraphInit<V, E>>
    where
        V: Codec,
        E: Codec,
    {
        let placement = Placement::compute(&self.index, num_machines);
        (0..num_machines)
            .map(|m| {
                load_machine_part(&self.dfs, &self.index, &placement, MachineId::from(m))
                    .expect("ingress")
            })
            .collect()
    }
}
