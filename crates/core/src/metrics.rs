//! Engine instrumentation backing the paper's evaluation figures.
//!
//! The counters here are *simulation instrumentation*: shared atomics that
//! bypass the share-nothing message rule (the real system would aggregate
//! them post-hoc from per-machine logs). They never influence engine
//! behaviour.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Live counters shared by all machine threads of one engine run.
#[derive(Debug)]
pub struct LiveCounters {
    /// Total update-function executions.
    pub updates: AtomicU64,
    /// Set once the engine halts (stops the timeline sampler).
    pub done: AtomicBool,
}

impl LiveCounters {
    /// Fresh counters.
    pub fn new() -> Arc<Self> {
        Arc::new(LiveCounters { updates: AtomicU64::new(0), done: AtomicBool::new(false) })
    }
}

/// Samples `(elapsed seconds, cumulative updates)` on a fixed cadence —
/// the raw series behind Fig. 4(a)/(b).
pub fn sample_timeline(
    counters: &Arc<LiveCounters>,
    period: Duration,
) -> std::thread::JoinHandle<Vec<(f64, u64)>> {
    let counters = Arc::clone(counters);
    std::thread::spawn(move || {
        let start = Instant::now();
        let mut series = Vec::new();
        loop {
            series.push((start.elapsed().as_secs_f64(), counters.updates.load(Ordering::Relaxed)));
            if counters.done.load(Ordering::Relaxed) {
                return series;
            }
            std::thread::sleep(period);
        }
    })
}

/// Wall-clock breakdown of one machine's run: where its time actually
/// went. Measured at the transport seam and the driver, not inside the
/// engines — `net_wait` is time blocked in `recv`/`recv_timeout`, `setup`
/// is graph partitioning/loading, and `compute` is the remainder of the
/// machine's wall clock. Meaningful for both backends, but only TCP runs
/// put real network latency in `net_wait`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimes {
    /// Ingress: building this machine's part of the graph.
    pub setup: Duration,
    /// Engine time not spent blocked on the network.
    pub compute: Duration,
    /// Time blocked in `recv`/`recv_timeout` at the transport seam.
    pub net_wait: Duration,
}

impl PhaseTimes {
    /// Total wall clock of the machine's run.
    pub fn total(&self) -> Duration {
        self.setup + self.compute + self.net_wait
    }
}

/// Final metrics of an engine run.
#[derive(Clone, Debug, Default)]
pub struct EngineMetrics {
    /// Total update-function executions.
    pub updates: u64,
    /// Wall-clock runtime (including snapshotting, excluding ingress).
    pub runtime: Duration,
    /// Per-vertex update counts indexed by global vertex id (empty unless
    /// tracing was enabled) — the histogram source of Fig. 1(b).
    pub update_counts: Vec<u64>,
    /// Sampled `(seconds, cumulative updates)` series (empty unless
    /// tracing) — Fig. 4.
    pub updates_timeline: Vec<(f64, u64)>,
    /// Wire bytes sent per machine — Fig. 6(b).
    pub bytes_sent_per_machine: Vec<u64>,
    /// Total messages across the cluster.
    pub total_messages: u64,
    /// Delivered traffic by message kind (`(kind, traffic)` sorted by
    /// kind; batch sub-messages attributed to their real kinds, compressed
    /// envelopes to `K_ZIP`) — the `repro -- abl-bytes` breakdown.
    pub bytes_by_kind: Vec<(u16, graphlab_net::KindTraffic)>,
    /// Engine-specific progress unit: colour-steps for the chromatic
    /// engine, scheduler passes for sweep-style runs, 0 otherwise.
    pub steps: u64,
    /// Snapshots completed during the run.
    pub snapshots: u64,
    /// Checkpoint rollbacks completed after injected machine failures
    /// (§4.3 recovery). Updates executed before a rollback re-execute, so
    /// `updates` includes the recomputation cost a failure causes.
    pub recoveries: u64,
    /// Restart-free adoption rounds completed (a permanent machine death
    /// under [`crate::RecoveryMode::Adopt`]: the survivors absorbed the
    /// dead machine's atoms without rolling the cluster back). Counted
    /// per round, not per machine.
    pub adoptions: u64,
    /// Per-machine wall-clock phase breakdown (setup/compute/net-wait),
    /// indexed by machine id. In a TCP run each process fills only its own
    /// row; the spawn harness merges them.
    pub phases: Vec<PhaseTimes>,
    /// Lock-chain span histogram (locking engine): `chain_spans[s]` counts
    /// distributed lock chains that touched exactly `s` machines. Span 1
    /// is a chain resolved entirely on the initiator; placement quality
    /// shows up directly here (`repro -- abl-control`).
    pub chain_spans: Vec<u64>,
    /// Per-machine count of timed receive deadlines that expired with no
    /// message and no runnable work (locking engine, normal phase only),
    /// indexed by machine id. With message-driven master triggers an idle
    /// cluster takes zero — pinned by the idle-cluster regression.
    pub idle_wakeups: Vec<u64>,
}

impl EngineMetrics {
    /// Aggregate throughput in updates per second.
    pub fn updates_per_second(&self) -> f64 {
        let secs = self.runtime.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.updates as f64 / secs
    }

    /// Mean number of machines a distributed lock chain touched (0.0 when
    /// no chains were recorded — e.g. chromatic runs).
    pub fn mean_chain_span(&self) -> f64 {
        let chains: u64 = self.chain_spans.iter().sum();
        if chains == 0 {
            return 0.0;
        }
        let weighted: u64 =
            self.chain_spans.iter().enumerate().map(|(s, &n)| s as u64 * n).sum();
        weighted as f64 / chains as f64
    }

    /// Mean per-machine bandwidth in MB/s (Fig. 6(b)'s y-axis).
    pub fn mbps_per_machine(&self) -> f64 {
        if self.bytes_sent_per_machine.is_empty() || self.runtime.is_zero() {
            return 0.0;
        }
        let mean_bytes = self.bytes_sent_per_machine.iter().sum::<u64>() as f64
            / self.bytes_sent_per_machine.len() as f64;
        mean_bytes / 1_000_000.0 / self.runtime.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let m = EngineMetrics {
            updates: 1000,
            runtime: Duration::from_secs(2),
            bytes_sent_per_machine: vec![4_000_000, 8_000_000],
            ..Default::default()
        };
        assert_eq!(m.updates_per_second(), 500.0);
        assert!((m.mbps_per_machine() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_runtime_is_safe() {
        let m = EngineMetrics::default();
        assert_eq!(m.updates_per_second(), 0.0);
        assert_eq!(m.mbps_per_machine(), 0.0);
        assert_eq!(m.mean_chain_span(), 0.0);
    }

    #[test]
    fn mean_chain_span_weights_by_count() {
        // 3 chains of span 1, 1 chain of span 3 → mean (3·1 + 1·3)/4 = 1.5.
        let m = EngineMetrics { chain_spans: vec![0, 3, 0, 1], ..Default::default() };
        assert!((m.mean_chain_span() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn timeline_sampler_terminates() {
        let counters = LiveCounters::new();
        let handle = sample_timeline(&counters, Duration::from_millis(1));
        counters.updates.store(42, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(10));
        counters.done.store(true, Ordering::Relaxed);
        let series = handle.join().unwrap();
        assert!(!series.is_empty());
        assert_eq!(series.last().unwrap().1, 42);
    }
}
