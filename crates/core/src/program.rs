//! The `GraphLab` program builder — the single typed entry point for
//! running a GraphLab program (§3: data graph + update function + sync +
//! consistency) on any engine.
//!
//! ```
//! use graphlab_core::{EngineKind, GraphLab};
//! use graphlab_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new();
//! let v0 = b.add_vertex(1.0f64);
//! let v1 = b.add_vertex(2.0f64);
//! b.add_edge(v0, v1, ()).unwrap();
//! let mut graph = b.build();
//!
//! let out = GraphLab::on(&mut graph)
//!     .engine(EngineKind::Sequential)
//!     .run(|ctx: &mut graphlab_core::UpdateContext<'_, f64, ()>| {
//!         *ctx.vertex_data_mut() += 1.0;
//!     });
//! assert_eq!(out.metrics.updates, 2);
//! ```
//!
//! The same program runs unchanged on the distributed engines by swapping
//! [`GraphLab::engine`]; the chromatic engine's colouring is auto-computed
//! from the consistency model (first-order for edge consistency,
//! second-order for full, single-colour for vertex) and verified, or a
//! known colouring (e.g. bipartite) can be supplied with
//! [`GraphLab::coloring`]. Sync operations register typed [`Aggregate`]s
//! under [`GlobalHandle`]s, and [`GraphLab::stop_when`] makes termination
//! first-class: a predicate over the finalized globals, evaluated at sync
//! boundaries — the paper's aggregate-driven convergence checks — composing
//! with `max_updates`.

use std::sync::Arc;

use graphlab_atoms::PlacementStrategy;
use graphlab_graph::{
    greedy_coloring, second_order_coloring, verify_coloring, Coloring, ConsistencyModel,
    DataGraph,
};
use graphlab_net::codec::Codec;
use graphlab_net::{FaultPlan, LatencyModel, Transport};

use crate::config::{EngineConfig, RecoveryMode, SnapshotConfig};
use crate::driver::{run_distributed, EngineKind, EngineOutput, PartitionStrategy, StopFn};
use crate::globals::{GlobalHandle, GlobalRegistry};
use crate::reference::{run_sequential_program, InitialSchedule};
use crate::scheduler::SchedulerKind;
use crate::sync::{Aggregate, ErasedSync, RegisteredSync, SyncList};
use crate::update::UpdateFunction;

/// How often a registered sync operation must be re-evaluated.
///
/// Engines may evaluate *more* often at their natural boundaries: the
/// chromatic engine runs every registered sync between colour cycles
/// regardless of cadence (its cycle barrier makes them free and
/// consistent), and every engine runs a final sync at termination so
/// [`EngineOutput::globals`] is always current.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncCadence {
    /// Only at the engines' natural boundaries (chromatic colour cycles,
    /// run termination) — no background cadence.
    Final,
    /// At least once every `n` cluster-wide updates (`n > 0`). On the
    /// locking engine this drives the paper's background sync; the
    /// finest registered cadence sets the epoch interval and every
    /// registered sync evaluates each epoch.
    Updates(u64),
}

/// Builder for one GraphLab program run. See the [module docs](self).
///
/// Construct with [`GraphLab::on`], chain configuration, finish with
/// [`GraphLab::run`] — which executes the program on the selected engine,
/// mutates the graph's data in place and returns the [`EngineOutput`].
pub struct GraphLab<'g, V, E> {
    graph: &'g mut DataGraph<V, E>,
    engine: EngineKind,
    config: EngineConfig,
    coloring: Option<Coloring>,
    strategy: PartitionStrategy,
    initial: InitialSchedule,
    syncs: Vec<Box<dyn ErasedSync<V, E>>>,
    cadences: Vec<SyncCadence>,
    sync_ids: Vec<u32>,
    stop: Option<StopFn>,
}

impl<'g, V, E> GraphLab<'g, V, E>
where
    V: Codec + Clone + Send + Sync + 'static,
    E: Codec + Clone + Send + Sync + 'static,
{
    /// Starts a program on `graph`. Defaults: sequential engine, one
    /// machine, edge consistency, FIFO scheduler, random-hash
    /// partitioning, all vertices initially scheduled.
    pub fn on(graph: &'g mut DataGraph<V, E>) -> Self {
        GraphLab {
            graph,
            engine: EngineKind::Sequential,
            config: EngineConfig::new(1),
            coloring: None,
            strategy: PartitionStrategy::RandomHash,
            initial: InitialSchedule::AllVertices,
            syncs: Vec::new(),
            cadences: Vec::new(),
            sync_ids: Vec::new(),
            stop: None,
        }
    }

    /// Selects the engine (default: [`EngineKind::Sequential`]).
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Number of simulated machines for the distributed engines. Resets
    /// the atom count to the default `8 × machines`; call
    /// [`GraphLab::configure`] *after* this to customise `num_atoms`.
    pub fn machines(mut self, machines: usize) -> Self {
        self.config.num_machines = machines;
        self.config.num_atoms = (8 * machines).max(1);
        self
    }

    /// Consistency model to enforce (default: edge consistency). For the
    /// chromatic engine this also selects the auto-computed colouring
    /// order: single-colour for vertex, first-order (greedy) for edge,
    /// second-order for full.
    pub fn consistency(mut self, model: ConsistencyModel) -> Self {
        self.config.consistency = model;
        self
    }

    /// Scheduler flavour (default: FIFO). The chromatic engine is
    /// inherently sweep-within-colour and ignores this.
    pub fn scheduler(mut self, kind: SchedulerKind) -> Self {
        self.config.scheduler = kind;
        self
    }

    /// Atom partitioning strategy (default: random hash).
    pub fn partition(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Atom-to-machine placement strategy (default:
    /// [`PlacementStrategy::Affinity`]).
    /// [`PlacementStrategy::ReplicationAware`] co-locates connected
    /// meta-graph neighborhoods so the locking engine's lock chains span
    /// fewer machines.
    pub fn placement(mut self, strategy: PlacementStrategy) -> Self {
        self.config.placement = strategy;
        self
    }

    /// Supplies a known colouring for the chromatic engine (e.g. the free
    /// bipartite 2-colouring of ALS/CoEM graphs) instead of auto-computing
    /// one. It is still verified against the consistency model's required
    /// order at [`GraphLab::run`].
    pub fn coloring(mut self, coloring: Coloring) -> Self {
        self.coloring = Some(coloring);
        self
    }

    /// Initial task set (default: all vertices at uniform priority).
    pub fn initial(mut self, initial: InitialSchedule) -> Self {
        self.initial = initial;
        self
    }

    /// Safety cap on total updates (0 = unlimited). Composes with
    /// [`GraphLab::stop_when`]: the run halts at whichever fires first.
    pub fn max_updates(mut self, cap: u64) -> Self {
        self.config.max_updates = cap;
        self
    }

    /// Transport backend for the distributed engines (default:
    /// [`Transport::Sim`] with zero latency). [`Transport::Tcp`] makes this
    /// process one machine of a real multi-process cluster: it runs only
    /// its own machine loop over sockets and writes back only the vertices
    /// it owns (see [`EngineOutput::owned`]).
    pub fn transport(mut self, transport: Transport) -> Self {
        self.config.transport = transport;
        self
    }

    /// Network latency model for the simulated fabric — shorthand for
    /// `.transport(Transport::Sim(model))`.
    pub fn latency(self, model: LatencyModel) -> Self {
        self.transport(Transport::Sim(model))
    }

    /// Snapshot policy (§4.3).
    pub fn snapshot(mut self, snapshot: SnapshotConfig) -> Self {
        self.config.snapshot = snapshot;
        self
    }

    /// Deterministic fault injection (§4.3 failure model): the fabric
    /// kills/restarts machines per `plan` and the engines roll the cluster
    /// back to the latest complete checkpoint (see
    /// [`crate::snapshot`] for the recovery protocol). Requires a
    /// distributed engine; machine 0 (the coordination master) must not be
    /// a kill target. Pair with [`GraphLab::snapshot`] — without a
    /// completed checkpoint a kill fails the run with a clean
    /// "no complete checkpoint" error ([`GraphLab::try_run`]).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.config.faults = Some(plan);
        self
    }

    /// What a permanent (restart-less) machine death does to the run
    /// (default: [`RecoveryMode::Rollback`], which aborts — the lost
    /// partition cannot be rebuilt). [`RecoveryMode::Adopt`] turns it
    /// into restart-free recovery: the survivors adopt the dead machine's
    /// atoms from the DFS journals (plus the latest complete per-atom
    /// checkpoint, when one exists) and the run continues without a
    /// cluster rollback.
    pub fn recovery(mut self, mode: RecoveryMode) -> Self {
        self.config.recovery = mode;
        self
    }

    /// Enables lease-based failure detection with the given lease period:
    /// machines refresh their lease by traffic towards the master
    /// (explicit heartbeats when idle), and the master declares a machine
    /// dead — broadcasting the same `K_DOWN` the fault fabric's oracle
    /// would — when its lease expires. This is how real deployments (and
    /// TCP runs, where it defaults on) detect silent peer loss without a
    /// ground-truth oracle.
    pub fn lease(mut self, period: std::time::Duration) -> Self {
        self.config.lease = Some(period);
        self
    }

    /// Collect per-vertex update counts and the updates-vs-time series.
    pub fn trace(mut self, on: bool) -> Self {
        self.config.trace = on;
        self
    }

    /// Seed for partitioning and tie-breaking.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Escape hatch for the remaining [`EngineConfig`] knobs (batching,
    /// pipelining depth, stragglers, ablation switches, …).
    pub fn configure(mut self, f: impl FnOnce(&mut EngineConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Replaces the whole [`EngineConfig`] (callers that already carry
    /// one, e.g. across sweep arms). Builder methods called afterwards
    /// still apply on top.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Registers a sync operation (§3.5): `op` maintains the global value
    /// read back through `ctx.global(handle)`, re-evaluated per `cadence`.
    ///
    /// # Panics
    /// If `handle`'s id collides with an earlier registration.
    pub fn sync<A>(mut self, handle: GlobalHandle<A::Out>, op: A, cadence: SyncCadence) -> Self
    where
        A: Aggregate<V, E>,
    {
        assert!(
            !self.sync_ids.contains(&handle.id()),
            "duplicate global handle id {} — every sync needs a distinct handle",
            handle.id()
        );
        if let SyncCadence::Updates(n) = cadence {
            assert!(n > 0, "SyncCadence::Updates cadence must be positive");
        }
        self.sync_ids.push(handle.id());
        self.syncs.push(Box::new(RegisteredSync { id: handle.id(), op }));
        self.cadences.push(cadence);
        self
    }

    /// First-class termination (§3.5): halt when `stop` returns true over
    /// the finalized globals. Evaluated by the sync master at every sync
    /// boundary (chromatic: each colour cycle; locking/sequential: each
    /// sync epoch), so it requires at least one registered [`sync`] — and,
    /// on the locking/sequential engines, one with a
    /// [`SyncCadence::Updates`] cadence. Composes with
    /// [`GraphLab::max_updates`].
    ///
    /// [`sync`]: GraphLab::sync
    pub fn stop_when(mut self, stop: impl Fn(&GlobalRegistry) -> bool + Send + Sync + 'static) -> Self {
        self.stop = Some(Arc::new(stop));
        self
    }

    /// Executes the program, mutating the graph's data in place.
    ///
    /// # Panics
    /// On an invalid configuration (a supplied colouring that violates the
    /// consistency model's order, a `stop_when` without syncs to drive it,
    /// fewer atoms than machines), or when an injected fault proves
    /// unrecoverable — use [`GraphLab::try_run`] when a clean failure is an
    /// expected outcome.
    pub fn run<U>(self, update: U) -> EngineOutput
    where
        U: UpdateFunction<V, E>,
    {
        let out = self.run_inner(update);
        if let Some(reason) = &out.failure {
            panic!("engine run failed: {reason}");
        }
        out
    }

    /// As [`GraphLab::run`], but an unrecoverable injected fault (e.g. a
    /// kill with no complete checkpoint to roll back to) returns
    /// `Err(reason)` instead of panicking. The graph's data is then
    /// whatever partial state the machines held — treat it as garbage.
    pub fn try_run<U>(self, update: U) -> Result<EngineOutput, String>
    where
        U: UpdateFunction<V, E>,
    {
        let out = self.run_inner(update);
        match &out.failure {
            Some(reason) => Err(reason.clone()),
            None => Ok(out),
        }
    }

    fn run_inner<U>(self, update: U) -> EngineOutput
    where
        U: UpdateFunction<V, E>,
    {
        let GraphLab {
            graph,
            engine,
            mut config,
            coloring,
            strategy,
            initial,
            syncs,
            cadences,
            stop,
            ..
        } = self;

        // The finest registered Updates cadence drives the background sync
        // interval. Cadences are "at least every n", so an explicitly
        // configured finer interval is kept (min, not overwrite);
        // Final-only registrations leave the configured interval untouched.
        if let Some(n) = cadences
            .iter()
            .filter_map(|c| match c {
                SyncCadence::Updates(n) => Some(*n),
                SyncCadence::Final => None,
            })
            .min()
        {
            config.sync_interval_updates = if config.sync_interval_updates == 0 {
                n
            } else {
                config.sync_interval_updates.min(n)
            };
        }

        if let Some(plan) = &config.faults {
            if !plan.is_empty() {
                assert!(
                    engine != EngineKind::Sequential,
                    "fault injection requires a distributed engine"
                );
                plan.validate(config.num_machines);
                assert!(
                    plan.kills.iter().all(|k| k.machine != 0),
                    "machine 0 is the recovery master and must not be a kill target \
                     (kill machines 1..)"
                );
            }
        }

        if config.transport.is_tcp() {
            assert!(
                engine != EngineKind::Sequential,
                "Transport::Tcp requires a distributed engine (the sequential engine \
                 never touches the network)"
            );
            assert!(
                config.faults.as_ref().is_none_or(|p| p.is_empty()),
                "fault plans are SimNet-only: over TCP the network's faults are real"
            );
        }

        if stop.is_some() {
            assert!(
                !syncs.is_empty(),
                "stop_when requires at least one sync(...): the predicate is evaluated \
                 over finalized globals at sync boundaries"
            );
            if engine != EngineKind::Chromatic {
                assert!(
                    config.sync_interval_updates > 0,
                    "stop_when on the {engine:?} engine requires a SyncCadence::Updates \
                     cadence (the chromatic engine evaluates every colour cycle)"
                );
            }
        }

        let update = Arc::new(update);
        let syncs: SyncList<V, E> = Arc::new(syncs);
        match engine {
            EngineKind::Sequential => {
                run_sequential_program(graph, &*update, initial, &syncs, stop, &config)
            }
            EngineKind::Chromatic => {
                let coloring = resolve_coloring(graph, coloring, config.consistency);
                run_distributed(
                    EngineKind::Chromatic,
                    graph,
                    coloring,
                    update,
                    initial,
                    syncs,
                    stop,
                    &config,
                    &strategy,
                )
            }
            EngineKind::Locking => {
                let uniform = Coloring::uniform(graph.num_vertices());
                run_distributed(
                    EngineKind::Locking,
                    graph,
                    uniform,
                    update,
                    initial,
                    syncs,
                    stop,
                    &config,
                    &strategy,
                )
            }
        }
    }
}

/// Chromatic colouring resolution: a caller-supplied colouring is
/// verified; otherwise one is computed at the order the consistency model
/// requires (§4.2.1) — and verified too, pinning the generators.
fn resolve_coloring<V, E>(
    graph: &DataGraph<V, E>,
    user: Option<Coloring>,
    model: ConsistencyModel,
) -> Coloring {
    let order = model.required_coloring_order();
    let coloring = user.unwrap_or_else(|| match order {
        0 => Coloring::uniform(graph.num_vertices()),
        1 => greedy_coloring(graph),
        _ => second_order_coloring(graph),
    });
    assert!(
        verify_coloring(graph, &coloring, order),
        "colouring does not satisfy the {model} consistency model"
    );
    coloring
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateContext;
    use graphlab_graph::GraphBuilder;

    fn ring(n: usize) -> DataGraph<f64, f64> {
        let mut b = GraphBuilder::new();
        let vs: Vec<_> = (0..n).map(|i| b.add_vertex(i as f64)).collect();
        for i in 0..n {
            b.add_edge(vs[i], vs[(i + 1) % n], 0.0).unwrap();
        }
        b.build()
    }

    struct MaxDiffusion;
    impl UpdateFunction<f64, f64> for MaxDiffusion {
        fn update(&self, ctx: &mut UpdateContext<'_, f64, f64>) {
            let mut best = *ctx.vertex_data();
            for i in 0..ctx.num_neighbors() {
                best = best.max(*ctx.nbr_data(i));
            }
            if best > *ctx.vertex_data() {
                *ctx.vertex_data_mut() = best;
                for i in 0..ctx.num_neighbors() {
                    ctx.schedule_nbr(i, 1.0);
                }
            }
        }
    }

    #[test]
    fn all_three_engines_reach_the_fixpoint() {
        for engine in [EngineKind::Sequential, EngineKind::Chromatic, EngineKind::Locking] {
            let mut g = ring(16);
            let out = GraphLab::on(&mut g).engine(engine).machines(2).run(MaxDiffusion);
            assert!(out.metrics.updates >= 16, "{engine:?}");
            for v in g.vertices() {
                assert_eq!(*g.vertex_data(v), 15.0, "{engine:?}");
            }
        }
    }

    #[test]
    fn chromatic_autocomputes_coloring() {
        // No .coloring(..) call: the builder computes a first-order
        // colouring for edge consistency on its own.
        let mut g = ring(12);
        let out = GraphLab::on(&mut g).engine(EngineKind::Chromatic).machines(2).run(MaxDiffusion);
        assert!(out.metrics.updates >= 12);
        for v in g.vertices() {
            assert_eq!(*g.vertex_data(v), 11.0);
        }
    }

    #[test]
    #[should_panic(expected = "does not satisfy")]
    fn improper_supplied_coloring_rejected() {
        let mut g = ring(6);
        GraphLab::on(&mut g)
            .engine(EngineKind::Chromatic)
            .coloring(Coloring::uniform(6))
            .run(MaxDiffusion);
    }

    #[test]
    #[should_panic(expected = "duplicate global handle")]
    fn duplicate_handles_rejected() {
        const A: GlobalHandle<Vec<f64>> = GlobalHandle::new(1);
        const B: GlobalHandle<Vec<f64>> = GlobalHandle::new(1);
        let mut g = ring(4);
        let _ = GraphLab::on(&mut g)
            .sync(A, crate::FnSync::new(1, |_, d: &f64| vec![*d], |a, _| a), SyncCadence::Final)
            .sync(B, crate::FnSync::new(1, |_, d: &f64| vec![*d], |a, _| a), SyncCadence::Final);
    }

    #[test]
    #[should_panic(expected = "requires at least one sync")]
    fn stop_when_without_syncs_rejected() {
        let mut g = ring(4);
        GraphLab::on(&mut g).stop_when(|_| true).run(MaxDiffusion);
    }

    #[test]
    fn sequential_stop_when_halts_early() {
        const SUM: GlobalHandle<Vec<f64>> = GlobalHandle::new(0);
        let mut g = ring(32);
        let out = GraphLab::on(&mut g)
            .sync(
                SUM,
                crate::FnSync::new(1, |_, d: &f64| vec![*d], |a, _| a),
                SyncCadence::Updates(1),
            )
            // The running sum only grows; stop as soon as any progress shows.
            .stop_when(|globals| globals.get(SUM).is_some_and(|s| s[0] > 0.0))
            .run(MaxDiffusion);
        assert!(out.metrics.updates < 32, "halted after {} updates", out.metrics.updates);
        assert!(out.globals.get(SUM).is_some());
    }
}
