//! A MapReduce framework with Hadoop-style cost accounting.
//!
//! The engine really executes map → shuffle → reduce with `workers`
//! threads, and **materialises the shuffle**: every emitted `(k, v)` pair
//! is byte-encoded, exactly like Hadoop spilling map output. The paper's
//! diagnosis of the 20–60× gap (§5.1) is physically present here:
//!
//! > "the Map function of a Hadoop ALS implementation performs no
//! > computation and its only purpose is to emit copies of the vertex data
//! > for every edge in the graph; unnecessarily multiplying the amount of
//! > data that need to be tracked."
//!
//! Costs that a laptop cannot reproduce natively (job scheduling latency,
//! HDFS I/O bandwidth, replication) are charged to a simulated clock from
//! configurable constants; the reported runtime is
//! `wall compute time + simulated I/O & scheduling time`. The defaults are
//! deliberately *conservative* (Hadoop's measured constants are worse).

use std::collections::HashMap;
use std::hash::Hash;
use std::time::{Duration, Instant};

use bytes::BytesMut;
use graphlab_apps::als::AlsVertex;
use graphlab_apps::linalg::{cholesky_solve, SymMatrix};
use graphlab_graph::DataGraph;
use graphlab_net::codec::Codec;

/// Cost-model constants for the simulated Hadoop deployment.
#[derive(Clone, Debug)]
pub struct MapReduceConfig {
    /// Worker threads (tasks run with real parallelism).
    pub workers: usize,
    /// Per-job scheduling/startup latency charged to the simulated clock
    /// (Hadoop 2012: 10–30 s; default is a conservative 5 s).
    pub job_startup: Duration,
    /// HDFS replication factor for job output (the paper reduced it to 1).
    pub hdfs_replication: u32,
    /// Effective disk/network I/O bandwidth for shuffle + HDFS traffic.
    pub io_bytes_per_sec: f64,
}

impl Default for MapReduceConfig {
    fn default() -> Self {
        MapReduceConfig {
            workers: 4,
            job_startup: Duration::from_secs(5),
            hdfs_replication: 1,
            io_bytes_per_sec: 100.0e6,
        }
    }
}

/// Cumulative statistics across jobs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MrStats {
    /// Jobs executed.
    pub jobs: u64,
    /// Records emitted by map (the materialised shuffle).
    pub records_shuffled: u64,
    /// Encoded shuffle bytes (written once by map, read once by reduce).
    pub bytes_shuffled: u64,
    /// Bytes written to HDFS (after replication).
    pub hdfs_bytes_written: u64,
    /// Simulated scheduling + I/O seconds.
    pub simulated_secs: f64,
    /// Real compute wall time.
    pub compute_secs: f64,
}

impl MrStats {
    /// Total modelled runtime (the number reported in Fig. 6(d)/8(c)).
    pub fn total_secs(&self) -> f64 {
        self.simulated_secs + self.compute_secs
    }
}

/// The engine: owns the cost model and cumulative stats.
pub struct MapReduceEngine {
    cfg: MapReduceConfig,
    stats: MrStats,
}

impl MapReduceEngine {
    /// New engine.
    pub fn new(cfg: MapReduceConfig) -> Self {
        MapReduceEngine { cfg, stats: MrStats::default() }
    }

    /// Statistics so far.
    pub fn stats(&self) -> MrStats {
        self.stats
    }

    /// Runs one job: `map` over `inputs` emitting `(K, V)`, hash-grouped,
    /// then `reduce` per key. Returns the reduce outputs.
    pub fn run_job<I, K, V, O>(
        &mut self,
        inputs: &[I],
        map: impl Fn(&I, &mut Vec<(K, V)>) + Send + Sync,
        reduce: impl Fn(&K, &[V]) -> O + Send + Sync,
        output_bytes: impl Fn(&O) -> usize,
    ) -> Vec<O>
    where
        I: Sync,
        K: Hash + Eq + Clone + Codec + Send + Sync,
        V: Codec + Send + Sync,
        O: Send,
    {
        let start = Instant::now();
        let workers = self.cfg.workers.max(1);

        // Map phase (parallel over input chunks).
        let chunk = inputs.len().div_ceil(workers).max(1);
        let mut emitted: Vec<Vec<(K, V)>> = Vec::new();
        crossbeam::scope(|s| {
            let handles: Vec<_> = inputs
                .chunks(chunk)
                .map(|slice| {
                    let map = &map;
                    s.spawn(move |_| {
                        let mut out = Vec::new();
                        for rec in slice {
                            map(rec, &mut out);
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                emitted.push(h.join().expect("map task"));
            }
        })
        .expect("map scope");

        // Shuffle: encode every record (materialisation cost), then group.
        let mut shuffle_bytes = 0u64;
        let mut records = 0u64;
        let mut groups: HashMap<K, Vec<V>> = HashMap::new();
        let mut scratch = BytesMut::new();
        for pairs in emitted {
            for (k, v) in pairs {
                scratch.clear();
                k.encode(&mut scratch);
                v.encode(&mut scratch);
                shuffle_bytes += scratch.len() as u64;
                records += 1;
                groups.entry(k).or_default().push(v);
            }
        }

        // Reduce phase (parallel over key groups).
        let grouped: Vec<(K, Vec<V>)> = groups.into_iter().collect();
        let rchunk = grouped.len().div_ceil(workers).max(1);
        let mut outputs: Vec<O> = Vec::with_capacity(grouped.len());
        crossbeam::scope(|s| {
            let handles: Vec<_> = grouped
                .chunks(rchunk)
                .map(|slice| {
                    let reduce = &reduce;
                    s.spawn(move |_| slice.iter().map(|(k, vs)| reduce(k, vs)).collect::<Vec<O>>())
                })
                .collect();
            for h in handles {
                outputs.extend(h.join().expect("reduce task"));
            }
        })
        .expect("reduce scope");

        let out_bytes: u64 = outputs.iter().map(|o| output_bytes(o) as u64).sum();

        // Cost model: startup + shuffle write + shuffle read + replicated
        // HDFS output write.
        let io_bytes = 2 * shuffle_bytes + out_bytes * self.cfg.hdfs_replication as u64;
        self.stats.jobs += 1;
        self.stats.records_shuffled += records;
        self.stats.bytes_shuffled += shuffle_bytes;
        self.stats.hdfs_bytes_written += out_bytes * self.cfg.hdfs_replication as u64;
        self.stats.simulated_secs +=
            self.cfg.job_startup.as_secs_f64() + io_bytes as f64 / self.cfg.io_bytes_per_sec;
        self.stats.compute_secs += start.elapsed().as_secs_f64();
        outputs
    }
}

/// One rating observation (job input record).
struct RatingRecord {
    user: u32,
    movie: u32,
    rating: f64,
}

/// Mahout-style ALS: each iteration is two jobs (recompute movies, then
/// users); the map stage emits a **copy of the vertex factors for every
/// edge**, which is exactly the inefficiency the paper calls out.
///
/// Returns the final factor table (indexed by vertex id) and stats.
pub fn als_mapreduce(
    graph: &DataGraph<AlsVertex, f64>,
    d: usize,
    lambda: f64,
    iterations: usize,
    cfg: MapReduceConfig,
) -> (Vec<Vec<f64>>, MrStats) {
    let n = graph.num_vertices();
    let mut factors: Vec<Vec<f64>> =
        graph.vertices().map(|v| graph.vertex_data(v).factors.clone()).collect();
    let ratings: Vec<RatingRecord> = graph
        .edges()
        .map(|e| {
            let (u, m) = graph.edge_endpoints(e);
            RatingRecord { user: u.0, movie: m.0, rating: *graph.edge_data(e) }
        })
        .collect();

    let mut engine = MapReduceEngine::new(cfg);
    for _ in 0..iterations {
        for side in 0..2 {
            // side 0: recompute movie factors from user factors; 1: reverse.
            let current = &factors;
            let outputs = engine.run_job(
                &ratings,
                |r, emit: &mut Vec<(u32, (Vec<f64>, f64))>| {
                    // Emit the *entire factor vector* of the opposite
                    // endpoint, once per edge.
                    if side == 0 {
                        emit.push((r.movie, (current[r.user as usize].clone(), r.rating)));
                    } else {
                        emit.push((r.user, (current[r.movie as usize].clone(), r.rating)));
                    }
                },
                |key, rows: &[(Vec<f64>, f64)]| {
                    let mut a = SymMatrix::scaled_identity(d, lambda * rows.len() as f64);
                    let mut b = vec![0.0; d];
                    for (x, r) in rows {
                        a.add_outer(x);
                        for (bj, xj) in b.iter_mut().zip(x) {
                            *bj += r * xj;
                        }
                    }
                    if cholesky_solve(a, &mut b).is_err() {
                        b.clear();
                    }
                    (*key, b)
                },
                |(_, f)| 4 + 8 * f.len(),
            );
            for (vid, f) in outputs {
                if !f.is_empty() {
                    factors[vid as usize] = f;
                }
            }
        }
    }
    let _ = n;
    (factors, engine.stats())
}

/// Training RMSE of a factor table (parity check vs the GraphLab run).
pub fn factors_rmse(graph: &DataGraph<AlsVertex, f64>, factors: &[Vec<f64>]) -> f64 {
    let mut se = 0.0;
    let mut n = 0usize;
    for e in graph.edges() {
        let (u, m) = graph.edge_endpoints(e);
        let pred: f64 =
            factors[u.index()].iter().zip(&factors[m.index()]).map(|(a, b)| a * b).sum();
        let err = graph.edge_data(e) - pred;
        se += err * err;
        n += 1;
    }
    (se / n.max(1) as f64).sqrt()
}

/// CoEM on MapReduce: per iteration one job propagating distributions both
/// directions (each endpoint emits its full distribution per edge).
pub fn coem_mapreduce(
    graph: &DataGraph<graphlab_apps::coem::CoemVertex, f64>,
    types: usize,
    iterations: usize,
    cfg: MapReduceConfig,
) -> (Vec<Vec<f64>>, MrStats) {
    let mut dists: Vec<Vec<f64>> =
        graph.vertices().map(|v| graph.vertex_data(v).dist.clone()).collect();
    let seeds: Vec<bool> = graph.vertices().map(|v| graph.vertex_data(v).seed).collect();
    let edges: Vec<(u32, u32, f64)> = graph
        .edges()
        .map(|e| {
            let (a, b) = graph.edge_endpoints(e);
            (a.0, b.0, *graph.edge_data(e))
        })
        .collect();

    let mut engine = MapReduceEngine::new(cfg);
    for _ in 0..iterations {
        let current = &dists;
        let outputs = engine.run_job(
            &edges,
            |&(a, b, w), emit: &mut Vec<(u32, (Vec<f64>, f64))>| {
                emit.push((b, (current[a as usize].clone(), w)));
                emit.push((a, (current[b as usize].clone(), w)));
            },
            |key, rows: &[(Vec<f64>, f64)]| {
                let mut acc = vec![0.0; types];
                let mut total = 0.0;
                for (d, w) in rows {
                    total += w;
                    for (a, x) in acc.iter_mut().zip(d) {
                        *a += w * x;
                    }
                }
                if total > 0.0 {
                    for a in acc.iter_mut() {
                        *a /= total;
                    }
                }
                (*key, acc)
            },
            |(_, d)| 4 + 8 * d.len(),
        );
        for (vid, d) in outputs {
            if !seeds[vid as usize] {
                dists[vid as usize] = d;
            }
        }
    }
    (dists, engine.stats())
}

/// PageRank on MapReduce: one job per iteration; map emits the rank
/// contribution of every link.
pub fn pagerank_mapreduce(
    graph: &DataGraph<f64, f64>,
    alpha: f64,
    iterations: usize,
    cfg: MapReduceConfig,
) -> (Vec<f64>, MrStats) {
    let n = graph.num_vertices();
    let mut ranks: Vec<f64> = vec![1.0 / n as f64; n];
    let edges: Vec<(u32, u32, f64)> = graph
        .edges()
        .map(|e| {
            let (u, v) = graph.edge_endpoints(e);
            (u.0, v.0, *graph.edge_data(e))
        })
        .collect();
    let mut engine = MapReduceEngine::new(cfg);
    for _ in 0..iterations {
        let current = &ranks;
        let outputs = engine.run_job(
            &edges,
            |&(u, v, w), emit: &mut Vec<(u32, f64)>| emit.push((v, w * current[u as usize])),
            |key, contribs: &[f64]| (*key, contribs.iter().sum::<f64>()),
            |_| 12,
        );
        let mut next = vec![alpha / n as f64; n];
        for (v, sum) in outputs {
            next[v as usize] += (1.0 - alpha) * sum;
        }
        ranks = next;
    }
    (ranks, engine.stats())
}

/// "Update-equivalents" performed by an iterative MR computation: one
/// vertex recomputation per reduce output (used for fair work comparisons).
pub fn mr_updates(stats: &MrStats, outputs_per_job: u64) -> u64 {
    stats.jobs * outputs_per_job
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_apps::pagerank::exact_pagerank;
    use graphlab_workloads::{ratings_graph, web_graph};

    #[test]
    fn wordcount_style_job() {
        let mut engine = MapReduceEngine::new(MapReduceConfig {
            job_startup: Duration::from_millis(10),
            ..Default::default()
        });
        let docs = vec!["a b a", "b c", "a"];
        let mut counts = engine.run_job(
            &docs,
            |doc, emit: &mut Vec<(String, u64)>| {
                for w in doc.split_whitespace() {
                    emit.push((w.to_string(), 1));
                }
            },
            |k, vs| (k.clone(), vs.iter().sum::<u64>()),
            |_| 16,
        );
        counts.sort();
        assert_eq!(
            counts,
            vec![("a".into(), 3u64), ("b".into(), 2), ("c".into(), 1)]
        );
        let st = engine.stats();
        assert_eq!(st.jobs, 1);
        assert_eq!(st.records_shuffled, 6);
        assert!(st.bytes_shuffled > 0);
        assert!(st.simulated_secs >= 0.01);
    }

    #[test]
    fn mr_pagerank_matches_power_iteration() {
        let g = web_graph(200, 4, 1);
        let oracle = exact_pagerank(&g, 0.15, 20);
        let (ranks, stats) = pagerank_mapreduce(
            &g,
            0.15,
            20,
            MapReduceConfig { job_startup: Duration::from_millis(1), ..Default::default() },
        );
        let err: f64 = ranks.iter().zip(&oracle).map(|(a, b)| (a - b).abs()).sum();
        assert!(err < 1e-12, "err {err}");
        assert_eq!(stats.jobs, 20);
    }

    #[test]
    fn mr_als_reduces_rmse_and_shuffles_per_edge() {
        let p = ratings_graph(30, 20, 6, 4, 2);
        let before = factors_rmse(
            &p.graph,
            &p.graph.vertices().map(|v| p.graph.vertex_data(v).factors.clone()).collect::<Vec<_>>(),
        );
        let (factors, stats) = als_mapreduce(
            &p.graph,
            4,
            0.05,
            5,
            MapReduceConfig { job_startup: Duration::from_millis(1), ..Default::default() },
        );
        let after = factors_rmse(&p.graph, &factors);
        assert!(after < before * 0.5, "rmse {before} -> {after}");
        // The inefficiency: one record per edge per job.
        assert_eq!(stats.records_shuffled, (p.graph.num_edges() * 10) as u64);
        // Each record carries a full d-vector: ≥ d × 8 bytes each.
        assert!(stats.bytes_shuffled as usize >= p.graph.num_edges() * 10 * 4 * 8);
    }

    #[test]
    fn mr_coem_propagates_labels() {
        // Seed chosen so the tiny planted problem is actually learnable:
        // on this graph the sequential GraphLab reference reaches 100%
        // accuracy, so a CoEM implementation bug (not dataset noise) is
        // what would trip the assertion below.
        let p = graphlab_workloads::nell_graph(60, 20, 2, 5, 0.2, 2);
        let (dists, stats) = coem_mapreduce(
            &p.graph,
            2,
            15,
            MapReduceConfig { job_startup: Duration::from_millis(1), ..Default::default() },
        );
        let mut correct = 0;
        for (d, &t) in dists.iter().zip(&p.truth).take(60) {
            let arg = usize::from(d[0] < d[1]);
            correct += usize::from(arg == t);
        }
        assert!(correct >= 50, "accuracy {correct}/60");
        assert_eq!(stats.jobs, 15);
    }

    #[test]
    fn simulated_time_dominated_by_startup_for_tiny_jobs() {
        let mut engine = MapReduceEngine::new(MapReduceConfig {
            job_startup: Duration::from_secs(5),
            ..Default::default()
        });
        engine.run_job(
            &[1u32],
            |x, emit: &mut Vec<(u32, u32)>| emit.push((*x, *x)),
            |k, _| *k,
            |_| 4,
        );
        assert!(engine.stats().simulated_secs >= 5.0);
    }
}
