//! # graphlab-baselines
//!
//! The comparison systems of the paper's evaluation, built from scratch:
//!
//! - [`mapreduce`] — a real (in-process) MapReduce engine with Hadoop-style
//!   cost accounting: per-job startup, materialised + byte-encoded shuffle,
//!   replicated HDFS output writes. Hosts the Mahout-style ALS, CoEM and
//!   PageRank jobs (§5.1, §5.3, Fig. 6(d), Fig. 8(c), Fig. 9(b)).
//! - [`pregel`] — a bulk-synchronous vertex-centric message-passing engine
//!   (supersteps, combiner-less messaging, halt voting): the "Sync
//!   (Pregel)" baselines of Fig. 1(a), 1(c) and 9(a).
//! - [`mpi`] — a bulk-synchronous collective-communication implementation
//!   ("roughly equivalent to an optimized Pregel with parallel
//!   broadcasts", §5.1) of ALS and CoEM.
//! - [`cost`] — the EC2 fine-grained billing model of Fig. 9(b).

pub mod cost;
pub mod mapreduce;
pub mod mpi;
pub mod pregel;

pub use cost::{ec2_cost_usd, CC1_4XLARGE_HOURLY_USD};
pub use mapreduce::{MapReduceConfig, MapReduceEngine, MrStats};
pub use mpi::{als_mpi, coem_mpi, MpiStats};
pub use pregel::{PregelConfig, PregelEngine, PregelStats, VertexProgram};
