//! MPI-style bulk-synchronous implementations of ALS and CoEM (§5.1, §5.3).
//!
//! "Our MPI implementation of ALS is highly optimized, and uses synchronous
//! MPI collective operations for communication. The computation is broken
//! into super-steps that alternate between recomputing the latent user and
//! movies low rank matrices. Between super-steps the new user and movie
//! values are scattered (using MPI_Alltoall) to the machines that need
//! them."
//!
//! Here ranks are threads with a real barrier between supersteps; the
//! all-to-all exchange is modelled by counting the bytes each rank must
//! ship (updated vectors × consumers) — computation is real, communication
//! volume is measured, transfer time is what the shared-memory fabric
//! provides (i.e. an optimistic, well-tuned baseline, as in the paper).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use graphlab_apps::als::AlsVertex;
use graphlab_apps::coem::CoemVertex;
use graphlab_apps::linalg::{cholesky_solve, SymMatrix};
use graphlab_graph::DataGraph;
use parking_lot::RwLock;

/// Run statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct MpiStats {
    /// Supersteps executed.
    pub supersteps: u64,
    /// Vertex recomputations.
    pub updates: u64,
    /// Bytes exchanged by the all-to-all collectives.
    pub alltoall_bytes: u64,
    /// Wall time.
    pub runtime: Duration,
}

/// ALS with alternating supersteps over `ranks` threads.
///
/// Returns the final factor table and stats.
pub fn als_mpi(
    graph: &DataGraph<AlsVertex, f64>,
    users: usize,
    d: usize,
    lambda: f64,
    iterations: usize,
    ranks: usize,
) -> (Vec<Vec<f64>>, MpiStats) {
    let start = Instant::now();
    let n = graph.num_vertices();
    let factors: Vec<RwLock<Vec<f64>>> =
        graph.vertices().map(|v| RwLock::new(graph.vertex_data(v).factors.clone())).collect();
    let barrier = Barrier::new(ranks);
    let updates = AtomicU64::new(0);
    let bytes = AtomicU64::new(0);
    let mut supersteps = 0u64;

    for _ in 0..iterations {
        for side in 0..2 {
            // side 0 recomputes movies (ids ≥ users), side 1 users.
            let range: Vec<u32> = (0..n as u32)
                .filter(|&v| if side == 0 { (v as usize) >= users } else { (v as usize) < users })
                .collect();
            let chunk = range.len().div_ceil(ranks).max(1);
            crossbeam::scope(|s| {
                for shard in range.chunks(chunk) {
                    let factors = &factors;
                    let barrier = &barrier;
                    let updates = &updates;
                    let bytes = &bytes;
                    s.spawn(move |_| {
                        for &v in shard {
                            let vid = graphlab_graph::VertexId(v);
                            let adj = graph.adj(vid);
                            if adj.is_empty() {
                                continue;
                            }
                            let mut a = SymMatrix::scaled_identity(d, lambda * adj.len() as f64);
                            let mut b = vec![0.0; d];
                            for e in adj {
                                let x = factors[e.nbr.index()].read();
                                a.add_outer(&x);
                                let r = *graph.edge_data(e.edge);
                                for (bj, xj) in b.iter_mut().zip(x.iter()) {
                                    *bj += r * xj;
                                }
                            }
                            if cholesky_solve(a, &mut b).is_ok() {
                                *factors[v as usize].write() = b;
                            }
                            updates.fetch_add(1, Ordering::Relaxed);
                            // All-to-all: the updated vector is shipped to
                            // every rank that owns a neighbour.
                            bytes.fetch_add((d * 8) as u64 * (ranks as u64 - 1), Ordering::Relaxed);
                        }
                        barrier.wait();
                    });
                }
                // Fill unused barrier slots when fewer shards than ranks.
                for _ in range.chunks(chunk).count()..ranks {
                    let barrier = &barrier;
                    s.spawn(move |_| {
                        barrier.wait();
                    });
                }
            })
            .expect("mpi scope");
            supersteps += 1;
        }
    }

    let out: Vec<Vec<f64>> = factors.into_iter().map(|l| l.into_inner()).collect();
    (
        out,
        MpiStats {
            supersteps,
            updates: updates.into_inner(),
            alltoall_bytes: bytes.into_inner(),
            runtime: start.elapsed(),
        },
    )
}

/// CoEM with synchronous supersteps over `ranks` threads.
pub fn coem_mpi(
    graph: &DataGraph<CoemVertex, f64>,
    types: usize,
    iterations: usize,
    ranks: usize,
) -> (Vec<Vec<f64>>, MpiStats) {
    let start = Instant::now();
    let n = graph.num_vertices();
    let dists: Vec<RwLock<Vec<f64>>> =
        graph.vertices().map(|v| RwLock::new(graph.vertex_data(v).dist.clone())).collect();
    let seeds: Vec<bool> = graph.vertices().map(|v| graph.vertex_data(v).seed).collect();
    let updates = AtomicU64::new(0);
    let bytes = AtomicU64::new(0);

    for _ in 0..iterations {
        // Double-buffered synchronous sweep.
        let snapshot: Vec<Vec<f64>> = dists.iter().map(|l| l.read().clone()).collect();
        let ids: Vec<u32> = (0..n as u32).collect();
        let chunk = ids.len().div_ceil(ranks).max(1);
        crossbeam::scope(|s| {
            for shard in ids.chunks(chunk) {
                let dists = &dists;
                let snapshot = &snapshot;
                let seeds = &seeds;
                let updates = &updates;
                let bytes = &bytes;
                s.spawn(move |_| {
                    for &v in shard {
                        if seeds[v as usize] {
                            continue;
                        }
                        let vid = graphlab_graph::VertexId(v);
                        let adj = graph.adj(vid);
                        if adj.is_empty() {
                            continue;
                        }
                        let mut acc = vec![0.0; types];
                        let mut total = 0.0;
                        for e in adj {
                            let w = *graph.edge_data(e.edge);
                            total += w;
                            for (a, x) in acc.iter_mut().zip(&snapshot[e.nbr.index()]) {
                                *a += w * x;
                            }
                        }
                        if total > 0.0 {
                            for a in acc.iter_mut() {
                                *a /= total;
                            }
                            *dists[v as usize].write() = acc;
                        }
                        updates.fetch_add(1, Ordering::Relaxed);
                        bytes.fetch_add((types * 8) as u64 * (ranks as u64 - 1), Ordering::Relaxed);
                    }
                });
            }
        })
        .expect("mpi scope");
    }

    let out: Vec<Vec<f64>> = dists.into_iter().map(|l| l.into_inner()).collect();
    (
        out,
        MpiStats {
            supersteps: iterations as u64,
            updates: updates.into_inner(),
            alltoall_bytes: bytes.into_inner(),
            runtime: start.elapsed(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapreduce::factors_rmse;
    use graphlab_workloads::{nell_graph, ratings_graph};

    #[test]
    fn mpi_als_reduces_rmse() {
        let p = ratings_graph(40, 25, 6, 4, 1);
        let initial: Vec<Vec<f64>> =
            p.graph.vertices().map(|v| p.graph.vertex_data(v).factors.clone()).collect();
        let before = factors_rmse(&p.graph, &initial);
        let (factors, stats) = als_mpi(&p.graph, p.users, 4, 0.05, 6, 3);
        let after = factors_rmse(&p.graph, &factors);
        assert!(after < before * 0.5, "{before} -> {after}");
        assert_eq!(stats.supersteps, 12);
        assert!(stats.alltoall_bytes > 0);
    }

    #[test]
    fn mpi_coem_matches_planted_types() {
        let p = nell_graph(60, 20, 2, 5, 0.2, 2);
        let (dists, stats) = coem_mpi(&p.graph, 2, 20, 4);
        let mut correct = 0;
        for (d, &t) in dists.iter().zip(&p.truth).take(60) {
            let arg = usize::from(d[0] < d[1]);
            correct += usize::from(arg == t);
        }
        assert!(correct >= 54, "accuracy {correct}/60");
        assert!(stats.updates > 0);
    }

    #[test]
    fn single_rank_works() {
        let p = ratings_graph(10, 8, 4, 3, 5);
        let (factors, _) = als_mpi(&p.graph, p.users, 3, 0.05, 3, 1);
        assert_eq!(factors.len(), 18);
    }
}
