//! EC2 cost model for the price/performance study (§5.4, Fig. 9(b)).
//!
//! "All costs are computed using fine-grained billing rather than the
//! hourly billing used by Amazon EC2" — cost is simply
//! `machines × runtime × hourly rate`.

use std::time::Duration;

/// 2012 hourly price of the cc1.4xlarge HPC instances used in the paper.
pub const CC1_4XLARGE_HOURLY_USD: f64 = 1.30;

/// Fine-grained-billing cost of a run.
pub fn ec2_cost_usd(machines: usize, runtime: Duration, hourly_rate: f64) -> f64 {
    machines as f64 * runtime.as_secs_f64() / 3600.0 * hourly_rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_in_machines_and_time() {
        let one = ec2_cost_usd(1, Duration::from_secs(3600), 1.30);
        assert!((one - 1.30).abs() < 1e-12);
        let four = ec2_cost_usd(4, Duration::from_secs(3600), 1.30);
        assert!((four - 5.20).abs() < 1e-12);
        let half = ec2_cost_usd(4, Duration::from_secs(1800), 1.30);
        assert!((half - 2.60).abs() < 1e-12);
    }

    #[test]
    fn fine_grained_billing() {
        // 90 seconds is billed as 90 seconds, not an hour.
        let c = ec2_cost_usd(64, Duration::from_secs(90), CC1_4XLARGE_HOURLY_USD);
        assert!((c - 64.0 * 90.0 / 3600.0 * 1.30).abs() < 1e-12);
    }
}
