//! A Pregel-style bulk-synchronous vertex-centric engine (Malewicz et al.,
//! SIGMOD 2010) — the "Sync (Pregel)" baseline of Fig. 1(a), 1(c), 9(a).
//!
//! Computation proceeds in *supersteps*: every active vertex receives the
//! messages sent to it in the previous superstep, updates its value, sends
//! messages along its edges, and may vote to halt; a halted vertex is
//! reactivated by incoming messages. Unlike GraphLab there is no shared
//! state — a vertex sees **only its messages** — which is exactly the
//! limitation the paper discusses (no pull model, values must be pushed to
//! all neighbours every superstep, `O(|E|)` message state).
//!
//! The engine is multi-threaded (vertices sharded over workers per
//! superstep) and counts encoded message bytes.

use std::time::{Duration, Instant};

use bytes::BytesMut;
use graphlab_graph::{DataGraph, EdgeDir, VertexId};
use graphlab_net::codec::Codec;

/// Configuration.
#[derive(Clone, Copy, Debug)]
pub struct PregelConfig {
    /// Worker threads.
    pub workers: usize,
    /// Hard superstep cap (0 = until global halt).
    pub max_supersteps: u64,
}

impl Default for PregelConfig {
    fn default() -> Self {
        PregelConfig { workers: 4, max_supersteps: 0 }
    }
}

/// Run statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PregelStats {
    /// Supersteps executed.
    pub supersteps: u64,
    /// Vertex-program invocations (the BSP "updates").
    pub updates: u64,
    /// Messages sent.
    pub messages: u64,
    /// Encoded message bytes.
    pub message_bytes: u64,
    /// Wall time.
    pub runtime: Duration,
}

/// Per-vertex context handed to [`VertexProgram::compute`].
pub struct PregelContext<'a, V, E, M> {
    vertex: VertexId,
    value: &'a mut V,
    messages: &'a [M],
    /// `(neighbour, edge data ref, direction)` of every incident edge.
    edges: &'a [(VertexId, &'a E, EdgeDir)],
    outbox: &'a mut Vec<(VertexId, M)>,
    halt: &'a mut bool,
    superstep: u64,
    num_vertices: u64,
}

impl<V, E, M> PregelContext<'_, V, E, M> {
    /// This vertex.
    pub fn vertex(&self) -> VertexId {
        self.vertex
    }
    /// Current superstep (0-based).
    pub fn superstep(&self) -> u64 {
        self.superstep
    }
    /// |V|.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }
    /// Messages delivered this superstep.
    pub fn messages(&self) -> &[M] {
        self.messages
    }
    /// Vertex value (read).
    pub fn value(&self) -> &V {
        self.value
    }
    /// Vertex value (write).
    pub fn value_mut(&mut self) -> &mut V {
        self.value
    }
    /// Incident edges `(neighbour, edge data, direction)`.
    pub fn edges(&self) -> &[(VertexId, &E, EdgeDir)] {
        self.edges
    }
    /// Sends `msg` to `dst` (delivered next superstep).
    pub fn send(&mut self, dst: VertexId, msg: M) {
        self.outbox.push((dst, msg));
    }
    /// Votes to halt; the vertex stays inactive until a message arrives.
    pub fn vote_to_halt(&mut self) {
        *self.halt = true;
    }
}

/// A Pregel vertex program.
pub trait VertexProgram<V, E, M>: Send + Sync {
    /// One superstep of computation on one vertex.
    fn compute(&self, ctx: &mut PregelContext<'_, V, E, M>);
}

/// The BSP engine.
pub struct PregelEngine {
    cfg: PregelConfig,
}

impl PregelEngine {
    /// New engine.
    pub fn new(cfg: PregelConfig) -> Self {
        PregelEngine { cfg }
    }

    /// Runs `program` on `graph` until every vertex halts with no messages
    /// in flight (or the superstep cap). `on_superstep` is invoked after
    /// every superstep with the current values (for convergence traces).
    pub fn run<V, E, M, P>(
        &self,
        graph: &mut DataGraph<V, E>,
        program: &P,
        mut on_superstep: impl FnMut(u64, &[V]),
    ) -> PregelStats
    where
        V: Clone + Send + Sync,
        E: Send + Sync,
        M: Codec + Clone + Send + Sync,
        P: VertexProgram<V, E, M>,
    {
        let start = Instant::now();
        let n = graph.num_vertices();
        let mut values: Vec<V> = graph.vertices().map(|v| graph.vertex_data(v).clone()).collect();
        let mut active = vec![true; n];
        let mut inboxes: Vec<Vec<M>> = (0..n).map(|_| Vec::new()).collect();
        let mut stats = PregelStats::default();

        loop {
            if self.cfg.max_supersteps > 0 && stats.supersteps >= self.cfg.max_supersteps {
                break;
            }
            let any_work = active.iter().any(|&a| a) || inboxes.iter().any(|i| !i.is_empty());
            if !any_work {
                break;
            }

            let inbox_taken: Vec<Vec<M>> = inboxes.iter_mut().map(std::mem::take).collect();
            let workers = self.cfg.workers.max(1);
            let chunk = n.div_ceil(workers).max(1);

            // Shard vertices over workers; each worker returns its outbox
            // and the updated (value, halted) pairs for its shard.
            struct ShardResult<V, M> {
                base: usize,
                values: Vec<V>,
                halted: Vec<bool>,
                ran: u64,
                outbox: Vec<(VertexId, M)>,
            }
            let values_ref = &values;
            let active_ref = &active;
            let inbox_ref = &inbox_taken;
            let graph_ref: &DataGraph<V, E> = graph;
            let superstep = stats.supersteps;
            let mut shard_results: Vec<ShardResult<V, M>> = Vec::new();
            crossbeam::scope(|s| {
                let handles: Vec<_> = (0..n)
                    .step_by(chunk)
                    .map(|base| {
                        let hi = (base + chunk).min(n);
                        s.spawn(move |_| {
                            let mut out = ShardResult {
                                base,
                                values: Vec::with_capacity(hi - base),
                                halted: Vec::with_capacity(hi - base),
                                ran: 0,
                                outbox: Vec::new(),
                            };
                            for vi in base..hi {
                                let vid = VertexId::from(vi);
                                let msgs = &inbox_ref[vi];
                                let runs = active_ref[vi] || !msgs.is_empty();
                                let mut value = values_ref[vi].clone();
                                let mut halt = false;
                                if runs {
                                    let edges: Vec<(VertexId, &E, EdgeDir)> = graph_ref
                                        .adj(vid)
                                        .iter()
                                        .map(|e| (e.nbr, graph_ref.edge_data(e.edge), e.dir))
                                        .collect();
                                    let mut ctx = PregelContext {
                                        vertex: vid,
                                        value: &mut value,
                                        messages: msgs,
                                        edges: &edges,
                                        outbox: &mut out.outbox,
                                        halt: &mut halt,
                                        superstep,
                                        num_vertices: n as u64,
                                    };
                                    program.compute(&mut ctx);
                                    out.ran += 1;
                                }
                                out.values.push(value);
                                out.halted.push(if runs { halt } else { true });
                            }
                            out
                        })
                    })
                    .collect();
                for h in handles {
                    shard_results.push(h.join().expect("pregel shard"));
                }
            })
            .expect("pregel scope");

            let mut scratch = BytesMut::new();
            for shard in shard_results {
                for (i, v) in shard.values.into_iter().enumerate() {
                    values[shard.base + i] = v;
                }
                for (i, h) in shard.halted.into_iter().enumerate() {
                    active[shard.base + i] = !h;
                }
                stats.updates += shard.ran;
                for (dst, msg) in shard.outbox {
                    scratch.clear();
                    msg.encode(&mut scratch);
                    stats.messages += 1;
                    stats.message_bytes += (scratch.len() + 4) as u64;
                    inboxes[dst.index()].push(msg);
                }
            }
            stats.supersteps += 1;
            on_superstep(stats.supersteps, &values);
        }

        for (i, v) in values.into_iter().enumerate() {
            *graph.vertex_data_mut(VertexId::from(i)) = v;
        }
        stats.runtime = start.elapsed();
        stats
    }
}

/// Synchronous PageRank as a Pregel program (messages = rank
/// contributions).
pub struct PregelPageRank {
    /// Teleport probability.
    pub alpha: f64,
    /// Halt when the rank change is below this.
    pub epsilon: f64,
}

impl VertexProgram<f64, f64, f64> for PregelPageRank {
    fn compute(&self, ctx: &mut PregelContext<'_, f64, f64, f64>) {
        if ctx.superstep() > 0 {
            let n = ctx.num_vertices() as f64;
            let sum: f64 = ctx.messages().iter().sum();
            let new = self.alpha / n + (1.0 - self.alpha) * sum;
            let delta = (new - *ctx.value()).abs();
            *ctx.value_mut() = new;
            if delta < self.epsilon {
                ctx.vote_to_halt();
            }
        }
        // Push rank mass along out-edges — every superstep, to every
        // neighbour (the O(|E|) data movement GraphLab avoids).
        let rank = *ctx.value();
        let sends: Vec<(VertexId, f64)> = ctx
            .edges()
            .iter()
            .filter(|(_, _, d)| *d == EdgeDir::Out)
            .map(|(nbr, w, _)| (*nbr, **w * rank))
            .collect();
        for (dst, m) in sends {
            ctx.send(dst, m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlab_apps::pagerank::{exact_pagerank, l1_error};
    use graphlab_workloads::web_graph;

    #[test]
    fn pregel_pagerank_matches_power_iteration() {
        let mut g = web_graph(150, 4, 1);
        let oracle = exact_pagerank(&g, 0.15, 30);
        let engine = PregelEngine::new(PregelConfig { workers: 3, max_supersteps: 31 });
        let stats = engine.run(
            &mut g,
            &PregelPageRank { alpha: 0.15, epsilon: 0.0 },
            |_, _| {},
        );
        let got: Vec<f64> = g.vertices().map(|v| *g.vertex_data(v)).collect();
        assert!(l1_error(&got, &oracle) < 1e-9, "err {}", l1_error(&got, &oracle));
        assert_eq!(stats.supersteps, 31);
        assert!(stats.messages > 0);
    }

    #[test]
    fn halt_voting_terminates_run() {
        let mut g = web_graph(100, 3, 2);
        let engine = PregelEngine::new(PregelConfig { workers: 2, max_supersteps: 0 });
        let stats = engine.run(
            &mut g,
            &PregelPageRank { alpha: 0.15, epsilon: 1e-4 },
            |_, _| {},
        );
        assert!(stats.supersteps > 2);
        assert!(stats.supersteps < 200, "converged via halt votes");
    }

    #[test]
    fn superstep_callback_sees_progress() {
        let mut g = web_graph(50, 3, 3);
        let engine = PregelEngine::new(PregelConfig { workers: 2, max_supersteps: 5 });
        let mut steps = Vec::new();
        engine.run(
            &mut g,
            &PregelPageRank { alpha: 0.15, epsilon: 0.0 },
            |s, values| steps.push((s, values.iter().sum::<f64>())),
        );
        assert_eq!(steps.len(), 5);
        assert!(steps.iter().all(|&(_, sum)| sum > 0.0));
    }

    #[test]
    fn message_bytes_counted() {
        let mut g = web_graph(60, 3, 4);
        let engine = PregelEngine::new(PregelConfig { workers: 2, max_supersteps: 3 });
        let stats = engine.run(
            &mut g,
            &PregelPageRank { alpha: 0.15, epsilon: 0.0 },
            |_, _| {},
        );
        assert_eq!(stats.message_bytes, stats.messages * 12);
    }
}
