//! The lint lints itself: every check catches a seeded fixture violation,
//! an `allow` suppression with a reason silences it, the suppression
//! meta-audit catches rot, and the real workspace is pinned clean.
//!
//! Fixtures are in-memory strings (lib tests) or written to temp dirs (bin
//! exit-code tests) — never on-disk `.rs` files inside the repo, which the
//! workspace scan itself would flag.

use std::path::{Path, PathBuf};
use std::process::Command;

use graphlab_lint::{run_checks, Workspace, CHECKS};

fn findings_for(files: Vec<(&str, &str)>, active: &[&str]) -> Vec<String> {
    let ws = Workspace::from_memory(files);
    run_checks(&ws, active).iter().map(|f| f.to_string()).collect()
}

fn count_check(fs: &[String], check: &str) -> usize {
    fs.iter().filter(|f| f.contains(&format!("[{check}]"))).count()
}

// ---------------------------------------------------------- check fixtures

const KIND_VIOLATIONS: &str = "\
// lint: kind-map core = 1..=10 gaps 5\n\
pub const K_A: u16 = 1;\n\
pub const K_DUP: u16 = 1;\n\
pub const K_GAP: u16 = 5;\n\
pub const K_OOR: u16 = 99;\n\
pub const K_DEAD: u16 = 2;\n\
pub fn touch() { let _ = (K_A, K_DUP, K_GAP, K_OOR); }\n";

const KIND_CLEAN: &str = "\
// lint: kind-map core = 1..=10 gaps 5\n\
pub const K_A: u16 = 1;\n\
pub fn touch() { let _ = K_A; }\n";

const DET_VIOLATIONS: &str = "\
use std::collections::HashMap;\n\
use std::time::Instant;\n\
pub fn f() {\n\
    let m: HashMap<u32, u32> = HashMap::new();\n\
    for (k, v) in &m {\n\
        let _ = (k, v);\n\
    }\n\
    let _ = Instant::now();\n\
}\n";

const RECV_VIOLATION: &str = "\
pub fn pump(rx: std::sync::mpsc::Receiver<u32>) {\n\
    let _ = rx.recv();\n\
}\n";

const UNSAFE_VIOLATION: &str = "\
pub fn f() {\n\
    unsafe { std::hint::unreachable_unchecked() }\n\
}\n";

const UNSAFE_CLEAN: &str = "\
pub fn f(b: bool) {\n\
    if !b {\n\
        // SAFETY: caller guarantees `b` is always true here.\n\
        unsafe { std::hint::unreachable_unchecked() }\n\
    }\n\
}\n";

const MSGS_WITH_CODEC: &str = "\
pub struct FooMsg { pub x: u32 }\n\
impl Codec for FooMsg {\n\
    fn encode(&self, _b: &mut Vec<u8>) {}\n\
}\n\
pub struct BarMsg { pub y: u32 }\n\
impl Codec for BarMsg {\n\
    fn encode(&self, _b: &mut Vec<u8>) {}\n\
}\n";

const PROPS_COVER_FOO: &str = "\
mod wire_codec {\n\
    fn roundtrips() { rt(FooMsg { x: 1 }); }\n\
}\n";

// ----------------------------------------------------- each check catches

#[test]
fn kind_registry_catches_dup_gap_range_and_dead() {
    let fs = findings_for(
        vec![("crates/core/src/messages.rs", KIND_VIOLATIONS)],
        &["kind-registry"],
    );
    assert_eq!(count_check(&fs, "kind-registry"), 4, "findings: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("K_DUP")), "duplicate value: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("K_GAP")), "retired gap: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("K_OOR")), "out of range: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("K_DEAD")), "dead kind: {fs:#?}");

    let clean =
        findings_for(vec![("crates/core/src/messages.rs", KIND_CLEAN)], &["kind-registry"]);
    assert!(clean.is_empty(), "clean fixture flagged: {clean:#?}");
}

#[test]
fn determinism_catches_hash_iteration_and_wall_clock() {
    let fs = findings_for(vec![("crates/net/src/foo.rs", DET_VIOLATIONS)], &["determinism"]);
    assert_eq!(count_check(&fs, "determinism"), 2, "findings: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("hash")), "hash-order loop: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("Instant::now")), "wall clock: {fs:#?}");

    // Same code outside the protocol-critical scope is not flagged.
    let out = findings_for(vec![("crates/bench/src/foo.rs", DET_VIOLATIONS)], &["determinism"]);
    assert!(out.is_empty(), "out-of-scope file flagged: {out:#?}");
}

#[test]
fn codec_xref_catches_uncovered_impl() {
    let fs = findings_for(
        vec![
            ("crates/core/src/messages.rs", MSGS_WITH_CODEC),
            ("tests/properties.rs", PROPS_COVER_FOO),
        ],
        &["codec-xref"],
    );
    assert_eq!(count_check(&fs, "codec-xref"), 1, "findings: {fs:#?}");
    assert!(fs[0].contains("BarMsg"), "uncovered impl: {fs:#?}");
}

#[test]
fn blocking_recv_catches_untimed_recv() {
    let fs = findings_for(vec![("crates/core/src/driver.rs", RECV_VIOLATION)], &["blocking-recv"]);
    assert_eq!(count_check(&fs, "blocking-recv"), 1, "findings: {fs:#?}");

    // `recv_timeout` is fine.
    let ok = findings_for(
        vec![(
            "crates/core/src/driver.rs",
            "pub fn pump(rx: R) { let _ = rx.recv_timeout(T); }\n",
        )],
        &["blocking-recv"],
    );
    assert!(ok.is_empty(), "recv_timeout flagged: {ok:#?}");
}

#[test]
fn unsafe_hygiene_requires_safety_comment() {
    let fs = findings_for(vec![("crates/node/src/sig.rs", UNSAFE_VIOLATION)], &["unsafe-hygiene"]);
    assert_eq!(count_check(&fs, "unsafe-hygiene"), 1, "findings: {fs:#?}");

    let ok = findings_for(vec![("crates/node/src/sig.rs", UNSAFE_CLEAN)], &["unsafe-hygiene"]);
    assert!(ok.is_empty(), "SAFETY-commented unsafe flagged: {ok:#?}");
}

#[test]
fn test_code_is_exempt_from_protocol_checks_but_not_unsafe() {
    let text = format!(
        "#[cfg(test)]\nmod tests {{\n{}{}    pub fn u() {{ unsafe {{ g() }} }}\n}}\n",
        DET_VIOLATIONS, RECV_VIOLATION
    );
    let fs = findings_for(
        vec![("crates/net/src/foo.rs", text.as_str())],
        &["determinism", "blocking-recv", "unsafe-hygiene"],
    );
    assert_eq!(count_check(&fs, "determinism"), 0, "{fs:#?}");
    assert_eq!(count_check(&fs, "blocking-recv"), 0, "{fs:#?}");
    assert_eq!(count_check(&fs, "unsafe-hygiene"), 1, "{fs:#?}");
}

// ------------------------------------------------------------ suppression

#[test]
fn allow_with_reason_suppresses_each_check() {
    let det = "\
use std::time::Instant;\n\
pub fn f() {\n\
    let _ = Instant::now(); // lint: allow(determinism) -- fixture says so\n\
}\n";
    let fs = findings_for(vec![("crates/net/src/foo.rs", det)], &["determinism"]);
    assert!(fs.is_empty(), "suppressed finding survived: {fs:#?}");

    let recv = "\
pub fn pump(rx: R) {\n\
    // lint: allow(blocking-recv) -- fixture says so\n\
    let _ = rx.recv();\n\
}\n";
    let fs = findings_for(vec![("crates/core/src/driver.rs", recv)], &["blocking-recv"]);
    assert!(fs.is_empty(), "preceding-line suppression failed: {fs:#?}");
}

#[test]
fn allow_without_reason_is_itself_a_finding() {
    let det = "\
use std::time::Instant;\n\
pub fn f() {\n\
    let _ = Instant::now(); // lint: allow(determinism)\n\
}\n";
    let fs = findings_for(vec![("crates/net/src/foo.rs", det)], &["determinism"]);
    // The determinism finding is suppressed, but the reasonless allow is
    // flagged by the meta-audit.
    assert_eq!(count_check(&fs, "determinism"), 0, "{fs:#?}");
    assert_eq!(count_check(&fs, "lint-allow"), 1, "{fs:#?}");
    assert!(fs[0].contains("without a reason"), "{fs:#?}");
}

#[test]
fn unknown_check_and_unused_suppression_are_findings() {
    let text = "\
pub fn f() {} // lint: allow(nonsense) -- because\n\
pub fn g() {} // lint: allow(determinism) -- matches nothing\n";
    let fs = findings_for(vec![("crates/net/src/foo.rs", text)], &["determinism"]);
    assert_eq!(count_check(&fs, "lint-allow"), 2, "{fs:#?}");
    assert!(fs.iter().any(|f| f.contains("unknown check")), "{fs:#?}");
    assert!(fs.iter().any(|f| f.contains("unused suppression")), "{fs:#?}");
}

#[test]
fn unused_suppression_not_judged_when_check_inactive() {
    let text = "pub fn g() {} // lint: allow(determinism) -- matches nothing\n";
    let fs = findings_for(vec![("crates/net/src/foo.rs", text)], &["blocking-recv"]);
    assert!(fs.is_empty(), "inactive check judged unused: {fs:#?}");
}

#[test]
fn malformed_directive_is_a_finding() {
    let text = "pub fn f() {} // lint: allot(determinism) -- typo\n";
    let fs = findings_for(vec![("crates/net/src/foo.rs", text)], &["determinism"]);
    assert_eq!(count_check(&fs, "lint-allow"), 1, "{fs:#?}");
    assert!(fs[0].contains("unknown lint directive"), "{fs:#?}");
}

#[test]
fn directive_marker_mid_comment_is_prose_not_a_directive() {
    // Docs that *describe* the syntax (like the lint's own) must not be
    // parsed as directives.
    let text = "// write `lint: allow(determinism) -- why` at the site\npub fn f() {}\n";
    let fs = findings_for(vec![("crates/net/src/foo.rs", text)], CHECKS);
    assert!(fs.is_empty(), "prose parsed as directive: {fs:#?}");
}

#[test]
fn unsafe_in_doc_comment_text_is_not_flagged() {
    // The word "unsafe" in a doc comment (e.g. config.rs's "Deliberately
    // unsafe (Fig. 1(d))" mode description) is comment text, not code.
    let text = "/// **Deliberately unsafe** consistency mode.\npub struct M;\npub fn f(m: M) { let _ = m; }\n";
    let fs = findings_for(vec![("crates/core/src/config.rs", text)], &["unsafe-hygiene"]);
    assert!(fs.is_empty(), "doc-comment 'unsafe' flagged: {fs:#?}");
}

// -------------------------------------------------------- bin exit codes

fn fixture_dir(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir()
        .join(format!("graphlab-lint-selftest-{}-{name}", std::process::id()));
    if root.exists() {
        std::fs::remove_dir_all(&root).unwrap();
    }
    for (rel, text) in files {
        let p = root.join(rel);
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(&p, text).unwrap();
    }
    root
}

fn run_bin(args: &[&str], cwd: Option<&Path>) -> (i32, String) {
    let mut c = Command::new(env!("CARGO_BIN_EXE_graphlab-lint"));
    c.args(args);
    if let Some(d) = cwd {
        c.current_dir(d);
    }
    let out = c.output().expect("spawn graphlab-lint");
    (out.status.code().unwrap_or(-1), String::from_utf8_lossy(&out.stdout).into_owned())
}

/// `(check, fixture name, fixture files)` for the bin exit-code matrix.
type BinCase = (&'static str, &'static str, &'static [(&'static str, &'static str)]);

#[test]
fn bin_exits_nonzero_on_each_seeded_violation() {
    let cases: &[BinCase] = &[
        ("kind-registry", "kinds", &[("crates/core/src/messages.rs", KIND_VIOLATIONS)]),
        ("determinism", "det", &[("crates/net/src/foo.rs", DET_VIOLATIONS)]),
        (
            "codec-xref",
            "codec",
            &[
                ("crates/core/src/messages.rs", MSGS_WITH_CODEC),
                ("tests/properties.rs", PROPS_COVER_FOO),
            ],
        ),
        ("blocking-recv", "recv", &[("crates/core/src/driver.rs", RECV_VIOLATION)]),
        ("unsafe-hygiene", "unsafe", &[("crates/node/src/sig.rs", UNSAFE_VIOLATION)]),
    ];
    for (check, name, files) in cases {
        let dir = fixture_dir(name, files);
        let (code, stdout) =
            run_bin(&[dir.to_str().unwrap(), "--check", check], None);
        assert_eq!(code, 1, "{check}: expected exit 1, stdout:\n{stdout}");
        assert!(stdout.contains(&format!("[{check}]")), "{check}: stdout:\n{stdout}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn bin_exits_zero_on_clean_fixture_and_two_on_usage_errors() {
    let dir = fixture_dir("clean", &[("crates/core/src/messages.rs", KIND_CLEAN)]);
    let (code, _) = run_bin(&[dir.to_str().unwrap()], None);
    assert_eq!(code, 0);
    std::fs::remove_dir_all(&dir).ok();

    let (code, _) = run_bin(&[], None);
    assert_eq!(code, 2, "no args must be a usage error");
    let (code, _) = run_bin(&["--check", "not-a-check", "x"], None);
    assert_eq!(code, 2, "bad check name must be a usage error");
}

// ------------------------------------------------------ the real workspace

/// The pin that gives the CI step its teeth: the repo's own tree passes all
/// five checks, with every surviving suppression carrying a reason.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (code, stdout) = run_bin(&["--workspace"], Some(&root));
    assert_eq!(code, 0, "workspace not lint-clean:\n{stdout}");
}
