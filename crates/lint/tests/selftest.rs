//! The lint lints itself: every check catches a seeded fixture violation,
//! an `allow` suppression with a reason silences it, the suppression
//! meta-audit catches rot, and the real workspace is pinned clean.
//!
//! Fixtures are in-memory strings (lib tests) or written to temp dirs (bin
//! exit-code tests) — never on-disk `.rs` files inside the repo, which the
//! workspace scan itself would flag.

use std::path::{Path, PathBuf};
use std::process::Command;

use graphlab_lint::{run_checks, Workspace, CHECKS};

fn findings_for(files: Vec<(&str, &str)>, active: &[&str]) -> Vec<String> {
    let ws = Workspace::from_memory(files);
    run_checks(&ws, active).iter().map(|f| f.to_string()).collect()
}

fn count_check(fs: &[String], check: &str) -> usize {
    fs.iter().filter(|f| f.contains(&format!("[{check}]"))).count()
}

// ---------------------------------------------------------- check fixtures

const KIND_VIOLATIONS: &str = "\
// lint: kind-map core = 1..=10 gaps 5\n\
pub const K_A: u16 = 1;\n\
pub const K_DUP: u16 = 1;\n\
pub const K_GAP: u16 = 5;\n\
pub const K_OOR: u16 = 99;\n\
pub const K_DEAD: u16 = 2;\n\
pub fn touch() { let _ = (K_A, K_DUP, K_GAP, K_OOR); }\n";

const KIND_CLEAN: &str = "\
// lint: kind-map core = 1..=10 gaps 5\n\
// lint: kind K_A handlers: engine.rs\n\
pub const K_A: u16 = 1;\n\
pub fn touch() { let _ = K_A; }\n";

/// Companion to [`KIND_CLEAN`]: a handler arm and a send site, so the
/// all-checks clean run stays clean under msg-flow too.
const KIND_CLEAN_ENGINE: &str = "\
pub fn handle(kind: u16) {\n\
    match kind {\n\
        K_A => work(),\n\
        _ => {}\n\
    }\n\
}\n\
pub fn emit(net: &mut Net) { net.send(0, K_A, vec![]); }\n";

const DET_VIOLATIONS: &str = "\
use std::collections::HashMap;\n\
use std::time::Instant;\n\
pub fn f() {\n\
    let m: HashMap<u32, u32> = HashMap::new();\n\
    for (k, v) in &m {\n\
        let _ = (k, v);\n\
    }\n\
    let _ = Instant::now();\n\
}\n";

const RECV_VIOLATION: &str = "\
pub fn pump(rx: std::sync::mpsc::Receiver<u32>) {\n\
    let _ = rx.recv();\n\
}\n";

const UNSAFE_VIOLATION: &str = "\
pub fn f() {\n\
    unsafe { std::hint::unreachable_unchecked() }\n\
}\n";

const UNSAFE_CLEAN: &str = "\
pub fn f(b: bool) {\n\
    if !b {\n\
        // SAFETY: caller guarantees `b` is always true here.\n\
        unsafe { std::hint::unreachable_unchecked() }\n\
    }\n\
}\n";

const MSGS_WITH_CODEC: &str = "\
pub struct FooMsg { pub x: u32 }\n\
impl Codec for FooMsg {\n\
    fn encode(&self, _b: &mut Vec<u8>) {}\n\
}\n\
pub struct BarMsg { pub y: u32 }\n\
impl Codec for BarMsg {\n\
    fn encode(&self, _b: &mut Vec<u8>) {}\n\
}\n";

const PROPS_COVER_FOO: &str = "\
mod wire_codec {\n\
    fn roundtrips() { rt(FooMsg { x: 1 }); }\n\
}\n";

// Six msg-flow violations: duplicate declaration, declaration for an
// undefined kind, declared-but-unhandled, undeclared kind, declared
// handler file missing from the workspace, handled-but-never-sent.
const FLOW_MSGS: &str = "\
// lint: kind K_GOOD handlers: engine.rs\n\
// lint: kind K_GOOD handlers: engine.rs\n\
// lint: kind K_GHOST handlers: engine.rs\n\
// lint: kind K_GONE handlers: engine.rs\n\
// lint: kind K_MISSFILE handlers: nowhere.rs\n\
// lint: kind K_NOSEND handlers: engine.rs\n\
pub const K_GOOD: u16 = 1;\n\
pub const K_GONE: u16 = 2;\n\
pub const K_NODECL: u16 = 3;\n\
pub const K_MISSFILE: u16 = 4;\n\
pub const K_NOSEND: u16 = 5;\n";

const FLOW_ENGINE: &str = "\
pub fn handle(env: Env) {\n\
    match env.kind {\n\
        K_GOOD => on_good(env),\n\
        k if k == K_NOSEND => on_nosend(env),\n\
        _ => {}\n\
    }\n\
}\n\
pub fn emit(net: &mut Net) {\n\
    net.send(0, K_GOOD, vec![]);\n\
    net.broadcast(K_GONE, vec![]);\n\
    net.put_wire(1, K_MISSFILE, vec![]);\n\
    let _ = Env { kind: K_NODECL, payload: vec![] };\n\
}\n";

const FLOW_CLEAN_MSGS: &str = "\
// lint: kind K_GOOD handlers: engine.rs\n\
pub const K_GOOD: u16 = 1;\n";

// Era-fencing violation: an arm decodes an era-carrying message and acts
// without any fence.
const ERA_VIOLATION: &str = "\
pub fn handle(env: Env) {\n\
    match env.kind {\n\
        K_ROLLBACK => {\n\
            let msg: RollbackMsg = dec(env.payload);\n\
            apply(msg);\n\
        }\n\
        _ => {}\n\
    }\n\
}\n";

// Clean twin: all three accepted fencing shapes — direct era comparison,
// RecoveryTracker fence call, and one-hop delegation into a same-file fn
// that fences.
const ERA_CLEAN: &str = "\
pub fn direct(env: Env, cur: u64) {\n\
    let msg: RollbackMsg = dec(env.payload);\n\
    if msg.era < cur {\n\
        return;\n\
    }\n\
    apply(msg);\n\
}\n\
pub fn fence(env: Env, rec: &mut Tracker) {\n\
    let msg: AdoptPlanMsg = dec(env.payload);\n\
    rec.observe_era(msg.era);\n\
    apply(msg);\n\
}\n\
pub fn dispatch(env: Env) {\n\
    let msg: DownMsg = dec(env.payload);\n\
    on_down(msg);\n\
}\n\
fn on_down(msg: DownMsg) {\n\
    if msg.era != current_era() {\n\
        return;\n\
    }\n\
    act(msg);\n\
}\n";

// Survivor-barrier violations: a direct `num_machines()` quorum compare
// (rule A) and a `let n = ...` alias compare (rule B).
const BARRIER_VIOLATION: &str = "\
impl R {\n\
    fn barrier(&self) -> bool {\n\
        self.acks >= self.num_machines()\n\
    }\n\
    fn barrier2(&self) -> bool {\n\
        let n = self.num_machines();\n\
        self.done == n\n\
    }\n\
}\n";

// Clean twin: quorums count survivors; ranges/sizing uses of the static
// count are fine.
const BARRIER_CLEAN: &str = "\
impl R {\n\
    fn barrier(&self) -> bool {\n\
        self.acks >= self.survivors()\n\
    }\n\
    fn sizing(&self) -> Vec<u64> {\n\
        let n = self.num_machines();\n\
        let mut v = vec![0u64; n];\n\
        for i in 0..n {\n\
            v[i] = i as u64;\n\
        }\n\
        v\n\
    }\n\
}\n";

// Fenced-send violation: a raw `ep.send` outside the Batcher.
const FENCED_VIOLATION: &str = "\
impl B {\n\
    pub fn leak(&mut self, dst: M, k: u16, p: Bytes) {\n\
        self.ep.send(dst, k, p);\n\
    }\n\
}\n";

// Clean twin: the `put`/`put_wire` path, and non-endpoint `.send()`
// receivers (channels) stay out of the pattern.
const FENCED_CLEAN: &str = "\
impl B {\n\
    pub fn ok(&mut self, dst: M, k: u16, p: Bytes) {\n\
        self.put_wire(dst, k, p);\n\
        self.tx.send(p).unwrap();\n\
    }\n\
}\n";

// ----------------------------------------------------- each check catches

#[test]
fn kind_registry_catches_dup_gap_range_and_dead() {
    let fs = findings_for(
        vec![("crates/core/src/messages.rs", KIND_VIOLATIONS)],
        &["kind-registry"],
    );
    assert_eq!(count_check(&fs, "kind-registry"), 4, "findings: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("K_DUP")), "duplicate value: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("K_GAP")), "retired gap: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("K_OOR")), "out of range: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("K_DEAD")), "dead kind: {fs:#?}");

    let clean =
        findings_for(vec![("crates/core/src/messages.rs", KIND_CLEAN)], &["kind-registry"]);
    assert!(clean.is_empty(), "clean fixture flagged: {clean:#?}");
}

#[test]
fn determinism_catches_hash_iteration_and_wall_clock() {
    let fs = findings_for(vec![("crates/net/src/foo.rs", DET_VIOLATIONS)], &["determinism"]);
    assert_eq!(count_check(&fs, "determinism"), 2, "findings: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("hash")), "hash-order loop: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("Instant::now")), "wall clock: {fs:#?}");

    // Same code outside the protocol-critical scope is not flagged.
    let out = findings_for(vec![("crates/bench/src/foo.rs", DET_VIOLATIONS)], &["determinism"]);
    assert!(out.is_empty(), "out-of-scope file flagged: {out:#?}");
}

#[test]
fn codec_xref_catches_uncovered_impl() {
    let fs = findings_for(
        vec![
            ("crates/core/src/messages.rs", MSGS_WITH_CODEC),
            ("tests/properties.rs", PROPS_COVER_FOO),
        ],
        &["codec-xref"],
    );
    assert_eq!(count_check(&fs, "codec-xref"), 1, "findings: {fs:#?}");
    assert!(fs[0].contains("BarMsg"), "uncovered impl: {fs:#?}");
}

#[test]
fn blocking_recv_catches_untimed_recv() {
    let fs = findings_for(vec![("crates/core/src/driver.rs", RECV_VIOLATION)], &["blocking-recv"]);
    assert_eq!(count_check(&fs, "blocking-recv"), 1, "findings: {fs:#?}");

    // `recv_timeout` is fine.
    let ok = findings_for(
        vec![(
            "crates/core/src/driver.rs",
            "pub fn pump(rx: R) { let _ = rx.recv_timeout(T); }\n",
        )],
        &["blocking-recv"],
    );
    assert!(ok.is_empty(), "recv_timeout flagged: {ok:#?}");
}

#[test]
fn unsafe_hygiene_requires_safety_comment() {
    let fs = findings_for(vec![("crates/node/src/sig.rs", UNSAFE_VIOLATION)], &["unsafe-hygiene"]);
    assert_eq!(count_check(&fs, "unsafe-hygiene"), 1, "findings: {fs:#?}");

    let ok = findings_for(vec![("crates/node/src/sig.rs", UNSAFE_CLEAN)], &["unsafe-hygiene"]);
    assert!(ok.is_empty(), "SAFETY-commented unsafe flagged: {ok:#?}");
}

#[test]
fn msg_flow_catches_all_six_violation_shapes() {
    let fs = findings_for(
        vec![
            ("crates/core/src/messages.rs", FLOW_MSGS),
            ("crates/core/src/engine.rs", FLOW_ENGINE),
        ],
        &["msg-flow"],
    );
    assert_eq!(count_check(&fs, "msg-flow"), 6, "findings: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("duplicate `kind K_GOOD`")), "dup decl: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("K_GHOST")), "unknown kind: {fs:#?}");
    assert!(
        fs.iter().any(|f| f.contains("K_GONE") && f.contains("no match arm")),
        "dropped handler: {fs:#?}"
    );
    assert!(fs.iter().any(|f| f.contains("`nowhere.rs`")), "missing file: {fs:#?}");
    assert!(
        fs.iter().any(|f| f.contains("K_NODECL") && f.contains("no handler declaration")),
        "undeclared: {fs:#?}"
    );
    assert!(
        fs.iter().any(|f| f.contains("K_NOSEND") && f.contains("never sent")),
        "never sent: {fs:#?}"
    );

    // Clean twin: one kind, declared, handled, sent.
    let clean = findings_for(
        vec![
            ("crates/core/src/messages.rs", FLOW_CLEAN_MSGS),
            ("crates/core/src/engine.rs", FLOW_ENGINE),
        ],
        &["msg-flow"],
    );
    assert!(clean.is_empty(), "clean twin flagged: {clean:#?}");
}

/// The counter-threshold notification kind (K_UPD_NOTE, the
/// message-driven-master protocol) is guarded by msg-flow for real:
/// deleting its `lint: kind` declaration from the actual messages.rs
/// makes the check flag it, so the registry comment can't silently rot.
#[test]
fn upd_note_handler_declaration_has_teeth() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let msgs =
        std::fs::read_to_string(root.join("crates/core/src/messages.rs")).expect("messages.rs");
    let locking =
        std::fs::read_to_string(root.join("crates/core/src/locking.rs")).expect("locking.rs");
    let stripped: String = msgs
        .lines()
        .filter(|l| !(l.contains("lint: kind K_UPD_NOTE")))
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(stripped.len() < msgs.len(), "declaration line not found to strip");

    let with_decl = findings_for(
        vec![
            ("crates/core/src/messages.rs", &msgs),
            ("crates/core/src/locking.rs", &locking),
        ],
        &["msg-flow"],
    );
    let without_decl = findings_for(
        vec![
            ("crates/core/src/messages.rs", &stripped),
            ("crates/core/src/locking.rs", &locking),
        ],
        &["msg-flow"],
    );
    let undeclared = |fs: &[String]| {
        fs.iter().any(|f| f.contains("K_UPD_NOTE") && f.contains("no handler declaration"))
    };
    assert!(!undeclared(&with_decl), "real declaration not recognised: {with_decl:#?}");
    assert!(undeclared(&without_decl), "stripped declaration not flagged: {without_decl:#?}");
}

#[test]
fn era_fencing_catches_unfenced_decode_and_accepts_all_fence_shapes() {
    let fs = findings_for(vec![("crates/core/src/engine.rs", ERA_VIOLATION)], &["era-fencing"]);
    assert_eq!(count_check(&fs, "era-fencing"), 1, "findings: {fs:#?}");
    assert!(fs[0].contains("RollbackMsg"), "{fs:#?}");

    let clean = findings_for(vec![("crates/core/src/engine.rs", ERA_CLEAN)], &["era-fencing"]);
    assert!(clean.is_empty(), "fenced twin flagged: {clean:#?}");

    // Decodes of non-era types are out of scope entirely.
    let other = "pub fn f(env: Env) { let m: ScheduleMsg = dec(env.payload); use_it(m); }\n";
    let out = findings_for(vec![("crates/core/src/engine.rs", other)], &["era-fencing"]);
    assert!(out.is_empty(), "non-era decode flagged: {out:#?}");
}

#[test]
fn survivor_barrier_catches_direct_and_aliased_compares() {
    let fs = findings_for(
        vec![("crates/core/src/recovery.rs", BARRIER_VIOLATION)],
        &["survivor-barrier"],
    );
    assert_eq!(count_check(&fs, "survivor-barrier"), 2, "findings: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("num_machines()` —")), "rule A: {fs:#?}");
    assert!(fs.iter().any(|f| f.contains("aliased")), "rule B: {fs:#?}");

    let clean = findings_for(
        vec![("crates/core/src/recovery.rs", BARRIER_CLEAN)],
        &["survivor-barrier"],
    );
    assert!(clean.is_empty(), "survivors()/range twin flagged: {clean:#?}");

    // The same code outside the recovery-bearing files is not in scope.
    let out = findings_for(
        vec![("crates/core/src/driver.rs", BARRIER_VIOLATION)],
        &["survivor-barrier"],
    );
    assert!(out.is_empty(), "out-of-scope file flagged: {out:#?}");
}

#[test]
fn fenced_send_catches_raw_endpoint_send() {
    let fs = findings_for(vec![("crates/net/src/batch.rs", FENCED_VIOLATION)], &["fenced-send"]);
    assert_eq!(count_check(&fs, "fenced-send"), 1, "findings: {fs:#?}");

    let clean = findings_for(vec![("crates/net/src/batch.rs", FENCED_CLEAN)], &["fenced-send"]);
    assert!(clean.is_empty(), "put_wire/channel twin flagged: {clean:#?}");
}

#[test]
fn test_code_is_exempt_from_protocol_checks_but_not_unsafe() {
    let text = format!(
        "#[cfg(test)]\nmod tests {{\n{}{}    pub fn u() {{ unsafe {{ g() }} }}\n}}\n",
        DET_VIOLATIONS, RECV_VIOLATION
    );
    let fs = findings_for(
        vec![("crates/net/src/foo.rs", text.as_str())],
        &["determinism", "blocking-recv", "unsafe-hygiene"],
    );
    assert_eq!(count_check(&fs, "determinism"), 0, "{fs:#?}");
    assert_eq!(count_check(&fs, "blocking-recv"), 0, "{fs:#?}");
    assert_eq!(count_check(&fs, "unsafe-hygiene"), 1, "{fs:#?}");
}

// ------------------------------------------------------------ suppression

#[test]
fn allow_with_reason_suppresses_each_check() {
    let det = "\
use std::time::Instant;\n\
pub fn f() {\n\
    let _ = Instant::now(); // lint: allow(determinism) -- fixture says so\n\
}\n";
    let fs = findings_for(vec![("crates/net/src/foo.rs", det)], &["determinism"]);
    assert!(fs.is_empty(), "suppressed finding survived: {fs:#?}");

    let recv = "\
pub fn pump(rx: R) {\n\
    // lint: allow(blocking-recv) -- fixture says so\n\
    let _ = rx.recv();\n\
}\n";
    let fs = findings_for(vec![("crates/core/src/driver.rs", recv)], &["blocking-recv"]);
    assert!(fs.is_empty(), "preceding-line suppression failed: {fs:#?}");
}

#[test]
fn allow_without_reason_is_itself_a_finding() {
    let det = "\
use std::time::Instant;\n\
pub fn f() {\n\
    let _ = Instant::now(); // lint: allow(determinism)\n\
}\n";
    let fs = findings_for(vec![("crates/net/src/foo.rs", det)], &["determinism"]);
    // The determinism finding is suppressed, but the reasonless allow is
    // flagged by the meta-audit.
    assert_eq!(count_check(&fs, "determinism"), 0, "{fs:#?}");
    assert_eq!(count_check(&fs, "lint-allow"), 1, "{fs:#?}");
    assert!(fs[0].contains("without a reason"), "{fs:#?}");
}

#[test]
fn unknown_check_and_unused_suppression_are_findings() {
    let text = "\
pub fn f() {} // lint: allow(nonsense) -- because\n\
pub fn g() {} // lint: allow(determinism) -- matches nothing\n";
    let fs = findings_for(vec![("crates/net/src/foo.rs", text)], &["determinism"]);
    assert_eq!(count_check(&fs, "lint-allow"), 2, "{fs:#?}");
    assert!(fs.iter().any(|f| f.contains("unknown check")), "{fs:#?}");
    assert!(fs.iter().any(|f| f.contains("unused suppression")), "{fs:#?}");
}

#[test]
fn unused_suppression_not_judged_when_check_inactive() {
    let text = "pub fn g() {} // lint: allow(determinism) -- matches nothing\n";
    let fs = findings_for(vec![("crates/net/src/foo.rs", text)], &["blocking-recv"]);
    assert!(fs.is_empty(), "inactive check judged unused: {fs:#?}");
}

#[test]
fn malformed_directive_is_a_finding() {
    let text = "pub fn f() {} // lint: allot(determinism) -- typo\n";
    let fs = findings_for(vec![("crates/net/src/foo.rs", text)], &["determinism"]);
    assert_eq!(count_check(&fs, "lint-allow"), 1, "{fs:#?}");
    assert!(fs[0].contains("unknown lint directive"), "{fs:#?}");
}

#[test]
fn directive_marker_mid_comment_is_prose_not_a_directive() {
    // Docs that *describe* the syntax (like the lint's own) must not be
    // parsed as directives.
    let text = "// write `lint: allow(determinism) -- why` at the site\npub fn f() {}\n";
    let fs = findings_for(vec![("crates/net/src/foo.rs", text)], CHECKS);
    assert!(fs.is_empty(), "prose parsed as directive: {fs:#?}");
}

#[test]
fn unsafe_in_doc_comment_text_is_not_flagged() {
    // The word "unsafe" in a doc comment (e.g. config.rs's "Deliberately
    // unsafe (Fig. 1(d))" mode description) is comment text, not code.
    let text = "/// **Deliberately unsafe** consistency mode.\npub struct M;\npub fn f(m: M) { let _ = m; }\n";
    let fs = findings_for(vec![("crates/core/src/config.rs", text)], &["unsafe-hygiene"]);
    assert!(fs.is_empty(), "doc-comment 'unsafe' flagged: {fs:#?}");
}

// -------------------------------------------------------- bin exit codes

fn fixture_dir(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir()
        .join(format!("graphlab-lint-selftest-{}-{name}", std::process::id()));
    if root.exists() {
        std::fs::remove_dir_all(&root).unwrap();
    }
    for (rel, text) in files {
        let p = root.join(rel);
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(&p, text).unwrap();
    }
    root
}

fn run_bin(args: &[&str], cwd: Option<&Path>) -> (i32, String) {
    let mut c = Command::new(env!("CARGO_BIN_EXE_graphlab-lint"));
    c.args(args);
    if let Some(d) = cwd {
        c.current_dir(d);
    }
    let out = c.output().expect("spawn graphlab-lint");
    (out.status.code().unwrap_or(-1), String::from_utf8_lossy(&out.stdout).into_owned())
}

/// `(check, fixture name, fixture files)` for the bin exit-code matrix.
type BinCase = (&'static str, &'static str, &'static [(&'static str, &'static str)]);

#[test]
fn bin_exits_nonzero_on_each_seeded_violation() {
    let cases: &[BinCase] = &[
        ("kind-registry", "kinds", &[("crates/core/src/messages.rs", KIND_VIOLATIONS)]),
        ("determinism", "det", &[("crates/net/src/foo.rs", DET_VIOLATIONS)]),
        (
            "codec-xref",
            "codec",
            &[
                ("crates/core/src/messages.rs", MSGS_WITH_CODEC),
                ("tests/properties.rs", PROPS_COVER_FOO),
            ],
        ),
        ("blocking-recv", "recv", &[("crates/core/src/driver.rs", RECV_VIOLATION)]),
        ("unsafe-hygiene", "unsafe", &[("crates/node/src/sig.rs", UNSAFE_VIOLATION)]),
        (
            "msg-flow",
            "flow",
            &[
                ("crates/core/src/messages.rs", FLOW_MSGS),
                ("crates/core/src/engine.rs", FLOW_ENGINE),
            ],
        ),
        ("era-fencing", "era", &[("crates/core/src/engine.rs", ERA_VIOLATION)]),
        (
            "survivor-barrier",
            "barrier",
            &[("crates/core/src/recovery.rs", BARRIER_VIOLATION)],
        ),
        ("fenced-send", "fenced", &[("crates/net/src/batch.rs", FENCED_VIOLATION)]),
    ];
    for (check, name, files) in cases {
        let dir = fixture_dir(name, files);
        let (code, stdout) =
            run_bin(&[dir.to_str().unwrap(), "--check", check], None);
        assert_eq!(code, 1, "{check}: expected exit 1, stdout:\n{stdout}");
        assert!(stdout.contains(&format!("[{check}]")), "{check}: stdout:\n{stdout}");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn bin_exits_zero_on_clean_fixture_and_two_on_usage_errors() {
    let dir = fixture_dir(
        "clean",
        &[
            ("crates/core/src/messages.rs", KIND_CLEAN),
            ("crates/core/src/engine.rs", KIND_CLEAN_ENGINE),
        ],
    );
    let (code, _) = run_bin(&[dir.to_str().unwrap()], None);
    assert_eq!(code, 0);
    std::fs::remove_dir_all(&dir).ok();

    let (code, _) = run_bin(&[], None);
    assert_eq!(code, 2, "no args must be a usage error");
    let (code, _) = run_bin(&["--check", "not-a-check", "x"], None);
    assert_eq!(code, 2, "bad check name must be a usage error");
}

// ------------------------------------------------------ the real workspace

/// The pin that gives the CI step its teeth: the repo's own tree passes all
/// nine checks, with every surviving suppression carrying a reason.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let (code, stdout) = run_bin(&["--workspace"], Some(&root));
    assert_eq!(code, 0, "workspace not lint-clean:\n{stdout}");
}

/// `--json` emits per-check counts in the BENCH_lint schema.
#[test]
fn json_emission_counts_findings_per_check() {
    let dir = fixture_dir(
        "json",
        &[
            ("crates/core/src/recovery.rs", BARRIER_VIOLATION),
            ("crates/net/src/batch.rs", FENCED_VIOLATION),
        ],
    );
    let json = dir.join("out.json");
    let (code, _) = run_bin(
        &[
            dir.to_str().unwrap(),
            "--check",
            "survivor-barrier",
            "--check",
            "fenced-send",
            "--json",
            json.to_str().unwrap(),
        ],
        None,
    );
    assert_eq!(code, 1);
    let doc = std::fs::read_to_string(&json).unwrap();
    assert!(doc.contains("\"schema\": \"graphlab-lint-v1\""), "{doc}");
    assert!(doc.contains("\"survivor-barrier\": 2"), "{doc}");
    assert!(doc.contains("\"fenced-send\": 1"), "{doc}");
    assert!(doc.contains("\"total\": 3"), "{doc}");
    std::fs::remove_dir_all(&dir).ok();
}
