//! CLI: `graphlab-lint --workspace` (CI entry point, deny-by-default) or
//! `graphlab-lint <path>..` to lint a directory/file tree in place.

use std::path::PathBuf;
use std::process::ExitCode;

use graphlab_lint::{find_workspace_root, run_checks, Workspace, CHECKS};

fn usage() -> &'static str {
    "usage: graphlab-lint [--workspace | <path>..] [--check <name>].. [--json <file>] [--list-checks]\n\
     \n\
     --workspace     lint the enclosing cargo workspace (finds the root from cwd)\n\
     <path>          lint all .rs files under the given root(s) instead\n\
     --check <name>  run only the named check (repeatable)\n\
     --json <file>   also write per-check finding counts as JSON (BENCH_lint style)\n\
     --list-checks   print the check names and exit\n\
     \n\
     Exit status: 0 when clean, 1 on findings, 2 on usage/setup errors."
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut workspace = false;
    let mut active: Vec<&'static str> = Vec::new();
    let mut json_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json needs a file path");
                    return ExitCode::from(2);
                }
            },
            "--list-checks" => {
                for c in CHECKS {
                    println!("{c}");
                }
                return ExitCode::SUCCESS;
            }
            "--check" => match it.next().and_then(|n| CHECKS.iter().find(|c| *c == n)) {
                Some(c) => active.push(c),
                None => {
                    eprintln!("--check needs one of: {}", CHECKS.join(", "));
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => roots.push(PathBuf::from(other)),
            other => {
                eprintln!("unknown flag {other}\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }
    if active.is_empty() {
        active = CHECKS.to_vec();
    }
    if !workspace && roots.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    }
    if workspace && !roots.is_empty() {
        eprintln!("graphlab-lint: --workspace and explicit paths are mutually exclusive");
        return ExitCode::from(2);
    }

    if workspace {
        let cwd = std::env::current_dir().expect("cwd");
        match find_workspace_root(&cwd) {
            Some(root) => roots = vec![root],
            None => {
                eprintln!("graphlab-lint: no [workspace] Cargo.toml above {}", cwd.display());
                return ExitCode::from(2);
            }
        }
    }

    let mut total = 0usize;
    let mut per_check: Vec<(&'static str, usize)> =
        active.iter().map(|&c| (c, 0usize)).chain([("lint-allow", 0usize)]).collect();
    for root in &roots {
        let ws = match Workspace::load(root) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("graphlab-lint: failed to read {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let findings = run_checks(&ws, &active);
        for f in &findings {
            println!("{f}");
            if let Some(e) = per_check.iter_mut().find(|(c, _)| *c == f.check) {
                e.1 += 1;
            }
        }
        total += findings.len();
    }
    if let Some(path) = &json_path {
        // Hand-rolled JSON (the crate is dependency-free); check names are
        // plain ASCII identifiers, no escaping needed.
        let checks: Vec<String> =
            per_check.iter().map(|(c, n)| format!("\"{c}\": {n}")).collect();
        let doc = format!(
            "{{\n  \"schema\": \"graphlab-lint-v1\",\n  \"checks\": {{ {} }},\n  \
             \"total\": {total}\n}}\n",
            checks.join(", ")
        );
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("graphlab-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if total == 0 {
        eprintln!(
            "graphlab-lint: clean ({} check{})",
            active.len(),
            if active.len() == 1 { "" } else { "s" }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("graphlab-lint: {total} finding{}", if total == 1 { "" } else { "s" });
        ExitCode::FAILURE
    }
}
