//! Lightweight item-structure layer on top of the lexer — just enough
//! shape for the protocol-flow checks: `fn` body spans, `match`-arm
//! pattern/body spans, call sites, and balanced-group scanning. This is
//! deliberately not a Rust grammar; it never fails, it only under-reports
//! on shapes it does not model (and the selftests pin the shapes the
//! checks rely on).
//!
//! All spans are ranges of **code-token indices** — indices into
//! [`ItemMap::code`], which lists the file's tokens with comments removed.
//! Working in code-token space makes adjacency tests ("is the next code
//! token a comparator?") trivial regardless of interleaved comments.

use crate::lexer::{Tok, TokKind};

/// A `fn <name> .. { body }` item (trait methods without bodies are not
/// recorded).
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Code-token indices of the body's `{` and its matching `}`.
    pub body: (usize, usize),
}

/// One `pattern [if guard] => body` arm of a `match`. The guard, when
/// present, is part of the pattern range — for the checks' purposes a
/// kind tested in a guard is handled exactly like one in the pattern.
pub struct ArmSpan {
    /// Inclusive code-token range of the pattern (and guard), excluding
    /// the `=>`.
    pub pat: (usize, usize),
    /// Inclusive code-token range of the body (braces included for block
    /// bodies).
    pub body: (usize, usize),
}

/// Item-structure map of one source file.
pub struct ItemMap {
    /// Indices into the file's token stream, comments removed.
    pub code: Vec<usize>,
    /// Every `fn` with a body, in source order. Nested fns get their own
    /// entries; [`ItemMap::enclosing_fn`] resolves to the innermost.
    pub fns: Vec<FnSpan>,
    /// Every arm of every `match`, outer and nested alike;
    /// [`ItemMap::innermost_arm`] resolves containment.
    pub arms: Vec<ArmSpan>,
}

impl ItemMap {
    /// Builds the map for one token stream.
    pub fn build(toks: &[Tok], src: &str) -> ItemMap {
        let code: Vec<usize> = (0..toks.len())
            .filter(|&i| toks[i].kind != TokKind::Comment)
            .collect();
        let mut fns = Vec::new();
        let mut arms = Vec::new();

        for w in 0..code.len().saturating_sub(1) {
            let t = &toks[code[w]];
            if t.is_ident(src, "fn") && toks[code[w + 1]].kind == TokKind::Ident {
                if let Some(body) = find_body_brace(toks, &code, w + 2) {
                    let close = close_delim(toks, &code, body, '{', '}');
                    fns.push(FnSpan {
                        name: toks[code[w + 1]].text(src).to_string(),
                        body: (body, close),
                    });
                }
            } else if t.is_ident(src, "match") {
                if let Some(open) = find_body_brace(toks, &code, w + 1) {
                    let close = close_delim(toks, &code, open, '{', '}');
                    parse_arms(toks, &code, open, close, &mut arms);
                }
            }
        }
        ItemMap { code, fns, arms }
    }

    /// The smallest match-arm body containing code-token index `ci`.
    pub fn innermost_arm(&self, ci: usize) -> Option<&ArmSpan> {
        self.arms
            .iter()
            .filter(|a| a.body.0 <= ci && ci <= a.body.1)
            .min_by_key(|a| a.body.1 - a.body.0)
    }

    /// The smallest fn body containing code-token index `ci`.
    pub fn enclosing_fn(&self, ci: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body.0 <= ci && ci <= f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    /// The first fn with this name (the protocol files the checks follow
    /// delegation into do not overload handler names).
    pub fn fn_named(&self, name: &str, src: &str, toks: &[Tok]) -> Option<&FnSpan> {
        let _ = (src, toks);
        self.fns.iter().find(|f| f.name == name)
    }

    /// Whether code-token index `ci` sits in any arm's pattern (or guard).
    pub fn in_arm_pattern(&self, ci: usize) -> bool {
        self.arms.iter().any(|a| a.pat.0 <= ci && ci <= a.pat.1)
    }
}

/// Scans forward from code index `from` for the `{` that opens an item
/// body, at paren/bracket depth 0. Returns `None` on a `;` first (bodiless
/// item) or end of stream.
fn find_body_brace(toks: &[Tok], code: &[usize], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = from;
    while k < code.len() {
        match toks[code[k]].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct(';') if depth == 0 => return None,
            TokKind::Punct('{') if depth == 0 => return Some(k),
            _ => {}
        }
        k += 1;
    }
    None
}

/// Given `code[open]` is the opening delimiter, returns the code index of
/// its matching closer (or the last token on unbalanced input).
pub fn close_delim(toks: &[Tok], code: &[usize], open: usize, o: char, c: char) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < code.len() {
        if toks[code[k]].is_punct(o) {
            depth += 1;
        } else if toks[code[k]].is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    code.len().saturating_sub(1)
}

/// Parses the arms of one match block: `code[open]` is the block `{`,
/// `code[close]` its `}`.
fn parse_arms(toks: &[Tok], code: &[usize], open: usize, close: usize, out: &mut Vec<ArmSpan>) {
    let mut k = open + 1;
    while k < close {
        if toks[code[k]].is_punct(',') {
            k += 1;
            continue;
        }
        // Pattern: scan to `=>` at bracket depth 0 (struct patterns and
        // guards may nest all three bracket kinds).
        let pat_lo = k;
        let mut depth = 0i32;
        let mut arrow = None;
        let mut j = k;
        while j < close {
            match toks[code[j]].kind {
                TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                TokKind::Punct('=')
                    if depth == 0 && j + 1 < close && toks[code[j + 1]].is_punct('>') =>
                {
                    arrow = Some(j);
                }
                _ => {}
            }
            if arrow.is_some() {
                break;
            }
            j += 1;
        }
        let Some(ar) = arrow else { break };
        let pat = (pat_lo, ar.saturating_sub(1).max(pat_lo));
        let body_lo = ar + 2;
        if body_lo >= close {
            break;
        }
        let (body_hi, next) = if toks[code[body_lo]].is_punct('{') {
            let c = close_delim(toks, code, body_lo, '{', '}');
            (c, c + 1)
        } else {
            // Expression body: to the `,` at depth 0, or the match's `}`.
            let mut depth = 0i32;
            let mut j = body_lo;
            let mut hi = close - 1;
            while j < close {
                match toks[code[j]].kind {
                    TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
                    TokKind::Punct(',') if depth == 0 => {
                        hi = j - 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            (hi, j + 1)
        };
        out.push(ArmSpan { pat, body: (body_lo, body_hi) });
        k = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn map(src: &str) -> (Vec<Tok>, ItemMap) {
        let toks = lex(src);
        let im = ItemMap::build(&toks, src);
        (toks, im)
    }

    #[test]
    fn fn_spans_and_nesting() {
        let src = "fn outer(a: u32) -> Vec<u8> { fn inner() {} body(); }\nfn decl();\n";
        let (toks, im) = map(src);
        assert_eq!(im.fns.len(), 2, "bodiless decl not recorded");
        assert_eq!(im.fns[0].name, "outer");
        assert_eq!(im.fns[1].name, "inner");
        let body_ci = im
            .code
            .iter()
            .position(|&i| toks[i].is_ident(src, "body"))
            .unwrap();
        assert_eq!(im.enclosing_fn(body_ci).unwrap().name, "outer");
    }

    #[test]
    fn match_arms_block_expr_guard_and_struct_pattern() {
        let src = "fn f(k: u16) {\n\
            match k {\n\
                K_A => { one(); }\n\
                K_B | K_C => two(),\n\
                Foo { x } if x == K_D => three(),\n\
                _ => {}\n\
            }\n\
        }\n";
        let (toks, im) = map(src);
        assert_eq!(im.arms.len(), 4);
        // K_D sits in the guard — pattern territory.
        let kd = im
            .code
            .iter()
            .position(|&i| toks[i].is_ident(src, "K_D"))
            .unwrap();
        assert!(im.in_arm_pattern(kd));
        // `two` is an expression body.
        let two = im
            .code
            .iter()
            .position(|&i| toks[i].is_ident(src, "two"))
            .unwrap();
        let arm = im.innermost_arm(two).unwrap();
        assert!(arm.body.0 <= two && two <= arm.body.1);
    }

    #[test]
    fn nested_match_resolves_innermost() {
        let src = "fn f(a: u16, b: u16) {\n\
            match a {\n\
                1 => match b {\n\
                    2 => inner_site(),\n\
                    _ => {}\n\
                },\n\
                _ => {}\n\
            }\n\
        }\n";
        let (toks, im) = map(src);
        let site = im
            .code
            .iter()
            .position(|&i| toks[i].is_ident(src, "inner_site"))
            .unwrap();
        let arm = im.innermost_arm(site).unwrap();
        // The innermost arm is `2 => inner_site()`, a short span.
        assert!(arm.body.1 - arm.body.0 <= 3, "resolved outer arm instead");
    }

    #[test]
    fn range_pattern_eq_is_not_an_arrow() {
        let src = "fn f(k: u16) { match k { 1..=5 => a(), _ => b() } }\n";
        let (_, im) = map(src);
        assert_eq!(im.arms.len(), 2);
    }
}
