//! The five protocol-invariant checks.
//!
//! Each check walks the token streams of a [`Workspace`] and pushes
//! [`Finding`]s; suppression handling and ordering live in
//! [`crate::run_checks`].

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};
use crate::source::{SourceFile, Workspace};
use crate::Finding;

/// Core protocol modules covered by the determinism check: everything that
/// builds wire payloads, orders sends, or feeds traces.
const CORE_DETERMINISM_FILES: &[&str] = &[
    "messages.rs",
    "chromatic.rs",
    "locking.rs",
    "driver.rs",
    "local.rs",
    "snapshot.rs",
    "recovery.rs",
];

/// Whether `path` is protocol-critical for the determinism check.
pub fn determinism_scope(path: &str) -> bool {
    if let Some(rest) = path.strip_prefix("crates/core/src/") {
        return CORE_DETERMINISM_FILES.contains(&rest);
    }
    path.starts_with("crates/net/src/")
}

/// Whether `path` is in scope for the blocking-recv audit: all engine and
/// transport sources.
pub fn recv_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/net/src/")
}

fn finding(check: &'static str, f: &SourceFile, t: &Tok, message: String) -> Finding {
    Finding { check, path: f.path.clone(), line: t.line, col: t.col, message }
}

// ---------------------------------------------------------------- check 1

/// One `pub const K_*: u16 = ..;` definition.
struct KindDef {
    file: usize,
    tok: usize,
    name: String,
    value: Option<u64>,
}

/// Kind-registry audit: global uniqueness, per-crate reserved ranges and
/// gaps (ground truth: `// lint: kind-map` comments), and liveness.
pub fn check_kind_registry(ws: &Workspace, out: &mut Vec<Finding>) {
    // Ground truth: collect kind-map declarations.
    let mut maps: BTreeMap<String, (usize, crate::source::KindMap)> = BTreeMap::new();
    for (fi, f) in ws.files.iter().enumerate() {
        for m in &f.kind_maps {
            if let Some((prev_fi, prev)) = maps.get(&m.krate) {
                out.push(Finding {
                    check: "kind-registry",
                    path: f.path.clone(),
                    line: m.line,
                    col: 1,
                    message: format!(
                        "duplicate kind-map for crate `{}` (first declared at {}:{})",
                        m.krate, ws.files[*prev_fi].path, prev.line
                    ),
                });
            } else {
                maps.insert(m.krate.clone(), (fi, m.clone()));
            }
        }
    }
    // Declared ranges must not overlap across crates.
    let entries: Vec<_> = maps.values().collect();
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let (a, b) = (&entries[i].1, &entries[j].1);
            if a.lo <= b.hi && b.lo <= a.hi {
                out.push(Finding {
                    check: "kind-registry",
                    path: ws.files[entries[j].0].path.clone(),
                    line: b.line,
                    col: 1,
                    message: format!(
                        "kind-map ranges overlap: `{}` {}..={} vs `{}` {}..={}",
                        a.krate, a.lo, a.hi, b.krate, b.lo, b.hi
                    ),
                });
            }
        }
    }

    // Definitions: `pub const K_*: <ty> = <expr>;` outside test code.
    let mut defs: Vec<KindDef> = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        let toks = &f.toks;
        let src = &f.text;
        let code: Vec<usize> = (0..toks.len())
            .filter(|&i| toks[i].kind != TokKind::Comment)
            .collect();
        for w in 0..code.len().saturating_sub(3) {
            let [a, b, c, d] = [code[w], code[w + 1], code[w + 2], code[w + 3]];
            if !(toks[a].is_ident(src, "pub")
                && toks[b].is_ident(src, "const")
                && toks[c].kind == TokKind::Ident
                && toks[c].text(src).starts_with("K_")
                && toks[d].is_punct(':'))
            {
                continue;
            }
            if f.in_test_code(toks[c].start) {
                continue;
            }
            let name = toks[c].text(src).to_string();
            // Type must be u16 — kinds travel as a u16 header field.
            let ty = code.get(w + 4).map(|&i| &toks[i]);
            if !ty.map(|t| t.is_ident(src, "u16")).unwrap_or(false) {
                out.push(finding(
                    "kind-registry",
                    f,
                    &toks[c],
                    format!("kind constant `{name}` must have type u16"),
                ));
                continue;
            }
            let value = eval_kind_expr(toks, src, &code[w + 5..]);
            if value.is_none() {
                out.push(finding(
                    "kind-registry",
                    f,
                    &toks[c],
                    format!(
                        "kind constant `{name}` is not statically evaluable \
                         (expected an integer literal or `u16::MAX - n`)"
                    ),
                ));
            }
            defs.push(KindDef { file: fi, tok: c, name, value });
        }
    }

    // Range + gap membership per definition.
    for d in &defs {
        let f = &ws.files[d.file];
        let t = &f.toks[d.tok];
        let Some(v) = d.value else { continue };
        let krate = f.crate_name();
        match maps.get(krate) {
            None => out.push(finding(
                "kind-registry",
                f,
                t,
                format!(
                    "kind constant `{}` defined in crate `{krate}`, which has no \
                     `lint: kind-map` reservation",
                    d.name
                ),
            )),
            Some((_, m)) => {
                if v < m.lo || v > m.hi {
                    out.push(finding(
                        "kind-registry",
                        f,
                        t,
                        format!(
                            "kind `{}` = {v} outside crate `{krate}`'s reserved range \
                             {}..={}",
                            d.name, m.lo, m.hi
                        ),
                    ));
                } else if m.in_gap(v) {
                    out.push(finding(
                        "kind-registry",
                        f,
                        t,
                        format!(
                            "kind `{}` = {v} reuses a reserved/retired gap value of crate \
                             `{krate}`'s kind-map",
                            d.name
                        ),
                    ));
                }
            }
        }
    }

    // Global uniqueness.
    let mut by_value: BTreeMap<u64, &KindDef> = BTreeMap::new();
    for d in &defs {
        let Some(v) = d.value else { continue };
        if let Some(first) = by_value.get(&v) {
            let ff = &ws.files[first.file];
            let f = &ws.files[d.file];
            out.push(finding(
                "kind-registry",
                f,
                &f.toks[d.tok],
                format!(
                    "kind `{}` = {v} collides with `{}` ({}:{})",
                    d.name, first.name, ff.path, ff.toks[first.tok].line
                ),
            ));
        } else {
            by_value.insert(v, d);
        }
    }

    // Liveness: every kind needs at least one non-defining reference
    // outside `use` declarations.
    let mut refs: BTreeMap<&str, u64> = defs.iter().map(|d| (d.name.as_str(), 0)).collect();
    for (fi, f) in ws.files.iter().enumerate() {
        let src = &f.text;
        let mut in_use_decl = false;
        for (ti, t) in f.toks.iter().enumerate() {
            match t.kind {
                TokKind::Ident if t.is_ident(src, "use") => in_use_decl = true,
                TokKind::Punct(';') => in_use_decl = false,
                TokKind::Ident if !in_use_decl => {
                    let text = t.text(src);
                    if let Some(n) = refs.get_mut(text) {
                        let is_def_site =
                            defs.iter().any(|d| d.file == fi && d.tok == ti);
                        if !is_def_site {
                            *n += 1;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    for d in &defs {
        if refs.get(d.name.as_str()) == Some(&0) {
            let f = &ws.files[d.file];
            out.push(finding(
                "kind-registry",
                f,
                &f.toks[d.tok],
                format!("dead kind: `{}` is never referenced outside its definition", d.name),
            ));
        }
    }
}

/// Evaluates the constant expression between `=` and `;`: an integer
/// literal, `u16::MAX`, or `u16::MAX - n`.
fn eval_kind_expr(toks: &[Tok], src: &str, code: &[usize]) -> Option<u64> {
    // code[0] should be '='.
    if code.is_empty() || !toks[code[0]].is_punct('=') {
        return None;
    }
    let expr: Vec<&Tok> = code[1..]
        .iter()
        .map(|&i| &toks[i])
        .take_while(|t| !t.is_punct(';'))
        .collect();
    match expr.as_slice() {
        [n] if n.kind == TokKind::Num => n.value,
        [u, c1, c2, m]
            if u.is_ident(src, "u16")
                && c1.is_punct(':')
                && c2.is_punct(':')
                && m.is_ident(src, "MAX") =>
        {
            Some(u16::MAX as u64)
        }
        [u, c1, c2, m, minus, n]
            if u.is_ident(src, "u16")
                && c1.is_punct(':')
                && c2.is_punct(':')
                && m.is_ident(src, "MAX")
                && minus.is_punct('-')
                && n.kind == TokKind::Num =>
        {
            Some(u16::MAX as u64 - n.value?)
        }
        _ => None,
    }
}

// ---------------------------------------------------------------- check 2

/// Iteration methods whose visit order is the hasher's, not the data's.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// RNG constructors/seeders that demand a written justification in
/// protocol paths (seeded ones included: the reason documents the seed's
/// provenance).
const RNG_IDENTS: &[&str] =
    &["thread_rng", "from_entropy", "seed_from_u64", "from_seed", "StdRng", "SmallRng"];

/// Determinism lint: no hash-order iteration, wall-clock reads, or RNG
/// construction in protocol-critical modules.
pub fn check_determinism(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !determinism_scope(&f.path) {
            continue;
        }
        let src = &f.text;
        let toks = &f.toks;
        let code: Vec<usize> = (0..toks.len())
            .filter(|&i| toks[i].kind != TokKind::Comment)
            .collect();
        let hash_names = collect_hash_names(f, &code);

        for (w, &i) in code.iter().enumerate() {
            let t = &toks[i];
            if f.in_test_code(t.start) {
                continue;
            }
            if t.kind == TokKind::Ident {
                let text = t.text(src);
                // `Instant::now` / `SystemTime::now`.
                if (text == "Instant" || text == "SystemTime")
                        && matches_path_call(toks, src, &code[w + 1..], "now")
                {
                    out.push(finding(
                        "determinism",
                        f,
                        t,
                        format!(
                            "`{text}::now` in protocol-critical module — wall-clock \
                             values must never influence wire contents or traces"
                        ),
                    ));
                    continue;
                }
                if RNG_IDENTS.contains(&text) {
                    out.push(finding(
                        "determinism",
                        f,
                        t,
                        format!(
                            "RNG construction `{text}` in protocol-critical module — \
                             randomness here must be seeded and justified"
                        ),
                    ));
                    continue;
                }
                if hash_names.contains(&text) {
                    // `for pat in [&[mut]] name` — hash-order loop.
                    if is_for_loop_target(toks, src, &code[..w]) {
                        out.push(finding(
                            "determinism",
                            f,
                            t,
                            format!(
                                "iteration over hash container `{text}` (for-loop) — \
                                 hash order is nondeterministic; use a BTreeMap or \
                                 sort before iterating"
                            ),
                        ));
                        continue;
                    }
                    if let Some(m) = hash_iter_method(toks, src, &code[w + 1..]) {
                        out.push(finding(
                            "determinism",
                            f,
                            t,
                            format!(
                                "`.{m}()` on hash container `{text}` — hash order is \
                                 nondeterministic; use a BTreeMap or sort before \
                                 iterating"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Names declared (outside test code) with a hash-container type: struct
/// fields / params `name: ..HashMap<..>`, and `let [mut] name =
/// HashMap::..` initialisations.
fn collect_hash_names<'a>(f: &'a SourceFile, code: &[usize]) -> Vec<&'a str> {
    let src = &f.text;
    let toks = &f.toks;
    let mut names: Vec<&str> = Vec::new();
    for (w, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let text = t.text(src);
        if text != "HashMap" && text != "HashSet" {
            continue;
        }
        if f.in_test_code(t.start) {
            continue;
        }
        // Walk back over wrapper idents and type punctuation to find
        // `name :` (field/param/let-annotation) or `name =` (let-init).
        let mut k = w;
        while k > 0 {
            k -= 1;
            let p = &toks[code[k]];
            match p.kind {
                TokKind::Punct('<') | TokKind::Punct('&') => continue,
                TokKind::Ident => {
                    let pt = p.text(src);
                    if matches!(pt, "Mutex" | "RwLock" | "Arc" | "Rc" | "Box" | "Option" | "mut")
                    {
                        continue;
                    }
                    break; // unexpected ident — not a declaration shape
                }
                TokKind::Punct(':') | TokKind::Punct('=') => {
                    // Skip a second ':' of a path `::` — that means
                    // `HashMap` appeared as `path::HashMap`; keep walking.
                    if p.is_punct(':') && k > 0 && toks[code[k - 1]].is_punct(':') {
                        k -= 1;
                        continue;
                    }
                    if k > 0 && toks[code[k - 1]].kind == TokKind::Ident {
                        let name = toks[code[k - 1]].text(src);
                        if name != "mut" && !names.contains(&name) {
                            names.push(name);
                        }
                    }
                    break;
                }
                _ => break,
            }
        }
    }
    names
}

/// Whether the code tokens right before a name form `for .. in [&[mut]]`.
fn is_for_loop_target(toks: &[Tok], src: &str, before: &[usize]) -> bool {
    let mut k = before.len();
    while k > 0 {
        k -= 1;
        let t = &toks[before[k]];
        if t.is_punct('&') || t.is_ident(src, "mut") {
            continue;
        }
        return t.is_ident(src, "in");
    }
    false
}

/// Scans a method chain after a receiver name; returns the first
/// hash-order iteration method, skipping over benign calls like `.lock()`.
fn hash_iter_method<'a>(toks: &'a [Tok], src: &'a str, after: &[usize]) -> Option<&'a str> {
    let mut w = 0usize;
    for _hop in 0..4 {
        if !(w + 2 < after.len()
            && toks[after[w]].is_punct('.')
            && toks[after[w + 1]].kind == TokKind::Ident
            && toks[after[w + 2]].is_punct('('))
        {
            return None;
        }
        let method = toks[after[w + 1]].text(src);
        if ITER_METHODS.contains(&method) {
            return Some(method);
        }
        // Skip the balanced argument list, then continue the chain.
        let mut depth = 0i32;
        let mut k = w + 2;
        while k < after.len() {
            if toks[after[k]].is_punct('(') {
                depth += 1;
            } else if toks[after[k]].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        w = k + 1;
    }
    None
}

/// Whether the next code tokens are `::<name>(`-ish: `: : name`.
fn matches_path_call(toks: &[Tok], src: &str, after: &[usize], name: &str) -> bool {
    after.len() >= 3
        && toks[after[0]].is_punct(':')
        && toks[after[1]].is_punct(':')
        && toks[after[2]].is_ident(src, name)
}

// ---------------------------------------------------------------- check 3

/// Codec cross-reference: every `impl Codec for T` in
/// `core/src/messages.rs` must be exercised by the `wire_codec` proptest
/// suite in `tests/properties.rs`.
pub fn check_codec_xref(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(msgs) = ws.files.iter().find(|f| f.path.ends_with("core/src/messages.rs")) else {
        return;
    };
    let src = &msgs.text;
    let toks = &msgs.toks;
    let code: Vec<usize> =
        (0..toks.len()).filter(|&i| toks[i].kind != TokKind::Comment).collect();
    let mut impls: Vec<(String, u32, u32)> = Vec::new();
    for w in 0..code.len().saturating_sub(2) {
        let [a, b, c] = [code[w], code[w + 1], code[w + 2]];
        if toks[a].is_ident(src, "Codec")
            && toks[b].is_ident(src, "for")
            && toks[c].kind == TokKind::Ident
        {
            // Require an `impl` a few tokens back (skipping generics).
            let lo = w.saturating_sub(8);
            if code[lo..w].iter().any(|&i| toks[i].is_ident(src, "impl")) {
                impls.push((
                    toks[c].text(src).to_string(),
                    toks[c].line,
                    toks[c].col,
                ));
            }
        }
    }
    if impls.is_empty() {
        return;
    }

    let props = ws.files.iter().find(|f| f.path.ends_with("tests/properties.rs"));
    let covered: Vec<&str> = match props {
        Some(p) => wire_codec_idents(p),
        None => Vec::new(),
    };
    if props.is_none() || covered.is_empty() {
        out.push(Finding {
            check: "codec-xref",
            path: msgs.path.clone(),
            line: impls[0].1,
            col: impls[0].2,
            message: "no `mod wire_codec` proptest suite found in tests/properties.rs \
                      to cross-reference Codec impls against"
                .to_string(),
        });
        return;
    }
    for (name, line, col) in impls {
        if !covered.contains(&name.as_str()) {
            out.push(Finding {
                check: "codec-xref",
                path: msgs.path.clone(),
                line,
                col,
                message: format!(
                    "`impl Codec for {name}` has no coverage in the wire_codec proptest \
                     suite (tests/properties.rs) — every wire type needs a roundtrip \
                     property"
                ),
            });
        }
    }
}

/// Identifiers appearing inside `mod wire_codec { .. }` of a file.
fn wire_codec_idents(f: &SourceFile) -> Vec<&str> {
    let src = &f.text;
    let toks = &f.toks;
    let code: Vec<usize> =
        (0..toks.len()).filter(|&i| toks[i].kind != TokKind::Comment).collect();
    for w in 0..code.len().saturating_sub(2) {
        if toks[code[w]].is_ident(src, "mod") && toks[code[w + 1]].is_ident(src, "wire_codec") {
            // Find the opening brace, then brace-match.
            let mut k = w + 2;
            while k < code.len() && !toks[code[k]].is_punct('{') {
                k += 1;
            }
            let mut depth = 0i32;
            let mut idents = Vec::new();
            while k < code.len() {
                let t = &toks[code[k]];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return idents;
                    }
                } else if t.kind == TokKind::Ident {
                    idents.push(t.text(src));
                }
                k += 1;
            }
            return idents;
        }
    }
    Vec::new()
}

// ---------------------------------------------------------------- check 4

/// Blocking-recv audit: untimed `.recv()` outside the transport layer's
/// blessed sites can deadlock termination/recovery (PR 5's audit replaced
/// every engine-side one with `recv_timeout` + death checks).
pub fn check_blocking_recv(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !recv_scope(&f.path) {
            continue;
        }
        let src = &f.text;
        let toks = &f.toks;
        let code: Vec<usize> =
            (0..toks.len()).filter(|&i| toks[i].kind != TokKind::Comment).collect();
        for w in 0..code.len().saturating_sub(3) {
            let [a, b, c, d] = [code[w], code[w + 1], code[w + 2], code[w + 3]];
            if toks[a].is_punct('.')
                && toks[b].is_ident(src, "recv")
                && toks[c].is_punct('(')
                && toks[d].is_punct(')')
                && !f.in_test_code(toks[b].start)
            {
                out.push(finding(
                    "blocking-recv",
                    f,
                    &toks[b],
                    "untimed blocking `.recv()` — engine loops must use `recv_timeout` \
                     so termination detection and fault recovery can interrupt waits"
                        .to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- check 5

/// Unsafe hygiene: every `unsafe` keyword carries a `SAFETY:` comment on
/// the same line or on the contiguous comment/attribute lines above it.
pub fn check_unsafe_hygiene(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        let src = &f.text;
        // Per-line classification.
        let mut line_has_code: BTreeMap<u32, bool> = BTreeMap::new();
        let mut line_comment_safety: BTreeMap<u32, bool> = BTreeMap::new();
        let mut line_first_is_attr: BTreeMap<u32, bool> = BTreeMap::new();
        for t in &f.toks {
            let entry = line_first_is_attr.entry(t.line).or_insert(t.is_punct('#'));
            let _ = entry;
            match t.kind {
                TokKind::Comment => {
                    let has = t.text(src).to_ascii_lowercase().contains("safety");
                    let e = line_comment_safety.entry(t.line).or_insert(false);
                    *e |= has;
                    // A multi-line block comment marks every line it spans.
                    if has {
                        let extra = t.text(src).matches('\n').count() as u32;
                        for l in t.line..=t.line + extra {
                            *line_comment_safety.entry(l).or_insert(false) |= true;
                        }
                    }
                }
                _ => {
                    *line_has_code.entry(t.line).or_insert(false) |= true;
                }
            }
        }
        for t in &f.toks {
            if !t.is_ident(src, "unsafe") {
                continue;
            }
            let mut ok = line_comment_safety.get(&t.line).copied().unwrap_or(false);
            let mut l = t.line;
            while !ok && l > 1 {
                l -= 1;
                let code = line_has_code.get(&l).copied().unwrap_or(false);
                let attr = line_first_is_attr.get(&l).copied().unwrap_or(false);
                if code && !attr {
                    break; // hit a real code line without finding SAFETY
                }
                if line_comment_safety.get(&l).copied().unwrap_or(false) {
                    ok = true;
                }
            }
            if !ok {
                out.push(finding(
                    "unsafe-hygiene",
                    f,
                    t,
                    "`unsafe` without a `// SAFETY:` comment — state the invariant that \
                     makes this sound"
                        .to_string(),
                ));
            }
        }
    }
}
