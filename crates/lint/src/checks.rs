//! The protocol-invariant checks.
//!
//! Each check walks the token streams of a [`Workspace`] and pushes
//! [`Finding`]s; suppression handling and ordering live in
//! [`crate::run_checks`]. Checks 1–5 are token-level scans; checks 6–9
//! (msg-flow, era-fencing, survivor-barrier, fenced-send) are
//! protocol-flow analyses over the [`crate::parser::ItemMap`] item
//! structure.

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};
use crate::parser::{close_delim, ItemMap};
use crate::source::{SourceFile, Workspace};
use crate::Finding;

/// Core protocol modules covered by the determinism check: everything that
/// builds wire payloads, orders sends, or feeds traces.
const CORE_DETERMINISM_FILES: &[&str] = &[
    "messages.rs",
    "chromatic.rs",
    "locking.rs",
    "driver.rs",
    "local.rs",
    "snapshot.rs",
    "recovery.rs",
];

/// Whether `path` is protocol-critical for the determinism check.
pub fn determinism_scope(path: &str) -> bool {
    if let Some(rest) = path.strip_prefix("crates/core/src/") {
        return CORE_DETERMINISM_FILES.contains(&rest);
    }
    path.starts_with("crates/net/src/")
}

/// Whether `path` is in scope for the blocking-recv audit: all engine and
/// transport sources.
pub fn recv_scope(path: &str) -> bool {
    path.starts_with("crates/core/src/") || path.starts_with("crates/net/src/")
}

fn finding(check: &'static str, f: &SourceFile, t: &Tok, message: String) -> Finding {
    Finding { check, path: f.path.clone(), line: t.line, col: t.col, message }
}

// ---------------------------------------------------------------- check 1

/// One `pub const K_*: u16 = ..;` definition.
struct KindDef {
    file: usize,
    tok: usize,
    name: String,
    value: Option<u64>,
}

/// Kind-registry audit: global uniqueness, per-crate reserved ranges and
/// gaps (ground truth: `// lint: kind-map` comments), and liveness.
pub fn check_kind_registry(ws: &Workspace, out: &mut Vec<Finding>) {
    // Ground truth: collect kind-map declarations.
    let mut maps: BTreeMap<String, (usize, crate::source::KindMap)> = BTreeMap::new();
    for (fi, f) in ws.files.iter().enumerate() {
        for m in &f.kind_maps {
            if let Some((prev_fi, prev)) = maps.get(&m.krate) {
                out.push(Finding {
                    check: "kind-registry",
                    path: f.path.clone(),
                    line: m.line,
                    col: 1,
                    message: format!(
                        "duplicate kind-map for crate `{}` (first declared at {}:{})",
                        m.krate, ws.files[*prev_fi].path, prev.line
                    ),
                });
            } else {
                maps.insert(m.krate.clone(), (fi, m.clone()));
            }
        }
    }
    // Declared ranges must not overlap across crates.
    let entries: Vec<_> = maps.values().collect();
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let (a, b) = (&entries[i].1, &entries[j].1);
            if a.lo <= b.hi && b.lo <= a.hi {
                out.push(Finding {
                    check: "kind-registry",
                    path: ws.files[entries[j].0].path.clone(),
                    line: b.line,
                    col: 1,
                    message: format!(
                        "kind-map ranges overlap: `{}` {}..={} vs `{}` {}..={}",
                        a.krate, a.lo, a.hi, b.krate, b.lo, b.hi
                    ),
                });
            }
        }
    }

    // Definitions: `pub const K_*: <ty> = <expr>;` outside test code.
    let mut defs: Vec<KindDef> = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        let toks = &f.toks;
        let src = &f.text;
        let code: Vec<usize> = (0..toks.len())
            .filter(|&i| toks[i].kind != TokKind::Comment)
            .collect();
        for w in 0..code.len().saturating_sub(3) {
            let [a, b, c, d] = [code[w], code[w + 1], code[w + 2], code[w + 3]];
            if !(toks[a].is_ident(src, "pub")
                && toks[b].is_ident(src, "const")
                && toks[c].kind == TokKind::Ident
                && toks[c].text(src).starts_with("K_")
                && toks[d].is_punct(':'))
            {
                continue;
            }
            if f.in_test_code(toks[c].start) {
                continue;
            }
            let name = toks[c].text(src).to_string();
            // Type must be u16 — kinds travel as a u16 header field.
            let ty = code.get(w + 4).map(|&i| &toks[i]);
            if !ty.map(|t| t.is_ident(src, "u16")).unwrap_or(false) {
                out.push(finding(
                    "kind-registry",
                    f,
                    &toks[c],
                    format!("kind constant `{name}` must have type u16"),
                ));
                continue;
            }
            let value = eval_kind_expr(toks, src, &code[w + 5..]);
            if value.is_none() {
                out.push(finding(
                    "kind-registry",
                    f,
                    &toks[c],
                    format!(
                        "kind constant `{name}` is not statically evaluable \
                         (expected an integer literal or `u16::MAX - n`)"
                    ),
                ));
            }
            defs.push(KindDef { file: fi, tok: c, name, value });
        }
    }

    // Range + gap membership per definition.
    for d in &defs {
        let f = &ws.files[d.file];
        let t = &f.toks[d.tok];
        let Some(v) = d.value else { continue };
        let krate = f.crate_name();
        match maps.get(krate) {
            None => out.push(finding(
                "kind-registry",
                f,
                t,
                format!(
                    "kind constant `{}` defined in crate `{krate}`, which has no \
                     `lint: kind-map` reservation",
                    d.name
                ),
            )),
            Some((_, m)) => {
                if v < m.lo || v > m.hi {
                    out.push(finding(
                        "kind-registry",
                        f,
                        t,
                        format!(
                            "kind `{}` = {v} outside crate `{krate}`'s reserved range \
                             {}..={}",
                            d.name, m.lo, m.hi
                        ),
                    ));
                } else if m.in_gap(v) {
                    out.push(finding(
                        "kind-registry",
                        f,
                        t,
                        format!(
                            "kind `{}` = {v} reuses a reserved/retired gap value of crate \
                             `{krate}`'s kind-map",
                            d.name
                        ),
                    ));
                }
            }
        }
    }

    // Global uniqueness.
    let mut by_value: BTreeMap<u64, &KindDef> = BTreeMap::new();
    for d in &defs {
        let Some(v) = d.value else { continue };
        if let Some(first) = by_value.get(&v) {
            let ff = &ws.files[first.file];
            let f = &ws.files[d.file];
            out.push(finding(
                "kind-registry",
                f,
                &f.toks[d.tok],
                format!(
                    "kind `{}` = {v} collides with `{}` ({}:{})",
                    d.name, first.name, ff.path, ff.toks[first.tok].line
                ),
            ));
        } else {
            by_value.insert(v, d);
        }
    }

    // Liveness: every kind needs at least one non-defining reference
    // outside `use` declarations.
    let mut refs: BTreeMap<&str, u64> = defs.iter().map(|d| (d.name.as_str(), 0)).collect();
    for (fi, f) in ws.files.iter().enumerate() {
        let src = &f.text;
        let mut in_use_decl = false;
        for (ti, t) in f.toks.iter().enumerate() {
            match t.kind {
                TokKind::Ident if t.is_ident(src, "use") => in_use_decl = true,
                TokKind::Punct(';') => in_use_decl = false,
                TokKind::Ident if !in_use_decl => {
                    let text = t.text(src);
                    if let Some(n) = refs.get_mut(text) {
                        let is_def_site =
                            defs.iter().any(|d| d.file == fi && d.tok == ti);
                        if !is_def_site {
                            *n += 1;
                        }
                    }
                }
                _ => {}
            }
        }
    }
    for d in &defs {
        if refs.get(d.name.as_str()) == Some(&0) {
            let f = &ws.files[d.file];
            out.push(finding(
                "kind-registry",
                f,
                &f.toks[d.tok],
                format!("dead kind: `{}` is never referenced outside its definition", d.name),
            ));
        }
    }
}

/// Evaluates the constant expression between `=` and `;`: an integer
/// literal, `u16::MAX`, or `u16::MAX - n`.
fn eval_kind_expr(toks: &[Tok], src: &str, code: &[usize]) -> Option<u64> {
    // code[0] should be '='.
    if code.is_empty() || !toks[code[0]].is_punct('=') {
        return None;
    }
    let expr: Vec<&Tok> = code[1..]
        .iter()
        .map(|&i| &toks[i])
        .take_while(|t| !t.is_punct(';'))
        .collect();
    match expr.as_slice() {
        [n] if n.kind == TokKind::Num => n.value,
        [u, c1, c2, m]
            if u.is_ident(src, "u16")
                && c1.is_punct(':')
                && c2.is_punct(':')
                && m.is_ident(src, "MAX") =>
        {
            Some(u16::MAX as u64)
        }
        [u, c1, c2, m, minus, n]
            if u.is_ident(src, "u16")
                && c1.is_punct(':')
                && c2.is_punct(':')
                && m.is_ident(src, "MAX")
                && minus.is_punct('-')
                && n.kind == TokKind::Num =>
        {
            Some(u16::MAX as u64 - n.value?)
        }
        _ => None,
    }
}

// ---------------------------------------------------------------- check 2

/// Iteration methods whose visit order is the hasher's, not the data's.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// RNG constructors/seeders that demand a written justification in
/// protocol paths (seeded ones included: the reason documents the seed's
/// provenance).
const RNG_IDENTS: &[&str] =
    &["thread_rng", "from_entropy", "seed_from_u64", "from_seed", "StdRng", "SmallRng"];

/// Determinism lint: no hash-order iteration, wall-clock reads, or RNG
/// construction in protocol-critical modules.
pub fn check_determinism(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !determinism_scope(&f.path) {
            continue;
        }
        let src = &f.text;
        let toks = &f.toks;
        let code: Vec<usize> = (0..toks.len())
            .filter(|&i| toks[i].kind != TokKind::Comment)
            .collect();
        let hash_names = collect_hash_names(f, &code);

        for (w, &i) in code.iter().enumerate() {
            let t = &toks[i];
            if f.in_test_code(t.start) {
                continue;
            }
            if t.kind == TokKind::Ident {
                let text = t.text(src);
                // `Instant::now` / `SystemTime::now`.
                if (text == "Instant" || text == "SystemTime")
                        && matches_path_call(toks, src, &code[w + 1..], "now")
                {
                    out.push(finding(
                        "determinism",
                        f,
                        t,
                        format!(
                            "`{text}::now` in protocol-critical module — wall-clock \
                             values must never influence wire contents or traces"
                        ),
                    ));
                    continue;
                }
                if RNG_IDENTS.contains(&text) {
                    out.push(finding(
                        "determinism",
                        f,
                        t,
                        format!(
                            "RNG construction `{text}` in protocol-critical module — \
                             randomness here must be seeded and justified"
                        ),
                    ));
                    continue;
                }
                if hash_names.contains(&text) {
                    // `for pat in [&[mut]] name` — hash-order loop.
                    if is_for_loop_target(toks, src, &code[..w]) {
                        out.push(finding(
                            "determinism",
                            f,
                            t,
                            format!(
                                "iteration over hash container `{text}` (for-loop) — \
                                 hash order is nondeterministic; use a BTreeMap or \
                                 sort before iterating"
                            ),
                        ));
                        continue;
                    }
                    if let Some(m) = hash_iter_method(toks, src, &code[w + 1..]) {
                        out.push(finding(
                            "determinism",
                            f,
                            t,
                            format!(
                                "`.{m}()` on hash container `{text}` — hash order is \
                                 nondeterministic; use a BTreeMap or sort before \
                                 iterating"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// Names declared (outside test code) with a hash-container type: struct
/// fields / params `name: ..HashMap<..>`, and `let [mut] name =
/// HashMap::..` initialisations.
fn collect_hash_names<'a>(f: &'a SourceFile, code: &[usize]) -> Vec<&'a str> {
    let src = &f.text;
    let toks = &f.toks;
    let mut names: Vec<&str> = Vec::new();
    for (w, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let text = t.text(src);
        if text != "HashMap" && text != "HashSet" {
            continue;
        }
        if f.in_test_code(t.start) {
            continue;
        }
        // Walk back over wrapper idents and type punctuation to find
        // `name :` (field/param/let-annotation) or `name =` (let-init).
        let mut k = w;
        while k > 0 {
            k -= 1;
            let p = &toks[code[k]];
            match p.kind {
                TokKind::Punct('<') | TokKind::Punct('&') => continue,
                TokKind::Ident => {
                    let pt = p.text(src);
                    if matches!(pt, "Mutex" | "RwLock" | "Arc" | "Rc" | "Box" | "Option" | "mut")
                    {
                        continue;
                    }
                    break; // unexpected ident — not a declaration shape
                }
                TokKind::Punct(':') | TokKind::Punct('=') => {
                    // Skip a second ':' of a path `::` — that means
                    // `HashMap` appeared as `path::HashMap`; keep walking.
                    if p.is_punct(':') && k > 0 && toks[code[k - 1]].is_punct(':') {
                        k -= 1;
                        continue;
                    }
                    if k > 0 && toks[code[k - 1]].kind == TokKind::Ident {
                        let name = toks[code[k - 1]].text(src);
                        if name != "mut" && !names.contains(&name) {
                            names.push(name);
                        }
                    }
                    break;
                }
                _ => break,
            }
        }
    }
    names
}

/// Whether the code tokens right before a name form `for .. in [&[mut]]`.
fn is_for_loop_target(toks: &[Tok], src: &str, before: &[usize]) -> bool {
    let mut k = before.len();
    while k > 0 {
        k -= 1;
        let t = &toks[before[k]];
        if t.is_punct('&') || t.is_ident(src, "mut") {
            continue;
        }
        return t.is_ident(src, "in");
    }
    false
}

/// Scans a method chain after a receiver name; returns the first
/// hash-order iteration method, skipping over benign calls like `.lock()`.
fn hash_iter_method<'a>(toks: &'a [Tok], src: &'a str, after: &[usize]) -> Option<&'a str> {
    let mut w = 0usize;
    for _hop in 0..4 {
        if !(w + 2 < after.len()
            && toks[after[w]].is_punct('.')
            && toks[after[w + 1]].kind == TokKind::Ident
            && toks[after[w + 2]].is_punct('('))
        {
            return None;
        }
        let method = toks[after[w + 1]].text(src);
        if ITER_METHODS.contains(&method) {
            return Some(method);
        }
        // Skip the balanced argument list, then continue the chain.
        let mut depth = 0i32;
        let mut k = w + 2;
        while k < after.len() {
            if toks[after[k]].is_punct('(') {
                depth += 1;
            } else if toks[after[k]].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        w = k + 1;
    }
    None
}

/// Whether the next code tokens are `::<name>(`-ish: `: : name`.
fn matches_path_call(toks: &[Tok], src: &str, after: &[usize], name: &str) -> bool {
    after.len() >= 3
        && toks[after[0]].is_punct(':')
        && toks[after[1]].is_punct(':')
        && toks[after[2]].is_ident(src, name)
}

// ---------------------------------------------------------------- check 3

/// Codec cross-reference: every `impl Codec for T` in
/// `core/src/messages.rs` must be exercised by the `wire_codec` proptest
/// suite in `tests/properties.rs`.
pub fn check_codec_xref(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(msgs) = ws.files.iter().find(|f| f.path.ends_with("core/src/messages.rs")) else {
        return;
    };
    let src = &msgs.text;
    let toks = &msgs.toks;
    let code: Vec<usize> =
        (0..toks.len()).filter(|&i| toks[i].kind != TokKind::Comment).collect();
    let mut impls: Vec<(String, u32, u32)> = Vec::new();
    for w in 0..code.len().saturating_sub(2) {
        let [a, b, c] = [code[w], code[w + 1], code[w + 2]];
        if toks[a].is_ident(src, "Codec")
            && toks[b].is_ident(src, "for")
            && toks[c].kind == TokKind::Ident
        {
            // Require an `impl` a few tokens back (skipping generics).
            let lo = w.saturating_sub(8);
            if code[lo..w].iter().any(|&i| toks[i].is_ident(src, "impl")) {
                impls.push((
                    toks[c].text(src).to_string(),
                    toks[c].line,
                    toks[c].col,
                ));
            }
        }
    }
    if impls.is_empty() {
        return;
    }

    let props = ws.files.iter().find(|f| f.path.ends_with("tests/properties.rs"));
    let covered: Vec<&str> = match props {
        Some(p) => wire_codec_idents(p),
        None => Vec::new(),
    };
    if props.is_none() || covered.is_empty() {
        out.push(Finding {
            check: "codec-xref",
            path: msgs.path.clone(),
            line: impls[0].1,
            col: impls[0].2,
            message: "no `mod wire_codec` proptest suite found in tests/properties.rs \
                      to cross-reference Codec impls against"
                .to_string(),
        });
        return;
    }
    for (name, line, col) in impls {
        if !covered.contains(&name.as_str()) {
            out.push(Finding {
                check: "codec-xref",
                path: msgs.path.clone(),
                line,
                col,
                message: format!(
                    "`impl Codec for {name}` has no coverage in the wire_codec proptest \
                     suite (tests/properties.rs) — every wire type needs a roundtrip \
                     property"
                ),
            });
        }
    }
}

/// Identifiers appearing inside `mod wire_codec { .. }` of a file.
fn wire_codec_idents(f: &SourceFile) -> Vec<&str> {
    let src = &f.text;
    let toks = &f.toks;
    let code: Vec<usize> =
        (0..toks.len()).filter(|&i| toks[i].kind != TokKind::Comment).collect();
    for w in 0..code.len().saturating_sub(2) {
        if toks[code[w]].is_ident(src, "mod") && toks[code[w + 1]].is_ident(src, "wire_codec") {
            // Find the opening brace, then brace-match.
            let mut k = w + 2;
            while k < code.len() && !toks[code[k]].is_punct('{') {
                k += 1;
            }
            let mut depth = 0i32;
            let mut idents = Vec::new();
            while k < code.len() {
                let t = &toks[code[k]];
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return idents;
                    }
                } else if t.kind == TokKind::Ident {
                    idents.push(t.text(src));
                }
                k += 1;
            }
            return idents;
        }
    }
    Vec::new()
}

// ---------------------------------------------------------------- check 4

/// Blocking-recv audit: untimed `.recv()` outside the transport layer's
/// blessed sites can deadlock termination/recovery (PR 5's audit replaced
/// every engine-side one with `recv_timeout` + death checks).
pub fn check_blocking_recv(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !recv_scope(&f.path) {
            continue;
        }
        let src = &f.text;
        let toks = &f.toks;
        let code: Vec<usize> =
            (0..toks.len()).filter(|&i| toks[i].kind != TokKind::Comment).collect();
        for w in 0..code.len().saturating_sub(3) {
            let [a, b, c, d] = [code[w], code[w + 1], code[w + 2], code[w + 3]];
            if toks[a].is_punct('.')
                && toks[b].is_ident(src, "recv")
                && toks[c].is_punct('(')
                && toks[d].is_punct(')')
                && !f.in_test_code(toks[b].start)
            {
                out.push(finding(
                    "blocking-recv",
                    f,
                    &toks[b],
                    "untimed blocking `.recv()` — engine loops must use `recv_timeout` \
                     so termination detection and fault recovery can interrupt waits"
                        .to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------- check 5

/// Unsafe hygiene: every `unsafe` keyword carries a `SAFETY:` comment on
/// the same line or on the contiguous comment/attribute lines above it.
pub fn check_unsafe_hygiene(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        let src = &f.text;
        // Per-line classification.
        let mut line_has_code: BTreeMap<u32, bool> = BTreeMap::new();
        let mut line_comment_safety: BTreeMap<u32, bool> = BTreeMap::new();
        let mut line_first_is_attr: BTreeMap<u32, bool> = BTreeMap::new();
        for t in &f.toks {
            let entry = line_first_is_attr.entry(t.line).or_insert(t.is_punct('#'));
            let _ = entry;
            match t.kind {
                TokKind::Comment => {
                    let has = t.text(src).to_ascii_lowercase().contains("safety");
                    let e = line_comment_safety.entry(t.line).or_insert(false);
                    *e |= has;
                    // A multi-line block comment marks every line it spans.
                    if has {
                        let extra = t.text(src).matches('\n').count() as u32;
                        for l in t.line..=t.line + extra {
                            *line_comment_safety.entry(l).or_insert(false) |= true;
                        }
                    }
                }
                _ => {
                    *line_has_code.entry(t.line).or_insert(false) |= true;
                }
            }
        }
        for t in &f.toks {
            if !t.is_ident(src, "unsafe") {
                continue;
            }
            let mut ok = line_comment_safety.get(&t.line).copied().unwrap_or(false);
            let mut l = t.line;
            while !ok && l > 1 {
                l -= 1;
                let code = line_has_code.get(&l).copied().unwrap_or(false);
                let attr = line_first_is_attr.get(&l).copied().unwrap_or(false);
                if code && !attr {
                    break; // hit a real code line without finding SAFETY
                }
                if line_comment_safety.get(&l).copied().unwrap_or(false) {
                    ok = true;
                }
            }
            if !ok {
                out.push(finding(
                    "unsafe-hygiene",
                    f,
                    t,
                    "`unsafe` without a `// SAFETY:` comment — state the invariant that \
                     makes this sound"
                        .to_string(),
                ));
            }
        }
    }
}

// ------------------------------------------------------- checks 6-9 shared

/// The punct char of the code token at `w`, if in range and a punct.
fn punct_at(toks: &[Tok], code: &[usize], w: isize) -> Option<char> {
    if w < 0 || w as usize >= code.len() {
        return None;
    }
    match toks[code[w as usize]].kind {
        TokKind::Punct(c) => Some(c),
        _ => None,
    }
}

/// Whether the code token at `w` is immediately preceded by a comparison
/// operator (`<`, `>`, `<=`, `>=`, `==`, `!=`). Multi-char operators
/// arrive as consecutive single puncts; the match-arm arrow `=>` is not a
/// comparison.
fn cmp_before(toks: &[Tok], code: &[usize], w: usize) -> bool {
    let p1 = punct_at(toks, code, w as isize - 1);
    let p2 = punct_at(toks, code, w as isize - 2);
    match p1 {
        Some('<') => true,
        Some('>') => p2 != Some('='), // `=>` arrow
        Some('=') => matches!(p2, Some('=') | Some('!') | Some('<') | Some('>')),
        _ => false,
    }
}

/// Whether the code token at `w` is immediately followed by a comparison
/// operator.
fn cmp_after(toks: &[Tok], code: &[usize], w: usize) -> bool {
    let n1 = punct_at(toks, code, w as isize + 1);
    let n2 = punct_at(toks, code, w as isize + 2);
    match n1 {
        Some('<') | Some('>') => true,
        Some('=') | Some('!') => n2 == Some('='),
        _ => false,
    }
}

/// Whether the span `lo..=hi` of code tokens has `==`/`!=` immediately on
/// either side (equality tests only — used for kind-comparison handler
/// sites).
fn eq_adjacent(toks: &[Tok], code: &[usize], lo: usize, hi: usize) -> bool {
    let p1 = punct_at(toks, code, lo as isize - 1);
    let p2 = punct_at(toks, code, lo as isize - 2);
    let n1 = punct_at(toks, code, hi as isize + 1);
    let n2 = punct_at(toks, code, hi as isize + 2);
    (p1 == Some('=') && matches!(p2, Some('=') | Some('!')))
        || (matches!(n1, Some('=') | Some('!')) && n2 == Some('='))
}

/// Walks back over a `seg :: seg ::` path prefix from the code token at
/// `w`; returns the code index of the path's first segment.
fn path_start(toks: &[Tok], code: &[usize], w: usize) -> usize {
    let mut s = w;
    while s >= 3
        && toks[code[s - 1]].is_punct(':')
        && toks[code[s - 2]].is_punct(':')
        && toks[code[s - 3]].kind == TokKind::Ident
    {
        s -= 3;
    }
    s
}

// ---------------------------------------------------------------- check 6

/// Whether a callee name is a send-shaped call for the msg-flow check: a
/// kind constant in its argument list is a send site.
fn is_sendish(name: &str) -> bool {
    name.contains("send") || name.contains("broadcast") || name == "put" || name == "put_wire"
}

/// Message send/handler cross-reference. Ground truth is the per-kind
/// `// lint: kind K_X handlers: <file.rs>[, ..]` declarations next to the
/// kind registry: every registered kind must carry one, every declared
/// handler file must actually contain a handler site (match arm, guard, or
/// `==`/`!=` kind comparison) for that kind, and every kind must have at
/// least one non-test send site (a `*send*`/`*broadcast*`/`put`/`put_wire`
/// call carrying it, or a `kind: K_X` struct-literal field). Removing a
/// handler arm for a declared kind turns this check red.
pub fn check_msg_flow(ws: &Workspace, out: &mut Vec<Finding>) {
    // Kind definitions (non-test `pub const K_*: u16`).
    struct Def {
        file: usize,
        tok: usize,
        name: String,
    }
    let mut defs: Vec<Def> = Vec::new();
    for (fi, f) in ws.files.iter().enumerate() {
        let (src, toks) = (&f.text, &f.toks);
        let code: Vec<usize> =
            (0..toks.len()).filter(|&i| toks[i].kind != TokKind::Comment).collect();
        for w in 0..code.len().saturating_sub(3) {
            let [a, b, c, d] = [code[w], code[w + 1], code[w + 2], code[w + 3]];
            if toks[a].is_ident(src, "pub")
                && toks[b].is_ident(src, "const")
                && toks[c].kind == TokKind::Ident
                && toks[c].text(src).starts_with("K_")
                && toks[d].is_punct(':')
                && !f.in_test_code(toks[c].start)
            {
                defs.push(Def { file: fi, tok: c, name: toks[c].text(src).to_string() });
            }
        }
    }

    // Handler-provenance declarations; duplicates and unknown kinds are
    // findings themselves.
    let mut decls: BTreeMap<String, (usize, crate::source::KindFlow)> = BTreeMap::new();
    for (fi, f) in ws.files.iter().enumerate() {
        for d in &f.kind_flows {
            if let Some((pfi, prev)) = decls.get(&d.kind) {
                out.push(Finding {
                    check: "msg-flow",
                    path: f.path.clone(),
                    line: d.line,
                    col: 1,
                    message: format!(
                        "duplicate `kind {}` declaration (first at {}:{})",
                        d.kind, ws.files[*pfi].path, prev.line
                    ),
                });
            } else {
                decls.insert(d.kind.clone(), (fi, d.clone()));
            }
        }
    }
    for (name, (fi, d)) in &decls {
        if !defs.iter().any(|k| &k.name == name) {
            out.push(Finding {
                check: "msg-flow",
                path: ws.files[*fi].path.clone(),
                line: d.line,
                col: 1,
                message: format!(
                    "`kind {name}` declaration names a kind constant that is not defined \
                     anywhere in the workspace"
                ),
            });
        }
    }

    // Site scan: handler evidence per (file, kind) and global send evidence.
    let known = |name: &str| defs.iter().any(|d| d.name == name);
    let mut handled: std::collections::BTreeSet<(usize, String)> = Default::default();
    let mut sent: std::collections::BTreeSet<String> = Default::default();
    for (fi, f) in ws.files.iter().enumerate() {
        let (src, toks) = (&f.text, &f.toks);
        let im = ItemMap::build(toks, src);
        let code = &im.code;
        for w in 0..code.len() {
            let t = &toks[code[w]];
            if t.kind != TokKind::Ident || f.in_test_code(t.start) {
                continue;
            }
            let text = t.text(src);
            if text.starts_with("K_") && known(text) {
                let lo = path_start(toks, code, w);
                // Handler site: match-arm pattern/guard, or kind equality.
                if im.in_arm_pattern(w) || eq_adjacent(toks, code, lo, w) {
                    handled.insert((fi, text.to_string()));
                    continue;
                }
                // Send site: `kind: K_X` struct-literal field.
                if punct_at(toks, code, lo as isize - 1) == Some(':')
                    && punct_at(toks, code, lo as isize - 2) != Some(':')
                    && lo >= 2
                    && toks[code[lo - 2]].is_ident(src, "kind")
                {
                    sent.insert(text.to_string());
                }
            } else if is_sendish(text) && punct_at(toks, code, w as isize + 1) == Some('(') {
                // Send site: kind constants in a send-shaped call's args.
                let close = close_delim(toks, code, w + 1, '(', ')');
                for k in w + 2..close {
                    let a = &toks[code[k]];
                    if a.kind == TokKind::Ident {
                        let at = a.text(src);
                        if at.starts_with("K_") && known(at) {
                            sent.insert(at.to_string());
                        }
                    }
                }
            }
        }
    }

    // Every registered kind needs a declaration, live handler files, and a
    // send site.
    for d in &defs {
        let f = &ws.files[d.file];
        let t = &f.toks[d.tok];
        let Some((dfi, decl)) = decls.get(&d.name) else {
            out.push(finding(
                "msg-flow",
                f,
                t,
                format!(
                    "kind `{}` has no handler declaration — add \
                     `// lint: kind {} handlers: <file.rs>[, ..]` naming where it is \
                     legitimately received",
                    d.name, d.name
                ),
            ));
            continue;
        };
        let decl_path = ws.files[*dfi].path.clone();
        for h in &decl.handlers {
            let suffix = format!("/{h}");
            match ws.files.iter().position(|f| f.path.ends_with(&suffix) || &f.path == h) {
                None => out.push(Finding {
                    check: "msg-flow",
                    path: decl_path.clone(),
                    line: decl.line,
                    col: 1,
                    message: format!(
                        "kind `{}` declares handler file `{h}`, which is not in the workspace",
                        d.name
                    ),
                }),
                Some(hfi) => {
                    if !handled.contains(&(hfi, d.name.clone())) {
                        out.push(Finding {
                            check: "msg-flow",
                            path: decl_path.clone(),
                            line: decl.line,
                            col: 1,
                            message: format!(
                                "kind `{}` is declared handled in `{h}` but no match arm, \
                                 guard, or kind comparison references it there — dropped \
                                 handler or stale declaration",
                                d.name
                            ),
                        });
                    }
                }
            }
        }
        if !sent.contains(&d.name) {
            out.push(finding(
                "msg-flow",
                f,
                t,
                format!(
                    "kind `{}` is handled but never sent: no non-test \
                     send/broadcast/put/put_wire call or `kind:` struct field carries it",
                    d.name
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------- check 7

/// Wire messages that carry a fault-era field: stale copies from a
/// previous era must be fenced before they mutate engine state.
const ERA_MSG_TYPES: &[&str] = &[
    "RecoverReadyMsg",
    "RollbackMsg",
    "RecoverEraMsg",
    "AdoptPlanMsg",
    "AdoptDataMsg",
    "DownMsg",
    "UpMsg",
];

/// RecoveryTracker entry points that perform the era comparison
/// internally — calling one counts as fencing.
const ERA_FENCE_CALLS: &[&str] = &["observe_era", "note_ready", "note_mark", "note_recovered"];

/// Era-fencing: any non-test code that decodes an era-carrying
/// recovery/adoption message must compare its era against the current
/// fault era (or call a RecoveryTracker fence) before acting — either
/// directly in the surrounding arm/fn body, or one delegation hop away in
/// a same-file fn the decoded value is passed to.
pub fn check_era_fencing(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !f.path.contains("/src/") {
            continue;
        }
        let (src, toks) = (&f.text, &f.toks);
        let im = ItemMap::build(toks, src);
        let code = &im.code;
        for w in 0..code.len() {
            let t = &toks[code[w]];
            if t.kind != TokKind::Ident || f.in_test_code(t.start) {
                continue;
            }
            let name = t.text(src);
            if name != "dec" && name != "decode_from" {
                continue;
            }
            let Some((ty, binding)) = decode_type(toks, src, code, w) else { continue };
            if !ERA_MSG_TYPES.contains(&ty) {
                continue;
            }
            let region = im
                .innermost_arm(w)
                .map(|a| a.body)
                .or_else(|| im.enclosing_fn(w).map(|x| x.body));
            let Some(region) = region else { continue };
            if has_era_evidence(toks, src, code, region)
                || delegated_fence(&im, toks, src, binding, region)
            {
                continue;
            }
            out.push(finding(
                "era-fencing",
                f,
                t,
                format!(
                    "decodes era-carrying `{ty}` without comparing its era against the \
                     current fault era (or calling a RecoveryTracker fence such as \
                     `observe_era`) before acting on it — a stale pre-rollback copy \
                     would corrupt engine state"
                ),
            ));
        }
    }
}

/// For a decode callee at code index `w`, resolves the decoded type and
/// (when let-bound) the binding name. Handles `let [mut] b: T =
/// [path::]dec(..)`, `T::decode_from(..)`, and `dec::<T>(..)`. Returns
/// `None` when no call follows or no type is recoverable.
fn decode_type<'a>(
    toks: &'a [Tok],
    src: &'a str,
    code: &[usize],
    w: usize,
) -> Option<(&'a str, Option<&'a str>)> {
    let mut ty: Option<&str> = None;
    if punct_at(toks, code, w as isize + 1) == Some(':')
        && punct_at(toks, code, w as isize + 2) == Some(':')
        && punct_at(toks, code, w as isize + 3) == Some('<')
        && w + 4 < code.len()
        && toks[code[w + 4]].kind == TokKind::Ident
    {
        ty = Some(toks[code[w + 4]].text(src)); // turbofish
    } else if punct_at(toks, code, w as isize + 1) != Some('(') {
        return None; // not a call
    }
    let start = path_start(toks, code, w);
    if ty.is_none() && start < w {
        // `T::decode_from(..)` — the path's first segment is the type.
        ty = Some(toks[code[start]].text(src));
    }
    let mut binding: Option<&str> = None;
    if punct_at(toks, code, start as isize - 1) == Some('=') && start >= 2 {
        let annotated = start >= 4
            && toks[code[start - 2]].kind == TokKind::Ident
            && punct_at(toks, code, start as isize - 3) == Some(':')
            && punct_at(toks, code, start as isize - 4) != Some(':');
        if annotated {
            if ty.is_none() {
                ty = Some(toks[code[start - 2]].text(src));
            }
            if toks[code[start - 4]].kind == TokKind::Ident {
                binding = Some(toks[code[start - 4]].text(src));
            }
        } else if toks[code[start - 2]].kind == TokKind::Ident {
            binding = Some(toks[code[start - 2]].text(src));
        }
    }
    ty.map(|t| (t, binding))
}

/// Direct fencing evidence in a code-token span: an `era` ident adjacent
/// to a comparison, or a call to a RecoveryTracker fence method.
fn has_era_evidence(toks: &[Tok], src: &str, code: &[usize], span: (usize, usize)) -> bool {
    let hi = span.1.min(code.len().saturating_sub(1));
    for j in span.0..=hi {
        let t = &toks[code[j]];
        if t.kind != TokKind::Ident {
            continue;
        }
        let x = t.text(src);
        if x == "era" && (cmp_before(toks, code, j) || cmp_after(toks, code, j)) {
            return true;
        }
        if ERA_FENCE_CALLS.contains(&x) && punct_at(toks, code, j as isize + 1) == Some('(') {
            return true;
        }
    }
    false
}

/// One-hop delegation: a call inside `span` that receives the decoded
/// binding and resolves to a same-file fn whose body has direct fencing
/// evidence.
fn delegated_fence(
    im: &ItemMap,
    toks: &[Tok],
    src: &str,
    binding: Option<&str>,
    span: (usize, usize),
) -> bool {
    let Some(b) = binding else { return false };
    let code = &im.code;
    let hi = span.1.min(code.len().saturating_sub(1));
    for j in span.0..=hi {
        let t = &toks[code[j]];
        if t.kind != TokKind::Ident || punct_at(toks, code, j as isize + 1) != Some('(') {
            continue;
        }
        let callee = t.text(src);
        if callee == "dec" || callee == "decode_from" {
            continue;
        }
        let close = close_delim(toks, code, j + 1, '(', ')');
        if !(j + 2..close).any(|k| toks[code[k]].is_ident(src, b)) {
            continue;
        }
        if let Some(fs) = im.fns.iter().find(|f| f.name == callee) {
            if has_era_evidence(toks, src, code, fs.body) {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------- check 8

/// Files whose barrier/quorum logic must count live membership.
const BARRIER_FILES: &[&str] = &[
    "crates/core/src/chromatic.rs",
    "crates/core/src/locking.rs",
    "crates/core/src/recovery.rs",
];

/// Survivor-aware barriers: in recovery-bearing engine files, comparing a
/// counter against the static machine count `num_machines()` (directly or
/// through a `let n = self.num_machines();` alias) is a barrier that dead
/// machines can never satisfy — count `survivors()`/live membership
/// instead. Ranges (`0..n`) and arithmetic uses are fine.
pub fn check_survivor_barrier(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !BARRIER_FILES.iter().any(|p| f.path.ends_with(p)) {
            continue;
        }
        let (src, toks) = (&f.text, &f.toks);
        let im = ItemMap::build(toks, src);
        let code = &im.code;
        for w in 0..code.len() {
            let t = &toks[code[w]];
            if !t.is_ident(src, "num_machines") || f.in_test_code(t.start) {
                continue;
            }
            if punct_at(toks, code, w as isize + 1) != Some('(')
                || punct_at(toks, code, w as isize + 2) != Some(')')
            {
                continue;
            }
            // Receiver chain start (`self . rec . num_machines` etc.).
            let mut rs = w;
            while rs >= 2
                && punct_at(toks, code, rs as isize - 1) == Some('.')
                && toks[code[rs - 2]].kind == TokKind::Ident
            {
                rs -= 2;
            }
            // Rule A: the call itself sits next to a comparison.
            if cmp_before(toks, code, rs) || cmp_after(toks, code, w + 2) {
                out.push(finding(
                    "survivor-barrier",
                    f,
                    t,
                    "barrier/quorum comparison against static `num_machines()` — dead \
                     machines never vote, so this can hang after a failure; count \
                     `survivors()`/live membership instead"
                        .to_string(),
                ));
                continue;
            }
            // Rule B: `let [mut] n = self.num_machines();` then a
            // comparator-adjacent use of `n` in the same fn.
            if punct_at(toks, code, rs as isize - 1) == Some('=')
                && punct_at(toks, code, w as isize + 3) == Some(';')
                && rs >= 2
                && toks[code[rs - 2]].kind == TokKind::Ident
            {
                let alias = toks[code[rs - 2]].text(src);
                let Some(fs) = im.enclosing_fn(w) else { continue };
                let hi = fs.body.1.min(code.len().saturating_sub(1));
                for j in fs.body.0..=hi {
                    let u = &toks[code[j]];
                    if u.is_ident(src, alias)
                        && (cmp_before(toks, code, j) || cmp_after(toks, code, j))
                    {
                        out.push(finding(
                            "survivor-barrier",
                            f,
                            u,
                            format!(
                                "barrier/quorum comparison against `{alias}` (aliased from \
                                 `num_machines()`) — dead machines never vote, so this can \
                                 hang after a failure; count `survivors()`/live membership \
                                 instead"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------- check 9

/// Fenced sends: engine/transport code must not call `Endpoint::send`
/// directly — the Batcher's `put`/`put_wire` path applies the fenced-mask
/// that drops traffic to dead destinations. Direct `ep.send(..)` outside
/// that path can resurrect a fenced machine's state.
pub fn check_fenced_send(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !(f.path.starts_with("crates/net/src/") || f.path.starts_with("crates/core/src/")) {
            continue;
        }
        let (src, toks) = (&f.text, &f.toks);
        let code: Vec<usize> =
            (0..toks.len()).filter(|&i| toks[i].kind != TokKind::Comment).collect();
        for w in 0..code.len() {
            let t = &toks[code[w]];
            if !t.is_ident(src, "send") || f.in_test_code(t.start) {
                continue;
            }
            if punct_at(toks, &code, w as isize + 1) != Some('(')
                || punct_at(toks, &code, w as isize - 1) != Some('.')
                || w < 2
            {
                continue;
            }
            let recv = toks[code[w - 2]].text(src);
            if recv == "ep" || recv == "endpoint" {
                out.push(finding(
                    "fenced-send",
                    f,
                    t,
                    "direct `Endpoint::send` bypasses the Batcher's fenced-mask path — \
                     dead destinations must stay fenced; route through `put`/`put_wire` \
                     or annotate why this site is fence-exempt"
                        .to_string(),
                ));
            }
        }
    }
}
