//! Source-file model: tokens plus the lint's comment-level metadata —
//! `// lint: allow(<check>) -- <reason>` suppressions, `// lint: kind-map`
//! registry declarations, and `#[cfg(test)]` regions (test code is exempt
//! from the determinism and blocking-recv checks).

use std::path::{Path, PathBuf};

use crate::lexer::{lex, Tok, TokKind};

/// A parsed `// lint: allow(<check>) -- <reason>` directive.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Check name inside `allow(..)`.
    pub check: String,
    /// Text after `--`, if present. A missing reason is itself a finding.
    pub reason: Option<String>,
    /// Line of the comment.
    pub line: u32,
    /// Line the suppression applies to: the comment's own line when it
    /// trails code, otherwise the first code line after the comment.
    pub target_line: u32,
}

/// A parsed `// lint: kind-map <crate> = <lo>..=<hi> [gaps a, b..=c]`
/// declaration — the ground truth the kind-registry check enforces.
#[derive(Clone, Debug)]
pub struct KindMap {
    /// Crate directory name under `crates/` (e.g. `core`, `net`).
    pub krate: String,
    /// Inclusive reserved range for the crate's kind constants.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
    /// Values inside the range that must stay unassigned (retired or
    /// reserved kinds).
    pub gaps: Vec<(u64, u64)>,
    /// Declaration site.
    pub line: u32,
}

impl KindMap {
    /// Whether `v` falls in a declared gap.
    pub fn in_gap(&self, v: u64) -> bool {
        self.gaps.iter().any(|&(a, b)| v >= a && v <= b)
    }
}

/// A parsed `// lint: kind K_NAME handlers: <file.rs>[, <file.rs>..]`
/// declaration — the per-kind handler provenance the msg-flow check
/// cross-references send sites and handler arms against.
#[derive(Clone, Debug)]
pub struct KindFlow {
    /// The kind constant's name (`K_*`).
    pub kind: String,
    /// Basenames of the files that legitimately receive this kind (e.g.
    /// `chromatic.rs`); matched against workspace paths by suffix.
    pub handlers: Vec<String>,
    /// Declaration site.
    pub line: u32,
}

/// A malformed `// lint:` comment (bad directives must not pass silently).
#[derive(Clone, Debug)]
pub struct BadDirective {
    /// Why it failed to parse.
    pub message: String,
    /// Comment line.
    pub line: u32,
}

/// One lexed workspace file with its lint metadata.
pub struct SourceFile {
    /// Path relative to the analysis root, `/`-separated.
    pub path: String,
    /// Raw text.
    pub text: String,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Suppressions declared in this file.
    pub suppressions: Vec<Suppression>,
    /// Kind-map declarations in this file.
    pub kind_maps: Vec<KindMap>,
    /// Per-kind handler declarations in this file.
    pub kind_flows: Vec<KindFlow>,
    /// Unparseable `lint:` directives.
    pub bad_directives: Vec<BadDirective>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes `text` and extracts directives. `path` should be relative to
    /// the analysis root.
    pub fn parse(path: impl Into<String>, text: String) -> SourceFile {
        let path = path.into().replace('\\', "/");
        let toks = lex(&text);
        let mut f = SourceFile {
            path,
            text,
            toks,
            suppressions: Vec::new(),
            kind_maps: Vec::new(),
            kind_flows: Vec::new(),
            bad_directives: Vec::new(),
            test_ranges: Vec::new(),
        };
        f.extract_directives();
        f.find_test_ranges();
        f
    }

    /// Whether byte offset `pos` sits inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, pos: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| pos >= a && pos < b)
    }

    /// The crate directory name this file belongs to (`crates/<name>/...`),
    /// or a pseudo-crate for root `src/`, `tests/`, `examples/` files.
    pub fn crate_name(&self) -> &str {
        let mut parts = self.path.split('/');
        match parts.next() {
            Some("crates") => parts.next().unwrap_or("?"),
            Some(first) => first,
            None => "?",
        }
    }

    fn extract_directives(&mut self) {
        // Borrow dance: collect comment indices first.
        let comments: Vec<usize> = (0..self.toks.len())
            .filter(|&i| self.toks[i].kind == TokKind::Comment)
            .collect();
        for ci in comments {
            let (line, start) = (self.toks[ci].line, self.toks[ci].start);
            let text = self.toks[ci].text(&self.text).to_string();
            // A directive must open the comment (`// lint: ...`); the
            // marker appearing mid-comment is prose about the syntax, not
            // a directive.
            let head = text
                .trim_start_matches(['/', '*', '!'])
                .trim_start();
            let Some(body) = head.strip_prefix("lint:") else { continue };
            let body = body.trim();
            if let Some(rest) = body.strip_prefix("allow(") {
                match parse_allow(rest) {
                    Ok((check, reason)) => {
                        let target_line = self.suppression_target(ci, line, start);
                        self.suppressions.push(Suppression {
                            check,
                            reason,
                            line,
                            target_line,
                        });
                    }
                    Err(message) => self.bad_directives.push(BadDirective { message, line }),
                }
            } else if let Some(rest) = body.strip_prefix("kind-map") {
                match parse_kind_map(rest) {
                    Ok((krate, lo, hi, gaps)) => {
                        self.kind_maps.push(KindMap { krate, lo, hi, gaps, line })
                    }
                    Err(message) => self.bad_directives.push(BadDirective { message, line }),
                }
            } else if let Some(rest) = body.strip_prefix("kind") {
                // Checked after `kind-map`, whose prefix this overlaps.
                match parse_kind_flow(rest) {
                    Ok((kind, handlers)) => {
                        self.kind_flows.push(KindFlow { kind, handlers, line })
                    }
                    Err(message) => self.bad_directives.push(BadDirective { message, line }),
                }
            } else {
                self.bad_directives.push(BadDirective {
                    message: format!(
                        "unknown lint directive {body:?} (expected `allow(<check>) -- <reason>`, \
                         `kind-map <crate> = <lo>..=<hi> [gaps ..]`, or \
                         `kind K_NAME handlers: <file.rs>, ..`)"
                    ),
                    line,
                });
            }
        }
    }

    /// The line a suppression comment governs: its own line when code
    /// precedes the comment on that line (trailing comment), else the line
    /// of the next code token.
    fn suppression_target(&self, ci: usize, line: u32, start: usize) -> u32 {
        let trails_code = self.toks[..ci]
            .iter()
            .rev()
            .take_while(|t| t.line == line)
            .any(|t| t.kind != TokKind::Comment && t.start < start);
        if trails_code {
            return line;
        }
        self.toks[ci + 1..]
            .iter()
            .find(|t| t.kind != TokKind::Comment)
            .map(|t| t.line)
            .unwrap_or(line)
    }

    /// Records byte ranges of items annotated `#[cfg(test)]`.
    fn find_test_ranges(&mut self) {
        let src = &self.text;
        let toks = &self.toks;
        let mut ranges = Vec::new();
        let mut i = 0usize;
        while i + 5 < toks.len() {
            let is_cfg_test = toks[i].is_punct('#')
                && toks[i + 1].is_punct('[')
                && toks[i + 2].is_ident(src, "cfg")
                && toks[i + 3].is_punct('(')
                && toks[i + 4].is_ident(src, "test")
                && toks[i + 5].is_punct(')');
            if !is_cfg_test {
                i += 1;
                continue;
            }
            // Skip past this and any further attributes.
            let mut j = i;
            while j < toks.len() && toks[j].is_punct('#') {
                j += 1; // '#'
                if j < toks.len() && toks[j].is_punct('[') {
                    let mut depth = 0i32;
                    while j < toks.len() {
                        if toks[j].is_punct('[') {
                            depth += 1;
                        } else if toks[j].is_punct(']') {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                while j < toks.len() && toks[j].kind == TokKind::Comment {
                    j += 1;
                }
            }
            // The annotated item: ends at the matching `}` of its first
            // brace, or at `;` if one comes first (e.g. `use` / fn decl).
            let item_start = toks[i].start;
            let mut end = None;
            let mut k = j;
            while k < toks.len() {
                if toks[k].is_punct(';') {
                    end = Some(toks[k].end);
                    break;
                }
                if toks[k].is_punct('{') {
                    let mut depth = 0i32;
                    while k < toks.len() {
                        if toks[k].is_punct('{') {
                            depth += 1;
                        } else if toks[k].is_punct('}') {
                            depth -= 1;
                            if depth == 0 {
                                end = Some(toks[k].end);
                                break;
                            }
                        }
                        k += 1;
                    }
                    break;
                }
                k += 1;
            }
            let end = end.unwrap_or(src.len());
            ranges.push((item_start, end));
            i = j.max(i + 1);
        }
        self.test_ranges = ranges;
    }
}

/// Parses `<check>) -- <reason>` (the tail of `allow(`).
fn parse_allow(rest: &str) -> Result<(String, Option<String>), String> {
    let close = rest
        .find(')')
        .ok_or_else(|| "allow( without closing `)`".to_string())?;
    let check = rest[..close].trim().to_string();
    if check.is_empty() || !check.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
        return Err(format!("bad check name {check:?} in allow(..)"));
    }
    let after = rest[close + 1..].trim();
    let reason = after.strip_prefix("--").map(|r| r.trim().to_string());
    match &reason {
        Some(r) if r.is_empty() => Err("empty reason after `--`".to_string()),
        _ => Ok((check, reason)),
    }
}

/// Parsed kind-map payload: `(crate, lo, hi, gaps)`.
type KindMapParts = (String, u64, u64, Vec<(u64, u64)>);

/// Parses `<crate> = <lo>..=<hi> [gaps a, b..=c, ...]`.
fn parse_kind_map(rest: &str) -> Result<KindMapParts, String> {
    let rest = rest.trim();
    let (krate, rest) = rest
        .split_once('=')
        .ok_or_else(|| "kind-map missing `=`".to_string())?;
    let krate = krate.trim().to_string();
    if krate.is_empty() {
        return Err("kind-map missing crate name".to_string());
    }
    let rest = rest.trim();
    let (range_text, gaps_text) = match rest.split_once("gaps") {
        Some((r, g)) => (r.trim(), Some(g.trim())),
        None => (rest, None),
    };
    let (lo, hi) = parse_range(range_text)
        .ok_or_else(|| format!("bad range {range_text:?} (expected `lo..=hi`)"))?;
    let mut gaps = Vec::new();
    if let Some(g) = gaps_text {
        for part in g.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let pair = parse_range(part)
                .or_else(|| part.parse::<u64>().ok().map(|v| (v, v)))
                .ok_or_else(|| format!("bad gap {part:?} (expected `n` or `a..=b`)"))?;
            gaps.push(pair);
        }
    }
    Ok((krate, lo, hi, gaps))
}

fn parse_range(s: &str) -> Option<(u64, u64)> {
    let (a, b) = s.split_once("..=")?;
    Some((a.trim().parse().ok()?, b.trim().parse().ok()?))
}

/// Parses `K_NAME handlers: <file.rs>[, <file.rs>..]` (the tail of
/// `kind`).
fn parse_kind_flow(rest: &str) -> Result<(String, Vec<String>), String> {
    let rest = rest.trim();
    let (kind, files) = rest
        .split_once("handlers:")
        .ok_or_else(|| "kind declaration missing `handlers:`".to_string())?;
    let kind = kind.trim().to_string();
    if !kind.starts_with("K_")
        || !kind.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
    {
        return Err(format!("bad kind name {kind:?} in kind declaration (expected `K_*`)"));
    }
    let mut handlers = Vec::new();
    for part in files.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if !part.ends_with(".rs") || part.contains(char::is_whitespace) {
            return Err(format!("bad handler file {part:?} (expected a `.rs` basename)"));
        }
        handlers.push(part.to_string());
    }
    if handlers.is_empty() {
        return Err(format!("kind `{kind}` declares no handler files"));
    }
    Ok((kind, handlers))
}

/// The set of files under analysis.
pub struct Workspace {
    /// Parsed files, sorted by path (analysis must itself be deterministic).
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Builds a workspace from in-memory `(path, text)` pairs (fixtures).
    pub fn from_memory(files: Vec<(&str, &str)>) -> Workspace {
        let mut files: Vec<SourceFile> = files
            .into_iter()
            .map(|(p, t)| SourceFile::parse(p, t.to_string()))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace { files }
    }

    /// Loads every `.rs` file under `root`, skipping `target/`, hidden
    /// directories, and this crate's own fixture corpora.
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut paths: Vec<PathBuf> = Vec::new();
        collect_rs(root, &mut paths)?;
        paths.sort();
        let mut files = Vec::with_capacity(paths.len());
        for p in paths {
            let text = std::fs::read_to_string(&p)?;
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::parse(rel, text));
        }
        Ok(Workspace { files })
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_trailing_and_preceding() {
        let f = SourceFile::parse(
            "x.rs",
            "let a = 1; // lint: allow(determinism) -- trailing\n\
             // lint: allow(blocking-recv) -- above\n\
             let b = 2;\n"
                .to_string(),
        );
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].target_line, 1);
        assert_eq!(f.suppressions[1].target_line, 3);
        assert_eq!(f.suppressions[0].reason.as_deref(), Some("trailing"));
    }

    #[test]
    fn kind_map_parses_gaps() {
        let f = SourceFile::parse(
            "m.rs",
            "// lint: kind-map core = 1..=63 gaps 36, 38..=39\n".to_string(),
        );
        assert_eq!(f.kind_maps.len(), 1);
        let m = &f.kind_maps[0];
        assert_eq!((m.lo, m.hi), (1, 63));
        assert!(m.in_gap(36) && m.in_gap(38) && m.in_gap(39));
        assert!(!m.in_gap(37) && !m.in_gap(40));
    }

    #[test]
    fn kind_flow_parses_handler_lists() {
        let f = SourceFile::parse(
            "m.rs",
            "// lint: kind K_ROLLBACK handlers: chromatic.rs, locking.rs\n".to_string(),
        );
        assert_eq!(f.kind_flows.len(), 1);
        let d = &f.kind_flows[0];
        assert_eq!(d.kind, "K_ROLLBACK");
        assert_eq!(d.handlers, vec!["chromatic.rs", "locking.rs"]);
        assert_eq!(d.line, 1);
    }

    #[test]
    fn kind_flow_rejects_bad_shapes() {
        let bad = "// lint: kind ROLLBACK handlers: a.rs\n\
                   // lint: kind K_A handlers:\n\
                   // lint: kind K_A a.rs\n\
                   // lint: kind K_A handlers: a.txt\n";
        let f = SourceFile::parse("m.rs", bad.to_string());
        assert!(f.kind_flows.is_empty());
        assert_eq!(f.bad_directives.len(), 4, "{:#?}", f.bad_directives);
    }

    #[test]
    fn bad_directives_are_recorded() {
        let f = SourceFile::parse(
            "m.rs",
            "// lint: allow(determinism) --\n// lint: frobnicate\n".to_string(),
        );
        assert_eq!(f.bad_directives.len(), 2);
    }

    #[test]
    fn cfg_test_regions() {
        let src = "fn live() { now(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { now(); }\n}\n\
                   fn live2() {}\n";
        let f = SourceFile::parse("x.rs", src.to_string());
        let live2 = src.find("live2").unwrap();
        let inner = src.find("fn t()").unwrap();
        assert!(f.in_test_code(inner));
        assert!(!f.in_test_code(0));
        assert!(!f.in_test_code(live2));
    }

    #[test]
    fn crate_names() {
        assert_eq!(
            SourceFile::parse("crates/net/src/tcp.rs", String::new()).crate_name(),
            "net"
        );
        assert_eq!(SourceFile::parse("tests/properties.rs", String::new()).crate_name(), "tests");
    }
}
