//! A minimal Rust lexer: just enough to tell code from comments, strings,
//! and literals, with line/column tracking for diagnostics.
//!
//! This is deliberately not a full Rust grammar — the checks only need a
//! reliable token stream where `// comments`, `/* block comments */`,
//! `"strings"`, `r#"raw strings"#`, char literals, and lifetimes can never
//! be mistaken for code. Everything else is `Ident`, `Num`, or
//! single-character `Punct` tokens that the checks pattern-match.

/// Token class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `HashMap`, `K_TOKEN`, ...).
    Ident,
    /// Single punctuation character (`.`, `:`, `{`, ...). Multi-character
    /// operators arrive as consecutive tokens (`::` is two `:`).
    Punct(char),
    /// Numeric literal; `value` holds the parsed integer when it is a
    /// plain decimal/hex/binary/octal integer (suffixes and `_` ignored).
    Num,
    /// String literal of any flavour (`""`, `r""`, `r#""#`, `b""`, `c""`).
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`) — kept distinct so it is never a char literal.
    Lifetime,
    /// Line or block comment, including doc comments.
    Comment,
}

/// One token with its span.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Class.
    pub kind: TokKind,
    /// Byte range in the source text.
    pub start: usize,
    /// Exclusive end byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column (in bytes) of `start`.
    pub col: u32,
    /// Parsed value for integer `Num` tokens.
    pub value: Option<u64>,
}

impl Tok {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, src: &str, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == name
    }

    /// Whether this is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Tokenizes `src`. Never fails: unterminated constructs consume to EOF.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::with_capacity(src.len() / 6 + 8);
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut line_start = 0usize;

    macro_rules! push {
        ($kind:expr, $start:expr, $end:expr, $sline:expr, $scol:expr, $val:expr) => {
            toks.push(Tok {
                kind: $kind,
                start: $start,
                end: $end,
                line: $sline,
                col: $scol,
                value: $val,
            })
        };
    }

    while i < b.len() {
        let c = b[i];
        let tline = line;
        let tcol = (i - line_start) as u32 + 1;
        match c {
            b'\n' => {
                i += 1;
                line += 1;
                line_start = i;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                push!(TokKind::Comment, start, i, tline, tcol, None);
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                i += 2;
                let mut depth = 1u32;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        line_start = i + 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                push!(TokKind::Comment, start, i, tline, tcol, None);
            }
            b'"' => {
                let start = i;
                i = scan_string(b, i + 1, &mut line, &mut line_start);
                push!(TokKind::Str, start, i, tline, tcol, None);
            }
            b'r' | b'b' | b'c' if raw_or_byte_string(b, i).is_some() => {
                let (body, hashes) = raw_or_byte_string(b, i).unwrap();
                let start = i;
                i = if hashes == usize::MAX {
                    // plain b"..." / c"..." string
                    scan_string(b, body, &mut line, &mut line_start)
                } else {
                    scan_raw_string(b, body, hashes, &mut line, &mut line_start)
                };
                push!(TokKind::Str, start, i, tline, tcol, None);
            }
            b'\'' => {
                // Lifetime vs char literal: a lifetime is `'` + ident with no
                // closing quote right after the ident run.
                let start = i;
                let mut j = i + 1;
                if j < b.len() && (b[j].is_ascii_alphabetic() || b[j] == b'_') && b[j] != b'\\' {
                    let mut k = j;
                    while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
                        k += 1;
                    }
                    if k < b.len() && b[k] == b'\'' && k > j {
                        // 'a' — single char in quotes: char literal.
                        if k == j + 1 {
                            i = k + 1;
                            push!(TokKind::Char, start, i, tline, tcol, None);
                            continue;
                        }
                    }
                    // lifetime
                    i = k;
                    push!(TokKind::Lifetime, start, i, tline, tcol, None);
                    continue;
                }
                // char literal with escape or punctuation: scan to closing '.
                while j < b.len() {
                    match b[j] {
                        b'\\' => j += 2,
                        b'\'' => {
                            j += 1;
                            break;
                        }
                        b'\n' => break, // unterminated; bail at line end
                        _ => j += 1,
                    }
                }
                i = j;
                push!(TokKind::Char, start, i, tline, tcol, None);
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                push!(TokKind::Ident, start, i, tline, tcol, None);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // Stop a float-looking scan at `..` (range operator).
                    if b[i] == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                        break;
                    }
                    i += 1;
                }
                let text: String =
                    src[start..i].chars().filter(|&ch| ch != '_').collect();
                let value = parse_int(&text);
                push!(TokKind::Num, start, i, tline, tcol, value);
            }
            _ => {
                // Punct or non-ASCII byte: emit one char.
                let ch_len = utf8_len(c);
                let ch = src[i..].chars().next().unwrap_or('?');
                push!(TokKind::Punct(ch), i, i + ch_len, tline, tcol, None);
                i += ch_len;
            }
        }
    }
    toks
}

/// If `b[i]` starts a raw/byte/c-string prefix, returns
/// `(body_start, hash_count)`; `hash_count == usize::MAX` marks a plain
/// (escaped) string body such as `b"..."`.
fn raw_or_byte_string(b: &[u8], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    // optional b / c prefix before r or quote
    if b[j] == b'b' || b[j] == b'c' {
        j += 1;
        if j >= b.len() {
            return None;
        }
    }
    if b[j] == b'"' {
        return if j > i { Some((j + 1, usize::MAX)) } else { None };
    }
    if b[j] != b'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j < b.len() && b[j] == b'"' {
        Some((j + 1, hashes))
    } else {
        None
    }
}

fn scan_string(b: &[u8], mut i: usize, line: &mut u32, line_start: &mut usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                *line_start = i + 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn scan_raw_string(
    b: &[u8],
    mut i: usize,
    hashes: usize,
    line: &mut u32,
    line_start: &mut usize,
) -> usize {
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            *line_start = i + 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && i + 1 + k < b.len() && b[i + 1 + k] == b'#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

fn parse_int(text: &str) -> Option<u64> {
    let t = text
        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
        .trim_end_matches(|c: char| c.is_ascii_alphanumeric());
    let t = if t.is_empty() { text } else { t };
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = t.strip_prefix("0b") {
        u64::from_str_radix(bin, 2).ok()
    } else if let Some(oct) = t.strip_prefix("0o") {
        u64::from_str_radix(oct, 8).ok()
    } else {
        // Strip a type suffix like `u16` that survived the trims above
        // (e.g. "1u16" -> trims to "1u16" when digits follow letters).
        let digits: String = t.chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().ok()
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn comments_strings_chars_lifetimes() {
        let src = r##"
// line comment with "unsafe" inside
/* block /* nested */ comment */
let s = "str with // not a comment";
let r = r#"raw "quoted" body"#;
let c = '\'';
fn f<'a>(x: &'a str) {}
"##;
        let ks = kinds(src);
        let comments: Vec<_> =
            ks.iter().filter(|(k, _)| *k == TokKind::Comment).collect();
        assert_eq!(comments.len(), 2);
        assert!(comments[0].1.contains("unsafe"));
        let strs: Vec<_> = ks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(strs[1].1.contains("raw"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Char && t == "'\\''"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Lifetime && t == "'a"));
        // The word `unsafe` never appears as an Ident in this snippet.
        assert!(!ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unsafe"));
    }

    #[test]
    fn numbers_and_values() {
        let toks = lex("const A: u16 = 65_535; const B: u16 = 0x10; let r = 1..=3;");
        let nums: Vec<u64> = toks.iter().filter_map(|t| t.value).collect();
        assert_eq!(nums, vec![65535, 16, 1, 3]);
    }

    #[test]
    fn lines_and_columns() {
        let src = "a\n  bb\n";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let src = "let s = \"one\ntwo\";\nnext";
        let toks = lex(src);
        let next = toks.iter().find(|t| t.is_ident(src, "next")).unwrap();
        assert_eq!(next.line, 3);
    }
}
